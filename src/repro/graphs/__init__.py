"""Graph substrate: a light adjacency-list graph plus generators/analysis.

The simulator keeps vertices as integers ``0..n-1`` internally and never
touches networkx on hot paths; :mod:`repro.graphs.analysis` converts to
networkx for diameter/component computations in tests and benchmarks.
"""

from repro.graphs.core import Graph
from repro.graphs.generators import (
    gnp_random_graph,
    random_regular_graph,
    power_law_graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    disjoint_cycles,
    barbell_graph,
    grid_graph,
    torus_graph,
    hypercube_graph,
    random_regular_lift,
    planted_partition_graph,
    tiered_bipartite,
)
from repro.graphs.io import (
    load_edge_list,
    parse_edge_list,
    save_edge_list,
)
from repro.graphs.analysis import (
    connected_components,
    is_connected,
    diameter,
    subgraph_diameter,
    max_degree,
)

__all__ = [
    "Graph",
    "gnp_random_graph",
    "random_regular_graph",
    "power_law_graph",
    "complete_bipartite",
    "complete_graph",
    "cycle_graph",
    "disjoint_cycles",
    "barbell_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "random_regular_lift",
    "planted_partition_graph",
    "tiered_bipartite",
    "load_edge_list",
    "parse_edge_list",
    "save_edge_list",
    "connected_components",
    "is_connected",
    "diameter",
    "subgraph_diameter",
    "max_degree",
]
