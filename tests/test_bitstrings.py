"""Tests for BitString and word accounting."""

import random

import pytest

from repro.util.bitstrings import BitString, bits_from_ints, random_bitstring


def test_construction_validates():
    with pytest.raises(ValueError):
        BitString((0, 2, 1))


def test_len_iter_index():
    b = BitString((1, 0, 1, 1))
    assert len(b) == 4
    assert list(b) == [1, 0, 1, 1]
    assert b[0] == 1
    assert b[1] == 0


def test_slice_returns_bitstring():
    b = BitString((1, 0, 1, 1, 0))
    assert isinstance(b[1:3], BitString)
    assert b[1:3].bits == (0, 1)


def test_words_rounding():
    b = BitString(tuple([1] * 33))
    assert b.words(32) == 2
    assert b.words(33) == 1
    assert BitString(()).words(16) == 1


def test_words_bad_size():
    with pytest.raises(ValueError):
        BitString((1,)).words(0)


def test_int_roundtrip():
    b = BitString((1, 0, 1, 1, 0, 1))
    assert BitString.from_int(b.to_int(), 6) == b


def test_from_int_zero_padding():
    b = BitString.from_int(5, 8)
    assert b.bits == (0, 0, 0, 0, 0, 1, 0, 1)


def test_concat():
    a = BitString((1, 0))
    b = BitString((0, 1, 1))
    assert a.concat(b).bits == (1, 0, 0, 1, 1)


def test_random_bitstring_deterministic():
    a = random_bitstring(random.Random(5), 64)
    b = random_bitstring(random.Random(5), 64)
    assert a == b
    assert len(a) == 64


def test_random_bitstring_not_constant():
    a = random_bitstring(random.Random(6), 128)
    assert 10 < sum(a.bits) < 118


def test_bits_from_ints():
    b = bits_from_ints([3, 1], 4)
    assert b.bits == (0, 0, 1, 1, 0, 0, 0, 1)


def test_bits_from_ints_overflow():
    with pytest.raises(ValueError):
        bits_from_ints([16], 4)
