"""Edge-list I/O: deterministic label mapping, strictness, round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.graphs.generators import connected_gnp_graph
from repro.graphs.io import load_edge_list, parse_edge_list, save_edge_list


def test_parse_skips_comments_blanks_and_extras():
    g = parse_edge_list([
        "# SNAP-style comment",
        "% KONECT-style comment",
        "",
        "0 1 7.5 1999",       # extra columns ignored
        "1 2",
        "2 0",
    ])
    assert g.n == 3
    assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]


def test_lenient_mode_skips_selfloops_and_collapses_duplicates():
    """strict=False keeps the repository-dump convention: SNAP files
    list both orientations of every edge, KONECT ones carry loops."""
    g = parse_edge_list(["0 1", "1 0", "0 1", "2 2", "1 2"],
                        strict=False)
    assert g.n == 3
    assert sorted(g.edges()) == [(0, 1), (1, 2)]


def test_strict_rejects_selfloop_with_line_number():
    with pytest.raises(ReproError, match=r"edges\.txt:3: self-loop '2'"):
        parse_edge_list(["0 1", "1 2", "2 2"], source="edges.txt")


def test_strict_rejects_duplicate_with_both_line_numbers():
    """Either orientation is a duplicate, and the error names both the
    offending line and the line the edge first appeared on."""
    with pytest.raises(ReproError,
                       match=r"edges\.txt:4: duplicate edge \('1', '0'\), "
                             r"first seen at line 1"):
        parse_edge_list(["0 1", "1 2", "", "1 0"], source="edges.txt")


def test_malformed_line_reports_position():
    with pytest.raises(ReproError, match=r"edges\.txt:2: expected two"):
        parse_edge_list(["0 1", "just-one-token"], source="edges.txt")


def test_integer_labels_sort_numerically():
    """'10' must map above '2' — numeric order, not string order — so
    files listing vertices 0..n-1 keep their natural ids."""
    g = parse_edge_list(["2 10", "0 2"])
    # labels 0, 2, 10 -> ids 0, 1, 2
    assert g.n == 3
    assert sorted(g.edges()) == [(0, 1), (1, 2)]


def test_string_labels_sort_lexicographically():
    g = parse_edge_list(["carol alice", "alice bob"])
    # alice=0, bob=1, carol=2
    assert sorted(g.edges()) == [(0, 1), (0, 2)]


def test_mixed_labels_sort_lexicographically():
    """One non-numeric label flips the whole file to string order —
    a decision, not an accident of which label the sort reached."""
    g = parse_edge_list(["7 alice", "10 7"])
    # lexicographic: '10'=0, '7'=1, 'alice'=2
    assert sorted(g.edges()) == [(0, 1), (1, 2)]


def test_mapping_is_independent_of_line_order():
    a = parse_edge_list(["a b", "b c", "c d"])
    b = parse_edge_list(["c d", "a b", "b c"])
    assert a == b


def test_malformed_and_empty_inputs_fail_loudly():
    with pytest.raises(ReproError):
        parse_edge_list(["0"])
    with pytest.raises(ReproError):
        parse_edge_list(["# nothing but comments"])
    with pytest.raises(ReproError):
        load_edge_list("/nonexistent/edges.txt")


def test_save_load_round_trip(tmp_path):
    g = connected_gnp_graph(30, 0.2, seed=3)
    path = str(tmp_path / "g.txt")
    save_edge_list(g, path, header="gnp n=30 p=0.2 seed=3")
    # save_edge_list emits each edge once, so the strict default holds.
    assert load_edge_list(path) == g
    with open(path, encoding="utf-8") as fh:
        assert fh.readline().startswith("# ")


def test_round_trip_preserves_comments_and_blanks_semantics(tmp_path):
    """A file with interleaved comments and blank lines loads to the
    same graph as its clean save."""
    path = str(tmp_path / "messy.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# header\n\n0 1\n% mid comment\n\n1 2\n")
    g = load_edge_list(path)
    clean = str(tmp_path / "clean.txt")
    save_edge_list(g, clean)
    assert load_edge_list(clean) == g
