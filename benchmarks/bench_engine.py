"""ENGINE — the experiment-sweep subsystem as a perf benchmark.

Runs a reference multi-family, multi-seed sweep through
:mod:`repro.experiments` (worker pool, stats-lite engine mode) and writes
``BENCH_engine.json`` at the repo root: message counts, fitted growth
exponents, and wall-clock per cell.  Future PRs diff this artifact to see
whether the engine got faster or the algorithms chattier.

Run directly (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_engine.py [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.experiments import (
    SweepSpec,
    bench_payload,
    render_report,
    run_sweep,
    summarize,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BENCH_METHODS = ("kt1-delta-plus-one", "baseline-trial",
                 "kt2-sampled-greedy", "luby")

#: The shared-density reference matrix.  Sizes reach n=320 because the
#: n^1.5-vs-m separation only becomes visible once m >> n^1.5 — the
#: whole point of measuring the engine where it is actually loaded.
REFERENCE_SPEC = SweepSpec(
    families=("gnp", "regular"),
    sizes=(80, 140, 220, 320),
    seeds=(0, 1, 2),
    methods=BENCH_METHODS,
    density=0.25,
)

#: A denser gnp column (p = 0.45): m grows while n^1.5 stays put, so the
#: o(m) methods' advantage over the Omega(m) baselines widens — and the
#: engine's per-send costs dominate the wall clock, which is what this
#: benchmark exists to track.
DENSE_SPEC = SweepSpec(
    families=("gnp",),
    sizes=(80, 140, 220, 320),
    seeds=(0, 1, 2),
    methods=BENCH_METHODS,
    density=0.45,
)

#: The async column: Algorithm 1 under the event-driven engine (uniform
#: latency).  Each cell carries the shadow-sync baseline, so the artifact
#: charts the cost of asynchrony (overhead_messages) next to the sync
#: trajectory — and the async counts themselves become regression-gated.
ASYNC_SPEC = SweepSpec(
    families=("gnp",),
    sizes=(80, 140, 220, 320),
    seeds=(0, 1, 2),
    methods=("kt1-delta-plus-one",),
    engines=("async",),
    density=0.25,
)

SPECS = (REFERENCE_SPEC, DENSE_SPEC, ASYNC_SPEC)


def run(workers: int = 4, out: str | None = None) -> dict:
    t0 = time.perf_counter()
    records: list[dict] = []
    for spec in SPECS:
        records += run_sweep(spec, store=None, workers=workers)
    wall = time.perf_counter() - t0
    summary = summarize(records)
    payload = bench_payload(records, summary, wall_s=wall)
    print(render_report(summary))
    print(f"\n{len(records)} cells in {wall:.1f}s "
          f"({workers} workers)")
    path = out or os.path.join(REPO_ROOT, "BENCH_engine.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return payload


def test_engine_sweep_benchmark(benchmark):
    """Pytest-benchmark entry: the sweep, serially, for timing stability."""
    payload = benchmark.pedantic(
        lambda: run(workers=0), rounds=1, iterations=1
    )
    # Every algorithm cell must have produced a verified-valid output.
    assert payload["runs"] == sum(spec.size for spec in SPECS)
    # Alg 1 must beat the Omega(m) baseline's growth on dense families,
    # in every density column.
    exps = {(e["family"], e["density"], e["method"]): e["messages_exponent"]
            for e in payload["exponents"]}
    for family, density in (("gnp", 0.25), ("regular", 0.25),
                            ("gnp", 0.45)):
        assert exps[(family, density, "kt1-delta-plus-one")] < \
            exps[(family, density, "baseline-trial")]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=None)
    args = parser.parse_args()
    run(workers=args.workers, out=args.out)
