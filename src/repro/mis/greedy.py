"""Randomized greedy MIS: sequential reference + parallel rank version.

Algorithm 3's Steps 1-2 simulate Θ(sqrt n) iterations of the *sequential*
randomized greedy MIS by sampling a set S uniformly and running the
*parallel* rank-driven greedy on G[S]: each S-node draws a random rank,
announces (membership, rank) to its neighbors, and enters the MIS as soon
as every lower-ranked undecided S-neighbor has retired.  Blelloch et
al. [5] show the parallel version computes exactly the sequential greedy
MIS for the rank order, and Fischer–Noever [11] bound its round count by
O(log n) whp — both facts are exercised by tests.

The announcement goes to *all* neighbors (not only S-members): S
membership is a private coin, so neighbors cannot know it in advance, and
Algorithm 3's later steps need every node to know its joined neighbors
anyway.  Cost: O(|S| n) messages, the Õ(n^1.5) term of Theorem 4.1.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.congest.node import Context, NodeAlgorithm
from repro.graphs.core import Graph


def sequential_greedy_mis(graph: Graph, order: Sequence[int]) -> set[int]:
    """The classic sequential greedy MIS over a vertex order."""
    chosen: set[int] = set()
    blocked: set[int] = set()
    for v in order:
        if v not in blocked:
            chosen.add(v)
            blocked.add(v)
            blocked.update(graph.neighbors(v))
    return chosen


def greedy_by_rank(graph: Graph, members: Sequence[int],
                   keys: Sequence) -> set[int]:
    """Sequential greedy restricted to ``members``, in ascending key order.

    ``keys[v]`` must be unique per member (use (rank, ID) tuples to mirror
    the parallel version's tie-breaking).  Blocking non-member neighbors
    is harmless — they are never processed — so this equals greedy on the
    induced subgraph G[members].
    """
    order = sorted(members, key=lambda v: keys[v])
    return sequential_greedy_mis_over(graph, order)


def sequential_greedy_mis_over(graph: Graph, order: Sequence[int]) -> set[int]:
    chosen: set[int] = set()
    blocked: set[int] = set()
    for v in order:
        if v not in blocked:
            chosen.add(v)
            blocked.add(v)
            blocked.update(graph.neighbors(v))
    return chosen


class ParallelGreedyMIS(NodeAlgorithm):
    """Parallel rank-driven greedy on the sampled set S.

    Input: ``{"in_s": bool, "rank": int}``.  Non-members participate
    passively: they record which neighbors are in S and which joined.

    Output: ``{"in_s", "rank", "joined", "out", "s_neighbors": frozenset,
    "joined_neighbors": frozenset}``.
    """

    # Non-passive: an S-member with no S-neighbors receives nothing after
    # round 0 yet must still act (join) once the announcement round passed.
    passive_when_idle = False

    def setup(self, ctx: Context) -> None:
        state = ctx.input or {}
        self.in_s = state.get("in_s", True)
        self.rank = state.get("rank", 0)
        rank_space = state.get("rank_space", max(ctx.n, 2) ** 3)
        self.joined = False
        self.out = False
        self.s_ranks: dict = {}
        self.s_undecided: set = set()
        self.joined_neighbors: set = set()
        # All round-0 announcements have landed once the largest possible
        # rank payload has crossed a link: a protocol constant every node
        # can compute from the public word size.
        from repro.congest.message import payload_words

        words = payload_words((rank_space - 1,), ctx.word_bits)
        self.ready_round = max(1, -(-words // ctx.words_per_message))
        self.ready = False

    def _publish(self, ctx: Context) -> None:
        ctx.done({
            "in_s": self.in_s,
            "rank": self.rank,
            "joined": self.joined,
            "out": self.out,
            "s_neighbors": frozenset(self.s_ranks),
            "joined_neighbors": frozenset(self.joined_neighbors),
        })

    def _my_key(self, ctx: Context):
        return (self.rank, ctx.my_id)

    def _try_join(self, ctx: Context) -> None:
        if not (self.in_s and self.ready) or self.joined or self.out:
            return
        me = self._my_key(ctx)
        if all(me < (self.s_ranks[u], u) for u in self.s_undecided):
            self.joined = True
            for u in ctx.neighbor_ids:
                ctx.send(u, "joined")
            self._publish(ctx)

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0:
            if self.in_s:
                for u in ctx.neighbor_ids:
                    ctx.send(u, "rank", self.rank)
            self._publish(ctx)
            if not ctx.neighbor_ids:
                self.ready = True
                self._try_join(ctx)
            return
        for msg in inbox:
            if msg.tag == "rank":
                (r,) = msg.fields
                self.s_ranks[msg.sender_id] = r
                self.s_undecided.add(msg.sender_id)
            elif msg.tag == "joined":
                self.joined_neighbors.add(msg.sender_id)
                self.s_undecided.discard(msg.sender_id)
                if self.in_s and not self.joined and not self.out:
                    self.out = True
                    for u in self.s_undecided:
                        ctx.send(u, "retired")
                self._publish(ctx)
            elif msg.tag == "retired":
                self.s_undecided.discard(msg.sender_id)
        if ctx.round >= self.ready_round:
            self.ready = True
        self._try_join(ctx)
        self._publish(ctx)


def run_parallel_greedy(net, in_s: Sequence[bool], ranks: Sequence[int],
                        rank_space: int = None, name: str = "greedy"):
    """Driver for one parallel-greedy stage; returns the StageResult.

    ``rank_space`` must upper-bound every rank (default n^3); it sizes the
    protocol's announcement-completion round.
    """
    if rank_space is None:
        rank_space = max(net.graph.n, 2) ** 3
    if any(r >= rank_space for r in ranks):
        raise ValueError("ranks must lie below rank_space")
    inputs = [
        {"in_s": bool(in_s[v]), "rank": int(ranks[v]),
         "rank_space": rank_space}
        for v in range(net.graph.n)
    ]
    return net.run(ParallelGreedyMIS, inputs=inputs, name=name)
