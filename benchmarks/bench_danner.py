"""T1.1 — the danner substrate (Theorem 1.1 interface) and the ST.

Sweeps delta through the Theorem 1.1 trade-off on a dense graph and a
high-diameter barbell, reporting edges, diameter, messages and rounds;
plus the Õ(n)-message sketch spanning tree scaling and the sketch-window
ablation (full vector vs windowed convergecasts).
"""

import math

import pytest

from repro.congest.network import SyncNetwork
from repro.graphs.analysis import diameter, is_connected
from repro.graphs.core import Graph
from repro.graphs.generators import barbell_graph, connected_gnp_graph
from repro.substrates.boruvka import ForestState, run_boruvka
from repro.substrates.danner import build_danner
from repro.substrates.spanning_tree import build_spanning_tree

from _util import fit_exponent, fmt, print_table

SEED = 77


def test_danner_delta_tradeoff(benchmark):
    def sweep():
        g = connected_gnp_graph(420, 0.35, seed=SEED)
        base_diam = diameter(g)
        rows = []
        for delta in (0.25, 0.5, 0.75):
            net = SyncNetwork(g, seed=SEED)
            d = build_danner(net, delta=delta, seed=SEED + 1)
            h = Graph(g.n, d.edge_list(net))
            assert is_connected(h)
            rows.append({
                "delta": delta,
                "H_edges": h.m,
                "H_diam": diameter(h),
                "messages": net.stats.messages,
                "rounds": net.stats.rounds,
            })
        return g, base_diam, rows

    g, base_diam, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"T1.1: danner by delta (n={g.n}, m={g.m}, diam(G)={base_diam})",
        ["delta", "|H|", "diam(H)", "messages", "rounds"],
        [(r["delta"], r["H_edges"], r["H_diam"], r["messages"],
          r["rounds"]) for r in rows],
    )
    benchmark.extra_info["rows"] = rows
    for r in rows:
        # edge bound of the substitute: Õ(n^{1+d} + m log n / n^d + n)
        bound = 3 * (g.n ** (1 + r["delta"])
                     + g.m * math.log(g.n) / g.n ** r["delta"] + g.n)
        assert r["H_edges"] <= bound
        # diameter comfortably within D + O(sqrt n)-ish at delta >= 1/2
        if r["delta"] >= 0.5:
            assert r["H_diam"] <= base_diam + 4 * math.sqrt(g.n)


def test_danner_high_diameter_graph(benchmark):
    """The barbell stress test: H must keep the bridge and the diameter
    bound D + Õ(n^{1-d}) is trivially met (D dominates)."""

    def run():
        g = barbell_graph(150, 40)
        net = SyncNetwork(g, seed=SEED)
        d = build_danner(net, delta=0.5, seed=SEED + 2)
        h = Graph(g.n, d.edge_list(net))
        return g, h, net.stats.messages

    g, h, msgs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert is_connected(h)
    print(f"\nbarbell n={g.n} m={g.m}: |H|={h.m}, diam(G)={diameter(g)}, "
          f"diam(H)={diameter(h)}, msgs={msgs}")
    assert diameter(h) <= diameter(g) + 2 * math.sqrt(g.n) + 4
    assert h.m < 0.8 * g.m


def test_spanning_tree_message_scaling(benchmark):
    """[19]-style ST: Õ(n) messages — exponent ~1 even on dense graphs."""

    def sweep():
        pts = []
        for n in (120, 240, 480):
            g = connected_gnp_graph(n, 0.4, seed=SEED + n)
            net = SyncNetwork(g, seed=SEED)
            st = build_spanning_tree(net, seed=SEED + 3)
            assert len(st.tree_edges) == n - 1
            pts.append((n, net.stats.messages, g.m, st.phases))
        return pts

    pts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exp = fit_exponent([(n, msgs) for n, msgs, _m, _p in pts])
    m_exp = fit_exponent([(n, m) for n, _msgs, m, _p in pts])
    print_table(
        "KKT-style spanning tree: messages by n (dense graphs)",
        ["n", "messages", "m", "phases"],
        pts,
    )
    print(f"fitted exponents: ST messages ~ n^{exp:.2f}, m ~ n^{m_exp:.2f}")
    benchmark.extra_info["st_exponent"] = exp
    assert exp < m_exp - 0.5     # decisively below m's growth
    assert exp < 1.6


def test_sketch_window_ablation(benchmark):
    """DESIGN ablation: windowed vs full-vector convergecasts."""

    def sweep():
        g = connected_gnp_graph(300, 0.3, seed=SEED + 9)
        rows = []
        for window in (None, 12, 8, 4):
            net = SyncNetwork(g, seed=SEED)
            res = run_boruvka(net, ForestState.singletons(g.n),
                              seed=SEED + 4, window=window)
            assert len(res.forest.roots()) == 1
            rows.append({
                "window": window or "full",
                "messages": net.stats.messages,
                "phases": res.phases,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: sketch window size (Boruvka ST, n=300 dense)",
        ["window", "messages", "phases"],
        [(r["window"], r["messages"], r["phases"]) for r in rows],
    )
    benchmark.extra_info["rows"] = rows
    # all variants converge; the knob trades volume against retries
    assert all(r["phases"] < 200 for r in rows)
