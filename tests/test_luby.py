"""Tests for Luby's MIS (the Õ(m) baseline)."""

import pytest

from repro.congest.network import SyncNetwork
from repro.graphs.core import Graph
from repro.mis.luby import run_luby
from repro.mis.verify import check_mis

from tests.conftest import connected_families


@pytest.mark.parametrize("name,graph", connected_families(seed=700))
def test_valid_mis_on_family(name, graph):
    net = SyncNetwork(graph, seed=1)
    in_mis, _ = run_luby(net)
    check_mis(graph, in_mis)


def test_runs_under_comparison_discipline(gnp_small):
    """Luby is comparison-based (Figure 1 classifies it '(C)')."""
    net = SyncNetwork(gnp_small, seed=2, comparison_based=True)
    in_mis, _ = run_luby(net)
    check_mis(gnp_small, in_mis)


def test_isolated_vertices_join():
    g = Graph(5, [(0, 1)])
    net = SyncNetwork(g, seed=3)
    in_mis, _ = run_luby(net)
    assert in_mis[2] and in_mis[3] and in_mis[4]
    assert in_mis[0] != in_mis[1]


def test_active_subgraph_restriction():
    """Luby inside an active subgraph ignores other edges."""
    g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])  # 4-cycle
    net = SyncNetwork(g, seed=4)
    # restrict to the path 0-1-2 (drop edges (2,3),(0,3)); 3 is a bystander
    active = [
        frozenset({net.id_of(1)}),
        frozenset({net.id_of(0), net.id_of(2)}),
        frozenset({net.id_of(1)}),
        frozenset(),
    ]
    participate = [True, True, True, False]
    in_mis, _ = run_luby(net, active_sets=active, participate=participate)
    # MIS of the path among participants
    sub = Graph(3, [(0, 1), (1, 2)])
    check_mis(sub, in_mis[:3])
    assert in_mis[3] is False


def test_messages_theta_m_per_phase(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=5)
    _, stage = run_luby(net)
    # at least one full phase of 3 subphases over every edge direction
    assert net.stats.messages >= 3 * 2 * gnp_medium.m * 0.4
    # and not absurdly more than m log n
    assert net.stats.messages <= 40 * gnp_medium.m


def test_rounds_logarithmic(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=6)
    run_luby(net)
    assert net.stats.rounds <= 30 * max(4, gnp_medium.n.bit_length())


def test_deterministic_given_seed(gnp_small):
    a, _ = run_luby(SyncNetwork(gnp_small, seed=7))
    b, _ = run_luby(SyncNetwork(gnp_small, seed=7))
    assert a == b


def test_different_seeds_different_mis(gnp_medium):
    a, _ = run_luby(SyncNetwork(gnp_medium, seed=8))
    b, _ = run_luby(SyncNetwork(gnp_medium, seed=9))
    assert a != b


def test_complete_graph_single_winner():
    from repro.graphs.generators import complete_graph

    g = complete_graph(15)
    net = SyncNetwork(g, seed=10)
    in_mis, _ = run_luby(net)
    assert sum(in_mis) == 1
