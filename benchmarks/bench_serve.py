"""SERVE — the query service under seeded concurrent traffic.

Boots an in-process :class:`repro.serving.QueryServer`, drives it with a
closed-loop fleet of client threads replaying a seeded request mix (hot
repeats that should hit the LRU cache, a cold tail of fresh graphs, a
pinch of short-deadline queries), and writes ``BENCH_serve.json`` at the
repo root: queries/s, p50/p99 latency, cache hit rate, and the
shed/degraded/error counters.  Future PRs diff this artifact to see
whether the serving layer got faster or started shedding.

The traffic is generated from a fixed seed, so the request *mix* is
reproducible run to run; wall-clock figures are hardware-dependent, as
with every benchmark here.

Run directly (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import threading
import time

from repro.serving import QueryServer, ServeClient, build_query

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The hot pool: a handful of distinct queries clients keep re-asking.
#: Everything after each query's first arrival should be an LRU hit.
HOT_POOL = [
    dict(problem="coloring", family="gnp", n=80, p=0.3, graph_seed=g,
         seed=s, method=m)
    for g, s, m in [(0, 1, "kt1-delta-plus-one"), (1, 2, "luby"),
                    (2, 3, "baseline-trial"), (3, 4, "kt1-delta-plus-one")]
]
for _q in HOT_POOL[1::2]:
    _q["problem"] = "mis"
    _q["method"] = "luby"

COLD_COLORING = ("kt1-delta-plus-one", "baseline-trial",
                 "baseline-rank-greedy")
COLD_MIS = ("luby", "rank-greedy")


def _cold_query(rng: random.Random) -> dict:
    """A fresh, almost-surely-uncached query."""
    problem = rng.choice(("coloring", "mis"))
    method = (rng.choice(COLD_MIS) if problem == "mis"
              else rng.choice(COLD_COLORING))
    return dict(problem=problem, family="gnp",
                n=rng.choice((60, 90, 120)), p=0.3,
                graph_seed=rng.randrange(10_000),
                seed=rng.randrange(10_000), method=method)


def _client_loop(host, port, requests, out, errors):
    try:
        with ServeClient(host, port) as client:
            for req in requests:
                t0 = time.monotonic()
                result = client.query(req)
                out.append((result.status, result.degraded,
                            result.cached, time.monotonic() - t0))
    except Exception as exc:  # pragma: no cover - surfaced below
        errors.append(exc)


def run_bench(clients: int, per_client: int, hot_ratio: float,
              deadline_mix: float, master_seed: int) -> dict:
    rng = random.Random(master_seed)
    plans = []
    for _ in range(clients):
        plan = []
        for _ in range(per_client):
            if rng.random() < hot_ratio:
                params = dict(rng.choice(HOT_POOL))
            else:
                params = _cold_query(rng)
            deadline = 0.05 if rng.random() < deadline_mix else None
            plan.append(build_query(params.pop("problem"),
                                    deadline_s=deadline, **params))
        plans.append(plan)

    server = QueryServer(host="127.0.0.1", port=0, solvers=4,
                         max_pending=4 * clients, deadline_s=30.0)
    with server:
        host, port = server.address
        out, errors = [], []
        threads = [threading.Thread(target=_client_loop,
                                    args=(host, port, plan, out, errors))
                   for plan in plans]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.monotonic() - t0
        if errors:
            raise SystemExit(f"bench_serve: client errors: {errors[:3]}")
        snap = server.status_snapshot()

    lat = sorted(l for (_, _, _, l) in out)

    def pct(q):
        if not lat:
            return 0.0
        return lat[min(len(lat) - 1, int(q * len(lat)))]

    answered = sum(1 for (s, _, _, _) in out if s == "ok")
    return {
        "clients": clients,
        "queries": len(out),
        "answered": answered,
        "degraded": sum(1 for (_, d, _, _) in out if d),
        "cached": sum(1 for (_, _, c, _) in out if c),
        "shed": snap["shed"],
        "errors": snap["errors"],
        "wall_s": round(wall, 3),
        "queries_per_s": round(len(out) / wall, 2) if wall else 0.0,
        "p50_ms": round(pct(0.50) * 1000, 2),
        "p99_ms": round(pct(0.99) * 1000, 2),
        "cache_hit_rate": snap["cache_hit_rate"],
        "seed": master_seed,
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description="serving-layer throughput/latency benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke mix (CI-sized, ~10s)")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_serve.json"))
    args = parser.parse_args()

    if args.quick:
        payload = run_bench(clients=3, per_client=6, hot_ratio=0.5,
                            deadline_mix=0.0, master_seed=args.seed)
    else:
        payload = run_bench(clients=6, per_client=20, hot_ratio=0.5,
                            deadline_mix=0.1, master_seed=args.seed)
    payload["mode"] = "quick" if args.quick else "full"

    if payload["answered"] + payload["shed"] + payload["errors"] \
            < payload["queries"]:
        raise SystemExit(f"bench_serve: unaccounted queries: {payload}")
    if not args.quick and payload["cached"] == 0:
        raise SystemExit("bench_serve: hot pool never hit the cache")

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench_serve: {payload['queries']} queries from "
          f"{payload['clients']} clients in {payload['wall_s']}s — "
          f"{payload['queries_per_s']}/s, p50 {payload['p50_ms']}ms, "
          f"p99 {payload['p99_ms']}ms, cache hit rate "
          f"{payload['cache_hit_rate']}")
    print(f"bench_serve: wrote {args.out}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
