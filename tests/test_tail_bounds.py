"""Tests for limited-independence tail bounds (Lemmas A.1, A.2)."""

import math

import pytest

from repro.errors import ReproError
from repro.util.tail_bounds import (
    kwise_chernoff_upper,
    kwise_concentration_bound,
    required_independence,
    whp_failure_budget,
)


def test_concentration_requires_even_c():
    with pytest.raises(ReproError):
        kwise_concentration_bound(5, 100, 10.0)
    with pytest.raises(ReproError):
        kwise_concentration_bound(2, 100, 10.0)


def test_concentration_trivial_for_nonpositive_lambda():
    assert kwise_concentration_bound(4, 100, 0.0) == 1.0


def test_concentration_decreases_in_lambda():
    b1 = kwise_concentration_bound(8, 1000, 100.0)
    b2 = kwise_concentration_bound(8, 1000, 300.0)
    assert b2 < b1


def test_concentration_capped_at_one():
    assert kwise_concentration_bound(4, 10**6, 1.0) == 1.0


def test_chernoff_upper_monotone_in_c():
    # Larger independence can only sharpen (until delta^2 mu caps it).
    weak = kwise_chernoff_upper(2, 100.0, 0.1)
    strong = kwise_chernoff_upper(50, 100.0, 0.1)
    assert strong <= weak


def test_chernoff_upper_matches_exponent():
    mu, delta, c = 100.0, 0.5, 1000
    expected = math.exp(-min(c, delta * delta * mu))
    assert kwise_chernoff_upper(c, mu, delta) == pytest.approx(expected)


def test_chernoff_trivial_cases():
    assert kwise_chernoff_upper(4, 0.0, 0.5) == 1.0
    assert kwise_chernoff_upper(4, 10.0, 0.0) == 1.0


def test_chernoff_rejects_bad_c():
    with pytest.raises(ReproError):
        kwise_chernoff_upper(0, 10.0, 0.5)


def test_required_independence_even_and_logarithmic():
    for n in (10, 100, 10_000, 10**6):
        c = required_independence(n)
        assert c % 2 == 0
        assert c >= 4
    assert required_independence(10**6) > required_independence(100)


def test_required_independence_small_n():
    assert required_independence(1) == 4


def test_whp_budget():
    assert whp_failure_budget(1000) == pytest.approx(0.001)
    assert whp_failure_budget(1000, 2.0) == pytest.approx(1e-6)
