"""Declarative sweep specifications.

A :class:`SweepSpec` is the cross product

    graph family x size n x seed x method x engine (x latency model)

and expands to a list of :class:`Cell` objects, each a single
self-contained run (picklable, so the worker pool can ship it to another
process).  Every cell has a stable string :meth:`Cell.key` used by the
JSON-lines store for resume: a completed key is never re-run.

Every method runs on every engine: async-native methods run the
event-driven engine directly, round-cadence ones are auto-wrapped in the
alpha-synchronizer by :func:`repro.api.color_graph` /
:func:`repro.api.find_mis` (the shadow synchronous run that supplies the
wrap budgets also yields the cell's overhead-of-asynchrony columns).
The latency axis only multiplies async cells — synchronous delivery has
no latency model, so sync cells are emitted once regardless of
``latencies``.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, fields, replace
from typing import Iterator, Optional

from repro.congest.runtime import LATENCY_MODELS, make_fault_model
from repro.errors import ReproError

#: Methods dispatched to :func:`repro.api.color_graph`.
COLORING_METHODS = (
    "kt1-delta-plus-one",
    "kt1-eps-delta",
    "baseline-trial",
    "baseline-rank-greedy",
)

#: Methods dispatched to :func:`repro.api.find_mis`.
MIS_METHODS = (
    "kt2-sampled-greedy",
    "luby",
    "rank-greedy",
)

ALL_METHODS = COLORING_METHODS + MIS_METHODS

#: ``sync`` and ``columnar`` are the same synchronous semantics under
#: two delivery engines (scalar per-node loop vs numpy whole-round
#: batches; counts are bit-identical by the columnar parity contract,
#: only wall-clock differs); ``async`` is the event-driven engine.
ENGINES = ("sync", "columnar", "async")

#: Methods whose every protocol stage is count-based lockstep
#: (``passive_when_idle``), so they run the event-driven engine without
#: alpha-synchronizer wrapping.  The rest (Algorithm 2's phase cadence,
#: Algorithm 3's parallel greedy) run async too, via the auto-wrap —
#: their records just carry nonzero ``synchronized_stages``.
ASYNC_NATIVE_METHODS = (
    "kt1-delta-plus-one",
    "baseline-trial",
    "baseline-rank-greedy",
    "luby",
    "rank-greedy",
)


@dataclass(frozen=True)
class Cell:
    """One experiment: a (family, n, seed, method, engine, latency) point.

    ``timeout_s`` / ``retries`` do not participate in :meth:`key` — they
    change how patiently a cell is run, not what it measures.
    ``latency`` is the async delivery model; synchronous cells ignore it
    (and it stays out of their key, so historical sync keys are stable).
    ``sample_constant`` is Algorithm 3's |S| knob (None = the method
    default) — set, it becomes part of the key, as it changes what the
    cell measures.  ``faults`` is a fault-model spec
    (:func:`repro.congest.runtime.make_fault_model` grammar); the
    default ``"none"`` keeps it out of the key, so historical fault-free
    keys — and therefore old result stores — stay resumable.
    """

    family: str
    n: int
    seed: int
    method: str
    engine: str = "sync"
    latency: str = "uniform"
    density: float = 0.2
    epsilon: float = 0.5
    sample_constant: Optional[float] = None
    faults: str = "none"
    collect_utilization: bool = False
    #: Wall-clock budget per attempt (None = unlimited, run in-pool).
    timeout_s: Optional[float] = None
    #: Extra attempts after a timed-out one before recording failure.
    retries: int = 0

    def key(self) -> str:
        """Stable identity for the resume store.

        Every field that changes what a cell measures participates, so a
        re-run with (say) a different epsilon or full accounting is a new
        cell, not a resume hit serving stale numbers.  Fields at their
        historical defaults (sync engine, no sample_constant) render
        exactly the historical key, keeping old stores resumable.
        """
        engine = (f"{self.engine}+{self.latency}" if self.engine == "async"
                  else self.engine)
        sample = (f"c{self.sample_constant:g}/"
                  if self.sample_constant is not None else "")
        fault = f"f{self.faults}/" if self.faults != "none" else ""
        return (
            f"{self.family}/n{self.n}/p{self.density:g}/"
            f"{self.method}/{engine}/eps{self.epsilon:g}/{sample}{fault}"
            f"{'full' if self.collect_utilization else 'lite'}/"
            f"s{self.seed}"
        )

    @property
    def problem(self) -> str:
        return "coloring" if self.method in COLORING_METHODS else "mis"

    # -- wire form (distributed queue) ------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form for the distributed work queue."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Cell":
        """Rebuild a cell shipped over the wire.

        Unknown fields are an error, not silently dropped: a field this
        side does not know about means the other side runs a newer
        schema, and executing the cell without the knob would produce a
        record whose key claims something the run never measured.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ReproError(
                f"unknown Cell field(s) {', '.join(unknown)} "
                "(coordinator/worker schema skew?)"
            )
        return cls(**data)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment matrix.

    ``density`` is the family's density knob (edge probability for gnp,
    degree fraction for regular, attachment/10 for powerlaw).  By default
    sweeps run stats-lite (``collect_utilization=False``): message, word,
    and round counts are identical to full accounting, and bulk runs only
    need those.

    ``engines`` is the engine axis (``engine`` remains as the historical
    single-engine spelling and is used when ``engines`` is empty) —
    ``columnar`` cells run the synchronous semantics on the numpy
    columnar scheduler, so their counts match the ``sync`` cells and
    only ``wall_s`` differs;
    ``latencies`` multiplies only the async cells — a sync cell has no
    latency model and is emitted once.  ``faults`` is the robustness
    axis: every entry is a fault-model spec (``"none"``, ``"drop:P"``,
    ``"crash:P[:T[:R]]"``, ``"adversary[:B[:W]]"``) and multiplies every
    cell, like ``latencies`` does async ones.
    """

    families: tuple[str, ...] = ("gnp",)
    sizes: tuple[int, ...] = (100, 200)
    seeds: tuple[int, ...] = (0,)
    methods: tuple[str, ...] = ("kt1-delta-plus-one",)
    engine: str = "sync"
    engines: tuple[str, ...] = ()
    latencies: tuple[str, ...] = ("uniform",)
    faults: tuple[str, ...] = ("none",)
    density: float = 0.2
    epsilon: float = 0.5
    sample_constant: Optional[float] = None
    collect_utilization: bool = False
    #: Per-cell wall-clock budget: a cell still running after ``timeout_s``
    #: seconds is killed (its worker process terminated, the pool intact),
    #: retried up to ``retries`` times, and finally recorded with
    #: ``status="timeout"`` — aggregation excludes such records from
    #: exponent fits, and the store's resume set skips them so a re-run
    #: attempts them again.
    timeout_s: Optional[float] = None
    retries: int = 0

    def __post_init__(self):
        for m in self.methods:
            if m not in ALL_METHODS:
                raise ReproError(
                    f"unknown method {m!r}; known: {', '.join(ALL_METHODS)}"
                )
        for engine in self.engine_axis:
            if engine not in ENGINES:
                raise ReproError(f"unknown engine {engine!r}")
        if len(set(self.engine_axis)) != len(self.engine_axis):
            raise ReproError("duplicate engine in engines axis")
        for latency in self.latencies:
            if latency not in LATENCY_MODELS:
                raise ReproError(
                    f"unknown latency model {latency!r}; "
                    f"known: {', '.join(LATENCY_MODELS)}"
                )
        if len(set(self.latencies)) != len(self.latencies):
            raise ReproError("duplicate latency in latencies axis")
        for fault in self.faults:
            make_fault_model(fault)     # raises ReproError on a bad spec
        if len(set(self.faults)) != len(self.faults):
            raise ReproError("duplicate fault spec in faults axis")
        if (not self.sizes or not self.seeds or not self.families
                or not self.methods or not self.latencies
                or not self.faults):
            raise ReproError("sweep spec has an empty axis")
        if self.sample_constant is not None:
            bad = [m for m in self.methods if m != "kt2-sampled-greedy"]
            if bad:
                # The knob only reaches Algorithm 3; letting other
                # methods carry it would mint distinct cell keys whose
                # numbers do not measure what the key claims.
                raise ReproError(
                    "sample_constant only applies to kt2-sampled-greedy "
                    f"(spec also includes: {', '.join(bad)})"
                )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ReproError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ReproError("retries must be >= 0")

    @property
    def engine_axis(self) -> tuple[str, ...]:
        """The effective engine axis (``engines``, or the single
        ``engine`` when no axis was given)."""
        return self.engines or (self.engine,)

    # -- wire / journal form (distributed farm) ----------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form for farm ``submit`` and the queue journal."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Rebuild a spec shipped over the wire or read from a journal.

        Unknown fields are an error for the same reason as
        :meth:`Cell.from_dict`: a field this side does not know about
        means the other side runs a newer schema, and expanding the
        matrix without the knob would serve cells whose keys claim
        something the runs never measured.  JSON turned the axis tuples
        into lists; they are coerced back so the rebuilt spec hashes
        and compares like a native one.
        """
        known = {f.name: f for f in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ReproError(
                f"unknown SweepSpec field(s) {', '.join(unknown)} "
                "(coordinator/client schema skew?)"
            )
        coerced = {
            name: tuple(value) if isinstance(value, list) else value
            for name, value in data.items()
        }
        return cls(**coerced)

    def _engine_latency_pairs(self) -> list[tuple[str, str]]:
        # Sync delivery has no latency model: one cell per sync engine
        # entry, one per (async, latency) combination.
        pairs = []
        for engine in self.engine_axis:
            if engine == "async":
                pairs.extend((engine, lat) for lat in self.latencies)
            else:
                pairs.append((engine, "uniform"))
        return pairs

    def cells(self) -> Iterator[Cell]:
        """Expand the matrix in deterministic order."""
        pairs = self._engine_latency_pairs()
        for family in self.families:
            for n in self.sizes:
                for method in self.methods:
                    for engine, latency in pairs:
                        for fault in self.faults:
                            for seed in self.seeds:
                                yield Cell(
                                    family=family,
                                    n=n,
                                    seed=seed,
                                    method=method,
                                    engine=engine,
                                    latency=latency,
                                    density=self.density,
                                    epsilon=self.epsilon,
                                    sample_constant=self.sample_constant,
                                    faults=fault,
                                    collect_utilization=(
                                        self.collect_utilization),
                                    timeout_s=self.timeout_s,
                                    retries=self.retries,
                                )

    @property
    def size(self) -> int:
        return (len(self.families) * len(self.sizes) * len(self.methods)
                * len(self.seeds) * len(self.faults)
                * len(self._engine_latency_pairs()))

    def fingerprint(self) -> str:
        """Stable identity of this spec's cell plan.

        The digest of every cell key in expansion order.  The
        coordinator stamps it on its queue journal so that
        ``--resume-journal`` refuses a journal written for a *different*
        sweep — replaying another matrix's requeue counts and done keys
        would silently corrupt this one's lease accounting.  Fields that
        don't participate in keys (``timeout_s``, ``retries``) don't
        participate here either: re-serving the same matrix with more
        patience is the same sweep.
        """
        digest = hashlib.sha256()
        for cell in self.cells():
            digest.update(cell.key().encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()[:16]

    def with_full_stats(self) -> "SweepSpec":
        return replace(self, collect_utilization=True)
