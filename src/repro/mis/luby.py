"""Luby's MIS [26] — the Õ(m)-message KT-1 baseline of Figure 1.

Classic phase structure, implemented in the same count-based lockstep
style as the Johansson coloring so it tolerates link congestion and
asynchrony: in every phase each undecided node draws a random priority
and exchanges it with its undecided active neighbors (subphase A); local
maxima join the MIS and everyone reports joined/not (subphase B); nodes
adjacent to a joiner retire and everyone reports retired/alive (subphase
C).  Each phase kills a constant fraction of edges in expectation, so
O(log n) phases suffice whp — message complexity Θ(m log n), the Ω(m)
bound the paper's Algorithm 3 undercuts.

Priorities are random *ordinary* values and IDs are only compared for
tie-breaking, so the algorithm is comparison-based — matching Figure 1's
"(C)" classification of the Õ(m) KT-1 MIS upper bound.  It also serves
as the remnant-graph finisher inside Algorithm 3 (Step 5), where the
``active`` input restricts it to remnant edges.
"""

from __future__ import annotations

from typing import Optional

from repro.congest.node import Context, NodeAlgorithm


class LubyMIS(NodeAlgorithm):
    """One Luby run inside an (optional) active subgraph.

    Input (or None for whole-graph defaults):
      ``{"active": frozenset of neighbor IDs, "participate": bool}``
    Output: ``{"in_mis": bool}`` (None for bystanders).
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        state = ctx.input or {}
        self.participate = state.get("participate", True)
        active = state.get("active")
        if active is None:
            active = frozenset(ctx.neighbor_ids)
        self.undecided = {u for u in ctx.neighbor_ids if u in active}
        self.phase = 0
        self.priority: Optional[int] = None
        self.state: Optional[str] = None      # None / "joined" / "out"
        self.prios: dict[int, dict] = {}
        self.joins: dict[int, dict] = {}
        self.fates: dict[int, dict] = {}

    def _publish(self, ctx: Context) -> None:
        if not self.participate:
            ctx.done(None)
        else:
            ctx.done({"in_mis": self.state == "joined"})

    # -- phase machinery -----------------------------------------------------

    def _begin_phase(self, ctx: Context) -> None:
        if not self.undecided:
            self.state = "joined"
            self._publish(ctx)
            return
        self.priority = ctx.rng.randrange(max(ctx.n, 2) ** 3)
        ctx.broadcast(self.undecided, "prio", self.phase, self.priority)
        self.sent_join = False
        self.sent_fate = False

    def _try_join(self, ctx: Context) -> bool:
        if self.sent_join:
            return False
        p = self.phase
        prios = self.prios.get(p, {})
        if not all(u in prios for u in self.undecided):
            return False
        me = (self.priority, ctx.my_id)
        wins = all(me > (prios[u], u) for u in self.undecided)
        self.sent_join = True
        self.joined_now = wins
        ctx.broadcast(self.undecided, "join", p, wins)
        return True

    def _try_fate(self, ctx: Context) -> bool:
        if self.sent_fate or not self.sent_join:
            return False
        p = self.phase
        joins = self.joins.get(p, {})
        if not all(u in joins for u in self.undecided):
            return False
        retired = any(joins[u] for u in self.undecided)
        self.sent_fate = True
        if self.joined_now:
            self.state = "joined"
        elif retired:
            self.state = "out"
        ctx.broadcast(self.undecided, "fate", p, self.state is not None)
        if self.state is not None:
            self._publish(ctx)
        return True

    def _try_advance(self, ctx: Context) -> bool:
        if not self.sent_fate or self.state is not None:
            return False
        p = self.phase
        fates = self.fates.get(p, {})
        if not all(u in fates for u in self.undecided):
            return False
        self.undecided = {u for u in self.undecided if not fates[u]}
        for store in (self.prios, self.joins, self.fates):
            store.pop(p, None)
        self.phase = p + 1
        return True

    def _pump(self, ctx: Context) -> None:
        while self.state is None:
            if self._try_join(ctx):
                continue
            if self._try_fate(ctx):
                continue
            if self._try_advance(ctx):
                self._begin_phase(ctx)
                continue
            break

    def on_round(self, ctx: Context, inbox) -> None:
        if not self.participate:
            self._publish(ctx)
            return
        for msg in inbox:
            p = msg.fields[0]
            if msg.tag == "prio":
                self.prios.setdefault(p, {})[msg.sender_id] = msg.fields[1]
            elif msg.tag == "join":
                self.joins.setdefault(p, {})[msg.sender_id] = msg.fields[1]
            elif msg.tag == "fate":
                self.fates.setdefault(p, {})[msg.sender_id] = msg.fields[1]
        if ctx.round == 0:
            # Participants publish only on *decision* (_begin_phase's
            # trivial join, or _try_fate): an undecided node stays
            # engine-unfinished, so a silence cascade under faults shows
            # up as a starved casualty instead of a default output.
            self._begin_phase(ctx)
        if self.state is None:
            self._pump(ctx)


def run_luby(net, active_sets=None, participate=None, name: str = "luby"):
    """Driver: run Luby to completion; returns (in_mis list, StageResult).

    Bystanders (participate=False) yield in_mis=False.
    """
    n = net.graph.n
    if active_sets is None:
        active_sets = [None] * n
    if participate is None:
        participate = [True] * n
    inputs = [
        {"active": active_sets[v], "participate": participate[v]}
        for v in range(n)
    ]
    stage = net.run(LubyMIS, inputs=inputs, name=name)
    in_mis = [
        bool(out and out.get("in_mis")) for out in stage.outputs
    ]
    return in_mis, stage
