"""Cell execution and the multiprocessing worker pool.

``run_cell`` is the unit of work: build the cell's graph, run its method
under the requested engine, and return a flat JSON-serializable record.
``run_sweep`` drives a whole :class:`~repro.experiments.spec.SweepSpec`
through a ``multiprocessing`` pool (or serially for ``workers <= 1``),
appending each record to a :class:`~repro.experiments.store.ResultStore`
as it completes and skipping cells the store already holds.

Timeouts: a spec with ``timeout_s`` runs each cell in its own worker
process supervised by a small process farm (at most ``workers`` alive at
once).  A cell still running at its deadline is terminated — the farm and
the other in-flight cells are unaffected — retried up to ``retries``
times, and finally recorded with ``status="timeout"`` (``valid=False``).
Aggregation (:mod:`repro.experiments.stats`) excludes non-``ok`` records
from exponent fits, and :meth:`ResultStore.completed_keys` omits them
from the resume set so a re-run attempts them again.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
import time
from collections import deque
from typing import Callable, Optional

from repro import api
from repro.errors import ReproError
from repro.experiments.spec import Cell, SweepSpec
from repro.experiments.store import ResultStore
from repro.graphs.generators import family_built_n, family_graph


def _method_extras(cell: Cell, result) -> dict:
    """Method-specific detail columns for the result record.

    These are the paper-specific quantities the hand-rolled benchmark
    sweeps used to re-derive (Lemma 3.2 recursion levels, deferral
    counts, Lemma 3.7 query traffic, Konrad-Lemma-1 remnant degrees);
    surfacing them here lets those benchmarks run through ``run_cell``
    instead.
    """
    detail = result.detail
    if cell.method == "kt1-delta-plus-one":
        return {"levels": detail.num_levels,
                "deferred": detail.deferred_total}
    if cell.method == "kt1-eps-delta":
        return {"phases": detail.phases,
                "queries": detail.query_messages,
                "palette": detail.palette_size}
    if cell.method == "kt2-sampled-greedy":
        return {"sampled": detail.sampled,
                "remnant_deg": detail.remnant_max_degree_local,
                "remnant_size": detail.remnant_size}
    return {}


def run_cell(cell: Cell) -> dict:
    """Execute one sweep cell and return its result record.

    The record is flat and JSON-serializable: identity fields (key,
    family, n, seed, method, engine, latency — ``None`` for sync cells),
    the graph's m, the accounting (messages, words, rounds, utilized —
    ``None`` in stats-lite mode), validity, ``status="ok"``, wall-clock
    seconds, and method-specific extras (see :func:`_method_extras`).
    Async cells additionally carry the shadow synchronous baseline and
    the cost-of-asynchrony columns (``sync_messages``, ``sync_rounds``,
    ``overhead_messages``, ``overhead_rounds``,
    ``synchronized_stages``).
    """
    if (cell.sample_constant is not None
            and cell.method != "kt2-sampled-greedy"):
        # SweepSpec rejects this at construction; a hand-built Cell gets
        # the same answer instead of a mislabeled record whose key
        # claims a knob the method never saw.
        raise ReproError(
            "sample_constant only applies to kt2-sampled-greedy, "
            f"not {cell.method!r}"
        )
    t0 = time.perf_counter()
    graph = family_graph(cell.family, cell.n, p=cell.density,
                         seed=cell.seed)
    asynchronous = cell.engine == "async"
    # The columnar engine is the sync semantics on the numpy scheduler:
    # identical counts (parity contract), different wall clock.
    scheduler = "columnar" if cell.engine == "columnar" else None
    faulted = cell.faults != "none"
    try:
        if cell.problem == "coloring":
            result = api.color_graph(
                graph,
                method=cell.method,
                seed=cell.seed,
                epsilon=cell.epsilon,
                asynchronous=asynchronous,
                latency=cell.latency,
                collect_utilization=cell.collect_utilization,
                faults=cell.faults,
                scheduler=scheduler,
            )
            extra = {"colors": result.num_colors,
                     "palette_bound": result.palette_bound}
        else:
            mis_kwargs = {}
            if cell.sample_constant is not None:
                mis_kwargs["sample_constant"] = cell.sample_constant
            result = api.find_mis(
                graph,
                method=cell.method,
                seed=cell.seed,
                asynchronous=asynchronous,
                latency=cell.latency,
                collect_utilization=cell.collect_utilization,
                faults=cell.faults,
                scheduler=scheduler,
                **mis_kwargs,
            )
            extra = {"mis_size": result.size}
    except Exception as exc:
        if not faulted:
            raise
        # A multi-stage driver may legitimately break when the fault
        # model eats its control messages (that fragility is a finding,
        # not a crash): record it as an error cell and keep sweeping.
        return _failure_record(
            cell, "error", wall_s=time.perf_counter() - t0,
            error=repr(exc),
        )
    extra.update(_method_extras(cell, result))
    report = result.report
    record = {
        "key": cell.key(),
        "family": cell.family,
        # The *built* graph's size: families that quantize the vertex
        # count (expander fibers, barbell halves) would otherwise feed
        # exponent fits a systematically wrong x-coordinate.
        "n": graph.n,
        "m": graph.m,
        "seed": cell.seed,
        "method": cell.method,
        "engine": cell.engine,
        "latency": cell.latency if asynchronous else None,
        "density": cell.density,
        "epsilon": cell.epsilon,
        # None (not "none") when fault-free, pooling with records from
        # stores written before the fault axis existed (WORKLOAD_KEYS
        # groups missing fields under None).
        "faults": cell.faults if faulted else None,
        "messages": report.messages,
        "rounds": report.rounds,
        "utilized": (report.utilized_edges
                     if cell.collect_utilization else None),
        "valid": result.valid,
        # Fault columns ride every record (all-zero on the fault-free
        # path); survivor_valid is None when fault-free — plain validity
        # already covered every node.
        "dropped_messages": report.dropped_messages,
        "crashed_nodes": report.crashed_nodes,
        "casualties": len(report.casualty_vertices),
        "survivor_valid": report.survivor_valid,
        "status": "ok",
        "wall_s": round(time.perf_counter() - t0, 6),
        # Diagnostic only (never part of count identity): where the
        # engine spent its time, per protocol stage.
        "stage_wall": {name: round(w, 6)
                       for name, w in report.stage_wall.items()},
    }
    if cell.sample_constant is not None:
        record["sample_constant"] = cell.sample_constant
    if asynchronous:
        record["sync_messages"] = report.sync_messages
        record["sync_rounds"] = report.sync_rounds
        record["overhead_messages"] = report.overhead_messages
        record["overhead_rounds"] = report.overhead_rounds
        record["synchronized_stages"] = report.synchronized_stages
    record.update(extra)
    return record


def _failure_record(cell: Cell, status: str, wall_s: float = 0.0,
                    attempts: int = 1,
                    error: Optional[str] = None) -> dict:
    """A record for a cell that produced no measurement."""
    rec = {
        "key": cell.key(),
        "family": cell.family,
        # Same convention as run_cell: the n the family would *build*
        # (expander fibers, barbell arithmetic quantize the request), so
        # ok and failure records for one key never disagree on n.
        "n": family_built_n(cell.family, cell.n, cell.density),
        "seed": cell.seed,
        "method": cell.method,
        "engine": cell.engine,
        "latency": cell.latency if cell.engine == "async" else None,
        "density": cell.density,
        "epsilon": cell.epsilon,
        "faults": cell.faults if cell.faults != "none" else None,
        "valid": False,
        "status": status,
        "attempts": attempts,
        "wall_s": round(wall_s, 6),
    }
    if error is not None:
        rec["error"] = error
    return rec


def _cell_worker(conn, cell: Cell) -> None:
    """Farm worker: run one cell, ship the record (or an error record)."""
    try:
        record = run_cell(cell)
    except Exception as exc:  # recorded, not raised: one bad cell must
        # not take the whole supervised sweep down.
        record = _failure_record(cell, "error", error=repr(exc))
    try:
        conn.send(record)
    finally:
        conn.close()


def _spawn_cell_process(cell: Cell):
    """Start a single-cell worker process; returns ``(proc, recv_conn)``.

    A seam: the farm races (deadline vs completion, retry interleavings)
    are nondeterministic with real processes, so tests substitute
    scripted process/connection fakes here to drive them exactly.
    """
    recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(
        target=_cell_worker, args=(send_conn, cell), daemon=True
    )
    proc.start()
    send_conn.close()
    return proc, recv_conn


def _stamp_attempts(rec: dict, attempt: int, now: float,
                    t0: float) -> dict:
    """Stamp the supervisor's attempt count on a farm record.

    Every record gets ``attempts`` — a cell that succeeded on retry 3
    must be distinguishable from a first-try success (flaky-workload
    triage, and `repro report` surfaces it).  The worker cannot know
    which attempt it was; for non-ok records the supervisor's wall clock
    also replaces the worker's, so a retry failure is not misreported as
    a zero-second first attempt.
    """
    rec["attempts"] = attempt + 1
    if rec.get("status", "ok") != "ok":
        rec["wall_s"] = round(now - t0, 6)
    return rec


def _run_cells_with_timeout(
    cells: list[Cell],
    workers: int,
    record: Callable[[dict], None],
    poll_interval: float = 0.02,
    cancel: Optional[threading.Event] = None,
) -> None:
    """Process farm with per-cell deadlines.

    Keeps at most ``workers`` single-cell processes alive; a process past
    its cell's deadline is terminated (the farm keeps running) and the
    cell is re-queued while it has retries left.

    ``cancel`` is the cooperative kill seam: setting it terminates every
    in-flight child process, drops the still-pending cells, and returns
    without recording anything for them.  A distributed worker whose
    lease was revoked (heartbeat answered ``gone``) uses this to stop
    burning CPU on a cell whose record would be discarded anyway.
    """
    workers = max(1, workers)
    pending: deque[tuple[Cell, int]] = deque((c, 0) for c in cells)
    running: list[list] = []   # [proc, conn, cell, attempt, deadline, t0]
    while pending or running:
        if cancel is not None and cancel.is_set():
            for proc, conn, *_ in running:
                proc.terminate()
                proc.join()
                conn.close()
            return
        while pending and len(running) < workers:
            cell, attempt = pending.popleft()
            proc, recv_conn = _spawn_cell_process(cell)
            t0 = time.monotonic()
            budget = cell.timeout_s if cell.timeout_s is not None else math.inf
            running.append([proc, recv_conn, cell, attempt, t0 + budget, t0])
        now = time.monotonic()
        progressed = False
        still: list[list] = []
        for item in running:
            proc, conn, cell, attempt, deadline, t0 = item
            if conn.poll():
                try:
                    rec = _stamp_attempts(conn.recv(), attempt, now, t0)
                except EOFError:
                    rec = _failure_record(
                        cell, "error", wall_s=now - t0,
                        attempts=attempt + 1, error="worker died mid-send",
                    )
                conn.close()
                proc.join()
                record(rec)
                progressed = True
            elif not proc.is_alive():
                conn.close()
                proc.join()
                record(_failure_record(
                    cell, "error", wall_s=now - t0, attempts=attempt + 1,
                    error=f"worker exited with code {proc.exitcode} "
                          "without a result",
                ))
                progressed = True
            elif now >= deadline:
                # Drain one last time before killing: the cell may have
                # finished in the window between the poll above and this
                # deadline check.  Discarding that record would re-queue
                # a *completed* cell, and the retry's duplicate ok line
                # for the same key would inflate per-size run counts.
                rec = None
                if conn.poll():
                    try:
                        rec = _stamp_attempts(conn.recv(), attempt, now, t0)
                    except EOFError:
                        rec = None
                proc.terminate()
                proc.join()
                conn.close()
                if rec is not None:
                    record(rec)
                elif attempt < cell.retries:
                    pending.append((cell, attempt + 1))
                else:
                    record(_failure_record(
                        cell, "timeout", wall_s=now - t0,
                        attempts=attempt + 1,
                    ))
                progressed = True
            else:
                still.append(item)
        running = still
        if not progressed and running:
            time.sleep(poll_interval)


def run_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    workers: int = 0,
    progress: Optional[Callable[[dict, int, int], None]] = None,
) -> list[dict]:
    """Run every cell of ``spec`` not already present in ``store``.

    ``workers <= 1`` runs serially in-process; otherwise a
    ``multiprocessing.Pool`` of that many workers executes cells
    concurrently (cells are independent fixed-seed runs, so completion
    order does not affect the stored results beyond line order).
    Specs with a ``timeout_s`` instead run under the supervised process
    farm (:func:`_run_cells_with_timeout`), which can kill and retry
    individual cells without poisoning the rest of the sweep.
    Returns the newly produced records; previously stored cells are
    skipped, which is what makes an interrupted sweep resumable.
    """
    done = store.completed_keys() if store is not None else set()
    cells = [c for c in spec.cells() if c.key() not in done]
    total = len(cells)
    fresh: list[dict] = []

    def _record(rec: dict) -> None:
        fresh.append(rec)
        if store is not None:
            store.append(rec)
        if progress is not None:
            progress(rec, len(fresh), total)

    if any(c.timeout_s is not None for c in cells):
        _run_cells_with_timeout(cells, workers, _record)
        return fresh

    if workers <= 1 or total <= 1:
        for cell in cells:
            _record(run_cell(cell))
        return fresh

    with multiprocessing.Pool(processes=min(workers, total)) as pool:
        for rec in pool.imap_unordered(run_cell, cells):
            _record(rec)
    return fresh
