"""The synchronous KT-rho CONGEST engine.

One :class:`SyncNetwork` owns a graph, an ID assignment, the KT-rho
knowledge of every node, and cumulative :class:`MessageStats`.  Protocols
are executed as *stages* (:meth:`SyncNetwork.run`): each stage runs one
:class:`NodeAlgorithm` on every node until global quiescence (every node
has called ``ctx.done`` and no message is in flight).  Composite protocols
(Algorithm 1's danner -> leader election -> broadcast -> coloring pipeline)
are drivers that run several stages, feeding each node's stage output back
as its next stage input — a per-node handoff that never moves information
between nodes outside the message-passing model.

Accounting: every send is charged words (one word = Theta(log n) bits) and
``ceil(words / words_per_message)`` CONGEST messages; utilized edges follow
Definition 2.3 (see :mod:`repro.congest.metrics`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.congest.ids import IdAssignment, NodeId, OpaqueId, id_value
from repro.congest.knowledge import KTKnowledge, build_knowledge
from repro.congest.message import Envelope, Msg, analyze_payload
from repro.congest.metrics import MessageStats, StageStats
from repro.congest.node import Context, NodeAlgorithm
from repro.congest.trace import ExecutionTrace
from repro.errors import (
    ConvergenceError,
    ModelViolationError,
    ReproError,
    UnknownNeighborError,
)
from repro.graphs.core import Graph


@dataclass
class StageResult:
    """What a single protocol stage produced."""

    name: str
    outputs: list            # outputs[vertex]
    rounds: int
    stats: StageStats
    converged: bool


class SyncNetwork:
    """A synchronous CONGEST network on a fixed graph and ID assignment."""

    def __init__(
        self,
        graph: Graph,
        rho: int = 1,
        assignment: Optional[IdAssignment] = None,
        seed: int = 0,
        comparison_based: bool = False,
        words_per_message: int = 4,
        record_trace: bool = False,
        collect_utilization: bool = True,
    ):
        if rho < 1:
            raise ReproError("SyncNetwork supports KT-rho for rho >= 1")
        self.graph = graph
        self.rho = rho
        self.seed = seed
        self.comparison_based = comparison_based
        self.words_per_message = words_per_message
        #: Stats-lite switch for bulk sweeps: when False the engine skips
        #: the Definition 2.3 utilized-edge bookkeeping and the per-tag /
        #: per-sender breakdowns.  Message, word, send, and round counts
        #: are unaffected (they use the identical accounting path).
        self.collect_utilization = collect_utilization
        self.assignment = assignment or IdAssignment.random(graph.n, seed=seed)
        if len(self.assignment) != graph.n:
            raise ReproError("assignment size does not match graph size")

        # One word is Theta(log n) bits; size it by the ID space so any
        # single ID always fits in one word.
        self.word_bits = max(8, self.assignment.space_bound().bit_length())

        self._salt = random.Random(f"salt-{seed}").getrandbits(32)
        self._ids: list[NodeId] = [
            self._make_id_object(self.assignment.value_of(v))
            for v in range(graph.n)
        ]
        self._vertex_by_value = {
            self.assignment.value_of(v): v for v in range(graph.n)
        }
        self.knowledge: list[KTKnowledge] = build_knowledge(
            graph, rho, lambda v: self._ids[v]
        )
        self.stats = MessageStats()
        self.trace: Optional[ExecutionTrace] = (
            ExecutionTrace() if record_trace else None
        )
        self._stage_counter = 0

    # -- identity helpers (harness-side; not exposed to algorithms) ----------

    def _make_id_object(self, value: int) -> NodeId:
        if self.comparison_based:
            return OpaqueId(value, salt=self._salt)
        return NodeId(value)

    def id_of(self, vertex: int) -> NodeId:
        return self._ids[vertex]

    def vertex_of(self, node_id: NodeId) -> int:
        return self._vertex_by_value[id_value(node_id)]

    def vertex_of_value(self, value: int) -> int:
        return self._vertex_by_value[value]

    # -- stage execution ------------------------------------------------------

    def run(
        self,
        algorithm_factory: Callable[[], NodeAlgorithm],
        inputs: Optional[Sequence[Any]] = None,
        max_rounds: int = 100_000,
        name: Optional[str] = None,
    ) -> StageResult:
        """Run one protocol stage to global quiescence.

        ``inputs[vertex]`` is handed to node ``vertex`` as ``ctx.input``.
        Raises :class:`ConvergenceError` if the stage does not quiesce
        within ``max_rounds``.
        """
        n = self.graph.n
        stage_name = name or f"stage-{self._stage_counter}"
        self._stage_counter += 1
        stage = self.stats.begin_stage(stage_name)

        algorithms = [algorithm_factory() for _ in range(n)]
        contexts = []
        for v in range(n):
            rng = random.Random(f"{self.seed}-{stage_name}-node-{v}")
            node_input = inputs[v] if inputs is not None else None
            contexts.append(Context(self, v, self.knowledge[v], rng, node_input))
        self._contexts = contexts

        for v in range(n):
            algorithms[v].setup(contexts[v])

        passive = all(a.passive_when_idle for a in algorithms)
        # Messages in flight, keyed by delivery round.  Each directed edge
        # carries one message per round (CONGEST); a w-word payload occupies
        # ceil(w / words_per_message) consecutive slots on its link, and
        # bursts to the same neighbor queue up behind each other.
        self._pending: dict[int, list[Envelope]] = {}
        self._link_free: dict[tuple[int, int], int] = {}
        round_index = 0
        converged = False
        collect = self.collect_utilization
        ids = self._ids

        # Persistent per-vertex inbox buffers, cleared and refilled each
        # round instead of rebuilding a dict-of-lists; ``touched`` lists
        # the vertices with a non-empty buffer in first-arrival order.
        inbox_buffers: list[list[Envelope]] = [[] for _ in range(n)]
        touched: list[int] = []

        # The round budget counts rounds in which the engine does work
        # (delivers messages / activates nodes).  Rounds a passive stage
        # fast-forwards over are free: a multi-word payload may legally be
        # *scheduled* past ``max_rounds`` and still be delivered, so the
        # budget cannot simply compare the round index (which would declare
        # non-convergence while a delivery is imminent and the stage is
        # about to quiesce).  For round-cadence stages every round is a
        # work round, so this is the same budget as before.
        work_rounds = 0
        while True:
            work_rounds += 1
            if work_rounds > max_rounds + 1:
                raise ConvergenceError(
                    f"stage '{stage_name}' exceeded {max_rounds} rounds"
                )
            self._current_round = round_index
            arriving = self._pending.pop(round_index, None)
            if arriving is not None:
                for env in arriving:
                    buf = inbox_buffers[env.receiver]
                    if not buf:
                        touched.append(env.receiver)
                    buf.append(env)
            active_vertices = (
                range(n)
                if (round_index == 0 or not passive)
                else touched
            )
            for v in active_vertices:
                ctx = contexts[v]
                ctx.round = round_index
                ctx._send_allowed = True
                envelopes = inbox_buffers[v]
                if envelopes:
                    if collect:
                        self._register_received_ids(v, envelopes)
                    inbox = [
                        Msg(ids[e.sender], e.tag, e.fields)
                        for e in envelopes
                    ]
                else:
                    inbox = []
                algorithms[v].on_round(ctx, inbox)
                ctx._send_allowed = False
            for v in touched:
                inbox_buffers[v].clear()
            touched.clear()
            all_done = all(c._finished for c in contexts)
            if not self._pending:
                if all_done:
                    converged = True
                    round_index += 1
                    break
                if passive and round_index > 0:
                    unfinished = [
                        v for v in range(n) if not contexts[v]._finished
                    ]
                    raise ConvergenceError(
                        f"stage '{stage_name}' deadlocked with unfinished "
                        f"nodes {unfinished[:10]} (total {len(unfinished)})"
                    )
                round_index += 1
            elif passive:
                # Idle nodes never act on silence: jump to the next delivery.
                round_index = min(self._pending)
            else:
                round_index += 1

        self.stats.charge_rounds(round_index)
        outputs = [contexts[v]._output for v in range(n)]
        if self.trace is not None:
            for v in range(n):
                self.trace.record_output(v, outputs[v], self.vertex_of_value)
        return StageResult(
            name=stage_name,
            outputs=outputs,
            rounds=stage.rounds,
            stats=stage,
            converged=converged,
        )

    # -- engine internals ------------------------------------------------------

    def _submit_send(self, sender: int, to_id: NodeId, tag: str,
                     fields: tuple) -> None:
        value = id_value(to_id)
        receiver = self._vertex_by_value.get(value)
        if receiver is None:
            raise UnknownNeighborError(
                f"no node with ID value {value} exists"
            )
        if not self.graph.has_edge(sender, receiver):
            raise ModelViolationError(
                f"vertex {sender} tried to send to non-neighbor {receiver}; "
                "CONGEST only delivers over edges"
            )
        # One pass over the payload computes the word count AND extracts
        # the embedded NodeIds (previously: one payload_words scan plus two
        # iter_node_ids scans, one per side).
        words, payload_ids = analyze_payload(fields, self.word_bits)
        charged = max(1, -(-words // self.words_per_message))
        if self.collect_utilization:
            self.stats.charge_send(words, charged, tag=tag, sender=sender)
            # Utilization, Definition 2.3: the transport edge ...
            self.stats.mark_utilized(sender, receiver)
            # ... plus every edge {sender, w} for an ID phi(w) it ships.
            for nid in payload_ids:
                w = self._vertex_by_value.get(id_value(nid))
                if w is not None and w != sender \
                        and self.graph.has_edge(sender, w):
                    self.stats.mark_utilized(sender, w)
        else:
            # Stats-lite: identical message/word/send counts, no per-tag /
            # per-sender / utilized-edge breakdowns.
            self.stats.charge_send(words, charged)
        env = Envelope(
            sender=sender,
            receiver=receiver,
            tag=tag,
            fields=fields,
            round_sent=self._current_round,
            words=words,
            ids=payload_ids,
        )
        self._schedule(env, charged)
        if self.trace is not None:
            self.trace.record(
                self._current_round, sender, receiver, tag, fields,
                self.vertex_of_value,
            )

    def _schedule(self, env: Envelope, charged: int) -> None:
        """Synchronous delivery: one CONGEST message per link per round.

        Bursts to the same neighbor queue behind each other and a k-message
        payload holds the link for k rounds.  The asynchronous engine
        overrides this with random finite delays.
        """
        link = (env.sender, env.receiver)
        start = max(self._current_round + 1, self._link_free.get(link, 0))
        deliver_at = start + charged - 1
        self._link_free[link] = deliver_at + 1
        self._pending.setdefault(deliver_at, []).append(env)

    def _register_received_ids(self, receiver: int,
                               inbox: list[Envelope]) -> None:
        """Definition 2.3 receive-side utilization.

        Uses the NodeIds extracted at send time (``Envelope.ids``); ID-free
        payloads cost nothing here.
        """
        for env in inbox:
            for nid in env.ids:
                w = self._vertex_by_value.get(id_value(nid))
                if w is not None and w != receiver \
                        and self.graph.has_edge(receiver, w):
                    self.stats.mark_utilized(receiver, w)

    # -- conveniences -----------------------------------------------------------

    def outputs_by_id_value(self, outputs: Sequence[Any]) -> dict[int, Any]:
        return {
            self.assignment.value_of(v): outputs[v]
            for v in range(self.graph.n)
        }

    def __repr__(self) -> str:
        return (
            f"SyncNetwork(n={self.graph.n}, m={self.graph.m}, rho={self.rho}, "
            f"comparison_based={self.comparison_based})"
        )
