"""JSON-lines result store with resume.

One line per completed cell, appended and flushed as results arrive, so
an interrupted sweep loses at most the in-flight cells.  Resume is
key-based: :meth:`ResultStore.completed_keys` feeds the runner the set of
cells to skip.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterator, Optional


def write_json_atomic(path: str, payload: dict) -> None:
    """Write ``payload`` as JSON to ``path`` atomically and durably.

    Write-to-temp + fsync + rename, so a reader (or a crash-restarted
    process) sees either the previous complete file or the new complete
    file, never a torn write.  This is the durability primitive behind
    the coordinator's queue journal
    (:class:`repro.experiments.distributed.QueueJournal`).
    """
    parent = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                               suffix=".tmp", dir=parent)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """Append-only JSON-lines storage for sweep results."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None

    # -- writing -------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Append one result record (a JSON-serializable dict) durably."""
        if self._fh is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def sync(self) -> None:
        """Flush *and* fsync the store file.

        ``append`` already flushes to the OS per record; ``sync`` pushes
        through to the disk — the durability point a draining
        coordinator takes before exiting, so a restart (power loss
        included) resumes from exactly the records it acknowledged.
        """
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------------

    def iter_records(self) -> Iterator[dict]:
        """Yield stored records; tolerates a truncated trailing line
        (the crash the resume machinery exists for)."""
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue

    def load(self) -> list[dict]:
        return list(self.iter_records())

    def latest_per_key(self) -> dict[str, dict]:
        """The last stored record for each key, in one pass.

        The store's merge semantics: appends never rewrite history, so a
        key can accumulate several lines (a failed attempt superseded by
        a later success on resume, or records merged in from remote
        workers).  The *last* line is the authoritative one — readers
        that pool raw lines would double-count a cell.
        """
        latest: dict[str, dict] = {}
        for rec in self.iter_records():
            key = rec.get("key")
            if key is not None:
                latest[key] = rec
        return latest

    def completed_keys(self, include_failed: bool = False) -> set[str]:
        """Keys of every cell already stored (the resume set).

        Last-record-wins: a key whose *latest* record has a non-``"ok"``
        status (timeout, worker error) is omitted by default so a
        resumed sweep attempts it again; a later successful record
        supersedes any earlier failed line (and non-``ok`` records never
        enter fits — see :func:`repro.experiments.stats.ok_records`).
        """
        latest = self.latest_per_key()
        if include_failed:
            return set(latest)
        return {
            key for key, rec in latest.items()
            if rec.get("status", "ok") == "ok"
        }

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r})"
