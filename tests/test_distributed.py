"""Tests for distributed multi-host sweep execution
(repro.experiments.distributed): the lease queue, the versioned wire
protocol, coordinator/worker end-to-end runs, and the CLI surface.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading

import pytest

from repro import cli
from repro.errors import ProtocolMismatchError, ReproError
from repro.experiments import (
    Cell,
    Coordinator,
    ResultStore,
    SweepSpec,
    WorkQueue,
    run_cell,
    run_sweep,
    run_worker,
    serve_sweep,
)
from repro.experiments.distributed import (
    PROTOCOL,
    PROTOCOL_VERSION,
    _recv_msg,
    _send_msg,
)

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _worker_env():
    env = dict(os.environ)
    extra = os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    env["PYTHONPATH"] = SRC + extra
    return env


# -- the lease queue ----------------------------------------------------------


def test_work_queue_lease_heartbeat_requeue():
    cells = list(SweepSpec(sizes=(30, 40), seeds=(0,),
                           methods=("luby",)).cells())
    q = WorkQueue(cells, lease_s=1.0, max_requeues=1)
    a = q.lease("w1", now=0.0)
    assert a.key() == cells[0].key()
    assert q.heartbeat("w1", a.key(), now=0.8)        # extends to 1.8
    assert not q.heartbeat("w2", a.key(), now=0.8)    # not the holder
    assert q.reap(now=1.5) == []                      # extended, still held
    b = q.lease("w2", now=1.5)
    assert b.key() == cells[1].key()
    assert q.lease("w3", now=1.5) is None             # nothing pending
    assert q.complete("w2", b.key(), ok=True)
    assert not q.complete("w2", b.key(), ok=True)     # duplicate: dropped
    # w1 goes silent: its lease expires and the cell is re-served.
    assert q.reap(now=2.0) == []                      # requeue 1 (of max 1)
    a2 = q.lease("w3", now=2.0)
    assert a2.key() == a.key()
    assert not q.finished()
    # A second expiry exceeds max_requeues: the cell is declared lost so
    # the sweep still terminates.
    lost = q.reap(now=10.0)
    assert [c.key() for c in lost] == [a.key()]
    assert q.finished() and q.outstanding() == 0


def test_work_queue_late_result_supersedes_lost():
    """A worker that was presumed dead but finishes anyway still lands
    its record: last-record-wins over the recorded 'lost' line."""
    cells = list(SweepSpec(sizes=(30,), methods=("luby",)).cells())
    q = WorkQueue(cells, lease_s=0.1, max_requeues=0)
    a = q.lease("w1", now=0.0)
    assert [c.key() for c in q.reap(now=1.0)] == [a.key()]
    assert q.complete("w1", a.key(), ok=True)         # supersedes lost
    assert not q.complete("w1", a.key(), ok=True)     # but only once


def test_work_queue_ok_supersedes_completed_failure():
    """A presumed-dead worker may submit a timeout record for a key that
    a re-served worker then finishes successfully: the real ok record
    must still land (last-record-wins), not be dropped as a duplicate."""
    cells = list(SweepSpec(sizes=(30,), methods=("luby",)).cells())
    q = WorkQueue(cells, lease_s=0.1, max_requeues=5)
    a = q.lease("A", now=0.0)
    assert q.reap(now=1.0) == []                      # requeued, not lost
    assert q.lease("B", now=1.0).key() == a.key()
    assert q.complete("A", a.key(), ok=False)         # A's timeout lands
    assert q.complete("B", a.key(), ok=True)          # B's ok supersedes
    assert not q.complete("B", a.key(), ok=True)      # but only once
    assert q.finished()


def test_work_queue_release_disconnected_worker():
    cells = list(SweepSpec(sizes=(30, 40), seeds=(0,),
                           methods=("luby",)).cells())
    q = WorkQueue(cells, lease_s=60.0, max_requeues=1)
    a = q.lease("w1", now=0.0)
    q.lease("w2", now=0.0)
    assert q.release_worker("w1") == [None]           # back to pending
    assert q.lease("w3", now=0.0).key() == a.key()
    assert q.release_worker("ghost") == []


# -- wire format --------------------------------------------------------------


def test_cell_wire_round_trip_and_schema_skew():
    cell = Cell("gnp", 30, 1, "luby", engine="async", latency="fixed",
                timeout_s=2.0, retries=1)
    assert Cell.from_dict(json.loads(json.dumps(cell.to_dict()))) == cell
    with pytest.raises(ReproError):
        Cell.from_dict({**cell.to_dict(), "quantum_knob": 7})


def test_coordinator_rejects_version_skew():
    """A versioned handshake: a worker speaking another protocol version
    is rejected (its records may follow other conventions), as is a
    stray non-protocol client."""
    coord = Coordinator(SweepSpec(sizes=(30,), methods=("luby",)),
                        lease_s=1.0)
    host, port = coord.start()
    try:
        with socket.create_connection((host, port)) as sock:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                              "version": PROTOCOL_VERSION + 1,
                              "worker": "older"})
            reply = _recv_msg(rfile)
            assert reply["type"] == "reject"
            assert "version" in reply["reason"]
        with socket.create_connection((host, port)) as sock:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            _send_msg(wfile, {"type": "hello", "protocol": "other"})
            assert _recv_msg(rfile)["type"] == "reject"
    finally:
        coord.stop()


def test_worker_raises_on_reject():
    srv = socket.create_server(("127.0.0.1", 0))
    host, port = srv.getsockname()[:2]

    def serve_one():
        conn, _ = srv.accept()
        with conn:
            rfile, wfile = conn.makefile("rb"), conn.makefile("wb")
            _recv_msg(rfile)
            _send_msg(wfile, {"type": "reject", "reason": "too old"})

    threading.Thread(target=serve_one, daemon=True).start()
    with pytest.raises(ProtocolMismatchError):
        run_worker(host, port, worker_id="w")
    srv.close()


# -- coordinator + worker -----------------------------------------------------


def test_coordinator_single_worker_and_resume(tmp_path):
    spec = SweepSpec(families=("gnp",), sizes=(30,), seeds=(0, 1),
                     methods=("luby",))
    store = ResultStore(str(tmp_path / "one.jsonl"))
    with store:
        coord = Coordinator(spec, store=store, lease_s=5.0)
        host, port = coord.start()
        ran = run_worker(host, port, worker_id="t1", poll_s=0.05)
        fresh = coord.wait(timeout=30)
    assert ran == 2 and len(fresh) == 2
    assert {r["key"] for r in store.load()} == \
        {c.key() for c in spec.cells()}
    assert all(r["attempts"] == 1 for r in fresh)
    # Resume semantics match run_sweep: a second serve of the same spec
    # against the same store has nothing left to hand out.
    coord2 = Coordinator(spec, store=store)
    assert coord2.total == 0
    assert coord2.wait(timeout=1) == []


def test_dead_worker_cells_requeued(tmp_path):
    """A worker that leases a cell and drops the connection mid-run: the
    lease is released and a healthy worker completes the full spec."""
    spec = SweepSpec(families=("gnp",), sizes=(30,), seeds=(0, 1),
                     methods=("luby",))
    store = ResultStore(str(tmp_path / "requeue.jsonl"))
    with store:
        coord = Coordinator(spec, store=store, lease_s=0.5)
        host, port = coord.start()
        with socket.create_connection((host, port)) as sock:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                              "version": PROTOCOL_VERSION,
                              "worker": "doomed"})
            assert _recv_msg(rfile)["type"] == "welcome"
            _send_msg(wfile, {"type": "lease"})
            assert _recv_msg(rfile)["type"] == "cell"
            # ... dies here without a result.
        ran = run_worker(host, port, worker_id="healthy", poll_s=0.05)
        fresh = coord.wait(timeout=30)
    assert ran == 2 and len(fresh) == 2
    assert {r["status"] for r in fresh} == {"ok"}


def test_serve_sweep_blocks_until_workers_finish(tmp_path):
    spec = SweepSpec(families=("gnp",), sizes=(30,), seeds=(0,),
                     methods=("luby",))
    listening = threading.Event()
    addr = {}
    result = {}

    def coordinate():
        result["fresh"] = serve_sweep(
            spec, store=None, host="127.0.0.1", port=0,
            on_listen=lambda h, p: (addr.update(h=h, p=p),
                                    listening.set()),
            timeout=30, linger_s=0.0,
        )

    t = threading.Thread(target=coordinate, daemon=True)
    t.start()
    assert listening.wait(10)
    ran = run_worker(addr["h"], addr["p"], worker_id="w", poll_s=0.05)
    t.join(30)
    assert not t.is_alive()
    assert ran == 1 and len(result["fresh"]) == 1


def test_two_worker_distributed_sweep_matches_serial(tmp_path):
    """Acceptance: a coordinator plus two worker *subprocesses* produce a
    merged store whose per-key records are bit-identical (every measured
    field — messages, rounds, counts) to a serial run_sweep of the same
    fixed-seed spec."""
    spec = SweepSpec(families=("gnp", "regular"), sizes=(30, 40),
                     seeds=(0, 1), methods=("luby",))
    serial = {r["key"]: r for r in run_sweep(spec, store=None, workers=0)}
    store = ResultStore(str(tmp_path / "merged.jsonl"))
    with store:
        coord = Coordinator(spec, store=store, host="127.0.0.1", port=0,
                            lease_s=10.0)
        host, port = coord.start()
        procs = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", f"{host}:{port}", "--id", f"w{i}", "--json"],
                env=_worker_env(), cwd=str(tmp_path),
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for i in range(2)
        ]
        fresh = coord.wait(timeout=120)
        outs = [p.communicate(timeout=60) for p in procs]
    assert [p.returncode for p in procs] == [0, 0], outs
    merged = {r["key"]: r for r in store.load()}
    assert set(merged) == set(serial)
    assert len(fresh) == len(serial)
    # Identical modulo provenance: wall-clock (total and per stage)
    # and the farm's attempts stamp (the serial pool path doesn't
    # produce one).
    volatile = ("wall_s", "stage_wall", "attempts")
    for key, want in serial.items():
        got = {k: v for k, v in merged[key].items() if k not in volatile}
        assert got == {k: v for k, v in want.items()
                       if k not in volatile}, key
    # Every cell ran remotely, split across the two workers.
    counts = [json.loads(out)["cells run"] for out, _ in outs]
    assert sum(counts) == len(serial)


# -- CLI ----------------------------------------------------------------------


def test_cli_sweep_dry_run(tmp_path, capsys):
    out = str(tmp_path / "plan.jsonl")
    argv = ["sweep", "--families", "gnp", "--sizes", "30", "--seeds",
            "0", "1", "--methods", "luby", "--out", out]
    rc = cli.main(argv + ["--dry-run", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["to_run"] == 2 and len(payload["plan"]) == 2
    assert not os.path.exists(out)          # nothing ran, nothing stored
    # Resume-aware: a stored cell shrinks the plan.
    store = ResultStore(out)
    with store:
        store.append(run_cell(Cell("gnp", 30, 0, "luby")))
    rc = cli.main(argv + ["--dry-run"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "1 of 2 cells" in text


def test_cli_worker_unreachable_coordinator(capsys):
    # --reconnect 0: fail immediately instead of the default backoff
    # retries (the reconnect path has its own tests in test_chaos.py).
    rc = cli.main(["worker", "--connect", "127.0.0.1:1",
                   "--reconnect", "0"])
    assert rc == 1
    assert "worker:" in capsys.readouterr().err


def test_cli_endpoint_parsing():
    assert cli._parse_endpoint("9100", "0.0.0.0", "--serve") == \
        ("0.0.0.0", 9100)
    assert cli._parse_endpoint("10.0.0.7:9100", "0.0.0.0", "--serve") == \
        ("10.0.0.7", 9100)
    with pytest.raises(SystemExit):
        cli._parse_endpoint("nine-thousand", "0.0.0.0", "--serve")
