"""Tests for the experiment-sweep subsystem (repro.experiments)."""

from __future__ import annotations

import json

import pytest

from repro import api, cli
from repro.errors import ReproError
from repro.experiments import (
    Cell,
    ResultStore,
    SweepSpec,
    bench_payload,
    fit_exponent,
    growth_exponents,
    latest_per_key,
    mean_ci,
    render_report,
    run_cell,
    run_sweep,
    summarize,
)
from repro.graphs.generators import family_graph, regular_degree_for


# -- spec ---------------------------------------------------------------------


def test_spec_expands_full_matrix():
    spec = SweepSpec(
        families=("gnp", "regular"),
        sizes=(40, 60),
        seeds=(0, 1, 2),
        methods=("kt1-delta-plus-one", "luby"),
    )
    cells = list(spec.cells())
    assert len(cells) == spec.size == 2 * 2 * 3 * 2
    assert len({c.key() for c in cells}) == len(cells)
    # Deterministic expansion order.
    assert [c.key() for c in spec.cells()] == [c.key() for c in cells]


def test_spec_rejects_unknown_method():
    with pytest.raises(ReproError):
        SweepSpec(methods=("no-such-method",))


def test_spec_rejects_empty_axis():
    with pytest.raises(ReproError):
        SweepSpec(sizes=())


def test_cell_problem_dispatch():
    assert Cell("gnp", 40, 0, "kt1-delta-plus-one").problem == "coloring"
    assert Cell("gnp", 40, 0, "luby").problem == "mis"


# -- store --------------------------------------------------------------------


def test_store_round_trip(tmp_path):
    store = ResultStore(str(tmp_path / "r.jsonl"))
    records = [{"key": f"k{i}", "messages": i * 10} for i in range(5)]
    with store:
        for rec in records:
            store.append(rec)
    assert store.load() == records
    assert store.completed_keys() == {f"k{i}" for i in range(5)}
    assert len(store) == 5


def test_store_tolerates_truncated_line(tmp_path):
    path = tmp_path / "r.jsonl"
    path.write_text('{"key": "a", "messages": 1}\n{"key": "b", "mess')
    store = ResultStore(str(path))
    assert store.completed_keys() == {"a"}


def test_store_missing_file_is_empty(tmp_path):
    store = ResultStore(str(tmp_path / "nope.jsonl"))
    assert store.load() == []
    assert store.completed_keys() == set()


# -- runner -------------------------------------------------------------------


def test_run_cell_coloring_record():
    rec = run_cell(Cell("gnp", 40, 3, "kt1-delta-plus-one"))
    g = family_graph("gnp", 40, p=0.2, seed=3)
    assert rec["valid"] is True
    assert rec["m"] == g.m
    assert rec["messages"] > 0 and rec["rounds"] > 0
    assert rec["utilized"] is None          # stats-lite default
    assert rec["colors"] <= rec["palette_bound"]
    assert rec["wall_s"] > 0


def test_run_cell_mis_record():
    rec = run_cell(Cell("gnp", 40, 3, "luby"))
    assert rec["valid"] is True
    assert rec["mis_size"] > 0


def test_run_cell_full_stats():
    rec = run_cell(Cell("gnp", 40, 3, "luby", collect_utilization=True))
    assert rec["utilized"] > 0


def test_stats_lite_counts_match_full_accounting():
    """The stats-lite engine mode must not change what it measures."""
    lite = run_cell(Cell("gnp", 50, 9, "kt1-delta-plus-one"))
    full = run_cell(Cell("gnp", 50, 9, "kt1-delta-plus-one",
                         collect_utilization=True))
    assert lite["messages"] == full["messages"]
    assert lite["rounds"] == full["rounds"]
    mis_lite = run_cell(Cell("regular", 50, 9, "kt2-sampled-greedy"))
    mis_full = run_cell(Cell("regular", 50, 9, "kt2-sampled-greedy",
                             collect_utilization=True))
    assert mis_lite["messages"] == mis_full["messages"]
    assert mis_lite["rounds"] == mis_full["rounds"]


def test_sweep_parallel_pool_matches_serial(tmp_path):
    """>= 2 families x >= 2 seeds under the pool == the serial run."""
    spec = SweepSpec(
        families=("gnp", "regular"),
        sizes=(40,),
        seeds=(0, 1),
        methods=("luby",),
    )
    serial = run_sweep(spec, store=None, workers=0)
    store = ResultStore(str(tmp_path / "pool.jsonl"))
    with store:
        parallel = run_sweep(spec, store=store, workers=2)
    assert len(serial) == len(parallel) == spec.size
    by_key = lambda recs: {r["key"]: r["messages"] for r in recs}
    assert by_key(serial) == by_key(parallel)
    # Round-trip through the JSON-lines store preserves the records.
    stored = {r["key"]: r["messages"] for r in store.load()}
    assert stored == by_key(serial)


def test_sweep_resume_skips_completed(tmp_path):
    spec = SweepSpec(families=("gnp",), sizes=(40,), seeds=(0, 1),
                     methods=("luby",))
    store = ResultStore(str(tmp_path / "resume.jsonl"))
    with store:
        first = run_sweep(spec, store=store, workers=0)
    assert len(first) == 2
    # Re-running the same spec against the same store does nothing...
    with store:
        again = run_sweep(spec, store=store, workers=0)
    assert again == []
    # ... and a widened spec runs only the new cells.
    wider = SweepSpec(families=("gnp",), sizes=(40,), seeds=(0, 1, 2),
                      methods=("luby",))
    with store:
        fresh = run_sweep(wider, store=store, workers=0)
    assert len(fresh) == 1
    assert len(store.load()) == 3


# -- stats --------------------------------------------------------------------


def test_fit_exponent_recovers_power_law():
    pts = [(n, 3.0 * n ** 1.5) for n in (50, 100, 200, 400)]
    assert abs(fit_exponent(pts) - 1.5) < 1e-9


def test_fit_exponent_degenerate_inputs():
    assert fit_exponent([]) == 0.0
    assert fit_exponent([(100, 5000)]) == 0.0          # single point
    assert fit_exponent([(0, 10), (-5, 20)]) == 0.0    # no positive sizes
    assert fit_exponent([(100, 10), (100, 20)]) == 0.0  # single distinct x
    # Non-positive sizes are dropped, not fatal.
    assert abs(fit_exponent([(0, 1), (10, 100), (100, 10000)]) - 2.0) < 1e-9
    # All-non-positive y leaves nothing to fit.
    assert fit_exponent([(10, 0), (100, 0)]) == 0.0


def test_fit_exponent_drops_nonpositive_y_symmetrically():
    """Regression: a zero-y point (an empty remnant's message count) used
    to be clamped to 1e-9, injecting log(1e-9) ~ -20.7 into the
    regression and swinging the fitted exponent by whole units; it must
    be dropped exactly like a non-positive x."""
    clean = [(n, n ** 2.0) for n in (10, 100, 1000)]
    assert abs(fit_exponent(clean + [(50, 0.0)]) - 2.0) < 1e-9
    assert abs(fit_exponent(clean + [(50, -3.0)]) - 2.0) < 1e-9


def test_mean_ci():
    mean, ci = mean_ci([10.0])
    assert (mean, ci) == (10.0, 0.0)
    mean, ci = mean_ci([8.0, 12.0])
    assert mean == 10.0 and ci > 0
    assert mean_ci([]) == (0.0, 0.0)


def test_growth_exponents_groups_by_family_method():
    records = []
    for family, scale in (("gnp", 1.5), ("regular", 2.0)):
        for n in (50, 100, 200):
            for seed in (0, 1):
                records.append({
                    "family": family, "method": "x", "n": n, "m": n * n,
                    "messages": n ** scale, "rounds": n,
                })
    rows = growth_exponents(records)
    assert [(r["family"], r["method"]) for r in rows] == \
        [("gnp", "x"), ("regular", "x")]
    assert abs(rows[0]["exponent"] - 1.5) < 1e-6
    assert abs(rows[1]["exponent"] - 2.0) < 1e-6
    assert rows[0]["points"][100]["runs"] == 2


def test_summarize_and_render(tmp_path):
    spec = SweepSpec(families=("gnp",), sizes=(40, 60), seeds=(0, 1),
                     methods=("luby",))
    records = run_sweep(spec, store=None, workers=0)
    summary = summarize(records)
    assert len(summary) == 1
    text = render_report(summary)
    assert "luby" in text and "gnp" in text
    payload = bench_payload(records, summary)
    assert payload["runs"] == 4
    assert payload["exponents"][0]["method"] == "luby"
    json.dumps(payload)  # must be serializable


# -- CLI ----------------------------------------------------------------------


def test_cli_sweep_and_report(tmp_path, capsys):
    out = str(tmp_path / "cli.jsonl")
    rc = cli.main([
        "sweep", "--families", "gnp", "--sizes", "40", "--seeds", "0", "1",
        "--methods", "luby", "--out", out, "--json",
    ])
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["ran"] == 2

    # Resume: second invocation runs nothing new.
    rc = cli.main([
        "sweep", "--families", "gnp", "--sizes", "40", "--seeds", "0", "1",
        "--methods", "luby", "--out", out, "--json",
    ])
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["ran"] == 0 and summary["resumed (skipped)"] == 2

    bench = str(tmp_path / "BENCH_engine.json")
    rc = cli.main(["report", "--results", out, "--bench-out", bench])
    assert rc == 0
    assert "luby" in capsys.readouterr().out
    payload = json.loads(open(bench).read())
    assert payload["runs"] == 2
    assert payload["schema"].startswith("repro-bench-engine")


def test_cli_report_missing_file(tmp_path, capsys):
    rc = cli.main(["report", "--results", str(tmp_path / "none.jsonl")])
    assert rc == 1


def test_cli_regular_family_large_p():
    """--p large enough to request degree >= n must clamp, not crash."""
    assert regular_degree_for(10, 5.0) == 9          # odd n*d fixed by cap
    assert regular_degree_for(9, 1.0) == 8
    assert regular_degree_for(2, 1.0) == 1
    g = family_graph("regular", 7, p=3.0, seed=0)
    assert g.n == 7 and g.max_degree() <= 6
    rc = cli.main(["info", "--family", "regular", "--n", "12", "--p", "2.5"])
    assert rc == 0


@pytest.mark.slow
def test_sweep_exponent_separation():
    """The flagship claim on a (small) dense sweep: Algorithm 1's message
    growth stays well below the Omega(m) baseline's."""
    spec = SweepSpec(
        families=("gnp",),
        sizes=(60, 100, 160),
        seeds=(0, 1),
        methods=("kt1-delta-plus-one", "baseline-trial"),
        density=0.3,
    )
    records = run_sweep(spec, store=None, workers=2)
    assert all(r["valid"] for r in records)
    rows = {r["method"]: r["exponent"] for r in summarize(records)}
    assert rows["baseline-trial"] > 1.6
    assert rows["kt1-delta-plus-one"] < rows["baseline-trial"]


def test_every_method_runs_async():
    """engine="async" is accepted for every registered method; the
    records carry the cost-of-asynchrony columns."""
    spec = SweepSpec(methods=("luby", "kt1-eps-delta"), engine="async",
                     sizes=(30,))
    assert spec.size == 2
    for cell in spec.cells():
        rec = run_cell(cell)
        assert rec["engine"] == "async" and rec["valid"], rec["key"]
        assert rec["latency"] == "uniform"
        assert rec["overhead_messages"] == \
            rec["messages"] - rec["sync_messages"]
    # Direct Cell construction works too (no up-front gate to dodge).
    rec = run_cell(Cell("gnp", 30, 0, "kt2-sampled-greedy",
                        engine="async"))
    assert rec["valid"] and rec["synchronized_stages"] >= 1


def test_engine_and_latency_axes():
    """engines x latencies is a real axis: async cells multiply by
    latency model, sync cells are emitted once."""
    spec = SweepSpec(methods=("luby",), sizes=(30,),
                     engines=("sync", "async"),
                     latencies=("uniform", "heavy_tail"))
    cells = list(spec.cells())
    assert spec.size == len(cells) == 3
    assert len({c.key() for c in cells}) == 3
    sync_cells = [c for c in cells if c.engine == "sync"]
    assert len(sync_cells) == 1
    # Latency participates in async keys only; sync keys are the
    # historical format (old stores stay resumable).
    assert sync_cells[0].key() == "gnp/n30/p0.2/luby/sync/eps0.5/lite/s0"
    assert {c.latency for c in cells if c.engine == "async"} == \
        {"uniform", "heavy_tail"}
    with pytest.raises(ReproError):
        SweepSpec(methods=("luby",), latencies=("warp",))
    with pytest.raises(ReproError):
        SweepSpec(methods=("luby",), engines=("sync", "steampunk"))


def test_cell_key_distinguishes_latency_and_sample_constant():
    base = Cell("gnp", 40, 0, "luby", engine="async")
    assert base.key() != Cell("gnp", 40, 0, "luby", engine="async",
                              latency="fixed").key()
    assert Cell("gnp", 40, 0, "kt2-sampled-greedy").key() != \
        Cell("gnp", 40, 0, "kt2-sampled-greedy", sample_constant=2.0).key()


def test_spec_rejects_empty_methods():
    with pytest.raises(ReproError):
        SweepSpec(methods=())


def test_cell_key_distinguishes_epsilon_and_accounting():
    """Re-running with different epsilon or full accounting must be a new
    cell, not a resume hit serving stale stored numbers."""
    base = Cell("gnp", 40, 0, "kt1-eps-delta")
    assert base.key() != Cell("gnp", 40, 0, "kt1-eps-delta",
                              epsilon=0.2).key()
    assert base.key() != Cell("gnp", 40, 0, "kt1-eps-delta",
                              collect_utilization=True).key()


def test_summarize_separates_mixed_workloads():
    """Sweeps with different density/engine knobs appended to one store
    must report as separate populations, not one pooled exponent fit."""
    recs = []
    for p in (0.1, 0.5):
        for n in (40, 60):
            recs.append({
                "family": "gnp", "method": "luby", "engine": "sync",
                "density": p, "epsilon": 0.5, "n": n, "m": n,
                "messages": n * (1 + p), "rounds": 1,
            })
    summary = summarize(recs)
    assert len(summary) == 2
    assert sorted(r["density"] for r in summary) == [0.1, 0.5]


def test_cli_sweep_resumed_invalid_still_fails(tmp_path, capsys):
    """A stored invalid cell keeps the sweep exit code red on re-run."""
    out = tmp_path / "inv.jsonl"
    spec = SweepSpec(families=("gnp",), sizes=(40,), seeds=(0,),
                     methods=("luby",))
    rec = run_cell(next(spec.cells()))
    rec["valid"] = False
    out.write_text(json.dumps(rec) + "\n")
    rc = cli.main([
        "sweep", "--families", "gnp", "--sizes", "40", "--seeds", "0",
        "--methods", "luby", "--out", str(out), "--json",
    ])
    assert rc == 1
    assert "INVALID" in capsys.readouterr().err


# -- timeout / retry ----------------------------------------------------------


def test_spec_timeout_fields_propagate_and_validate():
    spec = SweepSpec(sizes=(30,), methods=("luby",), timeout_s=2.0,
                     retries=3)
    cell = next(spec.cells())
    assert cell.timeout_s == 2.0 and cell.retries == 3
    # Patience knobs do not change what a cell measures: key unchanged.
    assert cell.key() == Cell("gnp", 30, 0, "luby").key()
    with pytest.raises(ReproError):
        SweepSpec(sizes=(30,), methods=("luby",), timeout_s=0.0)
    with pytest.raises(ReproError):
        SweepSpec(sizes=(30,), methods=("luby",), retries=-1)


def test_timeout_records_status_and_spares_the_pool():
    """A cell over budget is killed and recorded with status=timeout;
    sibling cells in the same farm still complete."""
    spec = SweepSpec(
        families=("gnp",),
        sizes=(24, 420),           # the n=420 cell cannot finish in time
        seeds=(0,),
        methods=("kt1-delta-plus-one",),
        density=0.3,
        timeout_s=0.5,
        retries=1,
    )
    records = run_sweep(spec, store=None, workers=2)
    by_n = {r["n"]: r for r in records}
    assert len(records) == 2
    assert by_n[24]["status"] == "ok" and by_n[24]["valid"]
    timed_out = by_n[420]
    assert timed_out["status"] == "timeout"
    assert timed_out["valid"] is False
    assert timed_out["attempts"] == 2           # one retry granted
    assert "messages" not in timed_out


def test_timeout_records_excluded_from_fits_and_resume(tmp_path):
    ok_rec = run_cell(Cell("gnp", 40, 0, "luby", density=0.3))
    bad_rec = {"key": Cell("gnp", 60, 0, "luby", density=0.3).key(),
               "family": "gnp", "n": 60, "seed": 0, "method": "luby",
               "engine": "sync", "density": 0.3, "epsilon": 0.5,
               "status": "timeout", "valid": False, "wall_s": 1.0}
    rows = growth_exponents([ok_rec, bad_rec])
    assert sum(p["runs"] for row in rows for p in row["points"].values()) == 1
    store = ResultStore(str(tmp_path / "r.jsonl"))
    with store:
        store.append(ok_rec)
        store.append(bad_rec)
    # The failed key is retried on resume; the ok key is skipped.
    assert store.completed_keys() == {ok_rec["key"]}
    assert bad_rec["key"] in store.completed_keys(include_failed=True)


# -- farm races (deterministic via the _spawn_cell_process seam) --------------


class _FakeProc:
    """Scripted stand-in for a single-cell farm process."""

    exitcode = 0

    def __init__(self):
        self.terminated = False

    def is_alive(self):
        return not self.terminated

    def terminate(self):
        self.terminated = True

    def join(self, timeout=None):
        pass


class _ScriptedConn:
    """A result pipe whose poll() answers follow a script (the last entry
    repeats forever); recv() hands out the prepared record."""

    def __init__(self, polls, record=None):
        self._polls = list(polls)
        self._record = record

    def poll(self, timeout=0):
        if len(self._polls) > 1:
            return self._polls.pop(0)
        return self._polls[0]

    def recv(self):
        if self._record is None:
            raise EOFError
        return dict(self._record)

    def close(self):
        pass


def _ok_record(cell, messages=123):
    return {"key": cell.key(), "family": cell.family, "n": cell.n,
            "seed": cell.seed, "method": cell.method, "engine": cell.engine,
            "status": "ok", "valid": True, "messages": messages,
            "rounds": 4, "m": 90, "wall_s": 0.01}


def test_deadline_completion_race_drains_final_record(monkeypatch):
    """Regression: a cell finishing between the supervisor's poll and the
    deadline check used to lose its record — the completed cell was
    re-queued (or recorded as a timeout), and the retry's duplicate ok
    line for the same key inflated runs and skewed mean_ci.  The farm
    must drain the pipe once more after the deadline fires, before
    terminating."""
    from repro.experiments import runner

    cell = Cell("gnp", 30, 0, "luby", timeout_s=1e-9)
    # poll: False at the in-loop completion check (the race window),
    # True at the post-deadline drain.
    conn = _ScriptedConn([False, True], _ok_record(cell))
    monkeypatch.setattr(runner, "_spawn_cell_process",
                        lambda c: (_FakeProc(), conn))
    out = []
    runner._run_cells_with_timeout([cell], 1, out.append)
    assert len(out) == 1
    assert out[0]["status"] == "ok" and out[0]["messages"] == 123
    assert out[0]["attempts"] == 1


def test_retry_success_stamps_attempts(monkeypatch):
    """Regression: only non-ok farm records carried ``attempts``; a cell
    that succeeded on its second attempt was indistinguishable from a
    first-try success."""
    from repro.experiments import runner

    cell = Cell("gnp", 30, 0, "luby", timeout_s=0.05, retries=1)
    conns = [
        _ScriptedConn([False]),                    # attempt 1: never done
        _ScriptedConn([True], _ok_record(cell)),   # attempt 2: immediate
    ]
    monkeypatch.setattr(runner, "_spawn_cell_process",
                        lambda c: (_FakeProc(), conns.pop(0)))
    out = []
    runner._run_cells_with_timeout([cell], 1, out.append)
    assert len(out) == 1
    assert out[0]["status"] == "ok"
    assert out[0]["attempts"] == 2


def test_farm_ok_records_carry_attempts():
    """Every record the real farm produces has ``attempts`` — successes
    included, not just timeouts/errors."""
    spec = SweepSpec(families=("gnp",), sizes=(30,), seeds=(0,),
                     methods=("luby",), timeout_s=60.0)
    records = run_sweep(spec, store=None, workers=1)
    assert len(records) == 1
    assert records[0]["status"] == "ok"
    assert records[0]["attempts"] == 1


def test_duplicate_and_superseded_lines_dedup_last_wins(tmp_path):
    """Regression: aggregation pooled every raw store line — a failed
    line plus its later ok line (the documented resume path), or
    duplicate ok lines from the deadline race, all entered the pool,
    inflating ``runs``.  Last-record-wins everywhere."""
    cell = Cell("gnp", 40, 0, "luby", density=0.3)
    failed = {"key": cell.key(), "family": "gnp", "n": 40, "seed": 0,
              "method": "luby", "engine": "sync", "density": 0.3,
              "epsilon": 0.5, "status": "timeout", "valid": False,
              "wall_s": 1.0}
    ok1 = {**failed, "status": "ok", "valid": True, "m": 160,
           "messages": 500, "rounds": 5, "wall_s": 0.1}
    ok2 = dict(ok1)
    rows = growth_exponents([failed, ok1, ok2])
    runs = sum(p["runs"] for row in rows for p in row["points"].values())
    assert runs == 1
    # Keyless aggregation inputs (hand-built records) are left alone.
    assert latest_per_key([{"n": 1}, {"n": 2}]) == [{"n": 1}, {"n": 2}]
    # Last-wins applies at the store too: an ok line shadowed by a later
    # failure leaves the resume set (the cell will be re-attempted) ...
    store = ResultStore(str(tmp_path / "dup.jsonl"))
    with store:
        store.append(ok1)
        store.append(dict(failed))
    assert store.completed_keys() == set()
    assert store.latest_per_key()[cell.key()]["status"] == "timeout"
    # ... and a yet-later success supersedes the failure again.
    with store:
        store.append(ok2)
    assert store.completed_keys() == {cell.key()}


def test_failure_record_uses_built_graph_n():
    """Failure records must follow run_cell's convention — the n the
    family actually builds (expander fibers, barbell arithmetic), not
    the requested one — so ok and failed lines for one key agree."""
    from repro.experiments.runner import _failure_record
    from repro.graphs.generators import family_built_n

    cell = Cell("expander", 100, 0, "luby", density=0.45)
    rec = _failure_record(cell, "timeout")
    built = family_graph("expander", 100, p=0.45, seed=0).n
    assert rec["n"] == built == family_built_n("expander", 100, 0.45)
    assert rec["n"] != 100
    barbell = _failure_record(Cell("barbell", 101, 0, "luby"), "error")
    assert barbell["n"] == family_graph("barbell", 101).n


def test_report_surfaces_retried_runs():
    """`repro report` shows how many surviving records needed retries."""
    base = {"family": "gnp", "method": "luby", "engine": "sync",
            "density": 0.2, "epsilon": 0.5, "status": "ok", "valid": True,
            "rounds": 3}
    recs = [
        {**base, "key": "a", "n": 40, "m": 100, "messages": 400,
         "attempts": 1},
        {**base, "key": "b", "n": 60, "m": 220, "messages": 900,
         "attempts": 3},
    ]
    summary = summarize(recs)
    assert len(summary) == 1
    assert summary[0]["retried_runs"] == 1
    assert "retr" in render_report(summary)


def test_run_cell_method_extras():
    rec = run_cell(Cell("gnp", 40, 0, "kt1-delta-plus-one", density=0.3))
    assert rec["status"] == "ok"
    assert rec["levels"] >= 1 and rec["deferred"] >= 0
    rec3 = run_cell(Cell("gnp", 40, 0, "kt2-sampled-greedy", density=0.3))
    assert rec3["sampled"] >= 0 and rec3["remnant_deg"] >= 0


def test_sample_constant_rejected_for_non_alg3_methods():
    """The |S| knob only reaches Algorithm 3; other methods must reject
    it rather than mint keys whose numbers don't measure what the key
    claims."""
    with pytest.raises(ReproError):
        SweepSpec(methods=("luby", "kt2-sampled-greedy"),
                  sample_constant=2.0)
    with pytest.raises(ReproError):
        run_cell(Cell("gnp", 30, 0, "luby", sample_constant=2.0))
    # ... and it actually reaches Algorithm 3: a bigger c samples more.
    small = run_cell(Cell("gnp", 40, 0, "kt2-sampled-greedy",
                          density=0.3, sample_constant=0.5))
    big = run_cell(Cell("gnp", 40, 0, "kt2-sampled-greedy",
                        density=0.3, sample_constant=4.0))
    assert big["sampled"] > small["sampled"]


def test_record_n_is_built_graph_n():
    """Families that quantize the vertex count (expander fibers) must
    report the built graph's n, or exponent fits get a wrong x-axis."""
    from repro.graphs.generators import family_graph

    rec = run_cell(Cell("expander", 100, 0, "luby", density=0.45))
    assert rec["n"] == family_graph("expander", 100, p=0.45, seed=0).n
    assert rec["n"] != 100


# -- non-ok cells surface in the report (never silently excluded) -------------


def _fake_rec(key, n, status="ok", messages=100, **extra):
    rec = {"key": key, "family": "gnp", "method": "luby", "engine": "sync",
           "latency": None, "faults": None, "density": 0.2, "epsilon": 0.5,
           "sample_constant": None, "n": n, "m": 4 * n, "seed": 0,
           "status": status, "valid": status == "ok",
           "messages": messages, "rounds": 5, "wall_s": 0.1}
    rec.update(extra)
    return rec


def test_summarize_surfaces_non_ok_cells():
    recs = [
        _fake_rec("k1", 40),
        _fake_rec("k2", 60, messages=180),
        _fake_rec("k3", 80, status="timeout", messages=0, attempts=3),
        _fake_rec("k4", 90, status="error", messages=0),
    ]
    summary = summarize(recs)
    assert len(summary) == 1
    row = summary[0]
    # Failed cells stay out of the fit points but are counted per row...
    assert sorted(row["points"]) == [40, 60]
    assert row["failed_runs"] == 2
    assert row["failed_statuses"] == {"timeout": 1, "error": 1}
    # ... and named individually, with their attempt counts.
    cells = {c["key"]: c for c in row["failed_cells"]}
    assert cells["k3"]["status"] == "timeout"
    assert cells["k3"]["attempts"] == 3
    # The rendered table shows the bad column and the trailing listing.
    text = render_report(summary)
    assert "bad" in text
    assert "non-ok cells (2" in text
    assert "timeout" in text and "k3" in text


def test_summarize_keeps_all_failed_workloads_visible():
    """A workload whose every cell failed must still get a row (with
    empty points), not vanish from the report."""
    recs = [
        _fake_rec("ok1", 40),
        _fake_rec("bad1", 40, status="timeout", messages=0,
                  method="rank-greedy"),
        _fake_rec("bad2", 60, status="timeout", messages=0,
                  method="rank-greedy"),
    ]
    summary = summarize(recs)
    rows = {r["method"]: r for r in summary}
    assert rows["rank-greedy"]["points"] == {}
    assert rows["rank-greedy"]["failed_runs"] == 2
    text = render_report(summary)
    assert "rank-greedy" in text
    json.dumps(summary)     # synthetic rows stay serializable


def test_summarize_failure_columns_use_latest_record():
    """A failed line superseded by a later ok line for the same key is
    not a failure anymore (and vice versa)."""
    recs = [
        _fake_rec("k1", 40, status="timeout", messages=0),
        _fake_rec("k1", 40),                      # retry succeeded
    ]
    row = summarize(recs)[0]
    assert row["failed_runs"] == 0
    assert row["points"][40]["runs"] == 1


# -- faults axis end-to-end ---------------------------------------------------


def test_sweep_with_faults_axis(tmp_path):
    spec = SweepSpec(families=("gnp",), sizes=(36,), seeds=(0, 1),
                     methods=("luby",), faults=("none", "drop:0.1"))
    records = run_sweep(spec, store=None, workers=0)
    assert len(records) == 4
    by_fault = {}
    for r in records:
        by_fault.setdefault(r["faults"], []).append(r)
    assert set(by_fault) == {None, "drop:0.1"}
    assert all(r["dropped_messages"] == 0 for r in by_fault[None])
    assert sum(r["dropped_messages"] for r in by_fault["drop:0.1"]) > 0
    assert all(r["survivor_valid"] for r in by_fault["drop:0.1"])
    # Aggregation separates the faulted population from the clean one.
    summary = summarize(records)
    assert {row["faults"] for row in summary} == {None, "drop:0.1"}


def test_cli_dry_run_prints_axes(tmp_path, capsys):
    out = str(tmp_path / "axes.jsonl")
    argv = ["sweep", "--families", "gnp", "--sizes", "36", "--seeds", "0",
            "--methods", "luby", "--engines", "sync", "async",
            "--latencies", "uniform", "--faults", "none", "drop:0.05",
            "--out", out, "--dry-run"]
    rc = cli.main(argv)
    assert rc == 0
    text = capsys.readouterr().out
    assert "engines=sync,async" in text
    assert "latencies=uniform" in text
    assert "faults=none,drop:0.05" in text

    rc = cli.main(argv + ["--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["engines"] == ["sync", "async"]
    assert payload["latencies"] == ["uniform"]
    assert payload["faults"] == ["none", "drop:0.05"]
    assert payload["cells"] == 4 == payload["to_run"]


def test_cli_sweep_rejects_bad_fault_spec(tmp_path):
    with pytest.raises(SystemExit):
        cli.main(["sweep", "--families", "gnp", "--sizes", "36",
                  "--faults", "drop:lots", "--dry-run",
                  "--out", str(tmp_path / "x.jsonl")])
