"""Algorithm 2: (1+ε)Δ-coloring in KT-1 CONGEST with Õ(n/ε²) messages.

Paper Section 3.2 / Theorem 3.8.  After a leader shares (C/ε)·polylog(n)
random bits, every phase i gives each still-active node a *publicly
computable* candidate color: c_v = h_i(ID_v) over the palette
[(1+ε)Δ], where h_i is a Θ(log n)-wise independent hash derived from the
shared string.  The punchline of the shared-randomness + KT-1 technique:

* same-phase conflicts cost zero messages — v evaluates h_i on its
  neighbors' IDs and sees every colliding candidate locally;
* cross-phase conflicts cost O(log² n / ε) messages per node (Lemma 3.7)
  — v only needs to ask the neighbors u whose candidate in some earlier
  phase j equaled v's current candidate (again computed locally) whether
  they actually kept that color.

A node keeps its candidate iff it has no same-phase collision and every
queried neighbor answers "not holding it" (Lemma 3.5: succeeds with
probability >= ε/(1+ε) per phase, so O(log n / ε) phases whp).

We reproduce the message bound with the spanning-tree substrate standing
in for the danner at δ→0 / the Mashregi–King broadcast (Theorem 1.3):
Õ(n) messages for leader election + bit sharing, Õ(n) rounds total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.congest.node import Context, NodeAlgorithm
from repro.errors import ProtocolError
from repro.substrates.flooding import ShareRandomBits, TreeAggregate
from repro.substrates.spanning_tree import build_spanning_tree
from repro.util.hashing import KWiseHashFamily
from repro.util.tail_bounds import required_independence


def phase_budget(n: int, epsilon: float) -> int:
    """Number of phases that suffice whp (Corollary 3.6)."""
    return max(8, math.ceil(2.0 * (1.0 + epsilon) * math.log(max(n, 3))
                            / epsilon))


def _hash_family(n: int, id_space: int, palette_size: int,
                 independence_constant: float) -> KWiseHashFamily:
    c = required_independence(n, independence_constant)
    return KWiseHashFamily(id_space, palette_size, c)


class EpsilonDeltaColoring(NodeAlgorithm):
    """The per-node protocol of Algorithm 2 (one stage, many phases).

    Input: ``{"bits": BitString, "palette_size": int, "phases": int,
    "id_space": int, "independence": float}`` — all identical across
    nodes (bits came from the broadcast; the rest are protocol constants
    plus the Δ aggregate).

    Phases run on a fixed 3-round cadence: candidates are implicit
    (hashes), queries go out in round 3i, answers return in round 3i+1,
    decisions happen in round 3i+2.
    """

    #: Non-passive: nodes act on a round cadence, not only on messages.
    passive_when_idle = False

    def setup(self, ctx: Context) -> None:
        state = ctx.input
        self.palette_size = state["palette_size"]
        self.total_phases = state["phases"]
        bits = state["bits"]
        family = _hash_family(
            ctx.n, state["id_space"], self.palette_size,
            state["independence"],
        )
        per = family.bits_needed
        if len(bits) < per * self.total_phases:
            raise ProtocolError(
                f"random string too short: need {per * self.total_phases} "
                f"bits for {self.total_phases} phases, got {len(bits)}"
            )
        self.hashes = [
            family.sample_from_bits(bits.bits[i * per:(i + 1) * per])
            for i in range(self.total_phases)
        ]
        self.my_value = ctx.my_id.value
        self.neighbor_values = [u.value for u in ctx.neighbor_ids]
        self.color: Optional[int] = None
        # past[c] = neighbors whose candidate equaled c in an earlier phase.
        self.past: dict[int, set] = {}
        self.conflicted = False
        self.candidate: Optional[int] = None
        self.queries_sent = 0

    def _publish(self, ctx: Context) -> None:
        ctx.done({"color": self.color, "queries": self.queries_sent})

    def _phase_of_round(self, r: int) -> tuple[int, int]:
        return divmod(r, 3)

    def on_round(self, ctx: Context, inbox) -> None:
        # Answer queries regardless of our own state: "do you hold c?"
        # (and fallback probes: "what is your color right now?")
        for msg in inbox:
            if msg.tag == "query":
                (c,) = msg.fields
                ctx.send(msg.sender_id, "hold", self.color == c)
            elif msg.tag == "probe":
                ctx.send(msg.sender_id, "shade", self.color)
        phase, step = self._phase_of_round(ctx.round)
        if phase >= self.total_phases:
            if self.color is not None:
                self._publish(ctx)
            else:
                self._fallback(ctx, inbox, ctx.round - 3 * self.total_phases)
            return
        h = self.hashes[phase]
        if step == 0 and self.color is None:
            # Everyone's phase-i candidates are locally computable from
            # the shared hash — zero messages for same-phase conflicts.
            nbr_candidates = h.eval_many(self.neighbor_values) \
                if self.neighbor_values else []
            self.candidate = h(self.my_value)
            self.conflicted = any(
                c == self.candidate for c in nbr_candidates
            )
            # Query exactly the neighbors that candidated this color in an
            # *earlier* phase (Lemma 3.7's O(log^2 n / eps) set).
            targets = self.past.get(self.candidate, ())
            if not self.conflicted:
                for u in targets:
                    ctx.send(u, "query", self.candidate)
                    self.queries_sent += 1
            for u, c in zip(ctx.neighbor_ids, nbr_candidates):
                self.past.setdefault(c, set()).add(u)
        elif step == 2 and self.color is None:
            holds = [m.fields[0] for m in inbox if m.tag == "hold"]
            if not self.conflicted and not any(holds):
                self.color = self.candidate
            self.candidate = None
        if self.color is not None:
            self._publish(ctx)

    def _fallback(self, ctx: Context, inbox, fallback_round: int) -> None:
        """Deterministic cleanup for a node that failed every hashed
        phase — the whp-failure tail, which the shared-randomness
        analysis leaves unhandled but a sweep must still survive.

        On the same 3-round cadence: probe every neighbor's current
        color, then — lowest ID first among still-uncolored neighbors,
        so adjacent stragglers never grab the same color — take the
        smallest free palette color.  One always exists: the palette
        has at least Δ+1 >= deg(v)+1 colors.  Costs O(deg) messages
        per straggler iteration, charged only on this rare path, so
        Theorem 3.8's Õ(n/ε²) expectation stands; termination is now
        guaranteed (Las Vegas), not just whp.
        """
        step = fallback_round % 3
        if step == 0:
            ctx.broadcast(ctx.neighbor_ids, "probe")
        elif step == 2:
            shades = [(m.sender_id.value, m.fields[0])
                      for m in inbox if m.tag == "shade"]
            taken = {c for _, c in shades if c is not None}
            waiting = [v for v, c in shades if c is None]
            if not waiting or self.my_value < min(waiting):
                self.color = next(c for c in range(self.palette_size)
                                  if c not in taken)
                self._publish(ctx)


@dataclass
class Algorithm2Result:
    colors: list[Optional[int]]
    palette_size: int
    max_degree: int
    epsilon: float
    phases: int
    messages: int
    rounds: int
    query_messages: int
    broadcast_bits: int


def run_algorithm2(
    net,
    epsilon: float,
    seed=0,
    independence_constant: float = 1.0,
    name_prefix: str = "alg2",
) -> Algorithm2Result:
    """Run Algorithm 2 on a connected KT-1 network.

    Returns a proper coloring with at most floor((1+ε)Δ) + 1 colors.
    """
    if epsilon <= 0:
        raise ProtocolError("epsilon must be positive")
    if net.comparison_based:
        raise ProtocolError("Algorithm 2 hashes IDs (non-comparison-based)")
    n = net.graph.n
    id_space = net.assignment.space_bound()
    msgs_before = net.stats.messages
    rounds_before = net.stats.rounds

    # Leader election + Δ aggregate + bit sharing over a spanning tree
    # (the Õ(n)-message substrate; see module docstring).
    tree = build_spanning_tree(net, seed=seed, name_prefix=f"{name_prefix}-st")
    tree_inputs = tree.tree_inputs()
    agg = net.run(
        lambda: TreeAggregate(combine=max),
        inputs=[
            {**tree_inputs[v], "value": net.graph.degree(v)}
            for v in range(n)
        ],
        name=f"{name_prefix}-delta",
    )
    max_degree = agg.outputs[tree.root]
    palette_size = max(max_degree + 1, math.floor((1 + epsilon) * max_degree) + 1)
    phases = phase_budget(n, epsilon)
    family = _hash_family(n, id_space, palette_size, independence_constant)
    nbits = phases * family.bits_needed
    share = net.run(
        lambda: ShareRandomBits(nbits),
        inputs=tree_inputs,
        name=f"{name_prefix}-bits",
    )
    bits = share.outputs[tree.root]

    msgs_before_color = net.stats.messages
    stage = net.run(
        EpsilonDeltaColoring,
        inputs=[
            {
                "bits": bits,
                "palette_size": palette_size,
                "phases": phases,
                "id_space": id_space,
                "independence": independence_constant,
            }
        ] * n,
        name=f"{name_prefix}-color",
    )
    colors = [out["color"] for out in stage.outputs]
    return Algorithm2Result(
        colors=colors,
        palette_size=palette_size,
        max_degree=max_degree,
        epsilon=epsilon,
        phases=phases,
        messages=net.stats.messages - msgs_before,
        rounds=net.stats.rounds - rounds_before,
        query_messages=net.stats.messages - msgs_before_color,
        broadcast_bits=nbits,
    )
