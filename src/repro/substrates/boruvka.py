"""Boruvka merging over XOR sketches: o(m)-message spanning forests.

This is the reproduction of the King-Kutten-Thorup [19] style spanning
tree used by the paper (Section 1.4.3 and Theorem 1.3's substitute).  Each
*fragment* is a rooted tree of already-selected edges.  One phase:

1. every fragment root flips a private coin (H/T) and broadcasts a QUERY
   carrying (fragment name, coin) down its tree;
2. H-fragments convergecast the XOR sketch vectors of their members;
   internal edges cancel, so the root obtains, per sampling level, the
   XOR of *outgoing* edge fingerprints (see :mod:`repro.substrates.sketches`);
3. the root decodes a single outgoing edge whp and announces it; the
   inside endpoint offers a merge across that edge;
4. the outside endpoint accepts iff its fragment's coin is T (classic
   star contraction, so merges never create cycles), the H-fragment
   re-roots along the path to the offering node, and attaches.

A constant fraction of fragments merge per phase in expectation, so
O(log n) phases suffice whp.  Per phase the messages are O(1) queries plus
O(levels) sketch words per tree edge — Õ(n) in total, which is the [19]
bound that makes o(m) symmetry breaking possible at all.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

from repro.congest.ids import NodeId
from repro.congest.node import Context, NodeAlgorithm
from repro.errors import ConvergenceError
from repro.substrates import sketches
from repro.substrates.sketches import SketchParams


@dataclass
class ForestState:
    """Driver-side view of a rooted spanning forest (indexed by vertex)."""

    parents: list[Optional[NodeId]]
    children: list[frozenset[NodeId]]

    @classmethod
    def singletons(cls, n: int) -> "ForestState":
        return cls(parents=[None] * n, children=[frozenset()] * n)

    @classmethod
    def from_tree(cls, parents, children) -> "ForestState":
        return cls(parents=list(parents), children=list(children))

    def roots(self) -> list[int]:
        return [v for v, p in enumerate(self.parents) if p is None]

    def tree_edges(self, net) -> list[tuple[int, int]]:
        edges = []
        for v, p in enumerate(self.parents):
            if p is not None:
                u = net.vertex_of(p)
                edges.append((min(u, v), max(u, v)))
        return edges


@dataclass
class BoruvkaResult:
    forest: ForestState
    phases: int
    new_edges: list[tuple[int, int]]   # graph edges added as tree edges
    leader_vertices: list[int]


class BoruvkaPhase(NodeAlgorithm):
    """One Boruvka phase (see module docstring).

    Convergecasts carry only a *window* of sketch levels (plus level 0
    for the no-outgoing certificate); the root centers the window on the
    level that isolated an edge in its previous phase ("hint") and slides
    it downward on retries — the standard constant-factor saving over
    shipping all Theta(log n) levels every phase.
    """

    passive_when_idle = True

    def __init__(self, params: SketchParams, window: Optional[int] = None):
        self.params = params
        # Default: ship the full vector (no within-phase retries).  A
        # narrow window trades convergecast volume for retry waves; the
        # danner ablation bench sweeps this knob.
        self.WINDOW = window if window is not None else params.levels

    def setup(self, ctx: Context) -> None:
        state = ctx.input
        self.parent: Optional[NodeId] = state.get("parent")
        self.children: set[NodeId] = set(state.get("children", frozenset()))
        self.certified = bool(state.get("certified"))
        self.hint = state.get("hint")
        if self.hint is None:
            if self.WINDOW >= self.params.levels:
                self.hint = self.params.levels - 1
            else:
                # Cold start: mid-size fragments have ~n-to-n*deg outgoing
                # edges; center the first window near log2(n) + slack.
                self.hint = min(self.params.levels - 1,
                                max(ctx.n, 2).bit_length() + 3)
        self.is_root = self.parent is None
        self.frag: Optional[NodeId] = None
        self.coin: Optional[str] = None
        self.indices: Optional[list[int]] = None
        self.vector: Optional[list[int]] = None
        self.waiting = 0
        self.pending_offers: list[tuple[NodeId, NodeId, str]] = []
        self.found_outgoing = False
        self.no_outgoing = False
        self.retry = False
        self.merged = False
        self.attached_to: Optional[NodeId] = None
        self.did_findany = False
        self.hint_next: Optional[int] = None
        self.wave = 0
        self.window_retries = 0
        self.my_value = None
        self.neighbor_by_value: dict[int, NodeId] = {}

    # -- helpers ---------------------------------------------------------------

    def _publish(self, ctx: Context) -> None:
        ctx.done({
            "parent": self.parent,
            "children": frozenset(self.children),
            "was_root": self.is_root,
            "found_outgoing": self.found_outgoing,
            "no_outgoing": self.no_outgoing,
            "retry": self.retry,
            "merged": self.merged,
            "attached_to": self.attached_to,
            "did_findany": self.did_findany,
            "hint_next": self.hint_next,
        })

    def _learn_values(self, ctx: Context) -> None:
        if self.my_value is None:
            self.my_value = ctx.my_id.value
            self.neighbor_by_value = {
                u.value: u for u in ctx.neighbor_ids
            }

    def _indices_for(self, hint: int) -> list[int]:
        if self.WINDOW >= self.params.levels:
            return list(range(self.params.levels))
        return sketches.window_indices(hint, self.WINDOW, self.params.levels)

    def _my_slice(self, ctx: Context) -> list[int]:
        self._learn_values(ctx)
        return sketches.local_sketch_slice(
            self.my_value, list(self.neighbor_by_value), self.params,
            self.indices,
        )

    def _set_fragment(self, ctx: Context, frag: NodeId, coin: str) -> None:
        self.frag = frag
        self.coin = coin
        for sender, frag_f, coin_f in self.pending_offers:
            self._answer_offer(ctx, sender, frag_f, coin_f)
        self.pending_offers.clear()

    def _answer_offer(self, ctx: Context, sender: NodeId,
                      frag_f: NodeId, coin_f: str) -> None:
        accept = (
            self.coin == "T" and coin_f == "H" and frag_f != self.frag
        )
        ctx.send(sender, "reply", accept)
        if accept:
            self.children.add(sender)

    def _subtree_complete(self, ctx: Context) -> None:
        if self.is_root:
            self._root_decode(ctx)
        else:
            ctx.send(self.parent, "resp", self.wave, tuple(self.vector))

    def _decode_slice(self) -> Optional[tuple[int, int, int]]:
        """Scan window levels (densest-last), then level 0."""
        order = sorted(range(1, len(self.indices)),
                       key=lambda i: -self.indices[i]) + [0]
        for i in order:
            edge = sketches.decode_token(
                self.vector[i], self.indices[i], self.params
            )
            if edge is not None:
                return (edge[0], edge[1], self.indices[i])
        return None

    def _root_decode(self, ctx: Context) -> None:
        found = self._decode_slice()
        if found is None:
            if self.vector[0] == 0:
                self.no_outgoing = True
                return
            # Slide the window down; wrap to the top when exhausted.
            lo = min(j for j in self.indices if j > 0) \
                if len(self.indices) > 1 else 1
            slid = lo - 1 if lo > 1 else self.params.levels - 1
            self.hint_next = slid
            if (self.children and self.window_retries < 3
                    and self.WINDOW < self.params.levels):
                # Re-query the slid window within the same phase: same
                # nonce, previously-unseen levels — one extra convergecast
                # instead of a wasted Boruvka phase.
                self.window_retries += 1
                self.wave += 1
                self.hint = slid
                self.indices = self._indices_for(slid)
                ctx.broadcast(self.children, "query", self.frag,
                              self.coin, True, slid, self.wave)
                self.vector = self._my_slice(ctx)
                self.waiting = len(self.children)
                return
            self.retry = True
            return
        a, b, level = found
        self.found_outgoing = True
        self.hint_next = min(level + 3, self.params.levels - 1)
        ctx.broadcast(self.children, "announce", a, b)
        self._maybe_offer(ctx, a, b)

    def _maybe_offer(self, ctx: Context, a: int, b: int) -> None:
        if self.my_value is None:
            self.my_value = ctx.my_id.value
            self.neighbor_by_value = {u.value: u for u in ctx.neighbor_ids}
        partner = None
        if self.my_value == a:
            partner = self.neighbor_by_value.get(b)
        elif self.my_value == b:
            partner = self.neighbor_by_value.get(a)
        if partner is not None:
            ctx.send(partner, "offer", self.frag, self.coin)

    # -- protocol --------------------------------------------------------------

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0 and self.is_root and self.certified:
            # A fragment that certified "no outgoing edge" is a whole
            # component: nothing can reach it, so it sits the phase out.
            self.no_outgoing = True
            self._publish(ctx)
            return
        if ctx.round == 0 and self.is_root:
            coin = "H" if ctx.rng.random() < 0.5 else "T"
            self._set_fragment(ctx, ctx.my_id, coin)
            needs = coin == "H"
            self.did_findany = needs
            if needs and not self.children:
                # Singleton fragments decode their full local vector for
                # free — and seed the hint for later phases.
                self._learn_values(ctx)
                full = sketches.local_sketch_vector(
                    self.my_value, list(self.neighbor_by_value), self.params
                )
                self.indices = list(range(self.params.levels))
                self.vector = full
                self._root_decode(ctx)
            elif needs:
                self.indices = self._indices_for(self.hint)
                ctx.broadcast(self.children, "query", self.frag, coin,
                              True, self.hint, self.wave)
                self.vector = self._my_slice(ctx)
                self.waiting = len(self.children)
            else:
                ctx.broadcast(self.children, "query", self.frag, coin,
                              False, 0, 0)
        for msg in inbox:
            tag = msg.tag
            if tag == "query":
                frag, coin, needs, hint, wave = msg.fields
                self._set_fragment(ctx, frag, coin)
                ctx.broadcast(self.children, "query", frag, coin, needs,
                              hint, wave)
                if needs:
                    self.wave = wave
                    self.indices = self._indices_for(hint)
                    self.vector = self._my_slice(ctx)
                    self.waiting = len(self.children)
                    if self.waiting == 0:
                        self._subtree_complete(ctx)
            elif tag == "resp":
                wave, vec = msg.fields
                if wave != self.wave:
                    continue    # stale response from a superseded window
                sketches.xor_vectors(self.vector, vec)
                self.waiting -= 1
                if self.waiting == 0:
                    self._subtree_complete(ctx)
            elif tag == "announce":
                a, b = msg.fields
                ctx.broadcast(self.children, "announce", a, b)
                self._maybe_offer(ctx, a, b)
            elif tag == "offer":
                frag_f, coin_f = msg.fields
                if self.frag is None:
                    self.pending_offers.append((msg.sender_id, frag_f, coin_f))
                else:
                    self._answer_offer(ctx, msg.sender_id, frag_f, coin_f)
            elif tag == "reply":
                (accept,) = msg.fields
                if accept:
                    self.merged = True
                    self.attached_to = msg.sender_id
                    old_parent = self.parent
                    self.parent = msg.sender_id
                    if old_parent is not None:
                        ctx.send(old_parent, "reroot")
                        self.children.add(old_parent)
            elif tag == "reroot":
                y = msg.sender_id
                self.children.discard(y)
                old_parent = self.parent
                self.parent = y
                if old_parent is not None:
                    ctx.send(old_parent, "reroot")
                    self.children.add(old_parent)
        self._publish(ctx)


def phase_params(net, seed, phase: int) -> SketchParams:
    """SketchParams for a given phase (fresh nonce per phase)."""
    nonce = zlib.crc32(f"boruvka:{seed}:{phase}".encode()) & 0xFFFFFFFF
    return SketchParams(
        word_bits=net.word_bits,
        levels=sketches.default_levels(net.graph.n),
        nonce=nonce,
    )


def run_boruvka(
    net,
    forest: ForestState,
    seed=0,
    max_phases: Optional[int] = None,
    name_prefix: str = "boruvka",
    window: Optional[int] = None,
) -> BoruvkaResult:
    """Drive Boruvka phases until the forest spans every component.

    Termination is protocol-internal: the driver stops after a phase in
    which at least one root ran FindAny, no root found an outgoing edge,
    and no merge happened — for a connected graph that means a single
    fragment whose root certified (via the level-0 sketch) that no
    outgoing edge exists.
    """
    n = net.graph.n
    if max_phases is None:
        max_phases = 40 * max(4, n.bit_length())
    new_edges: list[tuple[int, int]] = []
    certified: set[int] = set()
    hints: dict[int, int] = {}
    phase = 0
    while phase < max_phases:
        inputs = [
            {
                "parent": forest.parents[v],
                "children": forest.children[v],
                "certified": v in certified,
                "hint": hints.get(v),
            }
            for v in range(n)
        ]
        params = phase_params(net, seed, phase)
        stage = net.run(
            lambda: BoruvkaPhase(params, window=window),
            inputs=inputs,
            name=f"{name_prefix}-phase{phase}",
        )
        outs = stage.outputs
        forest = ForestState(
            parents=[o["parent"] for o in outs],
            children=[o["children"] for o in outs],
        )
        for v, o in enumerate(outs):
            if o["merged"]:
                u = net.vertex_of(o["attached_to"])
                new_edges.append((min(u, v), max(u, v)))
            # A root whose level-0 sketch XORed to zero certified that its
            # fragment has no outgoing edge; that is permanent (a whole
            # component cannot gain outgoing edges).
            if o["was_root"] and o["no_outgoing"]:
                certified.add(v)
            if o["was_root"] and o["hint_next"] is not None:
                hints[v] = o["hint_next"]
        phase += 1
        if all(forest.parents[r] is None for r in certified) and \
                set(forest.roots()) <= certified:
            break
    else:
        raise ConvergenceError(
            f"Boruvka did not converge within {max_phases} phases"
        )
    return BoruvkaResult(
        forest=forest,
        phases=phase,
        new_edges=new_edges,
        leader_vertices=forest.roots(),
    )
