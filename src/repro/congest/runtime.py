"""The unified engine runtime: pluggable delivery under one stage core.

A network (:class:`~repro.congest.network.SyncNetwork` and its
subclasses) owns identity, knowledge, and accounting; *when* a charged
message reaches its receiver is the business of a :class:`Scheduler`.
This module provides the two delivery disciplines of the paper:

* :class:`RoundScheduler` — synchronous CONGEST rounds.  Messages in
  flight live in a ring-buffer of round slots; each directed link
  carries one message per round, a w-word payload occupies
  ``ceil(w / words_per_message)`` consecutive rounds on its link, and
  bursts to the same neighbor queue behind each other.  This is the
  reference discipline: fixed-seed counts through it are bit-stable and
  gated by ``benchmarks/check_regression.py``.

* :class:`EventScheduler` — the standard asynchronous model (paper
  Section 3.1.1): every charged packet takes a finite delay drawn from a
  seeded :class:`LatencyModel`, links stay FIFO, and nodes act only when
  messages arrive.  ``stats.rounds`` records ``ceil(total time)``, the
  normalized asynchronous time complexity.

Latency models (all driven by one seeded ``random.Random`` stream per
network, so executions are reproducible cell-by-cell):

========== =============================================================
``fixed``       every packet takes exactly ``delay`` time units
``uniform``     uniform(``low``, ``high``) per packet — the classic
                adversary normalized to max delay 1
``exponential`` expovariate with mean ``mean`` (memoryless router)
``heavy_tail``  Pareto(``alpha``) scaled by ``scale`` — rare very-slow
                packets, the stress case for count-based lockstep
========== =============================================================

Adding a discipline means subclassing :class:`Scheduler` (two methods:
``schedule`` and ``run_stage``); adding a latency model means
subclassing :class:`LatencyModel` and registering it in
:data:`LATENCY_MODELS`.  See ``docs/engines.md``.

Fault models (the robustness seam, ``docs/faults.md``): a network may
carry one seeded :class:`FaultModel` — a sibling of the latency seam —
consulted on every charged envelope and every node activation by *both*
schedulers:

========== =============================================================
``none``        no faults — the reference path, bit-identical to a
                network built without the seam
``drop``        ``drop:P`` — every charged envelope is lost with
                probability P (charged but undelivered)
``crash``       ``crash:P[:T[:R]]`` — each node crashes w.p. P at a
                seeded time in [1, T] (default 16), recovering after R
                time units (default: never); a crashed node neither
                sends nor activates and envelopes to/from it are
                discarded in flight
``adversary``   ``adversary[:B[:W]]`` — an adaptive adversary that
                drops every envelope of the *currently busiest sender*
                (after a warmup of W messages, default 4), bounded by a
                total budget of B drops (default 64) so runs terminate
========== =============================================================

Failure semantics are engine-level, not protocol-level: a stage that
quiesces (or exhausts its round budget) with unfinished nodes under an
active fault model marks them ``starved`` instead of raising
:class:`~repro.errors.ConvergenceError`, and every node that crashed,
missed a dropped envelope, or starved is a *casualty* — output
verification is restricted to the surviving nodes (see
``repro.api`` and ``docs/faults.md`` for the survivor-validity
contract).
"""

from __future__ import annotations

import heapq
import math
import random
from array import array
from typing import TYPE_CHECKING, Optional

from repro.congest.message import Envelope, Msg
from repro.errors import ConvergenceError, ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.congest.network import SyncNetwork


# ---------------------------------------------------------------------------
# Latency models
# ---------------------------------------------------------------------------


class LatencyModel:
    """Per-packet delay distribution for the event-driven scheduler.

    Implementations draw from the ``random.Random`` handed in by the
    scheduler (one seeded stream per network, shared across stages), so
    a fixed seed reproduces the exact arrival schedule.
    """

    name = "?"

    def packet_delay(self, rng: random.Random) -> float:
        raise NotImplementedError

    def begin(self, net) -> None:
        """Reset per-execution state; called from ``EventScheduler.bind``.

        Stateless distributions ignore this; stateful models (the
        latency adversary) size and zero their per-sender bookkeeping
        here so an instance reused across networks starts fresh.
        """

    def link_delay(self, env: "Envelope", charged: int,
                   rng: random.Random) -> float:
        """Total delay for a charged k-message payload on its link.

        The default replicates the scheduler's historical draw loop
        exactly — first packet plus ``charged - 1`` more, in order — so
        every distribution-only model consumes the identical rng stream
        and fixed-seed arrival schedules are unchanged.  Models that
        need the envelope (who is sending to whom) override this.
        """
        delay = self.packet_delay(rng)
        for _ in range(charged - 1):
            delay += self.packet_delay(rng)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}()"


class FixedLatency(LatencyModel):
    """Every packet takes exactly ``delay`` — asynchrony without jitter.

    Useful as a control: reordering effects vanish and any count drift
    against the synchronous run is pure synchronizer/selection overhead.
    """

    name = "fixed"

    def __init__(self, delay: float = 1.0):
        if delay <= 0:
            raise ReproError("fixed latency delay must be positive")
        self.delay = delay

    def packet_delay(self, rng: random.Random) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """uniform(low, high) per packet — the normalized adversary.

    The defaults reproduce the engine's historical behavior
    (``min_delay=0.05``, max delay normalized to 1).
    """

    name = "uniform"

    def __init__(self, low: float = 0.05, high: float = 1.0):
        if not 0 <= low <= high:
            raise ReproError("uniform latency needs 0 <= low <= high")
        self.low = low
        self.high = high

    def packet_delay(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class ExponentialLatency(LatencyModel):
    """Memoryless per-packet delay with the given ``mean``.

    Unbounded above: time units are the model's scale rather than a
    normalized max delay (the paper's normalization assumes bounded
    delays; the empirical engine is happy to explore beyond it).
    """

    name = "exponential"

    def __init__(self, mean: float = 0.5):
        if mean <= 0:
            raise ReproError("exponential latency mean must be positive")
        self.mean = mean

    def packet_delay(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


class HeavyTailLatency(LatencyModel):
    """Pareto(alpha)-distributed delays scaled by ``scale``.

    ``alpha <= 2`` gives infinite variance — occasional packets are
    orders of magnitude slower than the median, which is exactly the
    regime that separates count-based lockstep protocols from
    round-cadence ones.
    """

    name = "heavy_tail"

    def __init__(self, alpha: float = 1.5, scale: float = 0.1):
        if alpha <= 0 or scale <= 0:
            raise ReproError("heavy_tail latency needs alpha, scale > 0")
        self.alpha = alpha
        self.scale = scale

    def packet_delay(self, rng: random.Random) -> float:
        return self.scale * rng.paretovariate(self.alpha)


class AdversaryLatency(LatencyModel):
    """Slow the links of whichever sender is currently busiest.

    The latency twin of :class:`AdaptiveAdversary`: instead of dropping
    the busiest sender's traffic it stretches the delay of each of that
    sender's payloads by ``slowdown``, targeting exactly the node the
    message-frugal algorithms route their communication through.  Like
    the drop adversary it is warmup-bounded (the first ``warmup``
    charged messages per sender travel at base speed, so it never shoots
    the first node to speak) and budget-bounded (at most ``budget``
    payloads are slowed in one execution, so runs still terminate in
    reasonable normalized time).  Base delays come from a
    :class:`UniformLatency` draw, so against ``uniform`` cells any count
    drift is pure adversarial reordering; the targeting itself consumes
    no randomness — for a fixed seed the arrival schedule is exact.
    """

    name = "adversary_latency"

    def __init__(self, slowdown: float = 8.0, budget: int = 64,
                 warmup: int = 4, min_delay: float = 0.05):
        if slowdown < 1:
            raise ReproError("adversary_latency slowdown must be >= 1")
        if budget < 0:
            raise ReproError("adversary_latency budget must be >= 0")
        if warmup < 0:
            raise ReproError("adversary_latency warmup must be >= 0")
        self.base = UniformLatency(low=min_delay)
        self.slowdown = slowdown
        self.budget = budget
        self.warmup = warmup
        self.remaining = budget
        self.slowed = 0
        self._sent: list[int] = []
        self._max = 0

    def begin(self, net) -> None:
        self._sent = [0] * net._n
        self._max = 0
        self.remaining = self.budget
        self.slowed = 0

    def packet_delay(self, rng: random.Random) -> float:
        return self.base.packet_delay(rng)

    def link_delay(self, env: "Envelope", charged: int,
                   rng: random.Random) -> float:
        # Identical draw order to the default implementation, so the
        # base schedule matches `uniform` draw-for-draw; targeting only
        # scales what was drawn.
        delay = super().link_delay(env, charged, rng)
        count = self._sent[env.sender] + charged
        self._sent[env.sender] = count
        is_busiest = count >= self._max
        if count > self._max:
            self._max = count
        if is_busiest and count > self.warmup and self.remaining > 0:
            self.remaining -= 1
            self.slowed += 1
            return delay * self.slowdown
        return delay


#: Latency-model vocabulary shared by the engine, SweepSpec, and the CLI.
LATENCY_MODELS = ("fixed", "uniform", "exponential", "heavy_tail",
                  "adversary_latency")

_LATENCY_CLASSES = {
    "fixed": FixedLatency,
    "uniform": UniformLatency,
    "exponential": ExponentialLatency,
    "heavy_tail": HeavyTailLatency,
    "adversary_latency": AdversaryLatency,
}


def make_latency_model(spec, min_delay: float = 0.05) -> LatencyModel:
    """Resolve a latency-model spec: an instance passes through, a name
    builds the registered class with defaults.

    ``min_delay`` feeds the ``uniform`` model's lower bound, preserving
    the historical ``AsyncNetwork(min_delay=...)`` knob.
    """
    if isinstance(spec, LatencyModel):
        return spec
    if spec == "uniform":
        return UniformLatency(low=min_delay)
    if spec == "adversary_latency":
        return AdversaryLatency(min_delay=min_delay)
    cls = _LATENCY_CLASSES.get(spec)
    if cls is None:
        raise ReproError(
            f"unknown latency model {spec!r}; "
            f"known: {', '.join(LATENCY_MODELS)}"
        )
    return cls()


# ---------------------------------------------------------------------------
# Fault models
# ---------------------------------------------------------------------------


class FaultModel:
    """Seeded failure injector consulted by both schedulers.

    A fault model is bound to exactly one network (like a
    :class:`Scheduler`) and draws from its own ``random.Random`` stream
    (``faults-{seed}``), independent of the latency stream, so a fixed
    seed reproduces the exact failure pattern on either engine.

    Two hooks, both cheap and both optional to override:

    * :meth:`drops` — called once per charged envelope at flush time.
      Returning True loses the envelope *after* it has been charged
      (charged-but-undelivered: the sender paid for the bandwidth, the
      receiver never sees it).
    * :meth:`crashed_at` — called with a vertex and the engine's
      cumulative clock (synchronous round count or normalized async
      time, accumulated across stages).  While it returns True the node
      neither activates nor has envelopes delivered to or from it.

    Every vertex that ever suffers a fault lands in :attr:`casualties`
    (vertex -> first reason: ``"crashed"``, ``"dropped"`` — it missed a
    dropped envelope — or ``"starved"`` — it never finished after the
    stage quiesced).  Output verification restricts itself to the
    complement (the survivors); see ``docs/faults.md``.
    """

    name = "?"

    def __init__(self):
        self.net: Optional["SyncNetwork"] = None
        self.rng: Optional[random.Random] = None
        self.spec: str = self.name
        self.casualties: dict[int, str] = {}

    def bind(self, net: "SyncNetwork") -> None:
        if self.net is not None and self.net is not net:
            raise ReproError("a FaultModel instance serves a single network")
        self.net = net
        self.rng = random.Random(f"faults-{net.seed}")
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses that pre-draw schedules at bind time."""

    def drops(self, env: Envelope, charged: int) -> bool:
        """Decide the fate of one charged envelope (True = lost)."""
        return False

    def crashed_at(self, vertex: int, now: float) -> bool:
        """Is ``vertex`` crashed at cumulative engine time ``now``?"""
        return False

    def mark(self, vertex: int, reason: str) -> None:
        """Record a casualty; the first reason per vertex wins."""
        self.casualties.setdefault(vertex, reason)

    @property
    def crashed_count(self) -> int:
        return sum(1 for r in self.casualties.values() if r == "crashed")

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}({self.spec!r})"


class MessageDrop(FaultModel):
    """Lose each charged envelope independently with probability ``p``.

    The receiver of a dropped envelope is a ``"dropped"`` casualty even
    if the protocol happens to limp to a correct answer without it — the
    survivor-validity contract never vouches for a node that ran on
    partial information.
    """

    name = "drop"

    def __init__(self, p: float = 0.05):
        super().__init__()
        if not 0.0 <= p <= 1.0:
            raise ReproError(f"drop probability must be in [0, 1], got {p}")
        self.p = p
        self.spec = f"drop:{p:g}"

    def drops(self, env: Envelope, charged: int) -> bool:
        if self.p and self.rng.random() < self.p:
            self.mark(env.receiver, "dropped")
            return True
        return False


class NodeCrash(FaultModel):
    """Crash/recovery schedule on the engine's cumulative clock.

    Either hand in an explicit ``schedule`` mapping
    ``vertex -> (crash_time, recover_time | None)`` (tests do), or let
    :meth:`bind` draw one: each vertex crashes with probability ``p`` at
    a seeded time uniform in [1, ``at``], recovering ``recover`` time
    units later (None = never).  A crashed node neither activates nor
    sends, and in-flight envelopes to or from it are discarded at
    delivery time (counted as dropped).  A node that ever crashed is a
    ``"crashed"`` casualty even after recovery.
    """

    name = "crash"

    def __init__(self, schedule=None, p: float = 0.05, at: float = 16.0,
                 recover: Optional[float] = None):
        super().__init__()
        if schedule is None and not 0.0 <= p <= 1.0:
            raise ReproError(f"crash probability must be in [0, 1], got {p}")
        if at < 1.0:
            raise ReproError("crash horizon must be >= 1")
        if recover is not None and recover <= 0:
            raise ReproError("crash recovery delay must be positive")
        self.p = p
        self.at = at
        self.recover = recover
        self._explicit = schedule
        self._schedule: dict[int, tuple[float, float]] = {}
        if schedule is None:
            self.spec = f"crash:{p:g}:{at:g}" + (
                f":{recover:g}" if recover is not None else ""
            )
        else:
            self.spec = "crash:<explicit>"

    def _on_bind(self) -> None:
        if self._explicit is not None:
            self._schedule = {
                v: (float(t0), math.inf if t1 is None else float(t1))
                for v, (t0, t1) in self._explicit.items()
            }
            return
        rng = self.rng
        for v in range(self.net._n):
            if rng.random() < self.p:
                t0 = rng.uniform(1.0, self.at)
                t1 = math.inf if self.recover is None else t0 + self.recover
                self._schedule[v] = (t0, t1)

    def crashed_at(self, vertex: int, now: float) -> bool:
        window = self._schedule.get(vertex)
        if window is None or now < window[0]:
            return False
        self.mark(vertex, "crashed")
        return now < window[1]


class AdaptiveAdversary(FaultModel):
    """Drop the traffic of whichever sender is currently busiest.

    The adversary watches the charged per-sender message counts as they
    accrue and discards every envelope whose sender holds the current
    maximum — exactly the node the message-frugal algorithms concentrate
    their communication through.  A warmup of ``warmup`` messages per
    sender keeps it from shooting the first node to speak, and a total
    ``budget`` bounds the damage so runs still terminate.  Fully
    deterministic: no randomness, only the observed send order.
    """

    name = "adversary"

    def __init__(self, budget: int = 64, warmup: int = 4):
        super().__init__()
        if budget < 0:
            raise ReproError("adversary budget must be >= 0")
        if warmup < 0:
            raise ReproError("adversary warmup must be >= 0")
        self.budget = budget
        self.warmup = warmup
        self.spec = f"adversary:{budget}:{warmup}"
        self.remaining = budget
        self._max = 0

    def _on_bind(self) -> None:
        self._sent = [0] * self.net._n

    def drops(self, env: Envelope, charged: int) -> bool:
        count = self._sent[env.sender] + charged
        self._sent[env.sender] = count
        is_busiest = count >= self._max
        if count > self._max:
            self._max = count
        if is_busiest and count > self.warmup and self.remaining > 0:
            self.remaining -= 1
            self.mark(env.receiver, "dropped")
            return True
        return False


#: Fault-model vocabulary shared by the engine, SweepSpec, and the CLI.
#: Specs are ``name[:param[:param...]]`` strings; see ``docs/faults.md``.
FAULT_MODELS = ("none", "drop", "crash", "adversary")


def make_fault_model(spec) -> Optional[FaultModel]:
    """Resolve a fault spec to a model, or None for the fault-free path.

    ``None``/``"none"`` resolve to None so the engine's hot path stays
    literally the pre-seam code; an instance passes through; strings are
    ``drop:P``, ``crash:P[:T[:R]]``, or ``adversary[:B[:W]]``.
    """
    if spec is None:
        return None
    if isinstance(spec, FaultModel):
        return spec
    if not isinstance(spec, str):
        raise ReproError(f"fault spec must be a string, got {type(spec)!r}")
    if spec == "none":
        return None
    head, sep, rest = spec.partition(":")
    # "drop:" (a colon with nothing after it) is malformed, not an
    # alias for the defaults — split on the separator, so the empty
    # token reaches the numeric parse and fails loudly.
    args = rest.split(":") if sep else []
    try:
        if head == "drop":
            (p,) = args or ["0.05"]
            return MessageDrop(p=float(p))
        if head == "crash":
            if len(args) > 3:
                raise ReproError(f"crash spec takes at most 3 params: {spec!r}")
            p = float(args[0]) if args else 0.05
            at = float(args[1]) if len(args) > 1 else 16.0
            recover = float(args[2]) if len(args) > 2 else None
            return NodeCrash(p=p, at=at, recover=recover)
        if head == "adversary":
            if len(args) > 2:
                raise ReproError(
                    f"adversary spec takes at most 2 params: {spec!r}"
                )
            budget = int(args[0]) if args else 64
            warmup = int(args[1]) if len(args) > 1 else 4
            return AdaptiveAdversary(budget=budget, warmup=warmup)
    except ReproError as exc:
        if repr(spec) in str(exc):
            raise
        # Constructor range errors ("drop probability must be in
        # [0, 1]") know the parameter but not which spec supplied it;
        # name the spec so a failing 40-cell sweep axis is debuggable.
        raise ReproError(f"bad fault spec {spec!r}: {exc}") from exc
    except ValueError as exc:
        raise ReproError(f"malformed fault spec {spec!r}: {exc}") from exc
    raise ReproError(
        f"unknown fault model {spec!r}; known: {', '.join(FAULT_MODELS)}"
    )


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------


class Scheduler:
    """Delivery discipline: owns in-flight messages and the stage loop.

    A scheduler is bound to exactly one network (:meth:`bind`, called by
    the network constructor) and reused across its stages.  The network
    keeps validation, charging, and the outbox; it calls
    :meth:`schedule` once per charged send (from its outbox flush) and
    :meth:`run_stage` once per protocol stage.
    """

    #: "sync" or "async" — what ``stats.rounds`` means under this
    #: scheduler (synchronous rounds vs normalized time).
    kind = "?"

    def __init__(self):
        self.net: Optional["SyncNetwork"] = None

    def bind(self, net: "SyncNetwork") -> None:
        if self.net is not None and self.net is not net:
            raise ReproError("a Scheduler instance serves a single network")
        self.net = net

    def schedule(self, env: Envelope, charged: int) -> None:
        """Enqueue one analyzed, charged send for future delivery."""
        raise NotImplementedError

    def run_stage(self, stage_name: str, algorithms, contexts,
                  max_rounds: int) -> tuple[int, bool]:
        """Drive one stage to quiescence.

        Returns ``(rounds, converged)`` where ``rounds`` is what the
        stage costs on this discipline's clock (synchronous rounds or
        ceil of normalized time).  Sends buffered by the nodes land in
        the network's outbox; the loop must flush it via
        ``net._flush_outbox()`` with ``net._current_round`` set.
        """
        raise NotImplementedError

    def _crash_discards(self, env: Envelope, faults: FaultModel,
                        now: float) -> bool:
        """Discard an in-flight envelope whose endpoint is crashed at
        delivery time; the loss is charged to ``dropped_messages``."""
        if (faults.crashed_at(env.receiver, now)
                or faults.crashed_at(env.sender, now)):
            net = self.net
            wpm = net.words_per_message
            words = env.words
            net.stats.charge_dropped(
                1 if words <= wpm else -(-words // wpm)
            )
            return True
        return False

    def _mark_starved(self, contexts, faults: FaultModel,
                      now: float) -> None:
        """Every unfinished, un-crashed node at stage end is starved."""
        for v in range(self.net._n):
            if not contexts[v]._finished and not faults.crashed_at(v, now):
                faults.mark(v, "starved")


class RoundScheduler(Scheduler):
    """Synchronous CONGEST rounds (the reference discipline).

    Messages in flight live in a ring-buffer slot scheduler: slot
    ``r & mask`` holds the envelopes delivered at round r.  Each directed
    edge carries one message per round; a w-word payload occupies
    ``ceil(w / words_per_message)`` consecutive slots on its link, and
    bursts to the same neighbor queue up behind each other.  The ring
    grows (power of two) whenever a payload is scheduled beyond the
    current horizon, preserving the invariant that every pending round
    lies within ring_size of the current round — so slots never alias.
    Link occupancy is a flat ``sender*n + receiver`` array (dict fallback
    for very large graphs where the n^2 array would dominate memory).
    """

    kind = "sync"

    #: Largest n*n for which per-link occupancy uses a flat array (above
    #: it, a dict keyed by the same flat index — the array would cost
    #: 8 * n^2 bytes per stage).
    _LINK_ARRAY_MAX = 1 << 21

    def _begin_stage(self) -> None:
        n = self.net._n
        self._ring: list[list[Envelope]] = [[] for _ in range(64)]
        self._ring_mask = 63
        self._in_flight = 0
        # Per-directed-link next-free round, flat-indexed sender*n +
        # receiver.
        if n * n <= self._LINK_ARRAY_MAX:
            self._link_free = array("q", bytes(8 * n * n))
            self._link_free_map = None
        else:
            self._link_free = None
            self._link_free_map: dict[int, int] = {}

    def schedule(self, env: Envelope, charged: int) -> None:
        net = self.net
        cur = net._current_round
        key = env.sender * net._n + env.receiver
        link_free = self._link_free
        if link_free is not None:
            free = link_free[key]
        else:
            free = self._link_free_map.get(key, 0)
        start = free if free > cur + 1 else cur + 1
        deliver_at = start + charged - 1
        if link_free is not None:
            link_free[key] = deliver_at + 1
        else:
            self._link_free_map[key] = deliver_at + 1
        if deliver_at - cur > self._ring_mask + 1:
            self._grow_ring(deliver_at - cur)
        self._ring[deliver_at & self._ring_mask].append(env)
        self._in_flight += 1

    def _grow_ring(self, horizon: int) -> None:
        """Double the delivery ring until ``horizon`` rounds fit.

        Every pending round r satisfies cur < r <= cur + old_size, so its
        absolute value is recoverable from its old slot index and re-slots
        uniquely in the bigger ring.
        """
        old = self._ring
        old_size = len(old)
        new_size = old_size
        while new_size < horizon:
            new_size *= 2
        new_ring: list[list[Envelope]] = [[] for _ in range(new_size)]
        cur = self.net._current_round
        new_mask = new_size - 1
        for i, slot in enumerate(old):
            if slot:
                r = cur + 1 + ((i - cur - 1) % old_size)
                new_ring[r & new_mask] = slot
        self._ring = new_ring
        self._ring_mask = new_mask

    def run_stage(self, stage_name: str, algorithms, contexts,
                  max_rounds: int) -> tuple[int, bool]:
        net = self.net
        n = net._n
        self._begin_stage()
        passive = all(a.passive_when_idle for a in algorithms)
        round_index = 0
        converged = False
        collect = net.collect_utilization
        ids = net._ids
        faults = net.faults
        # Faults run on the *cumulative* round clock: stats.rounds holds
        # the total of all prior stages (this stage's rounds are charged
        # at stage end), so a crash schedule spans stage boundaries.
        base_time = net.stats.rounds if faults is not None else 0

        # Persistent per-vertex inbox buffers, cleared and refilled each
        # round instead of rebuilding a dict-of-lists; ``touched`` lists
        # the vertices with a non-empty buffer in first-arrival order.
        inbox_buffers: list[list[Envelope]] = [[] for _ in range(n)]
        touched: list[int] = []

        # The round budget counts rounds in which the engine does work
        # (delivers messages / activates nodes).  Rounds a passive stage
        # fast-forwards over are free: a multi-word payload may legally be
        # *scheduled* past ``max_rounds`` and still be delivered, so the
        # budget cannot simply compare the round index (which would declare
        # non-convergence while a delivery is imminent and the stage is
        # about to quiesce).  For round-cadence stages every round is a
        # work round, so this is the same budget as before.
        work_rounds = 0
        while True:
            work_rounds += 1
            if work_rounds > max_rounds + 1:
                if faults is not None:
                    # Budget exhaustion under faults is data, not a bug:
                    # the stragglers are casualties and the stage ends.
                    self._mark_starved(contexts, faults,
                                       base_time + round_index)
                    break
                raise ConvergenceError(
                    f"stage '{stage_name}' exceeded {max_rounds} rounds"
                )
            net._current_round = round_index
            slot_index = round_index & self._ring_mask
            arriving = self._ring[slot_index]
            if arriving:
                self._ring[slot_index] = []
                self._in_flight -= len(arriving)
                for env in arriving:
                    if faults is not None and self._crash_discards(
                            env, faults, base_time + round_index):
                        continue
                    buf = inbox_buffers[env.receiver]
                    if not buf:
                        touched.append(env.receiver)
                    buf.append(env)
            active_vertices = (
                range(n)
                if (round_index == 0 or not passive)
                else touched
            )
            for v in active_vertices:
                if faults is not None and faults.crashed_at(
                        v, base_time + round_index):
                    continue    # crashed: no activation, no sends
                ctx = contexts[v]
                ctx.round = round_index
                ctx._send_allowed = True
                envelopes = inbox_buffers[v]
                if envelopes:
                    if collect:
                        net._register_received_ids(v, envelopes)
                    inbox = [
                        Msg(ids[e.sender], e.tag, e.fields)
                        for e in envelopes
                    ]
                else:
                    inbox = []
                algorithms[v].on_round(ctx, inbox)
                ctx._send_allowed = False
            for v in touched:
                inbox_buffers[v].clear()
            touched.clear()
            if net._outbox:
                net._flush_outbox()
            if faults is None:
                all_done = all(c._finished for c in contexts)
            else:
                # A currently-crashed node cannot finish; it does not
                # hold the stage open.
                now = base_time + round_index
                all_done = all(
                    contexts[v]._finished or faults.crashed_at(v, now)
                    for v in range(n)
                )
            if not self._in_flight:
                if all_done:
                    converged = True
                    round_index += 1
                    break
                if passive and round_index > 0:
                    if faults is not None:
                        # Quiescent with stragglers: under faults this is
                        # the expected silence cascade, not a protocol
                        # bug — mark them starved and end the stage.
                        self._mark_starved(contexts, faults,
                                           base_time + round_index)
                        converged = True
                        round_index += 1
                        break
                    unfinished = [
                        v for v in range(n) if not contexts[v]._finished
                    ]
                    raise ConvergenceError(
                        f"stage '{stage_name}' deadlocked with unfinished "
                        f"nodes {unfinished[:10]} (total {len(unfinished)})"
                    )
                round_index += 1
            elif passive:
                # Idle nodes never act on silence: jump to the next
                # delivery — the nearest non-empty ring slot (guaranteed
                # within one ring length while messages are in flight).
                ring = self._ring
                mask = self._ring_mask
                r = round_index + 1
                while not ring[r & mask]:
                    r += 1
                round_index = r
            else:
                round_index += 1
        return round_index, converged


class ColumnarRoundScheduler(RoundScheduler):
    """Synchronous rounds executed as numpy array operations.

    Drop-in replacement for :class:`RoundScheduler` that, for stages
    whose algorithm opts in via
    :class:`~repro.congest.node.ColumnarStage`, runs the whole round as
    a handful of array ops: the kernel emits
    :class:`~repro.congest.columnar.SendBatch` fan-outs, the scheduler
    charges and link-schedules each batch over the flat
    ``sender*n + receiver`` occupancy array in one vectorized pass, and
    deliveries scatter back into the kernel's per-phase banks via the
    reverse-edge involution.  Counts are bit-identical to the scalar
    path (same per-round envelope multiset, same link arithmetic, same
    per-node RNG draws); the parity suite and check_regression.py gate
    it.  Everything irregular — fault models, tracing, eager charging,
    non-columnar stages, asymmetric active sets, missing numpy — falls
    back to the inherited scalar ``run_stage``.  See
    ``docs/columnar.md``.
    """

    def run_stage(self, stage_name, algorithms, contexts, max_rounds):
        kernel = self._columnar_kernel(algorithms, contexts)
        if kernel is None:
            return super().run_stage(
                stage_name, algorithms, contexts, max_rounds
            )
        return self._run_columnar(
            kernel, stage_name, algorithms, contexts, max_rounds
        )

    def _columnar_kernel(self, algorithms, contexts):
        """Build the stage kernel, or None for the scalar fallback.

        Builder exceptions propagate: a kernel that *declines* returns
        None, a kernel that *breaks* is a bug we want loud.
        """
        from repro.congest.columnar import get_numpy
        from repro.congest.node import ColumnarStage

        net = self.net
        if (net.faults is not None or net.trace is not None
                or net.eager_charges):
            return None
        n = net._n
        if n == 0 or n * n > self._LINK_ARRAY_MAX:
            return None
        if not algorithms:
            return None
        first = algorithms[0]
        cls = type(first)
        if not isinstance(first, ColumnarStage):
            return None
        if not cls.passive_when_idle:
            return None
        if any(type(a) is not cls for a in algorithms):
            return None
        if get_numpy(warn=True) is None:
            return None
        return cls.build_columnar_kernel(net, algorithms, contexts)

    def _run_columnar(self, kernel, stage_name, algorithms, contexts,
                      max_rounds):
        """The columnar stage loop — a vectorized mirror of the scalar
        ``run_stage``: same work-round budget, same quiescence and
        deadlock conditions, same fast-forward to the next delivery."""
        from repro.congest.columnar import sender_counts_view

        net = self.net
        n = net._n
        np_ = kernel.np
        graph = kernel.graph
        esrc = graph.esrc
        edst = graph.edst
        stats = net.stats
        collect = net.collect_utilization
        wpm = net.words_per_message
        link_free = np_.zeros(n * n, dtype=np_.int64)
        #: deliver_round -> list of (SendBatch, index-subset or None).
        pending: dict[int, list] = {}
        if collect:
            by_tag = stats.by_tag
            utilized = stats._utilized
            senders_view = sender_counts_view(np_, stats)

        def flush(batches, cur):
            """Charge and link-schedule one round's emissions.

            Batches run sequentially in emission order (so repeated
            sends on one link queue exactly as the scalar path queues
            them); within a batch every directed link appears at most
            once, so the occupancy update is a plain gather/scatter.
            """
            total_sends = 0
            total_words = 0
            total_msgs = 0
            for batch in batches:
                eids = batch.eids
                if not len(eids):
                    continue
                words = batch.words
                charged = (words + wpm - 1) // wpm
                senders = esrc[eids]
                receivers = edst[eids]
                keys = senders * n + receivers
                deliver = (
                    np_.maximum(link_free[keys], cur + 1) + charged - 1
                )
                link_free[keys] = deliver + 1
                msgs = int(charged.sum())
                total_sends += len(eids)
                total_words += int(words.sum())
                total_msgs += msgs
                if collect:
                    if batch.tag:
                        by_tag[batch.tag] = (
                            by_tag.get(batch.tag, 0) + msgs
                        )
                    if senders_view is not None:
                        # bincount's float64 weights are exact here
                        # (charges are tiny integers, totals << 2^53).
                        np_.add(
                            senders_view,
                            np_.bincount(
                                senders, weights=charged, minlength=n
                            ).astype(np_.int64),
                            out=senders_view,
                        )
                    else:  # pragma: no cover - read-only buffer platform
                        counts = stats._sender_counts
                        for s, c in zip(senders.tolist(),
                                        charged.tolist()):
                            counts[s] += c
                    utilized.update(np_.unique(
                        np_.where(senders < receivers, keys,
                                  receivers * n + senders)
                    ).tolist())
                rounds_out = np_.unique(deliver)
                if len(rounds_out) == 1:
                    pending.setdefault(int(rounds_out[0]), []).append(
                        (batch, None)
                    )
                else:
                    for r in rounds_out.tolist():
                        pending.setdefault(r, []).append(
                            (batch, np_.flatnonzero(deliver == r))
                        )
            stats.charge_send_batch(total_sends, total_words, total_msgs)

        round_index = 0
        converged = False
        work_rounds = 0
        while True:
            work_rounds += 1
            if work_rounds > max_rounds + 1:
                raise ConvergenceError(
                    f"stage '{stage_name}' exceeded {max_rounds} rounds"
                )
            net._current_round = round_index
            arriving = pending.pop(round_index, None)
            if round_index == 0:
                batches = kernel.begin()
            elif arriving is not None:
                batches = kernel.deliver(arriving)
            else:
                batches = ()
            if batches:
                flush(batches, round_index)
            all_done = all(c._finished for c in contexts)
            if not pending:
                if all_done:
                    converged = True
                    round_index += 1
                    break
                if round_index > 0:
                    unfinished = [
                        v for v in range(n) if not contexts[v]._finished
                    ]
                    raise ConvergenceError(
                        f"stage '{stage_name}' deadlocked with unfinished "
                        f"nodes {unfinished[:10]} (total {len(unfinished)})"
                    )
                round_index += 1
            else:
                # Idle rounds are free: jump to the next delivery, like
                # the scalar scheduler's ring fast-forward.
                round_index = min(pending)
        return round_index, converged


#: Scheduler vocabulary shared by the API, the CLI, and SweepSpec.
SCHEDULERS = ("rounds", "columnar")


def make_scheduler(spec) -> Optional[Scheduler]:
    """Resolve a scheduler spec for a synchronous network.

    ``None``/``"rounds"`` resolve to None (the network builds its
    default :class:`RoundScheduler`); an instance passes through;
    ``"columnar"`` builds a :class:`ColumnarRoundScheduler` — or, when
    numpy is missing, returns None so the engine runs the scalar
    reference path (a one-line warning notes the fallback).
    """
    if spec is None or spec == "rounds":
        return None
    if isinstance(spec, Scheduler):
        return spec
    if spec == "columnar":
        from repro.congest.columnar import get_numpy
        if get_numpy(warn=True) is None:
            return None
        return ColumnarRoundScheduler()
    raise ReproError(
        f"unknown scheduler {spec!r}; known: {', '.join(SCHEDULERS)}"
    )


class EventScheduler(Scheduler):
    """Event-driven delivery with per-packet latency draws (FIFO links).

    A charged k-message payload takes the sum of k packet delays on its
    link; arrivals pop off a heap in time order (ties broken by a
    submission sequence number, so executions are deterministic for a
    fixed seed).  ``run_stage`` activates every node once at time zero,
    then drives the event loop; the stage's ``rounds`` is
    ``ceil(total normalized time)``.
    """

    kind = "async"

    def __init__(self, latency: LatencyModel | str = "uniform",
                 min_delay: float = 0.05):
        super().__init__()
        self.latency = make_latency_model(latency, min_delay=min_delay)
        self._rng: Optional[random.Random] = None

    def bind(self, net: "SyncNetwork") -> None:
        super().bind(net)
        # One delay stream per network, shared across stages, seeded the
        # way the historical AsyncNetwork seeded it.
        self._rng = random.Random(f"delays-{net.seed}")
        self.latency.begin(net)

    def schedule(self, env: Envelope, charged: int) -> None:
        link = (env.sender, env.receiver)
        start = max(self._now, self._link_clock.get(link, 0.0))
        delay = self.latency.link_delay(env, charged, self._rng)
        arrival = start + delay
        self._link_clock[link] = arrival
        self._seq += 1
        heapq.heappush(self._queue, (arrival, self._seq, env))

    def run_stage(self, stage_name: str, algorithms, contexts,
                  max_rounds: int) -> tuple[int, bool]:
        net = self.net
        n = net._n
        self._queue: list = []
        self._seq = 0
        self._link_clock: dict[tuple[int, int], float] = {}
        self._now = 0.0
        net._current_round = 0
        activations = [0] * n
        ids = net._ids
        faults = net.faults
        # Faults run on the cumulative clock (see RoundScheduler): prior
        # stages' ceil(time) totals are already in stats.rounds.
        base_time = net.stats.rounds if faults is not None else 0

        # Initial activation: every node acts once at time zero.  Sends
        # buffer in the shared outbox; one flush (submission order, so
        # identical delay draws) pushes them onto the event heap.
        for v in range(n):
            if faults is not None and faults.crashed_at(v, base_time):
                continue
            ctx = contexts[v]
            ctx.round = 0
            ctx._send_allowed = True
            algorithms[v].on_round(ctx, [])
            ctx._send_allowed = False
        if net._outbox:
            net._flush_outbox()

        max_events = max_rounds * max(n, 1)
        events = 0
        aborted = False
        collect = net.collect_utilization
        while self._queue:
            events += 1
            if events > max_events:
                if faults is not None:
                    aborted = True
                    break
                raise ConvergenceError(
                    f"async stage '{stage_name}' exceeded {max_events} events"
                )
            arrival, _seq, env = heapq.heappop(self._queue)
            self._now = arrival
            if faults is not None and self._crash_discards(
                    env, faults, base_time + arrival):
                continue
            v = env.receiver
            activations[v] += 1
            ctx = contexts[v]
            ctx.round = activations[v]
            if collect and env.ids:
                net._register_received_ids(v, (env,))
            ctx._send_allowed = True
            algorithms[v].on_round(
                ctx, [Msg(ids[env.sender], env.tag, env.fields)]
            )
            ctx._send_allowed = False
            if net._outbox:
                net._flush_outbox()

        unfinished = [v for v in range(n) if not contexts[v]._finished]
        if unfinished:
            if faults is None:
                raise ConvergenceError(
                    f"async stage '{stage_name}' quiesced with unfinished "
                    f"nodes {unfinished[:10]} (total {len(unfinished)})"
                )
            self._mark_starved(contexts, faults, base_time + self._now)
        return max(1, math.ceil(self._now)), not aborted
