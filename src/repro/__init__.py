"""repro — executable reproduction of PODC 2021's
"Can We Break Symmetry with o(m) Communication?"
(Pai, Pandurangan, Pemmaraju, Robinson; arXiv:2105.08917).

The package provides:

* a message-counting KT-rho CONGEST simulator (synchronous and
  asynchronous) with utilized-edge tracking and a machine-checked
  comparison-based discipline (:mod:`repro.congest`);
* the substrates the paper builds on — XOR-sketch spanning trees, the
  danner, leader election, broadcast (:mod:`repro.substrates`);
* the paper's three algorithms — Algorithm 1 (KT-1 (Δ+1)-coloring,
  Õ(n^1.5) messages), Algorithm 2 (KT-1 (1+ε)Δ-coloring, Õ(n/ε²)
  messages), Algorithm 3 (KT-2 MIS, Õ(n^1.5) messages) — plus the Ω(m)
  baselines (:mod:`repro.coloring`, :mod:`repro.mis`);
* the lower-bound constructions and experiments of Section 2
  (:mod:`repro.lowerbounds`);
* a one-call facade (:mod:`repro.api`);
* a parallel, resumable experiment-sweep subsystem for the scaling
  claims — declarative family x n x seed x method matrices, a
  multiprocessing worker pool, JSON-lines result stores, and growth-
  exponent aggregation (:mod:`repro.experiments`; CLI: ``repro sweep``
  and ``repro report``).

Quickstart::

    from repro import api
    from repro.graphs import gnp_random_graph

    g = gnp_random_graph(500, 0.2, seed=1)
    coloring = api.color_graph(g, method="kt1-delta-plus-one", seed=2)
    mis = api.find_mis(g, method="kt2-sampled-greedy", seed=3)
"""

from repro import api
from repro.congest.async_network import AsyncNetwork
from repro.congest.network import SyncNetwork
from repro.errors import (
    ComparisonDisciplineError,
    ConvergenceError,
    ModelViolationError,
    ProtocolError,
    ReproError,
    VerificationError,
)
from repro.graphs.core import Graph

__version__ = "1.0.0"

__all__ = [
    "api",
    "AsyncNetwork",
    "SyncNetwork",
    "Graph",
    "ReproError",
    "ModelViolationError",
    "ComparisonDisciplineError",
    "ProtocolError",
    "VerificationError",
    "ConvergenceError",
    "__version__",
]
