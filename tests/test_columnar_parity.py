"""Columnar-vs-reference parity: the numpy scheduler is a pure
delivery-engine change.

The contract (docs/columnar.md): on every cell the columnar scheduler
either runs a stage as array operations or silently falls back to the
scalar path — and either way the observable execution is *bit-identical*
to the reference ``RoundScheduler``: same outputs, same message / word /
round counts, same per-stage accounting, same utilized-edge sets under
full stats.  Wall clock is the only permitted difference.

Mirrors ``tests/test_engine_parity.py``'s family matrix and adds the
fallback seams: a faulted cell (the columnar gate refuses faulted
networks), a numpy-free interpreter (monkeypatched import state), and
the dict spill of the scalar scheduler's link-reservation table.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.congest import columnar
from repro.congest.runtime import RoundScheduler
from repro.graphs.generators import family_graph

FAMILIES = [("gnp", 40), ("regular", 36), ("grid", 42), ("torus", 36)]

COLORING_METHODS = ["kt1-delta-plus-one", "baseline-trial",
                    "baseline-rank-greedy"]
MIS_METHODS = ["kt2-sampled-greedy", "luby", "rank-greedy"]


def _coloring_pair(graph, method, seed, **kwargs):
    ref = api.color_graph(graph, method=method, seed=seed,
                          scheduler="rounds", **kwargs)
    col = api.color_graph(graph, method=method, seed=seed,
                          scheduler="columnar", **kwargs)
    return ref, col


def _assert_reports_match(ref, col):
    assert col.report.messages == ref.report.messages
    assert col.report.rounds == ref.report.rounds
    assert col.report.stage_messages == ref.report.stage_messages
    assert col.report.utilized_edges == ref.report.utilized_edges


@pytest.mark.parametrize("family,n", FAMILIES)
@pytest.mark.parametrize("method", COLORING_METHODS)
@pytest.mark.parametrize("seed", [0, 1])
def test_coloring_bit_identical(family, n, method, seed):
    graph = family_graph(family, n, p=0.3, seed=seed)
    ref, col = _coloring_pair(graph, method, seed)
    assert ref.valid and col.valid
    assert col.colors == ref.colors
    _assert_reports_match(ref, col)


@pytest.mark.parametrize("family,n", FAMILIES)
@pytest.mark.parametrize("method", MIS_METHODS)
@pytest.mark.parametrize("seed", [0, 1])
def test_mis_bit_identical(family, n, method, seed):
    graph = family_graph(family, n, p=0.3, seed=seed)
    ref = api.find_mis(graph, method=method, seed=seed,
                       scheduler="rounds")
    col = api.find_mis(graph, method=method, seed=seed,
                       scheduler="columnar")
    assert ref.valid and col.valid
    assert col.in_mis == ref.in_mis
    _assert_reports_match(ref, col)


@pytest.mark.parametrize("method", ["kt1-delta-plus-one", "luby"])
def test_full_stats_utilization_identical(method):
    """Full accounting: utilized-edge *sets* must agree, not just sizes
    (some kernels decline under collect — the fallback must be exact)."""
    graph = family_graph("gnp", 48, p=0.35, seed=3)
    if method == "luby":
        ref = api.find_mis(graph, method=method, seed=3,
                           collect_utilization=True, scheduler="rounds")
        col = api.find_mis(graph, method=method, seed=3,
                           collect_utilization=True, scheduler="columnar")
    else:
        ref, col = _coloring_pair(graph, method, 3,
                                  collect_utilization=True)
    assert col.report.utilized_edges == ref.report.utilized_edges
    _assert_reports_match(ref, col)


def test_faulted_cell_identical_via_scalar_fallback():
    """Fault injection disables the columnar path wholesale; the faulted
    execution must be the same execution either way (same drop RNG)."""
    graph = family_graph("gnp", 40, p=0.3, seed=5)
    ref = api.find_mis(graph, method="luby", seed=5, faults="drop:0.05",
                       scheduler="rounds")
    col = api.find_mis(graph, method="luby", seed=5, faults="drop:0.05",
                       scheduler="columnar")
    _assert_reports_match(ref, col)
    assert col.report.dropped_messages == ref.report.dropped_messages
    assert col.report.dropped_messages > 0
    assert col.in_mis == ref.in_mis


def test_numpy_free_interpreter_falls_back(monkeypatch, capsys):
    """With numpy 'missing' the columnar scheduler must degrade to the
    scalar path — identical counts, one warning line per process."""
    ref = api.find_mis(family_graph("gnp", 36, p=0.3, seed=7),
                       method="luby", seed=7, scheduler="rounds")
    monkeypatch.setitem(columnar._STATE, "mod", None)
    monkeypatch.setitem(columnar._STATE, "warned", False)
    col = api.find_mis(family_graph("gnp", 36, p=0.3, seed=7),
                       method="luby", seed=7, scheduler="columnar")
    assert col.in_mis == ref.in_mis
    _assert_reports_match(ref, col)
    err = capsys.readouterr().err
    assert "falling back" in err
    # Warned exactly once even across repeated stages.
    assert err.count("falling back") == 1


def test_link_free_dict_fallback_counts_identical(monkeypatch):
    """Networks past the flat-array bound spill link reservations into a
    dict; forcing the spill on a small graph must not move a count."""
    graph = family_graph("gnp", 40, p=0.3, seed=9)
    ref = api.color_graph(graph, method="kt1-delta-plus-one", seed=9,
                          scheduler="rounds")
    monkeypatch.setattr(RoundScheduler, "_LINK_ARRAY_MAX", 0)
    spill = api.color_graph(graph, method="kt1-delta-plus-one", seed=9,
                            scheduler="rounds")
    assert spill.colors == ref.colors
    _assert_reports_match(ref, spill)
    # The columnar gate also watches the bound: with it at 0 the numpy
    # path must decline and reproduce the same execution scalar-side.
    col = api.color_graph(graph, method="kt1-delta-plus-one", seed=9,
                          scheduler="columnar")
    assert col.colors == ref.colors
    _assert_reports_match(ref, col)


def test_stage_wall_sums_to_engine_time():
    """RunReport.stage_wall is the per-stage engine-time breakdown: every
    stage appears, every entry is nonnegative, and the sum never exceeds
    the caller's wall clock around the run."""
    import time

    graph = family_graph("gnp", 60, p=0.3, seed=11)
    t0 = time.perf_counter()
    res = api.color_graph(graph, method="kt1-delta-plus-one", seed=11,
                          scheduler="columnar")
    wall = time.perf_counter() - t0
    sw = res.report.stage_wall
    assert set(sw) == set(res.report.stage_messages)
    assert all(w >= 0.0 for w in sw.values())
    assert sum(sw.values()) <= wall
    # The breakdown accounts for the bulk of the engine's time on a
    # nontrivial cell — it is a profile, not a vestige.
    assert sum(sw.values()) > 0.0
