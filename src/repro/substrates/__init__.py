"""Substrates the paper's algorithms stand on.

* :mod:`repro.substrates.sketches` — XOR edge-fingerprint sketches; the
  King-Kutten-Thorup [19] non-comparison primitive that lets a tree
  fragment find an outgoing edge without touching non-tree edges.
* :mod:`repro.substrates.flooding` — leader election by flooding, tree
  adoption, tree broadcast/aggregate, payload flooding (Corollary 1.2's
  "elect a leader and broadcast random bits" toolkit).
* :mod:`repro.substrates.boruvka` — Boruvka merging over sketches; yields
  the Õ(n)-message KT-1 spanning tree of [19] and repairs danner
  connectivity.
* :mod:`repro.substrates.danner` — the Gmyr-Pandurangan danner substitute
  (Theorem 1.1 interface) and `share_random_bits` (Corollary 1.2).
* :mod:`repro.substrates.spanning_tree` — standalone Õ(n)-message spanning
  tree + leader election driver.
"""

from repro.substrates.sketches import (
    find_outgoing,
    vector_indicates_no_outgoing,
    SketchParams,
    edge_token,
    edge_level,
    decode_token,
    local_sketch_vector,
    xor_vectors,
)
from repro.substrates.flooding import (
    FloodLeaderElect,
    AdoptParents,
    TreeBroadcast,
    TreeAggregate,
    FloodPayload,
    ShareRandomBits,
    elect_leader_and_tree,
)
from repro.substrates.boruvka import BoruvkaPhase, run_boruvka, ForestState
from repro.substrates.spanning_tree import SpanningTreeResult, build_spanning_tree
from repro.substrates.danner import DannerResult, build_danner, share_random_bits

__all__ = [
    "SketchParams",
    "edge_token",
    "edge_level",
    "decode_token",
    "find_outgoing",
    "vector_indicates_no_outgoing",
    "local_sketch_vector",
    "xor_vectors",
    "FloodLeaderElect",
    "AdoptParents",
    "TreeBroadcast",
    "TreeAggregate",
    "FloodPayload",
    "ShareRandomBits",
    "elect_leader_and_tree",
    "BoruvkaPhase",
    "run_boruvka",
    "ForestState",
    "build_spanning_tree",
    "SpanningTreeResult",
    "build_danner",
    "DannerResult",
    "share_random_bits",
]
