"""Standalone Õ(n)-message KT-1 spanning tree + leader election.

The King-Kutten-Thorup [19] result the paper builds on: in KT-1 CONGEST,
a spanning tree (and hence leader election and broadcast) is constructible
with Õ(n) messages by a non-comparison-based algorithm — sidestepping the
Awerbuch et al. Ω(m) bound for comparison-based algorithms.  Our
construction is sketch-Boruvka (see :mod:`repro.substrates.boruvka`)
starting from singleton fragments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.congest.ids import NodeId
from repro.errors import ProtocolError
from repro.substrates.boruvka import BoruvkaResult, ForestState, run_boruvka


@dataclass
class SpanningTreeResult:
    """A rooted spanning tree with per-vertex parent/children pointers."""

    parents: list[Optional[NodeId]]
    children: list[frozenset[NodeId]]
    root: int
    phases: int
    tree_edges: list[tuple[int, int]]

    def tree_inputs(self) -> list[dict]:
        """Inputs for TreeBroadcast / TreeAggregate stages."""
        return [
            {"parent": self.parents[v], "children": self.children[v]}
            for v in range(len(self.parents))
        ]


def build_spanning_tree(net, seed=0, name_prefix: str = "st") -> SpanningTreeResult:
    """Build a spanning tree of a *connected* graph with Õ(n) messages.

    The root of the final fragment is the elected leader.  Raises
    :class:`ProtocolError` if the graph turns out to be disconnected
    (multiple fragments certify no-outgoing-edge).
    """
    forest = ForestState.singletons(net.graph.n)
    result: BoruvkaResult = run_boruvka(
        net, forest, seed=seed, name_prefix=name_prefix
    )
    roots = result.forest.roots()
    if len(roots) != 1:
        raise ProtocolError(
            f"graph is disconnected: {len(roots)} fragments remain"
        )
    return SpanningTreeResult(
        parents=result.forest.parents,
        children=result.forest.children,
        root=roots[0],
        phases=result.phases,
        tree_edges=result.forest.tree_edges(net),
    )
