"""Tests for NodeId / OpaqueId and the comparison-based discipline."""

import pytest

from repro.congest.ids import IdAssignment, NodeId, OpaqueId, id_value
from repro.errors import ComparisonDisciplineError, ReproError


def test_nodeid_comparisons():
    a, b = NodeId(3), NodeId(7)
    assert a < b and b > a and a <= b and b >= a
    assert a != b
    assert NodeId(3) == NodeId(3)


def test_nodeid_value_access():
    assert NodeId(42).value == 42


def test_nodeid_rejects_arithmetic():
    with pytest.raises(TypeError):
        NodeId(1) + NodeId(2)
    with pytest.raises(TypeError):
        int(NodeId(1))


def test_nodeid_hashable():
    s = {NodeId(1), NodeId(2), NodeId(1)}
    assert len(s) == 2


def test_nodeid_sortable():
    ids = [NodeId(5), NodeId(1), NodeId(3)]
    assert [id_value(x) for x in sorted(ids)] == [1, 3, 5]


def test_opaque_comparisons_allowed():
    a, b = OpaqueId(3, salt=1), OpaqueId(7, salt=1)
    assert a < b
    assert a == OpaqueId(3, salt=1)
    assert max(a, b) is b


def test_opaque_value_forbidden():
    with pytest.raises(ComparisonDisciplineError):
        OpaqueId(3).value


def test_opaque_arithmetic_forbidden():
    with pytest.raises(ComparisonDisciplineError):
        OpaqueId(3) + OpaqueId(4)
    with pytest.raises(ComparisonDisciplineError):
        int(OpaqueId(3))
    with pytest.raises(ComparisonDisciplineError):
        [10, 20][OpaqueId(1)]


def test_opaque_format_forbidden():
    with pytest.raises(ComparisonDisciplineError):
        format(OpaqueId(3), "d")
    # repr (no spec) is fine for debugging
    assert "OpaqueId" in repr(OpaqueId(3))


def test_opaque_hash_usable_but_salted():
    a = OpaqueId(5, salt=1)
    b = OpaqueId(5, salt=2)
    assert {a: "x"}[OpaqueId(5, salt=1)] == "x"
    assert hash(a) != hash(b) or True  # salts make collisions unlikely


def test_engine_backdoor():
    assert id_value(OpaqueId(9)) == 9


def test_mixed_opaque_plain_equality():
    # Equality across flavors is by value (engine compares both kinds).
    assert OpaqueId(4) == NodeId(4)


def test_assignment_distinct_required():
    with pytest.raises(ReproError):
        IdAssignment([1, 1, 2])


def test_assignment_nonnegative_required():
    with pytest.raises(ReproError):
        IdAssignment([-1, 0])


def test_assignment_random_poly_space():
    a = IdAssignment.random(100, seed=3)
    assert len(a) == 100
    assert len(set(a.values())) == 100
    assert max(a.values()) < 100 * 100


def test_assignment_random_space_too_small():
    with pytest.raises(ReproError):
        IdAssignment.random(10, seed=0, space=5)


def test_assignment_identity_and_lookup():
    a = IdAssignment.identity(5)
    assert a.value_of(3) == 3
    assert a.vertex_of_value(4) == 4


def test_assignment_from_mapping():
    a = IdAssignment.from_mapping({0: 10, 1: 20, 2: 5}, 3)
    assert a.value_of(2) == 5
    with pytest.raises(ReproError):
        IdAssignment.from_mapping({0: 1, 2: 3}, 3)


def test_assignment_with_swapped():
    a = IdAssignment([10, 20, 30])
    b = a.with_swapped(0, 2)
    assert b.value_of(0) == 30 and b.value_of(2) == 10
    assert a.value_of(0) == 10  # original untouched


def test_order_isomorphic():
    a = IdAssignment([1, 5, 9])
    b = IdAssignment([2, 6, 10])
    pairs = [(0, 0), (1, 1), (2, 2)]
    assert a.order_isomorphic_to(b, pairs)
    c = IdAssignment([2, 10, 6])
    assert not a.order_isomorphic_to(c, pairs)


def test_space_bound():
    a = IdAssignment([3, 17, 8])
    assert a.space_bound() == 18
