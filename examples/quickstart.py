#!/usr/bin/env python3
"""Quickstart: color a graph and find an MIS with o(m) communication.

Builds a dense random network (the regime where m >> n^1.5, i.e. where
message-frugality matters), runs the paper's Algorithm 1 for
(Δ+1)-coloring and Algorithm 3 for MIS, verifies both outputs, and
compares the message bills against the classical Ω(m)-message algorithms.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.graphs.generators import connected_gnp_graph


def main() -> None:
    n, p = 400, 0.35
    graph = connected_gnp_graph(n, p, seed=7)
    print(f"network: n={graph.n} nodes, m={graph.m} edges, "
          f"Δ={graph.max_degree()}, n^1.5={int(graph.n ** 1.5)}")

    # --- (Δ+1)-coloring ---------------------------------------------------
    new = api.color_graph(graph, method="kt1-delta-plus-one", seed=1)
    old = api.color_graph(graph, method="baseline-trial", seed=2)
    assert new.valid and old.valid
    print("\n(Δ+1)-coloring")
    print(f"  Algorithm 1 (KT-1, non-comparison): "
          f"{new.messages:>8} messages, {new.report.rounds} rounds, "
          f"{new.num_colors} colors")
    print(f"  classical trial coloring (Ω(m))   : "
          f"{old.messages:>8} messages, {old.report.rounds} rounds, "
          f"{old.num_colors} colors")
    print(f"  message saving: "
          f"{100 * (1 - new.messages / old.messages):.0f}%")

    # --- MIS ---------------------------------------------------------------
    mis_new = api.find_mis(graph, method="kt2-sampled-greedy", seed=3)
    mis_old = api.find_mis(graph, method="luby", seed=4)
    assert mis_new.valid and mis_old.valid
    print("\nMIS")
    print(f"  Algorithm 3 (KT-2, comparison-based): "
          f"{mis_new.messages:>8} messages, {mis_new.report.rounds} rounds, "
          f"|MIS|={mis_new.size}")
    print(f"  Luby (KT-1, Ω(m))                  : "
          f"{mis_old.messages:>8} messages, {mis_old.report.rounds} rounds, "
          f"|MIS|={mis_old.size}")
    print(f"  message saving: "
          f"{100 * (1 - mis_new.messages / mis_old.messages):.0f}%")

    print("\nBoth outputs verified (proper coloring / independent+maximal).")


if __name__ == "__main__":
    main()
