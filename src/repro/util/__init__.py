"""Shared utilities: limited-independence hashing, tail bounds, bit strings.

These are the tools from Appendix A of the paper:

* :mod:`repro.util.hashing` — c-wise independent hash families (Lemma A.4).
* :mod:`repro.util.tail_bounds` — Chernoff bounds under limited independence
  (Lemmas A.1 and A.2).
* :mod:`repro.util.bitstrings` — packing random bits into CONGEST words for
  the broadcast of shared randomness (Section 3.1, Step 1).
"""

from repro.util.hashing import KWiseHashFamily, KWiseHash, hash_family_from_bits
from repro.util.tail_bounds import (
    kwise_concentration_bound,
    kwise_chernoff_upper,
    required_independence,
)
from repro.util.bitstrings import BitString, random_bitstring

__all__ = [
    "KWiseHashFamily",
    "KWiseHash",
    "hash_family_from_bits",
    "kwise_concentration_bound",
    "kwise_chernoff_upper",
    "required_independence",
    "BitString",
    "random_bitstring",
]
