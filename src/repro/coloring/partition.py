"""The Chang et al. [7] graph partition under limited independence.

Given maximum degree Delta, set k = ceil(sqrt(Delta)) and
q = Theta(sqrt(log n) / Delta^{1/4}).  Each vertex joins the *leftover*
set L with probability q, otherwise joins one of B_1..B_k uniformly; each
color of the global palette joins one of C_1..C_k uniformly.  Lemma 3.1:
the four properties (part sizes, available colors in B_i, available
colors in L, remaining degrees) hold whp even when both partitions are
driven by O(log n)-wise independent hash functions — which is what lets
Algorithm 1 replace Chang et al.'s state exchange with *local hashing of
neighbor IDs* under KT-1.

All membership predicates take raw ID values: they are exactly the
computations a node performs on its own ID and its neighbors' IDs after
the random string R has been broadcast.  The paper's three hash functions
per recursion level are h_L (join L?), h (which B_i), and h_c (which C_i).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError
from repro.util.bitstrings import BitString
from repro.util.hashing import KWiseHash, KWiseHashFamily
from repro.util.tail_bounds import required_independence

#: Quantization range for the h_L threshold test (bias <= 2^-20).
PART_RANGE = 1 << 20

#: Sentinel part index for members of L.
L_PART = -1


@dataclass(frozen=True)
class LevelHashes:
    """The three hash functions of one recursion level."""

    h_l: KWiseHash
    h_b: KWiseHash
    h_c: KWiseHash


def _family(n: int, id_space: int, independence_constant: float
            ) -> KWiseHashFamily:
    c = required_independence(n, independence_constant)
    return KWiseHashFamily(id_space, PART_RANGE, c)


def bits_per_level(n: int, id_space: int,
                   independence_constant: float = 1.0) -> int:
    """Shared random bits consumed by one recursion level (3 functions)."""
    return 3 * _family(n, id_space, independence_constant).bits_needed


def derive_level_hashes(bits: BitString, level: int, n: int, id_space: int,
                        independence_constant: float = 1.0) -> LevelHashes:
    """Peel the three level-``level`` hash functions off the string R.

    Every node runs this identical computation on the broadcast string, so
    all nodes agree on all hash functions without further communication.
    """
    family = _family(n, id_space, independence_constant)
    per = family.bits_needed
    offset = 3 * level * per
    if offset + 3 * per > len(bits):
        raise ReproError(
            f"random string too short for level {level}: "
            f"need {offset + 3 * per} bits, have {len(bits)}"
        )
    seq = bits.bits
    h_l = family.sample_from_bits(seq[offset:offset + per])
    h_b = family.sample_from_bits(seq[offset + per:offset + 2 * per])
    h_c = family.sample_from_bits(seq[offset + 2 * per:offset + 3 * per])
    return LevelHashes(h_l=h_l, h_b=h_b, h_c=h_c)


def level_q(n: int, delta: int, cap: float = 0.75,
            constant: float = 0.75) -> float:
    """The L-probability q = Theta(sqrt(log n) / Delta^{1/4}).

    The Theta constant (and the cap keeping q bounded away from 1 at
    simulation scales, where Delta barely exceeds log^2 n) is a tuning
    knob; Lemma 3.1's properties are insensitive to it and the Johansson
    deferral safety net catches any slack violation.
    """
    if delta <= 0:
        return cap
    return min(cap, constant * math.sqrt(math.log(max(n, 3)))
               / (delta ** 0.25))


def level_k(delta: int) -> int:
    """Number of parts k = ceil(sqrt(Delta))."""
    return max(1, math.ceil(math.sqrt(max(delta, 1))))


def is_l_member(hashes: LevelHashes, id_value: int, q: float) -> bool:
    """Does the node with this ID join L at this level?"""
    return hashes.h_l(id_value) < q * PART_RANGE


def part_index(hashes: LevelHashes, id_value: int, k: int) -> int:
    """Which B_i a non-L node joins (uniform over [k], bias <= k/2^20)."""
    return hashes.h_b(id_value) % k


def color_part(hashes: LevelHashes, color: int, k: int) -> int:
    """Which C_i a color joins."""
    return hashes.h_c(color) % k


def member_part(hashes: LevelHashes, id_value: int, q: float, k: int) -> int:
    """Full membership: L_PART for L, otherwise the B_i index."""
    if is_l_member(hashes, id_value, q):
        return L_PART
    return part_index(hashes, id_value, k)


def palette_in_part(hashes: LevelHashes, palette, part: int, k: int
                    ) -> frozenset[int]:
    """Psi(v) ∩ C_part — the list a B_part vertex colors from."""
    return frozenset(c for c in palette if color_part(hashes, c, k) == part)


# -- whole-graph views for tests and experiments (Lemma 3.1) ----------------

def compute_partition(graph, id_values: Sequence[int], hashes: LevelHashes,
                      q: float, k: int) -> list[int]:
    """Part of every vertex (L_PART or 0..k-1), as a list by vertex."""
    return [member_part(hashes, id_values[v], q, k) for v in range(graph.n)]


def partition_properties(graph, id_values: Sequence[int],
                         hashes: LevelHashes, q: float, k: int,
                         palette_size: int) -> dict:
    """Measure the four Lemma 3.1 properties on a concrete partition.

    Returns a dict with, per part: edge counts |E(G[B_i])|, the minimum
    slack of property (ii) (available colors minus Delta_i - 1), the L
    size and degree bounds.  Tests and the bench harness compare these
    against the lemma's envelopes.
    """
    parts = compute_partition(graph, id_values, hashes, q, k)
    edges_in_part = [0] * k
    edges_in_l = 0
    deg_same = [0] * graph.n
    for u, v in graph.edges():
        if parts[u] == parts[v]:
            if parts[u] == L_PART:
                edges_in_l += 1
            else:
                edges_in_part[parts[u]] += 1
            deg_same[u] += 1
            deg_same[v] += 1
    delta_i = [0] * k
    delta_l = 0
    for v in range(graph.n):
        p = parts[v]
        if p == L_PART:
            delta_l = max(delta_l, deg_same[v])
        else:
            delta_i[p] = max(delta_i[p], deg_same[v])
    # Property (ii): available colors in each B_i.
    min_slack = None
    for v in range(graph.n):
        p = parts[v]
        if p == L_PART:
            continue
        palette = range(min(palette_size, graph.degree(v) + 1))
        avail = sum(1 for c in palette if color_part(hashes, c, k) == p)
        slack = avail - (delta_i[p] + 1)
        if min_slack is None or slack < min_slack:
            min_slack = slack
    # Property (iii): available colors in L after B's are colored.
    min_l_slack = None
    for v in range(graph.n):
        if parts[v] != L_PART:
            continue
        g_l = (graph.degree(v) + 1) - (graph.degree(v) - deg_same[v])
        bound = max(deg_same[v], delta_l - delta_l ** 0.75) + 1
        slack = g_l - bound
        if min_l_slack is None or slack < min_l_slack:
            min_l_slack = slack
    l_size = sum(1 for p in parts if p == L_PART)
    return {
        "parts": parts,
        "edges_in_part": edges_in_part,
        "edges_in_l": edges_in_l,
        "delta_i": delta_i,
        "delta_l": delta_l,
        "l_size": l_size,
        "min_b_slack": min_slack,
        "min_l_slack": min_l_slack,
    }
