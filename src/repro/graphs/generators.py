"""Graph generators for the experiments and benchmarks.

Every generator takes an explicit ``seed`` (or ``rng``) so benchmark runs
are reproducible.  The families here are the ones the paper's bounds are
exercised on:

* Gnp / random-regular / power-law — generic workloads for the upper bounds
  (dense Gnp gives m >> n^1.5, the regime where o(m) matters).
* complete bipartite + the tiered bipartite X-Y-Z gadget — the lower-bound
  construction of Section 2.2 (Figure 2).
* disjoint k-cycles — the KT-rho lower bound of Theorem 2.17.
* barbell — a high-diameter stress test for the danner.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ReproError
from repro.graphs.core import Graph


def _rng_from(seed) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def gnp_random_graph(n: int, p: float, seed=0) -> Graph:
    """Erdos-Renyi G(n, p) via geometric edge skipping (O(n + m) time)."""
    if not 0.0 <= p <= 1.0:
        raise ReproError("p must be in [0, 1]")
    rng = _rng_from(seed)
    edges: list[tuple[int, int]] = []
    if p == 0.0 or n < 2:
        return Graph(n, edges)
    if p == 1.0:
        return complete_graph(n)
    import math

    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            edges.append((v, w))
    return Graph(n, edges)


def connected_gnp_graph(n: int, p: float, seed=0, max_tries: int = 60) -> Graph:
    """G(n, p) conditioned on connectivity (resamples; then patches)."""
    rng = _rng_from(seed)
    from repro.graphs.analysis import connected_components

    for _ in range(max_tries):
        g = gnp_random_graph(n, p, rng)
        comps = connected_components(g)
        if len(comps) == 1:
            return g
    # Patch: link consecutive components with one random edge each.
    g = gnp_random_graph(n, p, rng)
    comps = connected_components(g)
    extra = []
    for a, b in zip(comps, comps[1:]):
        extra.append((rng.choice(sorted(a)), rng.choice(sorted(b))))
    return g.with_edges(added=extra)


def random_regular_graph(n: int, d: int, seed=0, max_tries: int = 60) -> Graph:
    """A random d-regular simple graph.

    Tries the configuration model first; for dense degrees (where simple
    outcomes are exponentially rare) falls back to a circulant graph
    randomized by double edge swaps, which is guaranteed simple and
    d-regular.
    """
    if (n * d) % 2 != 0:
        raise ReproError("n * d must be even for a d-regular graph")
    if d >= n:
        raise ReproError("degree must be below n")
    rng = _rng_from(seed)
    for _ in range(max_tries):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if ok:
            return Graph(n, edges)
    return _circulant_with_swaps(n, d, rng)


def _circulant_with_swaps(n: int, d: int, rng: random.Random) -> Graph:
    """Deterministic circulant base + random double edge swaps."""
    edges: set[tuple[int, int]] = set()
    for offset in range(1, d // 2 + 1):
        for v in range(n):
            u = (v + offset) % n
            edges.add((min(u, v), max(u, v)))
    if d % 2 == 1:
        # odd degree needs even n: add the antipodal perfect matching
        for v in range(n // 2):
            u = v + n // 2
            edges.add((v, u))
    edge_list = list(edges)
    # Randomize with double edge swaps: {a,b},{c,d} -> {a,c},{b,d}.
    for _ in range(10 * len(edge_list)):
        i, j = rng.randrange(len(edge_list)), rng.randrange(len(edge_list))
        if i == j:
            continue
        a, b = edge_list[i]
        c, e = edge_list[j]
        if len({a, b, c, e}) < 4:
            continue
        new1 = (min(a, c), max(a, c))
        new2 = (min(b, e), max(b, e))
        if new1 in edges or new2 in edges:
            continue
        edges.discard(edge_list[i])
        edges.discard(edge_list[j])
        edges.add(new1)
        edges.add(new2)
        edge_list[i], edge_list[j] = new1, new2
    return Graph(n, edges)


def power_law_graph(n: int, attachment: int = 3, seed=0) -> Graph:
    """Barabasi-Albert preferential attachment (power-law degrees)."""
    if attachment < 1 or attachment >= n:
        raise ReproError("attachment must be in [1, n)")
    rng = _rng_from(seed)
    edges: list[tuple[int, int]] = []
    targets = list(range(attachment))
    repeated: list[int] = list(range(attachment))
    for v in range(attachment, n):
        chosen = set()
        while len(chosen) < attachment:
            chosen.add(rng.choice(repeated) if repeated else rng.randrange(v))
        for u in chosen:
            edges.append((u, v))
            repeated.append(u)
            repeated.append(v)
        targets.append(v)
    return Graph(n, edges)


def complete_graph(n: int) -> Graph:
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b} with left part 0..a-1 and right part a..a+b-1."""
    return Graph(a + b, [(u, a + v) for u in range(a) for v in range(b)])


def cycle_graph(k: int) -> Graph:
    if k < 3:
        raise ReproError("a cycle needs at least 3 vertices")
    return Graph(k, [(i, (i + 1) % k) for i in range(k)])


def disjoint_cycles(num_cycles: int, k: int) -> Graph:
    """The Theorem 2.17 family: ``num_cycles`` disjoint k-cycles."""
    edges = []
    for c in range(num_cycles):
        base = c * k
        edges.extend((base + i, base + (i + 1) % k) for i in range(k))
    return Graph(num_cycles * k, edges)


def barbell_graph(clique: int, path: int) -> Graph:
    """Two ``clique``-cliques joined by a ``path``-vertex path (big D)."""
    if clique < 2:
        raise ReproError("cliques need at least 2 vertices")
    edges = []
    # Left clique: 0..clique-1, right clique: clique+path..2*clique+path-1
    for u in range(clique):
        for v in range(u + 1, clique):
            edges.append((u, v))
    offset = clique + path
    for u in range(clique):
        for v in range(u + 1, clique):
            edges.append((offset + u, offset + v))
    chain = [clique - 1] + [clique + i for i in range(path)] + [offset]
    edges.extend(zip(chain, chain[1:]))
    return Graph(2 * clique + path, edges)


def grid_graph(n: int) -> Graph:
    """A near-square 2D lattice on exactly ``n`` vertices.

    Vertex v sits at (v // cols, v % cols) with cols = ceil(sqrt(n));
    the last row may be partial.  Every vertex links left and up, so the
    lattice is connected for any n >= 1.  Bounded degree (<= 4) and
    Theta(sqrt n) diameter — the opposite regime from dense gnp, where
    m ~ n and the o(m) message bounds are vacuous but round behavior and
    synchronizer overhead per edge are cleanly visible.
    """
    if n < 1:
        raise ReproError("grid needs at least one vertex")
    import math

    cols = max(1, math.isqrt(n - 1) + 1)
    edges = []
    for v in range(n):
        if (v % cols) != cols - 1 and v + 1 < n:
            edges.append((v, v + 1))
        if v + cols < n:
            edges.append((v, v + cols))
    return Graph(n, edges)


def torus_graph(n: int) -> Graph:
    """A 2D torus (wraparound grid) on approximately ``n`` vertices.

    cols = max(3, isqrt(n)) and rows = max(3, round(n / cols)), so the
    built vertex count rows*cols quantizes the request (like the
    expander lift does).  Every vertex has degree exactly 4 and the
    diameter is Theta(sqrt n) with no boundary effects — the clean
    bounded-degree workload for fault sweeps, where a crash's blast
    radius is a fixed 4-neighborhood regardless of n.
    """
    if n < 9:
        raise ReproError("torus needs at least 9 vertices (3x3)")
    import math

    cols = max(3, math.isqrt(n))
    rows = max(3, round(n / cols))
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            edges.append((v, r * cols + (c + 1) % cols))
            edges.append((v, ((r + 1) % rows) * cols + c))
    # wraparound can duplicate edges only for rows/cols < 3, excluded above
    return Graph(rows * cols, edges)


def hypercube_graph(n: int) -> Graph:
    """The d-dimensional hypercube nearest ``n`` vertices (2^d built).

    d = max(1, round(log2 n)); vertices are bitstrings 0..2^d-1 and
    u ~ v iff they differ in one bit.  Degree = diameter = d = Theta(log
    n): the logarithmic-degree middle ground between the constant-degree
    torus and dense gnp.
    """
    if n < 2:
        raise ReproError("hypercube needs at least 2 vertices")
    import math

    d = max(1, round(math.log2(n)))
    size = 1 << d
    edges = [(v, v ^ (1 << b)) for v in range(size) for b in range(d)
             if v < v ^ (1 << b)]
    return Graph(size, edges)


def random_regular_lift(n: int, d: int = 4, seed=0) -> Graph:
    """A random degree-``d`` lift of K_{d+1} — an expander whp.

    The base graph K_{d+1} is d-regular; an L-lift replaces each base
    vertex u with a fiber {(u, 0), ..., (u, L-1)} and each base edge
    {u, v} with a random perfect matching between the fibers (a uniform
    permutation pi: (u, i) ~ (v, pi(i))).  Random lifts of expanders are
    expanders whp (Bilu–Linial), the result is exactly d-regular and
    simple by construction, and L = round(n / (d+1)) fibers put the
    vertex count within a fiber of ``n``.  Rarely the lift is
    disconnected; consecutive components are then patched with one
    random edge each (as :func:`connected_gnp_graph` does).
    """
    if d < 3:
        raise ReproError("expander lift needs degree >= 3")
    rng = _rng_from(seed)
    base = d + 1
    lift = max(1, round(n / base))
    edges: list[tuple[int, int]] = []
    for u in range(base):
        for v in range(u + 1, base):
            perm = list(range(lift))
            rng.shuffle(perm)
            edges.extend(
                (u * lift + i, v * lift + perm[i]) for i in range(lift)
            )
    g = Graph(base * lift, edges)
    from repro.graphs.analysis import connected_components

    comps = connected_components(g)
    if len(comps) == 1:
        return g
    extra = []
    for a, b in zip(comps, comps[1:]):
        extra.append((rng.choice(sorted(a)), rng.choice(sorted(b))))
    return g.with_edges(added=extra)


def planted_partition_graph(n: int, p_in: float, p_out: float,
                            blocks: int = 4, seed=0) -> Graph:
    """A planted-partition (stochastic block model) graph.

    ``blocks`` contiguous communities of near-equal size; each
    within-community pair is an edge with probability ``p_in``, each
    cross pair with ``p_out`` (p_out << p_in plants the partition).
    Communities whose internal density is high while the cut is sparse
    are the natural stress case for the partition-based coloring
    (Algorithm 1's B_i parts vs. the planted ones) and for synchronizer
    locality.  Connectivity is patched the same way as
    :func:`connected_gnp_graph`: components get linked by one random
    edge each.
    """
    if not 0.0 <= p_out <= p_in <= 1.0:
        raise ReproError("planted partition needs 0 <= p_out <= p_in <= 1")
    if blocks < 1 or blocks > n:
        raise ReproError("blocks must be in [1, n]")
    rng = _rng_from(seed)
    block_of = [min(v * blocks // n, blocks - 1) for v in range(n)]
    edges = []
    for u in range(n):
        bu = block_of[u]
        for v in range(u + 1, n):
            prob = p_in if block_of[v] == bu else p_out
            if rng.random() < prob:
                edges.append((u, v))
    g = Graph(n, edges)
    from repro.graphs.analysis import connected_components

    comps = connected_components(g)
    if len(comps) == 1:
        return g
    extra = []
    for a, b in zip(comps, comps[1:]):
        extra.append((rng.choice(sorted(a)), rng.choice(sorted(b))))
    return g.with_edges(added=extra)


def regular_degree_for(n: int, p: float) -> int:
    """Feasible regular degree for density knob ``p``: d <= n-1, d*n even.

    Without the clamp a large ``p`` requests degree >= n, which no simple
    graph supports; the parity bump must also respect the cap.
    """
    d = max(2, int(p * n))
    d = min(d, n - 1)
    if (d * n) % 2:
        d += 1 if d < n - 1 else -1
    return max(d, 0)


def family_built_n(family: str, n: int, p: float = 0.2) -> int:
    """The vertex count :func:`family_graph` will actually build.

    Families that quantize the requested size — expander lifts round to
    a whole number of fibers, barbell to clique/path arithmetic — build
    a graph whose ``n`` differs from the request.  Records must carry
    the *built* n (a wrong x-coordinate biases exponent fits), and
    failure records have no graph to read it from, so this computes it
    without constructing any edges.  Kept in lockstep with
    :func:`family_graph`'s dispatch below.
    """
    if family == "barbell":
        return 2 * (n // 2) + max(1, n // 10)
    if family == "expander":
        d = max(3, min(8, int(round(p * 16))))
        return max(1, round(n / (d + 1))) * (d + 1)
    if family == "torus":
        import math

        cols = max(3, math.isqrt(n))
        return cols * max(3, round(n / cols))
    if family == "hypercube":
        import math

        return 1 << max(1, round(math.log2(n)))
    return n


def family_graph(family: str, n: int, p: float = 0.2, seed=0) -> Graph:
    """Build a graph from a ``(family, n, density-knob, seed)`` spec.

    The shared workload vocabulary of the CLI and the experiment sweeps:
    ``gnp`` (edge probability p), ``regular`` (degree ~ p*n, clamped
    feasible), ``powerlaw`` (attachment ~ 10p), ``barbell`` (p ignored),
    ``grid`` (2D lattice, p ignored), ``torus`` (wraparound grid,
    p ignored), ``hypercube`` (2^round(log2 n) vertices, p ignored),
    ``expander`` (random d-regular lift of K_{d+1} with d ~ 16p clamped
    to [3, 8]), and ``planted`` (planted partition with p_in = p,
    p_out = p/8, 4 blocks).  Size quantization here must stay in
    lockstep with :func:`family_built_n`.
    """
    if family == "gnp":
        return connected_gnp_graph(n, p, seed=seed)
    if family == "regular":
        return random_regular_graph(n, regular_degree_for(n, p), seed=seed)
    if family == "powerlaw":
        return power_law_graph(n, attachment=max(2, int(p * 10)), seed=seed)
    if family == "barbell":
        return barbell_graph(n // 2, max(1, n // 10))
    if family == "grid":
        return grid_graph(n)
    if family == "torus":
        return torus_graph(n)
    if family == "hypercube":
        return hypercube_graph(n)
    if family == "expander":
        d = max(3, min(8, int(round(p * 16))))
        return random_regular_lift(n, d, seed=seed)
    if family == "planted":
        return planted_partition_graph(
            n, p_in=p, p_out=p / 8, blocks=min(4, max(1, n // 8)),
            seed=seed,
        )
    raise ReproError(f"unknown graph family {family!r}")


def tiered_bipartite(t: int) -> tuple[Graph, dict[str, list[int]]]:
    """The lower-bound gadget G(X, Y, Z, E) of Section 2.2.

    |X| = |Y| = |Z| = t; G[X u Y] and G[Y u Z] are both K_{t,t}, so
    |E| = 2 t^2.  Returns the graph and the parts, with vertices numbered
    X = 0..t-1, Y = t..2t-1, Z = 2t..3t-1.
    """
    if t < 1:
        raise ReproError("t must be >= 1")
    xs = list(range(t))
    ys = list(range(t, 2 * t))
    zs = list(range(2 * t, 3 * t))
    edges = [(x, y) for x in xs for y in ys]
    edges.extend((y, z) for y in ys for z in zs)
    return Graph(3 * t, edges), {"X": xs, "Y": ys, "Z": zs}


def graph_from_networkx(g) -> Graph:
    """Convert a networkx graph with integer-convertible nodes."""
    mapping = {v: i for i, v in enumerate(sorted(g.nodes()))}
    return Graph(
        g.number_of_nodes(),
        [(mapping[u], mapping[v]) for u, v in g.edges()],
    )


def random_spanning_subgraph(g: Graph, keep: float, seed=0) -> Graph:
    """Keep each edge independently with probability ``keep`` (tests)."""
    rng = _rng_from(seed)
    return Graph(g.n, [e for e in g.edges() if rng.random() < keep])


def relabelled(g: Graph, permutation: Sequence[int]) -> Graph:
    """Apply a vertex permutation (tests of isomorphism invariance)."""
    if sorted(permutation) != list(range(g.n)):
        raise ReproError("not a permutation of the vertex set")
    return Graph(g.n, [(permutation[u], permutation[v]) for u, v in g.edges()])
