"""Tests for the one-call API facade."""

import pytest

from repro import api
from repro.errors import ReproError
from repro.graphs.generators import connected_gnp_graph

from tests.conftest import connected_families


@pytest.fixture(scope="module")
def workload():
    return connected_gnp_graph(120, 0.2, seed=42)


def test_color_graph_default(workload):
    result = api.color_graph(workload, seed=1)
    assert result.valid
    assert result.num_colors <= result.palette_bound
    assert result.report.n == workload.n
    assert result.messages > 0


def test_color_graph_eps_delta(workload):
    result = api.color_graph(workload, method="kt1-eps-delta",
                             epsilon=0.5, seed=2)
    assert result.valid
    assert result.palette_bound >= workload.max_degree() + 1


def test_color_graph_baselines(workload):
    trial = api.color_graph(workload, method="baseline-trial", seed=3)
    greedy = api.color_graph(workload, method="baseline-rank-greedy", seed=4)
    assert trial.valid and greedy.valid
    # rank-greedy is deterministic 2m messages
    assert greedy.report.messages == 2 * workload.m \
        or greedy.report.messages == pytest.approx(2 * workload.m, rel=0.2)


def test_color_graph_async(workload):
    result = api.color_graph(workload, seed=5, asynchronous=True)
    assert result.valid


def test_async_eps_delta_auto_synchronized(workload):
    """Algorithm 2 is round-cadence, yet runs async via the auto-wrapped
    alpha-synchronizer; the report carries the cost of asynchrony."""
    result = api.color_graph(workload, method="kt1-eps-delta", seed=5,
                             asynchronous=True)
    assert result.valid
    rep = result.report
    assert rep.engine == "async" and rep.latency == "uniform"
    assert rep.synchronized_stages >= 1
    assert rep.overhead_messages == rep.messages - rep.sync_messages
    assert rep.overhead_messages > 0      # acks + safes are not free
    # The shadow baseline is the synchronous run of the same cell.
    sync = api.color_graph(workload, method="kt1-eps-delta", seed=5)
    assert rep.sync_messages == sync.report.messages
    assert rep.sync_rounds == sync.report.rounds
    # The elected broadcast root may differ across engines (Boruvka
    # merging is delivery-order dependent), so colors need not be
    # identical — but the protocol constants derived from the aggregate
    # must be.
    assert result.palette_bound == sync.palette_bound


def test_async_mis_every_method(workload):
    for method in ("kt2-sampled-greedy", "luby", "rank-greedy"):
        result = api.find_mis(workload, method=method, seed=6,
                              asynchronous=True)
        assert result.valid, method
        assert result.report.engine == "async"
        assert result.report.sync_messages is not None


def test_unknown_coloring_method(workload):
    with pytest.raises(ReproError):
        api.color_graph(workload, method="nope")


def test_find_mis_default(workload):
    result = api.find_mis(workload, seed=6)
    assert result.valid
    assert 0 < result.size < workload.n


def test_find_mis_luby_and_greedy(workload):
    for method in ("luby", "rank-greedy"):
        result = api.find_mis(workload, method=method, seed=7)
        assert result.valid, method


def test_unknown_mis_method(workload):
    with pytest.raises(ReproError):
        api.find_mis(workload, method="nope")


def test_report_stage_breakdown(workload):
    result = api.color_graph(workload, seed=8)
    assert sum(result.report.stage_messages.values()) == result.messages
    assert result.report.utilized_edges <= workload.m


def test_messages_per_edge(workload):
    result = api.find_mis(workload, method="luby", seed=9)
    assert result.report.messages_per_edge == (
        result.messages / workload.m
    )


@pytest.mark.parametrize("name,graph", connected_families(seed=1000)[:5])
def test_api_on_families(name, graph):
    coloring = api.color_graph(graph, seed=10)
    mis = api.find_mis(graph, seed=11)
    assert coloring.valid and mis.valid


def test_mis_non_comparison_flag(workload):
    """comparison_based=False must give the same validity (the flag only
    switches the discipline checker)."""
    result = api.find_mis(workload, seed=12, comparison_based=False)
    assert result.valid


def test_report_aggregates_repeated_stage_names():
    """A driver that reuses a stage name must not lose earlier stages'
    messages from the breakdown (regression: dict assignment overwrote)."""
    from repro.congest.network import SyncNetwork
    from repro.congest.node import NodeAlgorithm

    class Ping(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            if ctx.round == 0:
                for u in ctx.neighbor_ids:
                    ctx.send(u, "ping")
            ctx.done(None)

    g = connected_gnp_graph(20, 0.3, seed=3)
    net = SyncNetwork(g, seed=4)
    net.run(Ping, name="dup")
    net.run(Ping, name="dup")
    report = api._report("test", net)
    assert net.stats.messages > 0
    assert report.stage_messages == {"dup": net.stats.messages}
    assert sum(report.stage_messages.values()) == report.messages


def test_stats_lite_api(workload):
    """collect_utilization=False: same counts, no utilization detail."""
    full = api.color_graph(workload, seed=5)
    lite = api.color_graph(workload, seed=5, collect_utilization=False)
    assert lite.valid and lite.colors == full.colors
    assert lite.messages == full.messages
    assert lite.report.rounds == full.report.rounds
    assert lite.report.stage_messages == full.report.stage_messages
    assert lite.report.utilized_edges == 0
    assert full.report.utilized_edges > 0

    m_full = api.find_mis(workload, seed=5)
    m_lite = api.find_mis(workload, seed=5, collect_utilization=False)
    assert m_lite.in_mis == m_full.in_mis
    assert m_lite.messages == m_full.messages
