"""Flooding and tree primitives: the Corollary 1.2 toolkit.

Given a sparse spanning subgraph (danner) or a spanning tree, the paper
repeatedly needs to (a) elect a leader, (b) broadcast a short random
string, and (c) upcast small aggregates (the |E(G[L])| check in Algorithm
1, Step 4).  These stages implement those moves over an arbitrary *active
edge set*: each node is told (or has locally computed) which incident
edges participate, so running them over a danner H costs Õ(|H|) messages
and O(diam(H)) rounds rather than Ω(m).

All stages follow the same convention: every node calls ``ctx.done`` in
round 0 with a provisional output and keeps updating it as messages
arrive; the engine ends the stage at global quiescence.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.congest.ids import NodeId
from repro.congest.node import ColumnarStage, Context, NodeAlgorithm
from repro.errors import ProtocolError
from repro.util.bitstrings import BitString, random_bitstring


def _active_neighbors(ctx: Context, active) -> tuple[NodeId, ...]:
    if active is None:
        return ctx.neighbor_ids
    return tuple(u for u in ctx.neighbor_ids if u in active)


class FloodLeaderElect(ColumnarStage, NodeAlgorithm):
    """Flood the maximum ID over the active edges.

    Input: ``frozenset`` of active neighbor IDs (or None for all edges).
    Output: ``{"leader": id, "parent": id-or-None}`` where parent pointers
    form a tree toward the leader (the neighbor that first delivered the
    winning candidate).  Expected message cost O(|active| log n) — each
    node re-floods only when its best candidate improves.
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        self.active = _active_neighbors(ctx, ctx.input)
        self.best = ctx.my_id
        self.parent: Optional[NodeId] = None

    def _publish(self, ctx: Context) -> None:
        ctx.done({"leader": self.best, "parent": self.parent})

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0:
            # Only local maxima initiate: a node that already sees a
            # larger active neighbor ID cannot be the leader, and its
            # value would be suppressed one hop away regardless.  This
            # keeps correctness (the global maximum is a local maximum)
            # and cuts the startup wave from 2|H| to the local-maxima
            # fraction of it.
            improved = all(self.best > u for u in self.active)
        else:
            improved = False
        for msg in inbox:
            (candidate,) = msg.fields
            if candidate > self.best:
                self.best = candidate
                self.parent = msg.sender_id
                improved = True
        if improved:
            ctx.broadcast(self.active, "lead", self.best)
        self._publish(ctx)

    # -- columnar engine (docs/columnar.md) ----------------------------------

    @classmethod
    def build_columnar_kernel(cls, net, algorithms, contexts):
        from repro.congest.columnar import ActiveGraph, get_numpy

        np_ = get_numpy()
        if np_ is None:
            return None
        if net.collect_utilization:
            # "lead" payloads embed NodeIds, whose Definition 2.3
            # utilization bookkeeping lives on the scalar send path;
            # full-stats runs keep the reference execution.
            return None
        n = net._n
        vertex_of = net.vertex_of
        adjacency = [
            sorted(vertex_of(u) for u in alg.active) for alg in algorithms
        ]
        graph = ActiveGraph.build(np_, n, adjacency)
        if graph is None:
            return None
        return _FloodKernel(np_, net, graph, contexts)


class _FloodKernel:
    """Vectorized max-ID flooding with scalar-exact tie resolution.

    The only order-sensitive output is the parent pointer: the scalar
    stage adopts the sender of the *first* inbox message carrying the
    round's winning candidate, and inboxes are filled in emission order
    (activation order of the previous round; at round 0, ascending
    vertex).  The kernel therefore (a) emits each node's fan-out in the
    scalar broadcast order (active neighbors by ID value), (b) keeps
    every delivery batch in emission order, and (c) re-emits improvers
    in first-arrival ("touched") order — reproducing the scalar parent
    forest exactly, not just the leader.
    """

    def __init__(self, np_, net, graph, contexts):
        self.np = np_
        self.net = net
        self.graph = graph
        self.contexts = contexts
        n = self.n = net._n
        self.ids = net._ids
        values = np_.fromiter(
            (net.assignment.value_of(v) for v in range(n)),
            dtype=np_.int64, count=n,
        )
        self.values = values
        # Each node's out-edges in scalar fan-out order: the ``active``
        # tuple ascends by ID value, not by vertex index.
        self.emit_perm = np_.lexsort((values[graph.edst], graph.esrc))
        self.best = values.copy()

    def _emit(self, nodes):
        from repro.congest.columnar import SendBatch, block_positions

        np_ = self.np
        pos, owners = block_positions(np_, self.graph.indptr, nodes)
        if not len(pos):
            return []
        return [SendBatch(
            "lead", 0,
            self.emit_perm[pos],
            self.best[nodes][owners],
            np_.ones(len(pos), dtype=np_.int64),  # a NodeId is one word
        )]

    def begin(self):
        np_ = self.np
        graph = self.graph
        n = self.n
        ids = self.ids
        contexts = self.contexts
        for v in range(n):
            contexts[v].done({"leader": ids[v], "parent": None})
        from repro.congest.columnar import block_positions, masked_block_max

        deg = graph.indptr[1:] - graph.indptr[:-1]
        nbr_best = np_.full(n, -1, dtype=np_.int64)
        nodes = np_.flatnonzero(deg > 0)
        if len(nodes):
            pos, owners = block_positions(np_, graph.indptr, nodes)
            nbr_best[nodes] = masked_block_max(
                np_, self.values[graph.edst], pos, owners,
                graph.alive, len(nodes),
            )
        initiators = np_.flatnonzero(self.values > nbr_best)
        return self._emit(initiators)

    def deliver(self, arrivals):
        np_ = self.np
        esrc = self.graph.esrc
        edst = self.graph.edst
        eids = np_.concatenate([
            b.eids if sub is None else b.eids[sub] for b, sub in arrivals
        ])
        vals = np_.concatenate([
            b.values if sub is None else b.values[sub] for b, sub in arrivals
        ])
        senders = esrc[eids]
        receivers = edst[eids]
        k = len(eids)
        order = np_.argsort(receivers, kind="stable")
        rs = receivers[order]
        vs = vals[order]
        starts = np_.flatnonzero(
            np_.concatenate(([True], rs[1:] != rs[:-1]))
        )
        group_recv = rs[starts]
        gmax = np_.maximum.reduceat(vs, starts)
        counts = np_.diff(np_.append(starts, k))
        # First arrival position carrying the winning candidate; within a
        # group the stable sort keeps original (arrival) positions
        # ascending, so a masked min recovers "first".
        ismax = vs == np_.repeat(gmax, counts)
        firstmax = np_.minimum.reduceat(
            np_.where(ismax, order, k), starts
        )
        improved = gmax > self.best[group_recv]
        if not bool(improved.any()):
            return []
        upd = group_recv[improved]
        self.best[upd] = gmax[improved]
        parents = senders[firstmax[improved]]
        ids = self.ids
        contexts = self.contexts
        vertex_by_value = self.net._vertex_by_value
        for v, bval, pv in zip(
            upd.tolist(), gmax[improved].tolist(), parents.tolist()
        ):
            contexts[v].done(
                {"leader": ids[vertex_by_value[bval]], "parent": ids[pv]}
            )
        # Re-flood in scalar activation order: touched (first-arrival)
        # order restricted to the improvers.
        first_arrival = order[starts]
        sel = np_.argsort(first_arrival[improved], kind="stable")
        return self._emit(upd[sel])


class AdoptParents(NodeAlgorithm):
    """Turn parent pointers into bidirectional tree knowledge.

    Input: ``{"parent": id-or-None}``.  Each non-root sends one ADOPT to
    its parent; output is ``{"parent": ..., "children": frozenset}``.
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        self.parent = ctx.input.get("parent")
        self.children: set[NodeId] = set()

    def _publish(self, ctx: Context) -> None:
        ctx.done({"parent": self.parent, "children": frozenset(self.children)})

    def on_round(self, ctx: Context, inbox) -> None:
        for msg in inbox:
            self.children.add(msg.sender_id)
        if ctx.round == 0 and self.parent is not None:
            ctx.send(self.parent, "adopt")
        self._publish(ctx)


class TreeBroadcast(NodeAlgorithm):
    """Send a payload from the root down a known tree.

    Input: ``{"parent": ..., "children": ..., "payload": value-or-None}``
    (payload set only at the root).  Output: the payload, at every node.
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        self.parent = ctx.input.get("parent")
        self.children = ctx.input.get("children", frozenset())
        self.payload = ctx.input.get("payload")

    def _root_payload(self, ctx: Context):
        return self.payload

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0 and self.parent is None:
            self.payload = self._root_payload(ctx)
            if self.payload is None:
                raise ProtocolError("TreeBroadcast root has no payload")
            ctx.broadcast(self.children, "bcast", self.payload)
        for msg in inbox:
            (self.payload,) = msg.fields
            ctx.broadcast(self.children, "bcast", self.payload)
        ctx.done(self.payload)


class ChunkedTreeBroadcast(NodeAlgorithm):
    """Pipelined broadcast of a BitString down a known tree.

    The CONGEST idiom for long payloads: the root splits the string into
    word-sized chunks and streams them; relays forward each chunk as it
    arrives (links are FIFO), so the whole broadcast completes in
    O(depth + |payload| / log n) rounds instead of O(depth * |payload|).
    Message count is unchanged — one chunk per link per chunk.
    """

    passive_when_idle = True

    def __init__(self, chunk_bits: int = 0):
        self.chunk_bits = chunk_bits

    def setup(self, ctx: Context) -> None:
        if self.chunk_bits <= 0:
            # One message exactly: fill the words_per_message budget.
            self.chunk_bits = ctx.words_per_message * ctx.word_bits
        self.parent = ctx.input.get("parent")
        self.children = ctx.input.get("children", frozenset())
        self.payload = ctx.input.get("payload")
        self.received: list[BitString] = []

    def _root_payload(self, ctx: Context):
        return self.payload

    def _stream(self, ctx: Context, payload: BitString) -> None:
        size = self.chunk_bits
        pieces = [payload[i:i + size] for i in range(0, len(payload), size)]
        for i, piece in enumerate(pieces):
            tag = "bce" if i == len(pieces) - 1 else "bc"
            ctx.broadcast(self.children, tag, piece)

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0 and self.parent is None:
            self.payload = self._root_payload(ctx)
            if self.payload is None:
                raise ProtocolError("broadcast root has no payload")
            self._stream(ctx, self.payload)
            ctx.done(self.payload)
            return
        for msg in inbox:
            (piece,) = msg.fields
            self.received.append(piece)
            tag = msg.tag
            ctx.broadcast(self.children, tag, piece)
            if tag == "bce":
                # One-pass reassembly; incremental concat per arriving
                # chunk would be quadratic in the payload length.
                self.payload = BitString.concat_all(self.received)
        ctx.done(self.payload)


class ShareRandomBits(ChunkedTreeBroadcast):
    """Pipelined broadcast whose root generates ``nbits`` private bits.

    This is exactly the paper's use of Corollary 1.2: the elected leader
    locally generates Theta(polylog n) bits and disseminates them, giving
    every node *shared* randomness without assuming it in the model.
    """

    def __init__(self, nbits: int, chunk_bits: int = 0):
        super().__init__(chunk_bits)
        self.nbits = nbits

    def _root_payload(self, ctx: Context) -> BitString:
        return random_bitstring(ctx.rng, self.nbits)


class TreeAggregate(NodeAlgorithm):
    """Convergecast an associative aggregate up a tree, then echo it down.

    Input: ``{"parent": ..., "children": ..., "value": int}``.
    Output: the aggregate of all values, known to every node.
    The ``combine`` callable is part of the algorithm (not data).
    """

    passive_when_idle = True

    def __init__(self, combine: Callable[[int, int], int] = lambda a, b: a + b):
        self.combine = combine

    def setup(self, ctx: Context) -> None:
        self.parent = ctx.input.get("parent")
        self.children = ctx.input.get("children", frozenset())
        self.acc = ctx.input.get("value", 0)
        self.waiting = len(self.children)
        self.total: Optional[int] = None

    def _publish(self, ctx: Context) -> None:
        ctx.done(self.total)

    def _complete_subtree(self, ctx: Context) -> None:
        if self.parent is None:
            self.total = self.acc
            ctx.broadcast(self.children, "echo", self.total)
        else:
            ctx.send(self.parent, "agg", self.acc)

    def on_round(self, ctx: Context, inbox) -> None:
        for msg in inbox:
            if msg.tag == "agg":
                (v,) = msg.fields
                self.acc = self.combine(self.acc, v)
                self.waiting -= 1
                if self.waiting == 0:
                    self._complete_subtree(ctx)
            elif msg.tag == "echo":
                (self.total,) = msg.fields
                ctx.broadcast(self.children, "echo", self.total)
        if ctx.round == 0 and self.waiting == 0:
            self._complete_subtree(ctx)
        self._publish(ctx)


class FloodPayload(NodeAlgorithm):
    """Flood a payload over the active edges (no tree required).

    Input: ``{"active": frozenset-or-None, "payload": value-or-None}``.
    Nodes holding a payload at round 0 are initiators.  Every node
    forwards the first payload it sees exactly once, so the cost is one
    payload transmission per active edge direction.
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        self.active = _active_neighbors(ctx, ctx.input.get("active"))
        self.payload = ctx.input.get("payload")

    def on_round(self, ctx: Context, inbox) -> None:
        fresh = ctx.round == 0 and self.payload is not None
        for msg in inbox:
            if self.payload is None:
                (self.payload,) = msg.fields
                fresh = True
        if fresh:
            ctx.broadcast(self.active, "flood", self.payload)
        ctx.done(self.payload)


def elect_leader_and_tree(net, active_sets, name_prefix: str = "elect"):
    """Driver: leader election + tree adoption over an active edge set.

    Returns ``(leader_id, parents, children)`` with parents/children
    indexed by vertex.  ``active_sets`` is a per-vertex list of frozensets
    of neighbor IDs (or None for the full graph).
    """
    flood = net.run(
        FloodLeaderElect,
        inputs=active_sets if active_sets is not None else [None] * net.graph.n,
        name=f"{name_prefix}-flood",
    )
    leaders = {out["leader"] for out in flood.outputs}
    parents = [out["parent"] for out in flood.outputs]
    adopt = net.run(
        AdoptParents,
        inputs=[{"parent": p} for p in parents],
        name=f"{name_prefix}-adopt",
    )
    children = [out["children"] for out in adopt.outputs]
    # With a connected active set there is exactly one leader; otherwise
    # each component elects its own and the caller must reconcile (the
    # danner driver counts nodes to detect this).
    leader_id = max(leaders)
    return leader_id, parents, children
