"""ENGINE — the experiment-sweep subsystem as a perf benchmark.

Runs a reference multi-family, multi-seed sweep through
:mod:`repro.experiments` (worker pool, stats-lite engine mode) and writes
``BENCH_engine.json`` at the repo root: message counts, fitted growth
exponents, and wall-clock per cell.  Future PRs diff this artifact to see
whether the engine got faster or the algorithms chattier.

Run directly (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_engine.py [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.experiments import (
    SweepSpec,
    bench_payload,
    render_report,
    run_sweep,
    summarize,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BENCH_METHODS = ("kt1-delta-plus-one", "baseline-trial",
                 "kt2-sampled-greedy", "luby")

#: The shared-density reference matrix.  Sizes reach n=320 because the
#: n^1.5-vs-m separation only becomes visible once m >> n^1.5 — the
#: whole point of measuring the engine where it is actually loaded.
REFERENCE_SPEC = SweepSpec(
    families=("gnp", "regular"),
    sizes=(80, 140, 220, 320),
    seeds=(0, 1, 2),
    methods=BENCH_METHODS,
    density=0.25,
)

#: A denser gnp column (p = 0.45): m grows while n^1.5 stays put, so the
#: o(m) methods' advantage over the Omega(m) baselines widens — and the
#: engine's per-send costs dominate the wall clock, which is what this
#: benchmark exists to track.
DENSE_SPEC = SweepSpec(
    families=("gnp",),
    sizes=(80, 140, 220, 320),
    seeds=(0, 1, 2),
    methods=BENCH_METHODS,
    density=0.45,
)

#: The async column: Algorithm 1 under the event-driven engine (uniform
#: latency).  Each cell carries the shadow-sync baseline, so the artifact
#: charts the cost of asynchrony (overhead_messages) next to the sync
#: trajectory — and the async counts themselves become regression-gated.
ASYNC_SPEC = SweepSpec(
    families=("gnp",),
    sizes=(80, 140, 220, 320),
    seeds=(0, 1, 2),
    methods=("kt1-delta-plus-one",),
    engines=("async",),
    density=0.25,
)

SPECS = (REFERENCE_SPEC, DENSE_SPEC, ASYNC_SPEC)


def _dense_pass(scheduler: str | None) -> list[dict]:
    """One serial dense-column pass in a fresh worker process.

    ``workers=1`` gives a brand-new pool process per pass: serial cell
    execution (no sibling contention inflating numpy's memory-bandwidth
    appetite) and no allocator warm-up bias from a previous pass in the
    same interpreter — the two disciplines get identical conditions.
    """
    if scheduler:
        os.environ["REPRO_SCHEDULER"] = scheduler
    try:
        return run_sweep(DENSE_SPEC, store=None, workers=1)
    finally:
        os.environ.pop("REPRO_SCHEDULER", None)


def columnar_column() -> dict:
    """Measure the dense column under both synchronous schedulers.

    The dense gnp sweep is where per-send engine costs dominate, so it
    is the honest place to measure the columnar engine: same cells, same
    keys (``REPRO_SCHEDULER`` overrides delivery without touching the
    cell key), counts asserted identical between the two passes, wall
    clock recorded as its own column next to the scalar one.  ``run``
    calls this *before* the 4-way main sweep so both passes see the
    same quiet machine.
    """
    base = {r["key"]: r for r in _dense_pass(None)}
    col = {r["key"]: r for r in _dense_pass("columnar")}
    mismatches = sorted(
        key for key in col
        if (col[key]["messages"], col[key]["rounds"])
        != (base[key]["messages"], base[key]["rounds"])
    )
    rounds_wall = sum(r["wall_s"] for r in base.values())
    columnar_wall = sum(r["wall_s"] for r in col.values())
    return {
        "spec": "gnp p=0.45 dense column (serial passes)",
        "cells": {key: col[key]["wall_s"] for key in sorted(col)},
        "rounds_cell_wall_s": round(rounds_wall, 3),
        "columnar_cell_wall_s": round(columnar_wall, 3),
        "speedup": (round(rounds_wall / columnar_wall, 3)
                    if columnar_wall else None),
        "count_identical": not mismatches,
        "mismatches": mismatches,
    }


def run(workers: int = 4, out: str | None = None) -> dict:
    columnar_dense = columnar_column()
    t0 = time.perf_counter()
    records: list[dict] = []
    for spec in SPECS:
        records += run_sweep(spec, store=None, workers=workers)
    wall = time.perf_counter() - t0
    summary = summarize(records)
    payload = bench_payload(records, summary, wall_s=wall)
    payload["columnar_dense"] = columnar_dense
    print(render_report(summary))
    print(f"\n{len(records)} cells in {wall:.1f}s "
          f"({workers} workers)")
    cd = payload["columnar_dense"]
    print(f"columnar dense column: x{cd['speedup']} vs scalar rounds "
          f"(counts identical: {cd['count_identical']})")
    path = out or os.path.join(REPO_ROOT, "BENCH_engine.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return payload


def test_engine_sweep_benchmark(benchmark):
    """Pytest-benchmark entry: the sweep, serially, for timing stability."""
    payload = benchmark.pedantic(
        lambda: run(workers=0), rounds=1, iterations=1
    )
    # Every algorithm cell must have produced a verified-valid output.
    assert payload["runs"] == sum(spec.size for spec in SPECS)
    # Alg 1 must beat the Omega(m) baseline's growth on dense families,
    # in every density column.
    exps = {(e["family"], e["density"], e["method"]): e["messages_exponent"]
            for e in payload["exponents"]}
    for family, density in (("gnp", 0.25), ("regular", 0.25),
                            ("gnp", 0.45)):
        assert exps[(family, density, "kt1-delta-plus-one")] < \
            exps[(family, density, "baseline-trial")]
    # The columnar engine must be a pure delivery change: every dense
    # cell's messages/rounds identical to the scalar run.
    assert payload["columnar_dense"]["count_identical"], \
        payload["columnar_dense"]["mismatches"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=None)
    args = parser.parse_args()
    run(workers=args.workers, out=args.out)
