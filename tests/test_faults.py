"""The fault-model seam: parsing, semantics, determinism, and plumbing.

Covers the contracts ``docs/faults.md`` states:

* spec grammar (``drop:P``, ``crash:P[:T[:R]]``, ``adversary[:B[:W]]``);
* charged-but-undelivered drops (bandwidth is paid, delivery is not);
* crash windows on the cumulative engine clock, with recovery;
* the adversary's budget/warmup bounds;
* bit-identical records for a fixed (seed, fault spec) — within one
  process and across fresh interpreters with different hash seeds;
* ``faults="none"`` being literally the fault-free engine path;
* the sweep layer: cell keys, spec validation, runner record fields.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import api
from repro.congest.network import SyncNetwork
from repro.congest.runtime import (
    AdaptiveAdversary,
    MessageDrop,
    NodeCrash,
    make_fault_model,
)
from repro.errors import ReproError
from repro.graphs.generators import connected_gnp_graph, family_graph
from repro.mis.luby import run_luby


# -- spec grammar -------------------------------------------------------------


def test_none_specs_resolve_to_no_model():
    assert make_fault_model(None) is None
    assert make_fault_model("none") is None


def test_instances_pass_through():
    model = MessageDrop(p=0.3)
    assert make_fault_model(model) is model


def test_drop_spec_parsing():
    assert make_fault_model("drop").p == 0.05
    assert make_fault_model("drop:0.25").p == 0.25
    assert make_fault_model("drop:0").p == 0.0


def test_crash_spec_parsing():
    m = make_fault_model("crash")
    assert (m.p, m.at, m.recover) == (0.05, 16.0, None)
    m = make_fault_model("crash:0.2:8:4")
    assert (m.p, m.at, m.recover) == (0.2, 8.0, 4.0)


def test_adversary_spec_parsing():
    m = make_fault_model("adversary")
    assert (m.budget, m.warmup) == (64, 4)
    m = make_fault_model("adversary:32:2")
    assert (m.budget, m.warmup) == (32, 2)


@pytest.mark.parametrize("spec", [
    "drop:x", "drop:0.1:0.2", "crash:a", "crash:0.1:8:2:1",
    "adversary:1:2:3", "adversary:many", "bogus", 42,
])
def test_malformed_specs_raise(spec):
    with pytest.raises(ReproError):
        make_fault_model(spec)


#: The full accept/reject table for the spec grammar.  Accepted rows
#: check the constructed model's salient parameter; rejected rows check
#: both the exception type and that the message names the offending
#: spec — a bad entry in a 40-cell ``--faults`` axis must be findable
#: from the error alone.
ACCEPTED_SPECS = [
    ("drop", lambda m: m.p == 0.05),
    ("drop:0", lambda m: m.p == 0.0),
    ("drop:1", lambda m: m.p == 1.0),
    ("drop:0.25", lambda m: m.p == 0.25),
    ("crash", lambda m: (m.p, m.at, m.recover) == (0.05, 16.0, None)),
    ("crash:0.5", lambda m: m.p == 0.5),
    ("crash:0.2:8", lambda m: (m.p, m.at) == (0.2, 8.0)),
    ("crash:0.2:8:4", lambda m: (m.p, m.at, m.recover) == (0.2, 8.0, 4.0)),
    ("adversary", lambda m: (m.budget, m.warmup) == (64, 4)),
    ("adversary:0", lambda m: m.budget == 0),
    ("adversary:32:2", lambda m: (m.budget, m.warmup) == (32, 2)),
]

REJECTED_SPECS = [
    # malformed tokens
    "drop:x", "drop:", "crash:a", "adversary:many", "adversary:1.5",
    # arity
    "drop:0.1:0.2", "crash:0.1:8:2:1", "adversary:1:2:3",
    # out-of-range parameters (constructor errors, wrapped by the parser)
    "drop:1.5", "drop:-0.1", "crash:-1", "crash:2",
    "adversary:-3", "adversary:4:-1",
    # unknown heads
    "bogus", "drops:0.1", "",
]


@pytest.mark.parametrize("spec,check", ACCEPTED_SPECS,
                         ids=[s for s, _ in ACCEPTED_SPECS])
def test_spec_table_accepted(spec, check):
    assert check(make_fault_model(spec))


@pytest.mark.parametrize("spec", REJECTED_SPECS)
def test_spec_table_rejected_and_named(spec):
    """Every rejected spec raises ReproError (never bare ValueError)
    and the message contains the spec itself."""
    with pytest.raises(ReproError) as excinfo:
        make_fault_model(spec)
    assert repr(spec) in str(excinfo.value)


# -- drop semantics -----------------------------------------------------------


def test_drops_are_charged_but_undelivered():
    """With p=1 every message is paid for and none arrives: the message
    total equals the dropped total, and the run still terminates (the
    engine converts the resulting quiescence into starved casualties)."""
    g = connected_gnp_graph(20, 0.3, seed=0)
    net = SyncNetwork(g, seed=0, faults="drop:1")
    run_luby(net)
    assert net.stats.messages > 0
    assert net.stats.dropped_messages == net.stats.messages
    assert net.casualties           # nobody heard anything


def test_drop_zero_matches_fault_free_counts():
    """p=0 takes the faulted engine path but must measure identically to
    the fault-free one — the seam itself costs nothing."""
    g = connected_gnp_graph(30, 0.25, seed=1)
    plain = SyncNetwork(g, seed=1)
    run_luby(plain)
    guarded = SyncNetwork(g, seed=1, faults="drop:0")
    run_luby(guarded)
    assert guarded.stats.messages == plain.stats.messages
    assert guarded.stats.rounds == plain.stats.rounds
    assert guarded.stats.dropped_messages == 0
    assert guarded.casualties == {}


def test_drop_casualties_are_receivers():
    g = connected_gnp_graph(30, 0.25, seed=2)
    net = SyncNetwork(g, seed=2, faults="drop:0.2")
    run_luby(net)
    assert net.stats.dropped_messages > 0
    assert any(r == "dropped" for r in net.casualties.values())


# -- crash semantics ----------------------------------------------------------


def test_explicit_crash_schedule_silences_the_node():
    """A node crashed from time 0 sends nothing; its neighbors are not
    casualties just because it is (messages *to* it are discarded and
    counted, messages from the others still flow)."""
    g = connected_gnp_graph(20, 0.3, seed=3)
    model = NodeCrash(schedule={0: (0.0, None)})
    net = SyncNetwork(g, seed=3, faults=model)
    run_luby(net)
    assert net.casualties[0] == "crashed"
    assert net.stats.crashed_nodes == 1
    assert net.stats.dropped_messages > 0   # its inbound traffic discarded


def test_recovered_node_still_counts_as_casualty():
    """Recovery restores participation, not trust: a vertex that missed
    part of the run stays a casualty for verification purposes."""
    g = connected_gnp_graph(20, 0.3, seed=4)
    model = NodeCrash(schedule={1: (1.0, 2.0)})
    net = SyncNetwork(g, seed=4, faults=model)
    run_luby(net)
    assert net.casualties.get(1) == "crashed"
    assert not model.crashed_at(1, now=5.0)     # window over: participating
    assert model.crashed_at(1, now=1.5)


def test_seeded_crash_schedule_is_deterministic():
    g = connected_gnp_graph(40, 0.2, seed=5)
    runs = []
    for _ in range(2):
        net = SyncNetwork(g, seed=5, faults="crash:0.3:6")
        run_luby(net)
        runs.append((net.stats.messages, net.stats.rounds,
                     net.stats.crashed_nodes, dict(net.casualties)))
    assert runs[0] == runs[1]
    assert runs[0][2] > 0       # p=0.3 over 40 vertices: some crashed


# -- adversary semantics ------------------------------------------------------


def test_adversary_respects_budget():
    g = connected_gnp_graph(40, 0.3, seed=6)
    net = SyncNetwork(g, seed=6, faults="adversary:10:0")
    run_luby(net)
    assert 0 < net.stats.dropped_messages <= 10


def test_adversary_zero_budget_is_harmless():
    g = connected_gnp_graph(30, 0.25, seed=7)
    plain = SyncNetwork(g, seed=7)
    run_luby(plain)
    net = SyncNetwork(g, seed=7, faults="adversary:0")
    run_luby(net)
    assert net.stats.dropped_messages == 0
    assert net.stats.messages == plain.stats.messages


def test_adversary_targets_the_busiest_sender():
    """On a star every message goes through the hub, so once past warmup
    the hub's traffic is exactly what the adversary kills."""
    from repro.graphs.core import Graph

    star = Graph(8, [(0, i) for i in range(1, 8)])
    model = AdaptiveAdversary(budget=4, warmup=2)
    net = SyncNetwork(star, seed=8, faults=model)
    run_luby(net)
    assert model.budget - model.remaining == net.stats.dropped_messages
    assert net.stats.dropped_messages > 0


# -- determinism --------------------------------------------------------------


@pytest.mark.parametrize("spec", ["drop:0.1", "crash:0.2:6:3",
                                  "adversary:16:2"])
def test_same_seed_same_fault_pattern(spec):
    g = connected_gnp_graph(36, 0.25, seed=9)
    outcomes = []
    for _ in range(2):
        net = SyncNetwork(g, seed=9, faults=spec)
        in_mis, _ = run_luby(net)
        outcomes.append({
            "messages": net.stats.messages,
            "rounds": net.stats.rounds,
            "dropped": net.stats.dropped_messages,
            "casualties": dict(net.casualties),
            "in_mis": list(in_mis),
        })
    assert outcomes[0] == outcomes[1]


def test_fault_stream_independent_of_latency_stream():
    """drop decisions come from the faults-{seed} stream, not the
    delays-{seed} one: the sync engine (no latency draws at all) and a
    fresh model reproduce the identical drop pattern."""
    g = connected_gnp_graph(30, 0.25, seed=10)
    a = SyncNetwork(g, seed=10, faults="drop:0.15")
    run_luby(a)
    b = SyncNetwork(g, seed=10, faults="drop:0.15")
    run_luby(b)
    assert a.casualties == b.casualties
    assert a.stats.dropped_messages == b.stats.dropped_messages


_WORKER = """
import json, sys
sys.path.insert(0, {src!r})
from repro import api
from repro.graphs.generators import family_graph

g = family_graph("gnp", 32, p=0.25, seed=4)
r = api.find_mis(g, method="luby", seed=4, faults="drop:0.1")
print(json.dumps({{
    "messages": r.messages,
    "rounds": r.report.rounds,
    "dropped": r.report.dropped_messages,
    "casualties": list(r.report.casualty_vertices),
    "mis": [v for v, m in enumerate(r.in_mis) if m],
    "survivor_valid": r.report.survivor_valid,
}}, sort_keys=True))
"""


def test_cross_process_fault_determinism():
    """Two fresh interpreters with different hash seeds produce
    bit-identical faulted records — nothing leaks in from dict/set
    iteration order or interpreter state."""
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    script = _WORKER.format(src=os.path.abspath(src))
    outs = []
    for hash_seed in ("0", "1234"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              check=True)
        outs.append(proc.stdout.strip())
    assert outs[0] == outs[1]
    assert json.loads(outs[0])["dropped"] > 0


# -- api plumbing -------------------------------------------------------------


def test_api_report_carries_fault_fields():
    g = connected_gnp_graph(30, 0.3, seed=11)
    r = api.color_graph(g, method="baseline-rank-greedy", seed=11,
                        faults="drop:0.1")
    assert r.report.faults == "drop:0.1"
    assert r.report.dropped_messages > 0
    assert r.report.survivor_valid is True
    assert all(0 <= v < g.n for v in r.report.casualty_vertices)


def test_api_fault_free_report_defaults():
    g = connected_gnp_graph(20, 0.3, seed=12)
    r = api.find_mis(g, method="rank-greedy", seed=12)
    assert r.report.faults is None
    assert r.report.dropped_messages == 0
    assert r.report.crashed_nodes == 0
    assert r.report.casualty_vertices == ()
    assert r.report.survivor_valid is None


def test_api_faults_none_string_is_fault_free():
    g = connected_gnp_graph(20, 0.3, seed=13)
    plain = api.find_mis(g, method="luby", seed=13)
    named = api.find_mis(g, method="luby", seed=13, faults="none")
    assert named.report.faults is None
    assert named.messages == plain.messages
    assert named.report.rounds == plain.report.rounds
    assert named.in_mis == plain.in_mis


def test_structure_building_method_fails_loudly_under_crashes():
    """Algorithm 1's danner reads stage outputs between stages; a
    casualty's None output must surface as a ReproError naming the
    fault regime, never a raw TypeError — and the sweep farm records
    the same run as a status="error" cell instead of crashing."""
    from repro.experiments import Cell
    from repro.experiments.runner import run_cell

    g = connected_gnp_graph(48, 0.25, seed=2)
    with pytest.raises(ReproError, match="fault injection"):
        api.color_graph(g, method="kt1-delta-plus-one", seed=2,
                        faults="crash:0.1:8")
    rec = run_cell(Cell(family="gnp", n=48, seed=2,
                        method="kt1-delta-plus-one", faults="crash:0.1:8"))
    assert rec["status"] == "error"
    assert rec["faults"] == "crash:0.1:8"


def test_async_engine_supports_faults():
    g = connected_gnp_graph(24, 0.3, seed=14)
    r = api.find_mis(g, method="luby", seed=14, asynchronous=True,
                     faults="drop:0.1")
    assert r.report.engine == "async"
    assert r.report.faults == "drop:0.1"
    assert r.report.survivor_valid is True


# -- sweep layer --------------------------------------------------------------


def test_fault_free_cell_key_is_unchanged():
    from repro.experiments import Cell

    cell = Cell(family="gnp", n=100, seed=0, method="luby")
    assert cell.key() == "gnp/n100/p0.2/luby/sync/eps0.5/lite/s0"


def test_faulted_cell_key_carries_the_spec():
    from repro.experiments import Cell

    cell = Cell(family="gnp", n=100, seed=0, method="luby",
                faults="drop:0.05")
    assert "/fdrop:0.05/" in cell.key()


def test_sweep_spec_faults_axis_multiplies_and_validates():
    from repro.experiments import SweepSpec

    spec = SweepSpec(sizes=(40,), seeds=(0, 1), methods=("luby",),
                     faults=("none", "drop:0.05"))
    assert spec.size == 4
    assert sum(1 for c in spec.cells() if c.faults == "drop:0.05") == 2
    with pytest.raises(ReproError):
        SweepSpec(faults=("drop:oops",))
    with pytest.raises(ReproError):
        SweepSpec(faults=("drop:0.05", "drop:0.05"))
    with pytest.raises(ReproError):
        SweepSpec(faults=())


def test_run_cell_records_fault_fields():
    from repro.experiments import Cell
    from repro.experiments.runner import run_cell

    rec = run_cell(Cell(family="gnp", n=36, seed=0, method="luby",
                        faults="drop:0.1"))
    assert rec["status"] == "ok"
    assert rec["faults"] == "drop:0.1"
    assert rec["dropped_messages"] > 0
    assert rec["survivor_valid"] is True
    assert rec["casualties"] >= 0

    plain = run_cell(Cell(family="gnp", n=36, seed=0, method="luby"))
    assert plain["faults"] is None
    assert plain["dropped_messages"] == 0


def test_run_cell_fault_records_are_bit_identical():
    from repro.experiments import Cell
    from repro.experiments.runner import run_cell

    cell = Cell(family="torus", n=49, seed=1, method="rank-greedy",
                faults="crash:0.2:6")
    a, b = run_cell(cell), run_cell(cell)
    for rec in (a, b):
        rec.pop("wall_s")
        rec.pop("stage_wall")
    assert a == b


def test_torus_and_hypercube_families_sweepable():
    from repro.experiments import Cell
    from repro.experiments.runner import run_cell

    for family, n in (("torus", 49), ("hypercube", 32)):
        rec = run_cell(Cell(family=family, n=n, seed=0, method="luby",
                            faults="drop:0.05"))
        assert rec["status"] == "ok", rec
        assert rec["valid"] is True
        assert rec["n"] == family_graph(family, n).n
