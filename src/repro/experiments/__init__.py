"""Parallel experiment sweeps over the paper's algorithm matrix.

The paper's headline results are *scaling* claims — Algorithm 1 sends
Õ(n^1.5) messages while the Ω(m) baselines send ~m — so demonstrating
them takes multi-seed sweeps across graph families, not single runs.
This subsystem makes those sweeps declarative, parallel, and resumable:

* :class:`SweepSpec` — the experiment matrix (family x n x seed x
  method x engine), expanded to picklable :class:`Cell` units;
* :func:`run_cell` / :func:`run_sweep` — execute cells, optionally under
  a ``multiprocessing`` pool, in the engine's stats-lite mode by default
  (identical message/round counts, no utilized-edge bookkeeping);
* :class:`ResultStore` — append-only JSON-lines storage; completed cell
  keys are skipped on re-run, so interrupted sweeps resume for free;
* :func:`fit_exponent` / :func:`mean_ci` / :func:`growth_exponents` /
  :func:`summarize` — aggregation: mean ± CI per size and the empirical
  growth exponent per (family, method), last-record-wins per cell key;
* :class:`Coordinator` / :func:`serve_sweep` / :func:`run_worker` —
  distributed multi-host execution: the coordinator serves cells over a
  versioned TCP work queue (lease/heartbeat/requeue), workers pull and
  stream records back into the same resumable store
  (see :mod:`repro.experiments.distributed` and docs/distributed.md).

Surfaced on the command line as ``repro sweep`` (add ``--serve`` to
host a distributed run, ``--dry-run`` to print the plan),
``repro worker --connect HOST:PORT``, and ``repro report``:

    python -m repro sweep --families gnp regular --sizes 80 120 180 \\
        --seeds 0 1 2 --methods kt1-delta-plus-one luby \\
        --workers 4 --out results.jsonl
    python -m repro report --results results.jsonl
"""

from repro.experiments.distributed import (
    DEFAULT_SWEEP,
    PROTOCOL_VERSION,
    Coordinator,
    QueueJournal,
    SweepState,
    WorkQueue,
    cancel_sweep,
    fetch_status,
    fetch_sweep,
    list_sweeps,
    run_worker,
    serve_sweep,
    submit_sweep,
)
from repro.experiments.report import bench_payload, render_report, summarize
from repro.experiments.runner import run_cell, run_sweep
from repro.experiments.spec import (
    ALL_METHODS,
    ASYNC_NATIVE_METHODS,
    COLORING_METHODS,
    MIS_METHODS,
    Cell,
    SweepSpec,
)
from repro.experiments.stats import (
    fit_exponent,
    growth_exponents,
    latest_per_key,
    mean_ci,
    ok_records,
)
from repro.experiments.store import ResultStore

__all__ = [
    "ALL_METHODS",
    "ASYNC_NATIVE_METHODS",
    "COLORING_METHODS",
    "Coordinator",
    "DEFAULT_SWEEP",
    "MIS_METHODS",
    "PROTOCOL_VERSION",
    "Cell",
    "QueueJournal",
    "ResultStore",
    "SweepSpec",
    "SweepState",
    "WorkQueue",
    "bench_payload",
    "cancel_sweep",
    "fetch_status",
    "fetch_sweep",
    "list_sweeps",
    "fit_exponent",
    "growth_exponents",
    "latest_per_key",
    "mean_ci",
    "ok_records",
    "render_report",
    "run_cell",
    "run_sweep",
    "run_worker",
    "serve_sweep",
    "submit_sweep",
    "summarize",
]
