"""Execution traces, decoded representations and similarity.

Paper Definitions 2.1-2.2: an execution EX(A, G, phi) records the messages
sent in each round; the *decoded representation* replaces each ID value
phi(v) by the vertex v; two executions are *similar* if their decoded
representations coincide.

We record the observable projection of an execution — every message event
(round, sender vertex, receiver vertex, tag, decoded payload) plus the
decoded final outputs.  Per-round local-state snapshots (also part of
Definition 2.1) are determined by the initial knowledge, private coins and
the received messages, so for the deterministic algorithms used in the
lower-bound experiments, equality of decoded message sequences plus decoded
outputs implies state-wise similarity as well; tests exercise exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.congest.ids import NodeId, id_value


@dataclass(frozen=True)
class TraceEvent:
    """One decoded message event."""

    round: int
    sender: int
    receiver: int
    tag: str
    decoded_fields: tuple

    def __repr__(self) -> str:
        return (
            f"r{self.round}: {self.sender}->{self.receiver} "
            f"{self.tag}{self.decoded_fields!r}"
        )


def decode_value(value: Any, vertex_of: Callable[[int], int]) -> Any:
    """Replace every NodeId by the vertex that owns it (Definition 2.1)."""
    if isinstance(value, NodeId):
        return ("vertex", vertex_of(id_value(value)))
    if isinstance(value, tuple):
        return tuple(decode_value(v, vertex_of) for v in value)
    if isinstance(value, list):
        return tuple(decode_value(v, vertex_of) for v in value)
    if isinstance(value, frozenset):
        return frozenset(decode_value(v, vertex_of) for v in value)
    return value


class ExecutionTrace:
    """The decoded representation of one execution."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.decoded_outputs: dict[int, Any] = {}

    def record(
        self,
        round_index: int,
        sender: int,
        receiver: int,
        tag: str,
        fields: tuple,
        vertex_of: Callable[[int], int],
    ) -> None:
        self.events.append(
            TraceEvent(
                round=round_index,
                sender=sender,
                receiver=receiver,
                tag=tag,
                decoded_fields=decode_value(fields, vertex_of),
            )
        )

    def record_output(self, vertex: int, output: Any,
                      vertex_of: Callable[[int], int]) -> None:
        self.decoded_outputs[vertex] = decode_value(output, vertex_of)

    def events_in_round(self, round_index: int) -> list[TraceEvent]:
        return [e for e in self.events if e.round == round_index]

    def canonical_events(self) -> list[TraceEvent]:
        """Events sorted into a canonical order for comparison."""
        return sorted(
            self.events,
            key=lambda e: (e.round, e.sender, e.receiver, e.tag,
                           repr(e.decoded_fields)),
        )

    def __len__(self) -> int:
        return len(self.events)


def traces_similar(a: ExecutionTrace, b: ExecutionTrace,
                   compare_outputs: bool = True) -> bool:
    """Definition 2.2: equal decoded representations.

    Events are compared in canonical per-round order (the model delivers
    all round-r messages simultaneously, so intra-round order is not
    meaningful).
    """
    if a.canonical_events() != b.canonical_events():
        return False
    if compare_outputs and a.decoded_outputs != b.decoded_outputs:
        return False
    return True


def restrict_trace(trace: ExecutionTrace, vertices) -> "ExecutionTrace":
    """Sub-trace of events and outputs whose vertices all lie in a set.

    Used for the Lemma 2.8 check: on the disconnected base graph G ∪ G′,
    the execution restricted to V must mirror the execution restricted to
    V′ under the copy map.
    """
    keep = set(vertices)
    out = ExecutionTrace()
    out.events = [
        e for e in trace.events if e.sender in keep and e.receiver in keep
    ]
    out.decoded_outputs = {
        v: o for v, o in trace.decoded_outputs.items() if v in keep
    }
    return out


def _remap_decoded(value, mapping):
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] == "vertex":
            return ("vertex", mapping.get(value[1], value[1]))
        return tuple(_remap_decoded(v, mapping) for v in value)
    if isinstance(value, frozenset):
        return frozenset(_remap_decoded(v, mapping) for v in value)
    return value


def remap_trace(trace: ExecutionTrace, mapping: dict) -> "ExecutionTrace":
    """Rename vertices in a decoded trace (for isomorphism comparisons)."""
    out = ExecutionTrace()
    out.events = [
        TraceEvent(
            round=e.round,
            sender=mapping.get(e.sender, e.sender),
            receiver=mapping.get(e.receiver, e.receiver),
            tag=e.tag,
            decoded_fields=_remap_decoded(e.decoded_fields, mapping),
        )
        for e in trace.events
    ]
    out.decoded_outputs = {
        mapping.get(v, v): _remap_decoded(o, mapping)
        for v, o in trace.decoded_outputs.items()
    }
    return out


def first_divergence(a: ExecutionTrace, b: ExecutionTrace):
    """The first differing decoded event pair, for debugging experiments."""
    ea, eb = a.canonical_events(), b.canonical_events()
    for x, y in zip(ea, eb):
        if x != y:
            return x, y
    if len(ea) != len(eb):
        longer = ea if len(ea) > len(eb) else eb
        return longer[min(len(ea), len(eb))], None
    return None
