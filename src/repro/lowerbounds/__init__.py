"""The paper's lower-bound machinery, made executable.

* :mod:`repro.lowerbounds.construction` — Section 2.2: the base graph
  G ∪ G′, the crossed graphs G_{e,e′}, the ID assignment ψ_{e,e′} with
  its shifted ranges, and the swap assignments of Lemma 2.5 (Figure 2).
* :mod:`repro.lowerbounds.algorithms` — deterministic comparison-based
  probe algorithms whose message budget is a dial, used to trace the
  utilization/correctness dichotomy.
* :mod:`repro.lowerbounds.crossing_experiment` — Lemmas 2.5/2.8/2.9/2.13
  and Theorems 2.10-2.16 as experiments over the family F.
* :mod:`repro.lowerbounds.kt_rho` — Theorem 2.17's disjoint-cycle family
  and the mute-cycle message/success trade-off.
"""

from repro.lowerbounds.construction import (
    CrossingInstance,
    build_base_graph,
    crossing_instance,
    enumerate_family,
    sample_family,
    family_size,
    verify_id_properties,
)
from repro.lowerbounds.algorithms import (
    SilentCountColoring,
    SilentExtremaMIS,
    ProbedCountColoring,
    ProbedExtremaMIS,
)
from repro.lowerbounds.crossing_experiment import (
    CrossingRecord,
    run_crossing_trial,
    dichotomy_experiment,
    summarize_records,
)
from repro.lowerbounds.kt_rho import (
    CycleExperimentResult,
    run_cycle_experiment,
    cycle_tradeoff_sweep,
)

__all__ = [
    "CrossingInstance",
    "build_base_graph",
    "crossing_instance",
    "enumerate_family",
    "sample_family",
    "family_size",
    "verify_id_properties",
    "SilentCountColoring",
    "SilentExtremaMIS",
    "ProbedCountColoring",
    "ProbedExtremaMIS",
    "CrossingRecord",
    "run_crossing_trial",
    "dichotomy_experiment",
    "summarize_records",
    "CycleExperimentResult",
    "run_cycle_experiment",
    "cycle_tradeoff_sweep",
]
