"""Coloring verifiers.

All checkers work on driver-side outputs (colors indexed by vertex) and
raise :class:`~repro.errors.VerificationError` with a precise witness when
a property fails, so test failures read like counterexamples.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import VerificationError
from repro.graphs.core import Graph


def coloring_violations(graph: Graph, colors: Sequence[Optional[int]]
                        ) -> list[tuple[int, int]]:
    """All monochromatic edges (ignoring uncolored endpoints)."""
    bad = []
    for u, v in graph.edges():
        cu, cv = colors[u], colors[v]
        if cu is not None and cu == cv:
            bad.append((u, v))
    return bad


def survivor_coloring_violations(
    graph: Graph,
    colors: Sequence[Optional[int]],
    casualties,
) -> list[tuple[int, int]]:
    """Monochromatic edges between two colored *survivors*.

    The survivor-validity contract (``docs/faults.md``): nodes damaged
    by the fault model (``casualties``, any iterable of vertices) owe
    nothing — their outputs are not judged, and an uncolored survivor is
    fine (it is starved, hence itself a casualty; a colored survivor's
    color however must not clash with another colored survivor's).
    """
    damaged = set(casualties)
    bad = []
    for u, v in graph.edges():
        if u in damaged or v in damaged:
            continue
        cu, cv = colors[u], colors[v]
        if cu is not None and cu == cv:
            bad.append((u, v))
    return bad


def check_proper_coloring(graph: Graph, colors: Sequence[Optional[int]],
                          allow_uncolored: bool = False) -> None:
    """Raise unless ``colors`` is a proper (total, unless allowed) coloring."""
    if not allow_uncolored:
        missing = [v for v in range(graph.n) if colors[v] is None]
        if missing:
            raise VerificationError(
                f"{len(missing)} vertices uncolored, e.g. {missing[:5]}"
            )
    bad = coloring_violations(graph, colors)
    if bad:
        u, v = bad[0]
        raise VerificationError(
            f"{len(bad)} monochromatic edges, e.g. ({u}, {v}) "
            f"both colored {colors[u]}"
        )


def check_color_bound(colors: Sequence[Optional[int]], bound: int) -> None:
    """Raise unless every color lies in [0, bound)."""
    for v, c in enumerate(colors):
        if c is None:
            continue
        if not (0 <= c < bound):
            raise VerificationError(
                f"vertex {v} colored {c}, outside [0, {bound})"
            )


def check_list_coloring(colors: Sequence[Optional[int]],
                        palettes: Sequence[frozenset[int]]) -> None:
    """Raise unless every assigned color came from the vertex's list."""
    for v, c in enumerate(colors):
        if c is not None and c not in palettes[v]:
            raise VerificationError(
                f"vertex {v} colored {c}, not in its palette"
            )


def count_colors(colors: Sequence[Optional[int]]) -> int:
    return len({c for c in colors if c is not None})
