"""A minimal immutable undirected graph over vertices 0..n-1.

Designed for the simulator's hot paths: neighbor lists are tuples of ints,
edges are canonical ``(min, max)`` pairs, and everything is precomputed at
construction time.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ReproError


class Graph:
    """An undirected simple graph on vertices ``0 .. n-1``."""

    __slots__ = ("n", "_adj", "_edges")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]):
        if n < 0:
            raise ReproError("vertex count must be non-negative")
        adj: list[set[int]] = [set() for _ in range(n)]
        canonical: set[tuple[int, int]] = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ReproError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise ReproError(f"self-loop at vertex {u} not allowed")
            canonical.add((u, v) if u < v else (v, u))
        for u, v in canonical:
            adj[u].add(v)
            adj[v].add(u)
        self.n = n
        self._adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors)) for neighbors in adj
        )
        self._edges: tuple[tuple[int, int], ...] = tuple(sorted(canonical))

    # -- basic accessors ----------------------------------------------------

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def vertices(self) -> range:
        return range(self.n)

    def edges(self) -> tuple[tuple[int, int], ...]:
        """All edges as canonical (min, max) pairs, sorted."""
        return self._edges

    def neighbors(self, v: int) -> tuple[int, ...]:
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        return max((len(a) for a in self._adj), default=0)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u] if len(self._adj[u]) < len(self._adj[v]) else u in self._adj[v]

    def __contains__(self, edge: tuple[int, int]) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self.n, self._edges))

    # -- derived graphs ------------------------------------------------------

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph, re-labelled to 0..k-1 in sorted vertex order.

        Returns the new Graph; use :meth:`subgraph_with_mapping` when the
        original labels are needed.
        """
        sub, _ = self.subgraph_with_mapping(vertices)
        return sub

    def subgraph_with_mapping(
        self, vertices: Iterable[int]
    ) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph plus the old-vertex -> new-vertex mapping."""
        keep = sorted(set(vertices))
        index = {v: i for i, v in enumerate(keep)}
        keep_set = set(keep)
        edges = [
            (index[u], index[v])
            for u, v in self._edges
            if u in keep_set and v in keep_set
        ]
        return Graph(len(keep), edges), index

    def induced_edge_count(self, vertices: Iterable[int]) -> int:
        """|E(G[vertices])| without building the subgraph."""
        keep = set(vertices)
        return sum(1 for u, v in self._edges if u in keep and v in keep)

    def union_disjoint(self, other: "Graph") -> "Graph":
        """Disjoint union; other's vertices are shifted by self.n."""
        edges = list(self._edges)
        edges.extend((u + self.n, v + self.n) for u, v in other._edges)
        return Graph(self.n + other.n, edges)

    def with_edges(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> "Graph":
        """A copy with the given edges added/removed (for edge crossings)."""
        removed_set = {((u, v) if u < v else (v, u)) for u, v in removed}
        for e in removed_set:
            if e not in set(self._edges):
                raise ReproError(f"cannot remove absent edge {e}")
        edges = [e for e in self._edges if e not in removed_set]
        edges.extend(added)
        return Graph(self.n, edges)

    def to_networkx(self):
        """Convert to a networkx Graph (analysis only; not on hot paths)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self._edges)
        return g
