"""FIG1 — regenerate Figure 1, the paper's summary table, empirically.

Figure 1 lists, per knowledge model and problem, the best known message
bounds.  This bench measures every implemented cell on one reference
workload (a dense Gnp where m >> n^1.5, the regime where o(m) matters)
and prints the measured counterpart of the figure:

  (Delta+1)-coloring  KT-1 (C)  baseline trial    ~ Theta(m log n)
  (Delta+1)-coloring  KT-1 (NC) Algorithm 1       ~ Õ(n^1.5)
  (1+eps)Delta        KT-1 (NC) Algorithm 2       ~ Õ(n/eps^2)
  MIS                 KT-1 (C)  Luby              ~ Õ(m)
  MIS                 KT-2 (C)  Algorithm 3       ~ Õ(n^1.5)

Assertions pin the ordering the paper proves: each new algorithm beats
its Ω(m) counterpart on the dense workload.
"""

import math

import pytest

from repro import api
from repro.graphs.generators import connected_gnp_graph

from _util import print_table

N = 360
P = 0.45
SEED = 2021


@pytest.fixture(scope="module")
def workload():
    return connected_gnp_graph(N, P, seed=SEED)


def _row(cell, model, basis, result, m):
    return (cell, model, basis, result.messages,
            f"{result.messages / m:.2f}", result.report.rounds)


def test_figure1_summary_table(benchmark, workload):
    g = workload
    m = g.m

    def run_all():
        rows = {}
        rows["coloring-baseline"] = api.color_graph(
            g, method="baseline-trial", seed=1)
        rows["coloring-alg1"] = api.color_graph(
            g, method="kt1-delta-plus-one", seed=2)
        rows["coloring-alg2"] = api.color_graph(
            g, method="kt1-eps-delta", epsilon=0.5, seed=3)
        rows["mis-luby"] = api.find_mis(g, method="luby", seed=4)
        rows["mis-alg3"] = api.find_mis(g, method="kt2-sampled-greedy",
                                        seed=5)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for key, result in rows.items():
        assert result.valid, key

    table = [
        _row("(Δ+1)-coloring", "KT-1 (C)", "baseline trial [Ω(m)]",
             rows["coloring-baseline"], m),
        _row("(Δ+1)-coloring", "KT-1 (NC)", "Algorithm 1 [Õ(n^1.5)]",
             rows["coloring-alg1"], m),
        _row("(1+ε)Δ-coloring", "KT-1 (NC)", "Algorithm 2 [Õ(n/ε²)]",
             rows["coloring-alg2"], m),
        _row("MIS", "KT-1 (C)", "Luby [Õ(m)]", rows["mis-luby"], m),
        _row("MIS", "KT-2 (C)", "Algorithm 3 [Õ(n^1.5)]",
             rows["mis-alg3"], m),
    ]
    print_table(
        f"Figure 1 (measured), n={g.n}, m={m}, n^1.5={int(g.n ** 1.5)}",
        ["problem", "model", "algorithm", "messages", "msgs/m", "rounds"],
        table,
    )
    benchmark.extra_info["rows"] = {
        k: v.messages for k, v in rows.items()
    }

    # The orderings Figure 1 asserts:
    assert rows["coloring-alg1"].messages < \
        rows["coloring-baseline"].messages
    assert rows["coloring-alg2"].messages < \
        rows["coloring-baseline"].messages
    assert rows["mis-alg3"].messages < rows["mis-luby"].messages
    # The Õ(n)-message algorithm should be the cheapest coloring.
    assert rows["coloring-alg2"].messages < rows["coloring-alg1"].messages
