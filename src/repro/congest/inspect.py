"""Observability helpers: where did the message budget go?

A downstream user tuning a protocol wants three views the raw counters
don't give directly: cost per pipeline phase (stage groups), cost per
message type (tags), and the load distribution across nodes (hot spots).
`NetworkInspector` renders all three from a finished network's stats.
"""

from __future__ import annotations

from typing import Optional


class NetworkInspector:
    """Read-only analysis over a network's accumulated statistics."""

    def __init__(self, net):
        self.net = net
        self.stats = net.stats

    # -- groupings ------------------------------------------------------------

    def stage_groups(self, separator: str = "-") -> dict[str, dict]:
        """Aggregate stage stats by name prefix (pipeline phase).

        ``alg1-danner-local`` and ``alg1-danner-elect0-flood`` both land
        in the ``alg1-danner`` group under the default 2-part grouping.
        """
        groups: dict[str, dict] = {}
        for stage in self.stats.stages:
            parts = stage.name.split(separator)
            key = separator.join(parts[:2]) if len(parts) > 1 else parts[0]
            g = groups.setdefault(
                key, {"messages": 0, "words": 0, "rounds": 0, "stages": 0}
            )
            g["messages"] += stage.messages
            g["words"] += stage.words
            g["rounds"] += stage.rounds
            g["stages"] += 1
        return groups

    def top_tags(self, limit: int = 10) -> list[tuple[str, int]]:
        """Message tags by charged-message count, descending."""
        ranked = sorted(self.stats.by_tag.items(), key=lambda kv: -kv[1])
        return ranked[:limit]

    def load_profile(self) -> dict:
        """Distribution of charged messages across sender vertices."""
        by_sender = self.stats.by_sender   # property: materialize once
        counts = [
            by_sender.get(v, 0)
            for v in range(self.net.graph.n)
        ]
        counts_sorted = sorted(counts)
        n = len(counts_sorted)
        total = sum(counts_sorted)
        if n == 0 or total == 0:
            return {"total": 0, "max": 0, "median": 0, "gini": 0.0}
        median = counts_sorted[n // 2]
        # Gini coefficient of the per-node send load.
        cum = 0
        weighted = 0
        for i, c in enumerate(counts_sorted, start=1):
            cum += c
            weighted += i * c
        gini = (2 * weighted) / (n * total) - (n + 1) / n
        return {
            "total": total,
            "max": counts_sorted[-1],
            "median": median,
            "gini": round(gini, 4),
        }

    # -- rendering ------------------------------------------------------------

    def report(self, title: Optional[str] = None) -> str:
        """A human-readable multi-section cost report."""
        lines = []
        if title:
            lines.append(f"== {title} ==")
        lines.append(
            f"totals: {self.stats.messages} messages, "
            f"{self.stats.words} words, {self.stats.rounds} rounds, "
            f"{self.stats.utilized_count} utilized edges"
        )
        lines.append("by pipeline phase:")
        groups = self.stage_groups()
        for name, g in sorted(groups.items(), key=lambda kv: -kv[1]["messages"]):
            lines.append(
                f"  {name:<24} {g['messages']:>9} msgs  "
                f"{g['rounds']:>6} rounds  ({g['stages']} stages)"
            )
        lines.append("by message tag:")
        for tag, count in self.top_tags():
            lines.append(f"  {tag:<24} {count:>9} msgs")
        profile = self.load_profile()
        lines.append(
            f"load: max/node={profile['max']}, median={profile['median']}, "
            f"gini={profile['gini']}"
        )
        return "\n".join(lines)
