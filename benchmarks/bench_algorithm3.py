"""T4.1 / K-L1 — Algorithm 3 (KT-2 MIS) vs Luby, and the remnant lemma.

Theorem 4.1: Õ(n^1.5) messages and Õ(sqrt n) rounds.  The sweep holds
density (deg ~ n/5) so m = Theta(n^2), fits the growth exponents of both
algorithms, and measures the remnant maximum degree after the sampled
greedy prefix (Konrad's Lemma 1: Õ(sqrt n)).
"""

import math

import pytest

from repro.congest.network import SyncNetwork
from repro.graphs.generators import connected_gnp_graph
from repro.mis.algorithm3 import run_algorithm3
from repro.mis.luby import run_luby
from repro.mis.verify import check_mis

from _util import fit_exponent, fmt, print_table

SIZES = (150, 300, 500, 800)
SEED = 55


def _sweep():
    rows = []
    for n in SIZES:
        g = connected_gnp_graph(n, 0.2, seed=SEED + n)
        net = SyncNetwork(g, rho=2, seed=SEED)
        r = run_algorithm3(net, seed=SEED + 1)
        check_mis(g, r.in_mis)
        luby_net = SyncNetwork(g, rho=1, seed=SEED)
        luby_mis, _ = run_luby(luby_net)
        check_mis(g, luby_mis)
        rows.append({
            "n": n,
            "m": g.m,
            "alg3": r.messages,
            "luby": luby_net.stats.messages,
            "alg3_rounds": r.rounds,
            "remnant_deg": r.remnant_max_degree_local,
            "sampled": r.sampled,
        })
    return rows


def test_algorithm3_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    alg_exp = fit_exponent([(r["n"], max(r["alg3"], 1)) for r in rows])
    luby_exp = fit_exponent([(r["n"], r["luby"]) for r in rows])
    print_table(
        "T4.1: Algorithm 3 vs Luby, messages by n (m = Θ(n²))",
        ["n", "m", "alg3 msgs", "luby msgs", "ratio", "alg3 rounds",
         "remnant Δ", "|S|"],
        [(r["n"], r["m"], r["alg3"], r["luby"],
          fmt(r["alg3"] / r["luby"]), r["alg3_rounds"],
          r["remnant_deg"], r["sampled"]) for r in rows],
    )
    print(f"fitted exponents: alg3 ~ n^{alg_exp:.2f}, "
          f"luby ~ n^{luby_exp:.2f}")
    benchmark.extra_info["alg3_exponent"] = alg_exp
    benchmark.extra_info["luby_exponent"] = luby_exp

    # Luby tracks m (exponent ~2); Algorithm 3 stays near 1.5.
    assert luby_exp > 1.7
    assert alg_exp < luby_exp - 0.2
    # Outright win at every size in this regime.
    assert all(r["alg3"] < r["luby"] for r in rows)
    # Konrad Lemma 1 shape: remnant degree ~ sqrt(n) polylog.
    for r in rows:
        assert r["remnant_deg"] <= 4 * math.sqrt(r["n"]) * \
            math.log(max(r["n"], 3)) + 16


def test_algorithm3_rounds_sublinear(benchmark):
    def sweep_rounds():
        pts = []
        for n in (200, 400, 800):
            g = connected_gnp_graph(n, 0.15, seed=SEED + n)
            net = SyncNetwork(g, rho=2, seed=SEED)
            r = run_algorithm3(net, seed=SEED + 2)
            check_mis(g, r.in_mis)
            pts.append((n, r.rounds))
        return pts

    pts = benchmark.pedantic(sweep_rounds, rounds=1, iterations=1)
    exp = fit_exponent(pts)
    print_table("T4.1: Algorithm 3 rounds by n", ["n", "rounds"], pts)
    print(f"fitted round exponent ~ n^{exp:.2f} (theory: 0.5 + polylog)")
    benchmark.extra_info["round_exponent"] = exp
    assert exp < 1.0


def test_remnant_degree_vs_sample_size(benchmark):
    """K-L1 ablation: larger samples crush the remnant degree harder.

    Rides ``run_cell`` via the Cell's ``sample_constant`` knob (each c is
    a distinct cell key, so the ablation is sweep/resume-compatible)."""
    from repro.experiments import Cell, run_cell

    n = 500

    def sweep_c():
        rows = []
        for c in (0.5, 1.0, 2.0, 4.0):
            rec = run_cell(Cell("gnp", n, SEED, "kt2-sampled-greedy",
                                density=0.25, sample_constant=c))
            assert rec["valid"], rec["key"]
            rows.append({
                "c": c, "sampled": rec["sampled"],
                "remnant_deg": rec["remnant_deg"],
                "remnant_size": rec["remnant_size"],
                "msgs": rec["messages"],
            })
        return rows

    rows = benchmark.pedantic(sweep_c, rounds=1, iterations=1)
    print_table(
        f"K-L1: remnant degree vs sample constant (n = {n}, Δ ~ 125)",
        ["c", "|S|", "remnant Δ", "remnant size", "messages"],
        [(r["c"], r["sampled"], r["remnant_deg"], r["remnant_size"],
          r["msgs"]) for r in rows],
    )
    benchmark.extra_info["rows"] = rows
    degs = [r["remnant_deg"] for r in rows]
    # monotone-ish decrease (allow one inversion from randomness)
    assert degs[-1] < degs[0]
