"""``repro serve``: symmetry-breaking as a resilient query service.

The examples (frequency assignment, wireless MIS scheduling) are
one-shot scripts; this module promotes them to a long-running TCP server
that answers coloring/MIS queries under concurrent load — the ROADMAP's
"millions of users" axis made concrete, and first of all a *robustness*
problem.  The serving spine:

* **Per-request deadlines with graceful degradation.**  Every query
  carries (or inherits) a wall-clock deadline.  A solve still running at
  the deadline has its solver child killed through the same cooperative
  cancel-Event seam the sweep farm uses, and the client receives a
  ``degraded=true`` answer from a fast centralized greedy fallback
  instead of a hung connection: a valid (Δ+1)-coloring or MIS, just
  without the paper's o(m) message guarantee (the locality lower bounds
  in PAPERS.md are exactly why a cheap local answer is always
  available).
* **Bounded queue with explicit load-shedding.**  At most ``solvers``
  solver children run at once and at most ``max_pending`` further
  queries may wait; past that, new queries get an immediate
  ``overloaded`` response with a ``retry_after_s`` hint instead of
  growing an unbounded backlog.
* **Solver supervision.**  Solvers run in subprocesses (one per query,
  mirroring the farm's ``_spawn_cell_process`` seam), so a crashing or
  SIGKILL'd child costs one retry and then a structured ``error``
  response — never a dead server.
* **Keyed result cache.**  Results are cached under a fingerprint of
  (problem, method, seed, epsilon, graph), LRU-bounded, so repeat
  queries are O(1) and never touch a solver slot.
* **Graceful drain.**  SIGTERM/SIGINT answer every in-flight query,
  refuse new ones, and exit 0; a read-only ``status`` verb
  (``repro serve-status``) reports queries/s, latency percentiles,
  cache hit rate, and shed/degraded/error counts without disturbing
  the service.

Wire protocol
-------------
JSON lines over TCP, the same framing and versioned-handshake
conventions as the sweep farm (:mod:`repro.experiments.distributed`) —
one wire format for the whole project:

    client -> {"type": "hello", "protocol": "repro-serve", "version": V}
    server <- {"type": "welcome", "version": V}
            | {"type": "reject", "reason": ...}          # then close
    client -> {"type": "query", "problem": ..., "method": ...,
               "edges": [[u, v], ...] | "graph_file": PATH
               | "family"/"n"/"p"/"graph_seed",
               "seed": S, "epsilon": E, "deadline_s": D}
    server <- {"type": "result", "status": "ok", "degraded": bool,
               "cached": bool, ...}
            | {"type": "overloaded", "retry_after_s": S}
            | {"type": "error", "error": ..., "retriable": bool}
    client -> {"type": "status"}                         # read-only
    server <- {"type": "status", ...}

Connections are persistent (many queries per connection); every
client-side exchange runs under a per-request socket deadline, so a
dead server is detected in seconds.  See ``docs/serving.md`` for the
full contract and failure matrix.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import socket
import socketserver
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import api
from repro.coloring.verify import coloring_violations
from repro.errors import ProtocolMismatchError, ReproError, ServingError
from repro.experiments.distributed import (
    DEFAULT_REQUEST_TIMEOUT_S,
    recv_msg,
    send_msg,
)
from repro.experiments.spec import COLORING_METHODS, MIS_METHODS
from repro.graphs.analysis import is_connected
from repro.graphs.core import Graph
from repro.graphs.generators import family_graph
from repro.graphs.io import load_edge_list
from repro.mis.greedy import sequential_greedy_mis
from repro.mis.verify import mis_violations

PROTOCOL = "repro-serve"
PROTOCOL_VERSION = 1

DEFAULT_SOLVERS = 2
DEFAULT_MAX_PENDING = 8
DEFAULT_CACHE_SIZE = 128
DEFAULT_DEADLINE_S = 30.0
#: Extra wall-clock allowance past a request's deadline for the
#: degraded-mode fallback to be computed and the response written.
DEFAULT_GRACE_S = 2.0
#: A connection silent this long is a dead or wedged client; its handler
#: thread closes the socket instead of being held hostage.
DEFAULT_IDLE_S = 300.0
#: Latency samples kept for the p50/p99 estimates in ``status``.
_LATENCY_WINDOW = 2048
#: Supervisor poll interval while a solver child runs.
_POLL_S = 0.01


# ---------------------------------------------------------------------------
# Degraded-mode fallbacks (centralized, O(n + m), always valid)
# ---------------------------------------------------------------------------


def greedy_coloring(graph: Graph) -> list[int]:
    """First-fit (Δ+1)-coloring in vertex order — the degraded answer.

    Deterministic, message-free, and always proper: vertex v sees at
    most deg(v) occupied colors, so a color in 0..Δ is always free.
    """
    colors: list[Optional[int]] = [None] * graph.n
    for v in range(graph.n):
        taken = {colors[u] for u in graph.neighbors(v)
                 if colors[u] is not None}
        c = 0
        while c in taken:
            c += 1
        colors[v] = c
    return colors


def greedy_mis(graph: Graph) -> list[bool]:
    """Sequential greedy MIS in vertex order — the degraded answer."""
    chosen = sequential_greedy_mis(graph, range(graph.n))
    return [v in chosen for v in range(graph.n)]


def degraded_answer(problem: str, graph: Graph) -> dict:
    """The fallback payload for a query whose deadline expired.

    Verified before it leaves the server: a degraded answer trades the
    o(m) message guarantee away, never correctness.
    """
    if problem == "coloring":
        colors = greedy_coloring(graph)
        assert not coloring_violations(graph, colors)
        return {"colors": colors,
                "num_colors": len(set(colors)),
                "palette_bound": graph.max_degree() + 1,
                "valid": True}
    in_mis = greedy_mis(graph)
    bad = mis_violations(graph, in_mis)
    assert not bad["independence"] and not bad["maximality"]
    return {"in_mis": in_mis, "mis_size": sum(in_mis), "valid": True}


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


def build_query(problem: str, method: Optional[str] = None,
                edges=None, n: Optional[int] = None,
                graph_file: Optional[str] = None,
                family: Optional[str] = None, p: float = 0.2,
                graph_seed: int = 0, seed: int = 0,
                epsilon: float = 0.5,
                deadline_s: Optional[float] = None) -> dict:
    """Assemble a query message (the client half of the wire contract).

    Exactly one graph source: inline ``edges`` (with optional ``n``),
    a server-side ``graph_file`` path, or a generated ``family``.
    """
    if method is None:
        method = ("kt1-delta-plus-one" if problem == "coloring"
                  else "kt2-sampled-greedy")
    msg: dict = {"type": "query", "problem": problem, "method": method,
                 "seed": seed, "epsilon": epsilon}
    if deadline_s is not None:
        msg["deadline_s"] = deadline_s
    if edges is not None:
        msg["edges"] = [[int(u), int(v)] for u, v in edges]
        if n is not None:
            msg["n"] = n
    elif graph_file is not None:
        msg["graph_file"] = graph_file
    elif family is not None:
        msg.update({"family": family, "n": n or 100, "p": p,
                    "graph_seed": graph_seed})
    else:
        raise ServingError("query needs edges, graph_file, or family")
    return msg


def _request_graph(msg: dict) -> Graph:
    """Build the query's graph; raises :class:`ReproError` on bad input."""
    if "edges" in msg:
        edges = [(int(u), int(v)) for u, v in msg["edges"]]
        n = msg.get("n")
        if n is None:
            n = 1 + max((max(u, v) for u, v in edges), default=-1)
        graph = Graph(int(n), edges)
    elif "graph_file" in msg:
        graph = load_edge_list(str(msg["graph_file"]))
    elif "family" in msg:
        graph = family_graph(str(msg["family"]), int(msg.get("n", 100)),
                             p=float(msg.get("p", 0.2)),
                             seed=int(msg.get("graph_seed", 0)))
    else:
        raise ReproError("query carries no graph "
                         "(edges, graph_file, or family)")
    if graph.n and not is_connected(graph):
        # The engines' flood/broadcast stages assume one component; fail
        # fast with a clear error instead of a deep ConvergenceError.
        raise ReproError("query graph is not connected")
    return graph


def _validate_query(msg: dict) -> tuple[str, str]:
    problem = msg.get("problem")
    method = msg.get("method")
    if problem == "coloring":
        known = COLORING_METHODS
    elif problem == "mis":
        known = MIS_METHODS
    else:
        raise ReproError(f"unknown problem {problem!r} "
                         "(coloring or mis)")
    if method not in known:
        raise ReproError(
            f"unknown {problem} method {method!r}; "
            f"known: {', '.join(known)}")
    return problem, method


def request_fingerprint(problem: str, method: str, seed: int,
                        epsilon: float, graph: Graph) -> str:
    """Cache key: what the solve measures, on the *built* graph.

    Fingerprinting the constructed graph (not the request's spelling)
    lets an inline edge list, a file path, and a generated family that
    all denote the same graph share one cache entry.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{problem}|{method}|s{seed}|eps{epsilon:g}|n{graph.n}|".encode())
    for u, v in graph.edges():
        digest.update(f"{u},{v};".encode())
    return digest.hexdigest()[:32]


# ---------------------------------------------------------------------------
# Supervised solver subprocesses
# ---------------------------------------------------------------------------


def _solver_child(conn, problem: str, method: str, graph: Graph,
                  seed: int, epsilon: float) -> None:
    """Solver child: run the engine, ship one result dict (or an error).

    A deterministic solver failure (a ReproError, a driver bug) is
    reported as a non-retriable error record — the same input would fail
    the same way again; only child *death* is worth a retry.
    """
    try:
        if problem == "coloring":
            result = api.color_graph(graph, method=method, seed=seed,
                                     epsilon=epsilon,
                                     collect_utilization=False)
            payload = {"colors": result.colors,
                       "num_colors": result.num_colors,
                       "palette_bound": result.palette_bound}
        else:
            result = api.find_mis(graph, method=method, seed=seed,
                                  collect_utilization=False)
            payload = {"in_mis": result.in_mis, "mis_size": result.size}
        record = {"status": "ok", "valid": result.valid,
                  "messages": result.report.messages,
                  "rounds": result.report.rounds, **payload}
    except Exception as exc:
        record = {"status": "error", "error": repr(exc),
                  "retriable": False}
    try:
        conn.send(record)
    finally:
        conn.close()


def _spawn_solver_process(problem: str, method: str, graph: Graph,
                          seed: int, epsilon: float):
    """Start one solver child; returns ``(proc, recv_conn)``.

    The serving twin of the farm's ``_spawn_cell_process`` seam: tests
    substitute scripted process/connection fakes here to drive the
    crash/deadline/cancel races deterministically.
    """
    recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(
        target=_solver_child,
        args=(send_conn, problem, method, graph, seed, epsilon),
        daemon=True,
    )
    proc.start()
    send_conn.close()
    return proc, recv_conn


def supervised_solve(
    problem: str, method: str, graph: Graph, seed: int, epsilon: float,
    deadline: float,
    cancel: Optional[threading.Event] = None,
    spawn: Callable = _spawn_solver_process,
    on_child: Optional[Callable[[Optional[int]], None]] = None,
    retries: int = 1,
) -> tuple[str, Optional[dict]]:
    """Run one query in a supervised child under a monotonic deadline.

    Returns ``(outcome, record)``:

    * ``("ok", record)`` — the child delivered a result (possibly its
      own non-retriable error record);
    * ``("deadline", None)`` — the deadline (or ``cancel``) fired; the
      child was terminated through the cooperative kill seam and the
      caller owes the client a degraded answer;
    * ``("crashed", None)`` — the child died without a result more than
      ``retries`` times (SIGKILL, OOM, a segfault); the caller owes a
      structured retriable error.

    ``on_child`` observes the live child's pid (and ``None`` when it
    exits) — the status verb exposes those pids so chaos tests can aim
    real signals at a solver mid-request.
    """
    attempts = 0
    while True:
        proc, conn = spawn(problem, method, graph, seed, epsilon)
        if on_child is not None:
            on_child(getattr(proc, "pid", None))
        try:
            while True:
                if cancel is not None and cancel.is_set():
                    proc.terminate()
                    proc.join()
                    return "deadline", None
                if conn.poll(_POLL_S):
                    try:
                        record = conn.recv()
                    except EOFError:
                        record = None    # died mid-send: treat as crash
                    proc.join()
                    if record is not None:
                        record["attempts"] = attempts + 1
                        return "ok", record
                    break
                if not proc.is_alive():
                    # One last drain: the child may have finished in the
                    # window between the poll above and its exit.
                    record = None
                    if conn.poll():
                        try:
                            record = conn.recv()
                        except EOFError:
                            record = None
                    proc.join()
                    if record is not None:
                        record["attempts"] = attempts + 1
                        return "ok", record
                    break
                if time.monotonic() >= deadline:
                    proc.terminate()
                    proc.join()
                    return "deadline", None
        finally:
            conn.close()
            if on_child is not None:
                on_child(None)
        attempts += 1
        if attempts > retries:
            return "crashed", None
        if time.monotonic() >= deadline:
            return "deadline", None


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


@dataclass
class ServeStats:
    """Lock-protected service counters behind the ``status`` verb."""

    queries: int = 0
    ok: int = 0
    cache_hits: int = 0
    degraded: int = 0
    shed: int = 0
    errors: int = 0
    retries: int = 0
    latencies: deque = field(
        default_factory=lambda: deque(maxlen=_LATENCY_WINDOW))

    def percentile(self, q: float) -> Optional[float]:
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[idx]


class _ClientConnection(socketserver.StreamRequestHandler):
    """One server-side thread per connected client."""

    def handle(self):
        server: "QueryServer" = self.server.owner
        self.connection.settimeout(server.idle_s)
        try:
            hello = recv_msg(self.rfile)
            if (not hello or hello.get("type") != "hello"
                    or hello.get("protocol") != PROTOCOL):
                send_msg(self.wfile, {
                    "type": "reject",
                    "reason": "not a repro-serve handshake",
                })
                return
            if hello.get("version") != PROTOCOL_VERSION:
                send_msg(self.wfile, {
                    "type": "reject",
                    "reason": (
                        f"protocol version {hello.get('version')!r} != "
                        f"server {PROTOCOL_VERSION}; answers from "
                        "mismatched conventions must not mix — upgrade "
                        "the older side"
                    ),
                })
                return
            send_msg(self.wfile, {"type": "welcome",
                                  "version": PROTOCOL_VERSION})
            while True:
                msg = recv_msg(self.rfile)
                if msg is None:
                    return
                kind = msg.get("type")
                if kind == "query":
                    send_msg(self.wfile, server.handle_query(msg))
                elif kind == "status":
                    send_msg(self.wfile, {"type": "status",
                                          **server.status_snapshot()})
                else:
                    send_msg(self.wfile, {
                        "type": "error", "retriable": False,
                        "error": f"unknown message type {kind!r}",
                    })
        except (ReproError, socket.timeout, OSError):
            # A malformed frame or a dead/idle client ends this
            # connection only; the server keeps serving everyone else.
            return


class _ServeServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class QueryServer:
    """The long-running coloring/MIS query service.

    Usage (tests and embedders)::

        server = QueryServer(solvers=2, max_pending=8)
        host, port = server.start()
        ... point ServeClient / `repro query` at it ...
        server.drain()          # answer in-flight, refuse new
        server.wait()           # blocks until drained
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        solvers: int = DEFAULT_SOLVERS,
        max_pending: int = DEFAULT_MAX_PENDING,
        cache_size: int = DEFAULT_CACHE_SIZE,
        deadline_s: float = DEFAULT_DEADLINE_S,
        grace_s: float = DEFAULT_GRACE_S,
        idle_s: float = DEFAULT_IDLE_S,
        spawn: Callable = _spawn_solver_process,
    ):
        if solvers < 1:
            raise ServingError("serve needs at least one solver slot")
        if max_pending < 0:
            raise ServingError("max_pending must be >= 0")
        self.solvers = solvers
        self.max_pending = max_pending
        self.cache_size = cache_size
        self.deadline_s = deadline_s
        self.grace_s = grace_s
        self.idle_s = idle_s
        self._spawn = spawn
        self._host, self._port = host, port
        self._server: Optional[_ServeServer] = None
        self._lock = threading.Lock()
        self._slots = threading.Semaphore(solvers)
        #: admitted queries (waiting for a slot + running a solver).
        self._pending = 0
        self._running = 0
        self._child_pids: set[int] = set()
        self._cache: OrderedDict[str, dict] = OrderedDict()
        self._mean_wall = 1.0      # EWMA of solve wall, drives retry hints
        self.stats = ServeStats()
        self._draining = threading.Event()
        self._finished = threading.Event()
        self._started_at = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        self._server = _ServeServer((self._host, self._port),
                                    _ClientConnection)
        self._server.owner = self
        self.address = self._server.server_address[:2]
        self._started_at = time.monotonic()
        thread = threading.Thread(target=self._server.serve_forever,
                                  kwargs={"poll_interval": 0.1},
                                  daemon=True)
        thread.start()
        return self.address

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, grace_s: Optional[float] = None) -> None:
        """Refuse new queries, answer in-flight ones, then stop.

        Signal-handler safe: returns immediately, a watcher thread does
        the waiting.  In-flight queries (admitted before the drain) get
        up to ``grace_s`` beyond their own deadlines to land; then the
        listener closes and :meth:`wait` returns.
        """
        if self._draining.is_set():
            return
        self._draining.set()
        budget = (self.deadline_s + self.grace_s if grace_s is None
                  else grace_s)
        threading.Thread(target=self._drain_watch, args=(budget,),
                         daemon=True).start()

    def _drain_watch(self, grace_s: float) -> None:
        deadline = time.monotonic() + grace_s
        while time.monotonic() < deadline:
            with self._lock:
                if self._pending == 0:
                    break
            time.sleep(0.02)
        self.stop()
        self._finished.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a drain completes; True if it did."""
        return self._finished.wait(timeout)

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        self._finished.set()

    def __enter__(self) -> "QueryServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the query path ----------------------------------------------------

    def handle_query(self, msg: dict) -> dict:
        t0 = time.monotonic()
        with self._lock:
            self.stats.queries += 1
        try:
            problem, method = _validate_query(msg)
            graph = _request_graph(msg)
            seed = int(msg.get("seed", 0))
            epsilon = float(msg.get("epsilon", 0.5))
            deadline_s = float(msg.get("deadline_s", self.deadline_s))
            if deadline_s <= 0:
                raise ReproError(
                    f"deadline_s must be positive, got {deadline_s:g}")
        except ReproError as exc:
            with self._lock:
                self.stats.errors += 1
            return {"type": "error", "error": str(exc),
                    "retriable": False}

        key = request_fingerprint(problem, method, seed, epsilon, graph)
        cached = self._cache_get(key)
        if cached is not None:
            with self._lock:
                self.stats.cache_hits += 1
                self.stats.ok += 1
                self.stats.latencies.append(time.monotonic() - t0)
            return {**cached, "cached": True,
                    "elapsed_s": round(time.monotonic() - t0, 6)}

        # Admission control: cache misses compete for the bounded queue.
        with self._lock:
            if self._draining.is_set():
                return {"type": "overloaded", "draining": True,
                        "retry_after_s": None,
                        "error": "server is draining"}
            if self._pending >= self.solvers + self.max_pending:
                self.stats.shed += 1
                return {"type": "overloaded", "draining": False,
                        "retry_after_s": self._retry_hint_locked()}
            self._pending += 1
        try:
            response = self._solve(problem, method, graph, seed,
                                   epsilon, key, t0,
                                   t0 + deadline_s)
        finally:
            with self._lock:
                self._pending -= 1
        elapsed = time.monotonic() - t0
        with self._lock:
            self.stats.latencies.append(elapsed)
        response["elapsed_s"] = round(elapsed, 6)
        return response

    def _solve(self, problem: str, method: str, graph: Graph, seed: int,
               epsilon: float, key: str, t0: float,
               deadline: float) -> dict:
        base = {"type": "result", "problem": problem, "method": method,
                "seed": seed, "n": graph.n, "m": graph.m,
                "cached": False}

        def degrade() -> dict:
            with self._lock:
                self.stats.degraded += 1
            return {**base, "status": "ok", "degraded": True,
                    "messages": None, "rounds": None,
                    **degraded_answer(problem, graph)}

        # Waiting for a slot spends the query's own deadline: a server
        # at capacity degrades late arrivals instead of queueing them
        # past the point of a useful answer.
        if not self._slots.acquire(timeout=max(0.0,
                                               deadline - time.monotonic())):
            return degrade()
        with self._lock:
            self._running += 1
        try:
            outcome, record = supervised_solve(
                problem, method, graph, seed, epsilon, deadline,
                spawn=self._spawn, on_child=self._track_child,
            )
        finally:
            with self._lock:
                self._running -= 1
            self._slots.release()

        if outcome == "deadline":
            return degrade()
        if outcome == "crashed":
            with self._lock:
                self.stats.errors += 1
                self.stats.retries += 1
            return {**base, "type": "error", "retriable": True,
                    "error": "solver child died before finishing "
                             "(retried once); retry the query"}
        if record.get("status") != "ok":
            with self._lock:
                self.stats.errors += 1
            return {**base, "type": "error",
                    "retriable": bool(record.get("retriable", False)),
                    "error": record.get("error", "solver error")}
        attempts = record.pop("attempts", 1)
        record.pop("status", None)
        response = {**base, "status": "ok", "degraded": False,
                    "attempts": attempts, **record}
        with self._lock:
            self.stats.ok += 1
            if attempts > 1:
                self.stats.retries += attempts - 1
            wall = time.monotonic() - t0
            self._mean_wall += 0.2 * (wall - self._mean_wall)
        self._cache_put(key, response)
        return response

    def _track_child(self, pid: Optional[int]) -> None:
        with self._lock:
            if pid is not None:
                self._child_pids.add(pid)
            else:
                # A child exited; prune every pid no longer alive
                # (cheaper than threading identity through the seam).
                self._child_pids -= {p for p in self._child_pids
                                     if not _pid_alive(p)}

    # -- cache -------------------------------------------------------------

    def _cache_get(self, key: str) -> Optional[dict]:
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
            return hit

    def _cache_put(self, key: str, response: dict) -> None:
        if self.cache_size <= 0 or response.get("degraded"):
            # Degraded answers are a deadline artifact, not the query's
            # real result; caching one would serve it forever.
            return
        with self._lock:
            self._cache[key] = response
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    # -- status ------------------------------------------------------------

    def _retry_hint_locked(self) -> float:
        backlog = max(1, self._pending - self._running + 1)
        return round(max(0.1, backlog * self._mean_wall / self.solvers), 3)

    def status_snapshot(self) -> dict:
        now = time.monotonic()
        with self._lock:
            s = self.stats
            elapsed = max(1e-9, now - self._started_at)
            p50 = s.percentile(0.50)
            p99 = s.percentile(0.99)
            return {
                "uptime_s": round(elapsed, 3),
                "queries": s.queries,
                "ok": s.ok,
                "cache_hits": s.cache_hits,
                "cache_hit_rate": round(s.cache_hits / s.queries, 4)
                if s.queries else 0.0,
                "cache_entries": len(self._cache),
                "cache_size": self.cache_size,
                "degraded": s.degraded,
                "shed": s.shed,
                "errors": s.errors,
                "retries": s.retries,
                "in_flight": self._pending,
                "running": self._running,
                "solver_pids": sorted(self._child_pids),
                "solvers": self.solvers,
                "max_pending": self.max_pending,
                "deadline_s": self.deadline_s,
                "queries_per_s": round(s.queries / elapsed, 4),
                "p50_ms": round(p50 * 1000, 3) if p50 is not None else None,
                "p99_ms": round(p99 * 1000, 3) if p99 is not None else None,
                "draining": self._draining.is_set(),
            }


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


@dataclass
class QueryResult:
    """One server answer, with the conveniences the examples print."""

    payload: dict

    @property
    def status(self) -> str:
        kind = self.payload.get("type")
        if kind == "result":
            return "ok"
        return kind or "error"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def degraded(self) -> bool:
        return bool(self.payload.get("degraded"))

    @property
    def cached(self) -> bool:
        return bool(self.payload.get("cached"))

    @property
    def valid(self) -> bool:
        return bool(self.payload.get("valid"))

    @property
    def messages(self) -> Optional[int]:
        return self.payload.get("messages")

    @property
    def rounds(self) -> Optional[int]:
        return self.payload.get("rounds")

    @property
    def messages_per_edge(self) -> Optional[float]:
        m = self.payload.get("m")
        if not m or self.messages is None:
            return None
        return self.messages / m

    @property
    def num_colors(self) -> Optional[int]:
        return self.payload.get("num_colors")

    @property
    def palette_bound(self) -> Optional[int]:
        return self.payload.get("palette_bound")

    @property
    def colors(self):
        return self.payload.get("colors")

    @property
    def in_mis(self):
        return self.payload.get("in_mis")

    @property
    def size(self) -> Optional[int]:
        return self.payload.get("mis_size")

    @property
    def retry_after_s(self) -> Optional[float]:
        return self.payload.get("retry_after_s")

    @property
    def error(self) -> Optional[str]:
        return self.payload.get("error")


class ServeClient:
    """Persistent client connection with per-request socket deadlines."""

    def __init__(self, host: str, port: int,
                 timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S):
        self.host, self.port = host, port
        self.timeout_s = timeout_s
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout_s)
        except OSError as exc:
            raise ServingError(
                f"cannot reach server at {host}:{port}: {exc}")
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        send_msg(self._wfile, {"type": "hello", "protocol": PROTOCOL,
                               "version": PROTOCOL_VERSION})
        welcome = self._recv(timeout_s)
        if welcome.get("type") == "reject":
            raise ProtocolMismatchError(
                welcome.get("reason", "handshake rejected"))
        if welcome.get("type") != "welcome":
            raise ServingError(
                f"unexpected handshake reply {welcome.get('type')!r}")

    def _recv(self, timeout_s: float) -> dict:
        self._sock.settimeout(timeout_s)
        try:
            reply = recv_msg(self._rfile)
        except socket.timeout:
            raise ServingError("server stopped responding")
        except OSError as exc:
            raise ServingError(f"connection to server lost: {exc}")
        if reply is None:
            raise ServingError("connection to server closed")
        return reply

    def query(self, request: dict) -> QueryResult:
        """One query round trip.

        The socket deadline covers the request's solve deadline plus the
        degraded-mode grace, so even a worst-case answer arrives before
        the client gives up — a wedged server is detected, a slow solve
        is not misdiagnosed as one.
        """
        deadline = float(request.get("deadline_s", DEFAULT_DEADLINE_S))
        budget = deadline + DEFAULT_GRACE_S + self.timeout_s
        self._sock.settimeout(budget)
        try:
            send_msg(self._wfile, request)
        except OSError as exc:
            raise ServingError(f"connection to server lost: {exc}")
        return QueryResult(self._recv(budget))

    def status(self) -> dict:
        self._sock.settimeout(self.timeout_s)
        try:
            send_msg(self._wfile, {"type": "status"})
        except OSError as exc:
            raise ServingError(f"connection to server lost: {exc}")
        reply = self._recv(self.timeout_s)
        if reply.get("type") != "status":
            raise ServingError(
                f"unexpected status reply {reply.get('type')!r}")
        return reply

    # -- the api.color_graph / api.find_mis mirror -------------------------

    def color(self, graph: Graph, method: str = "kt1-delta-plus-one",
              seed: int = 0, epsilon: float = 0.5,
              deadline_s: Optional[float] = None) -> QueryResult:
        """Remote :func:`repro.api.color_graph`; raises on a non-answer."""
        result = self.query(build_query(
            "coloring", method=method, edges=graph.edges(), n=graph.n,
            seed=seed, epsilon=epsilon, deadline_s=deadline_s))
        if not result.ok:
            raise ServingError(
                f"coloring query failed: {result.status} "
                f"({result.error or 'overloaded'})")
        return result

    def mis(self, graph: Graph, method: str = "kt2-sampled-greedy",
            seed: int = 0,
            deadline_s: Optional[float] = None) -> QueryResult:
        """Remote :func:`repro.api.find_mis`; raises on a non-answer."""
        result = self.query(build_query(
            "mis", method=method, edges=graph.edges(), n=graph.n,
            seed=seed, deadline_s=deadline_s))
        if not result.ok:
            raise ServingError(
                f"mis query failed: {result.status} "
                f"({result.error or 'overloaded'})")
        return result

    def close(self) -> None:
        for closer in (self._rfile.close, self._wfile.close,
                       self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def query_once(host: str, port: int, request: dict,
               timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S) -> QueryResult:
    """One-shot connect + handshake + query (the ``repro query`` path)."""
    with ServeClient(host, port, timeout_s=timeout_s) as client:
        return client.query(request)


def fetch_serve_status(host: str, port: int,
                       timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S) -> dict:
    """One read-only status round trip (``repro serve-status``)."""
    with ServeClient(host, port, timeout_s=timeout_s) as client:
        return client.status()
