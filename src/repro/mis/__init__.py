"""MIS algorithms: Luby's baseline, randomized greedy, and Algorithm 3.

* :mod:`repro.mis.luby` — Luby's MIS [26]: the Õ(m)-message KT-1
  baseline of Figure 1, also reused on the remnant graph in Algorithm 3.
* :mod:`repro.mis.greedy` — sequential randomized greedy MIS and the
  parallel rank-driven version (Blelloch et al. [5]); they compute the
  same MIS, which tests verify (Fischer–Noever [11] bound the round
  count).
* :mod:`repro.mis.algorithm3` — **Algorithm 3**: the KT-2
  comparison-based MIS with Õ(n^1.5) messages in Õ(sqrt n) rounds
  (Theorem 4.1).
* :mod:`repro.mis.verify` — independence/maximality checkers and the
  remnant-degree measurement behind Konrad's Lemma 1 [21].
"""

from repro.mis.verify import (
    check_mis,
    mis_violations,
    remnant_vertices,
    remnant_max_degree,
)
from repro.mis.luby import LubyMIS, run_luby
from repro.mis.greedy import (
    sequential_greedy_mis,
    greedy_by_rank,
    ParallelGreedyMIS,
    run_parallel_greedy,
)
from repro.mis.algorithm3 import Algorithm3Result, run_algorithm3

__all__ = [
    "check_mis",
    "mis_violations",
    "remnant_vertices",
    "remnant_max_degree",
    "LubyMIS",
    "run_luby",
    "sequential_greedy_mis",
    "greedy_by_rank",
    "ParallelGreedyMIS",
    "run_parallel_greedy",
    "Algorithm3Result",
    "run_algorithm3",
]
