"""End-to-end tests for Algorithm 3 (KT-2 MIS, Theorem 4.1)."""

import math

import pytest

from repro.congest.network import SyncNetwork
from repro.errors import ProtocolError
from repro.graphs.generators import connected_gnp_graph, power_law_graph
from repro.mis.algorithm3 import run_algorithm3
from repro.mis.luby import run_luby
from repro.mis.verify import check_mis, remnant_max_degree

from tests.conftest import connected_families


@pytest.mark.parametrize("name,graph", connected_families(seed=900))
def test_valid_mis_on_family(name, graph):
    net = SyncNetwork(graph, rho=2, seed=1)
    result = run_algorithm3(net, seed=2)
    check_mis(graph, result.in_mis)


def test_comparison_based_discipline(gnp_medium):
    """Figure 1 classifies Algorithm 3 '(C)': it must run under opaque
    IDs without tripping the machine check."""
    net = SyncNetwork(gnp_medium, rho=2, seed=3, comparison_based=True)
    result = run_algorithm3(net, seed=4)
    check_mis(gnp_medium, result.in_mis)


def test_requires_kt2(gnp_small):
    net = SyncNetwork(gnp_small, rho=1, seed=5)
    with pytest.raises(ProtocolError):
        run_algorithm3(net, seed=6)


def test_sample_size_theta_sqrt_n():
    g = connected_gnp_graph(500, 0.05, seed=7)
    net = SyncNetwork(g, rho=2, seed=8)
    result = run_algorithm3(net, seed=9)
    expected = math.sqrt(g.n)
    assert result.sampled <= 4 * expected + 8
    check_mis(g, result.in_mis)


def test_greedy_members_kept_in_final(gnp_medium):
    net = SyncNetwork(gnp_medium, rho=2, seed=10)
    result = run_algorithm3(net, seed=11)
    assert result.greedy_joined + result.luby_joined == sum(result.in_mis)


def test_remnant_degree_crushed():
    """Konrad Lemma 1: remnant max degree = Õ(sqrt n) after the prefix."""
    g = connected_gnp_graph(600, 0.15, seed=12)   # Delta ~ 90
    net = SyncNetwork(g, rho=2, seed=13)
    result = run_algorithm3(net, seed=14, sample_constant=2.0)
    bound = 4 * math.sqrt(g.n) * math.log(g.n) + 16
    assert result.remnant_max_degree_local <= bound
    check_mis(g, result.in_mis)


def test_fewer_messages_than_luby_on_dense_graph():
    """The Theorem 4.1 separation: Õ(n^1.5) vs Õ(m)."""
    g = connected_gnp_graph(400, 0.3, seed=15)   # m ~ 24k >> n^1.5 = 8k
    net = SyncNetwork(g, rho=2, seed=16)
    result = run_algorithm3(net, seed=17)
    check_mis(g, result.in_mis)

    luby_net = SyncNetwork(g, rho=1, seed=18)
    run_luby(luby_net)
    assert result.messages < 0.6 * luby_net.stats.messages


def test_rounds_sublinear():
    g = connected_gnp_graph(400, 0.2, seed=19)
    net = SyncNetwork(g, rho=2, seed=20)
    result = run_algorithm3(net, seed=21)
    assert result.rounds <= 6 * math.sqrt(g.n) + 10 * g.n.bit_length()


def test_stage_messages_recorded(gnp_medium):
    net = SyncNetwork(gnp_medium, rho=2, seed=22)
    result = run_algorithm3(net, seed=23)
    assert set(result.stage_messages) == {"greedy", "inform", "luby"}
    assert sum(result.stage_messages.values()) == result.messages


def test_power_law_workload():
    g = power_law_graph(300, attachment=3, seed=24)
    net = SyncNetwork(g, rho=2, seed=25)
    result = run_algorithm3(net, seed=26)
    check_mis(g, result.in_mis)


def test_deterministic_given_seed(gnp_small):
    r1 = run_algorithm3(SyncNetwork(gnp_small, rho=2, seed=27), seed=28)
    r2 = run_algorithm3(SyncNetwork(gnp_small, rho=2, seed=27), seed=28)
    assert r1.in_mis == r2.in_mis


def test_empty_sample_still_correct():
    """If S happens to be empty (tiny n), Luby finishes the whole graph."""
    from repro.graphs.core import Graph

    g = Graph(3, [(0, 1), (1, 2)])
    net = SyncNetwork(g, rho=2, seed=29)
    result = run_algorithm3(net, seed=30, sample_constant=0.0)
    assert result.sampled == 0
    check_mis(g, result.in_mis)


def test_kt3_also_works(gnp_small):
    """More knowledge than needed is harmless."""
    net = SyncNetwork(gnp_small, rho=3, seed=31)
    result = run_algorithm3(net, seed=32)
    check_mis(gnp_small, result.in_mis)
