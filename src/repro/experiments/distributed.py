"""Distributed multi-host sweep execution.

The exponent fits behind the paper's claims want many families x sizes
x seeds x engines cells — more than one machine delivers in reasonable
time.  This module splits a
:class:`~repro.experiments.spec.SweepSpec` across hosts:

* a **coordinator** (:class:`Coordinator` / :func:`serve_sweep`) serves
  cells over a TCP work queue with lease + heartbeat + requeue-on-dead-
  worker semantics and merges every incoming record into the one
  resumable JSON-lines :class:`~repro.experiments.store.ResultStore`;
* a **worker** (:func:`run_worker`, ``repro worker --connect
  HOST:PORT``) pulls cells, runs each through the supervised process
  farm (per-cell timeouts and retries included, exactly as a local
  sweep would), and streams the records back.

Wire protocol
-------------
JSON-lines over a plain TCP socket, strictly request/response from the
worker's side, versioned so a coordinator and worker with different
conventions refuse to mix records instead of silently mispooling them:

    worker -> {"type": "hello", "protocol": "repro-sweep", "version": V,
               "worker": ID}
    coord  <- {"type": "welcome", "version": V, "lease_s": S}
            | {"type": "reject", "reason": ...}        # then close
    worker -> {"type": "lease"}
    coord  <- {"type": "cell", "cell": {...}}          # Cell.to_dict()
            | {"type": "idle", "retry_s": S}           # leased out, wait
            | {"type": "shutdown"}                     # sweep complete
    worker -> {"type": "heartbeat", "key": K}          # while running
    coord  <- {"type": "ok"} | {"type": "gone"}        # lease revoked:
                                                       # kill the cell
    worker -> {"type": "result", "record": {...}}
    coord  <- {"type": "ok", "accepted": bool}
    any    -> {"type": "status"}                       # read-only
    coord  <- {"type": "status", pending/leased/done/workers/...}

Leases are keyed on ``cell.key()``.  A worker that stops heartbeating
(crash, network partition) has its leases expire and the cells are
re-served to other workers; a cell requeued more than ``max_requeues``
times is recorded with ``status="lost"`` so the sweep still terminates.
Duplicate results for one key (a lease that expired on a worker that
then finished anyway) are dropped at the queue, and the store's readers
apply last-record-wins per key regardless, so the merged store is safe
to aggregate even when races slip through.

Self-healing semantics (the reasons hour-long robustness sweeps survive
real faults, not just simulated ones):

* **Worker reconnect.**  A worker that loses its coordinator retries
  the connection with exponential backoff + deterministic jitter,
  bounded by ``reconnect`` consecutive failed attempts, resuming the
  same ``worker_id``.  A result whose submission was cut off mid-send
  is re-submitted on the next connection instead of recomputed.
* **Lease-revocation cancellation.**  A heartbeat answered ``gone``
  means the coordinator re-served the cell; the worker terminates the
  in-flight child process (the ``cancel`` seam on
  :func:`~repro.experiments.runner._run_cells_with_timeout`) and drops
  the stale record instead of computing to completion.
* **Coordinator drain.**  SIGTERM/SIGINT on ``repro sweep --serve``
  stops leasing, answers ``shutdown`` to lease requests, gives
  in-flight cells a grace window to land, fsyncs the store + journal,
  and exits 0.
* **Queue journal.**  The coordinator periodically writes an fsync'd
  snapshot of the queue (done keys, requeue counts, live leases) beside
  the store; ``repro sweep --serve --resume-journal`` restores it so a
  bounced coordinator neither re-runs completed cells nor forgets
  ``max_requeues`` history.
"""

from __future__ import annotations

import json
import os
import random
import socket
import socketserver
import threading
import time
from collections import deque
from typing import Callable, Iterable, Optional

from repro.errors import DistributedError, ProtocolMismatchError
from repro.experiments.runner import (
    _failure_record,
    _run_cells_with_timeout,
)
from repro.experiments.spec import Cell, SweepSpec
from repro.experiments.store import ResultStore, write_json_atomic

PROTOCOL = "repro-sweep"
PROTOCOL_VERSION = 1
DEFAULT_LEASE_S = 30.0
DEFAULT_MAX_REQUEUES = 5
#: Worker-side deadline for one request/response exchange (the
#: coordinator answers every verb immediately; only a dead or wedged
#: coordinator is slower).
DEFAULT_REQUEST_TIMEOUT_S = 10.0
#: Consecutive failed (re)connection attempts before a worker gives up.
DEFAULT_RECONNECT_ATTEMPTS = 5
DEFAULT_BACKOFF_S = 0.5
DEFAULT_BACKOFF_MAX_S = 15.0
DEFAULT_JOURNAL_INTERVAL_S = 2.0
DEFAULT_DRAIN_GRACE_S = 5.0


# -- framing ------------------------------------------------------------------


def _send_msg(wfile, msg: dict) -> None:
    wfile.write((json.dumps(msg, sort_keys=True) + "\n").encode("utf-8"))
    wfile.flush()


def _recv_msg(rfile) -> Optional[dict]:
    """One JSON-lines message, or None when the peer closed the stream."""
    line = rfile.readline()
    if not line:
        return None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DistributedError(f"malformed protocol line: {exc}")
    if not isinstance(msg, dict):
        raise DistributedError("protocol message is not an object")
    return msg


#: Public names for the JSON-lines framing: the serving layer
#: (:mod:`repro.serving`) speaks the same wire format, so the project
#: has exactly one framing implementation.
send_msg = _send_msg
recv_msg = _recv_msg


# -- the lease queue ----------------------------------------------------------


class WorkQueue:
    """Thread-safe cell queue with per-key leases.

    The coordinator's single source of truth: every cell is either
    pending, leased (keyed on ``cell.key()``, with an expiry a healthy
    worker keeps pushing forward via heartbeats), or done.  Expired or
    dropped leases put the cell back on the pending deque; a cell that
    keeps getting requeued (``max_requeues`` exceeded) comes back from
    :meth:`reap` as *lost* so the caller can record a failure and the
    sweep can still finish.
    """

    def __init__(self, cells: Iterable[Cell],
                 lease_s: float = DEFAULT_LEASE_S,
                 max_requeues: int = DEFAULT_MAX_REQUEUES):
        self.lease_s = lease_s
        self.max_requeues = max_requeues
        self._lock = threading.Lock()
        self._pending: deque[Cell] = deque(cells)
        #: key -> [cell, worker_id, expires_at]
        self._leases: dict[str, list] = {}
        self._requeues: dict[str, int] = {}
        self._done: set[str] = set()
        #: done keys whose recorded outcome is a failure (lost lease or
        #: a non-ok record) — still supersedable by a real ok record.
        self._failed: set[str] = set()
        #: keys this queue instance has handed out at least once; a key
        #: completed without ever being leased here (a reconnecting
        #: worker re-submitting to a journal-restored queue) may still
        #: sit in the pending deque and must be scanned out.
        self._ever_leased: set[str] = set()

    def lease(self, worker: str,
              now: Optional[float] = None) -> Optional[Cell]:
        """Hand the next pending cell to ``worker`` (None = none free)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if not self._pending:
                return None
            cell = self._pending.popleft()
            self._leases[cell.key()] = [cell, worker, now + self.lease_s]
            self._ever_leased.add(cell.key())
            return cell

    def heartbeat(self, worker: str, key: str,
                  now: Optional[float] = None) -> bool:
        """Extend ``worker``'s lease on ``key``; False if it no longer
        holds one (expired and reassigned — the result may be dropped)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            lease = self._leases.get(key)
            if lease is None or lease[1] != worker:
                return False
            lease[2] = now + self.lease_s
            return True

    def complete(self, worker: str, key: str, ok: bool) -> bool:
        """Mark ``key`` done; True if the caller should keep the record.

        Any worker's result completes the key — even one whose lease
        expired (its record is just as valid; the cell is fixed-seed
        deterministic).  A key already done is a duplicate and the
        record should be dropped, with one asymmetry: a key whose
        recorded outcome so far is a *failure* (a lost lease, or a
        timeout/error submitted by a presumed-dead worker while the
        re-served copy was still running) is superseded by a later real
        ok record — last-record-wins, the store readers' convention.
        """
        with self._lock:
            if key in self._done:
                if ok and key in self._failed:
                    self._failed.discard(key)
                    return True
                return False
            self._leases.pop(key, None)
            # Only a requeued key — or one this queue never leased (a
            # reconnecting worker re-submitting into a journal-restored
            # queue) — can still sit in pending; a never-requeued key
            # leased here was popped when leased, so the deque scan is
            # skipped in the common case.
            if self._requeues.get(key) or key not in self._ever_leased:
                self._pending = deque(
                    c for c in self._pending if c.key() != key
                )
            self._done.add(key)
            if not ok:
                self._failed.add(key)
            return True

    def release_worker(self, worker: str) -> list[Cell]:
        """Requeue every lease held by a disconnected worker."""
        with self._lock:
            keys = [k for k, lease in self._leases.items()
                    if lease[1] == worker]
            return [self._requeue_locked(k) for k in keys]

    def reap(self, now: Optional[float] = None) -> list[Cell]:
        """Requeue expired leases; returns the cells declared *lost*
        (requeued more than ``max_requeues`` times, now marked done)."""
        now = time.monotonic() if now is None else now
        lost = []
        with self._lock:
            expired = [k for k, lease in self._leases.items()
                       if lease[2] < now]
            for key in expired:
                cell = self._requeue_locked(key)
                if cell is not None:
                    lost.append(cell)
        return lost

    def _requeue_locked(self, key: str) -> Optional[Cell]:
        """Drop ``key``'s lease; returns the cell only if it became
        lost (otherwise it went back on the pending deque)."""
        cell, _, _ = self._leases.pop(key)
        self._requeues[key] = self._requeues.get(key, 0) + 1
        if self._requeues[key] > self.max_requeues:
            self._done.add(key)
            self._failed.add(key)
            return cell
        self._pending.append(cell)
        return None

    def requeues(self, key: str) -> int:
        with self._lock:
            return self._requeues.get(key, 0)

    def finished(self) -> bool:
        with self._lock:
            return not self._pending and not self._leases

    def outstanding(self) -> int:
        with self._lock:
            return len(self._pending) + len(self._leases)

    def has_leases(self) -> bool:
        with self._lock:
            return bool(self._leases)

    def counts(self) -> dict:
        """Live queue counts for the ``status`` verb / progress lines."""
        with self._lock:
            return {
                "pending": len(self._pending),
                "leased": len(self._leases),
                "done": len(self._done),
                "failed": len(self._failed),
            }

    def leases_by_worker(self) -> dict[str, list[str]]:
        """Current leases grouped by holder (key lists, sorted)."""
        out: dict[str, list[str]] = {}
        with self._lock:
            for key, (_, worker, _) in self._leases.items():
                out.setdefault(worker, []).append(key)
        for keys in out.values():
            keys.sort()
        return out

    # -- journal (crash-restart) snapshot ---------------------------------

    def snapshot(self) -> dict:
        """JSON-safe queue state for the coordinator's journal.

        Pending cells are *not* serialized — a restart re-expands them
        from the spec minus the store's completed keys; the journal only
        has to carry what that re-expansion can't reconstruct: done keys
        (including failed/lost ones a store-based resume would retry),
        requeue counts, and the keys leased at snapshot time.
        """
        with self._lock:
            return {
                "done": sorted(self._done),
                "failed": sorted(self._failed),
                "requeues": dict(self._requeues),
                "leased": sorted(self._leases),
            }

    def restore(self, snapshot: dict) -> list[Cell]:
        """Apply a journal snapshot to a freshly built queue.

        Keys the journal says are done leave the pending deque; requeue
        counts are restored so ``max_requeues`` history survives the
        restart; keys that were *leased* when the journal was written
        lost their worker with the old coordinator, so each one is
        charged a requeue exactly as a dead-worker release would.
        Returns the cells that exhausted their requeue budget in the
        process (declared lost — the caller records them).
        """
        lost: list[Cell] = []
        with self._lock:
            for key, count in snapshot.get("requeues", {}).items():
                self._requeues[key] = max(
                    self._requeues.get(key, 0), int(count))
            self._done.update(snapshot.get("done", ()))
            self._failed.update(snapshot.get("failed", ()))
            for key in snapshot.get("leased", ()):
                if key not in self._done:
                    self._requeues[key] = self._requeues.get(key, 0) + 1
            still: deque[Cell] = deque()
            for cell in self._pending:
                key = cell.key()
                if key in self._done:
                    continue
                if self._requeues.get(key, 0) > self.max_requeues:
                    self._done.add(key)
                    self._failed.add(key)
                    lost.append(cell)
                else:
                    still.append(cell)
            self._pending = still
        return lost


class QueueJournal:
    """Durable queue snapshots beside the result store.

    The store alone cannot restart a mid-sweep coordinator faithfully:
    it knows the *ok* cells (resume skips them) but not the requeue
    history (``max_requeues`` would reset, so a worker-killing cell
    could loop forever across coordinator bounces) nor which failed/lost
    keys the dying coordinator had already given up on.  The journal is
    a single atomically-replaced, fsync'd JSON file carrying exactly
    that (:meth:`WorkQueue.snapshot`) plus the sweep's spec fingerprint,
    written periodically and at drain.
    """

    def __init__(self, path: str):
        self.path = path

    def write(self, snapshot: dict, fingerprint: Optional[str] = None,
              drained: bool = False) -> None:
        write_json_atomic(self.path, {
            "format": "repro-queue-journal",
            "version": PROTOCOL_VERSION,
            "fingerprint": fingerprint,
            "drained": drained,
            **snapshot,
        })

    def load(self) -> Optional[dict]:
        """The last snapshot, or None when no journal exists yet."""
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise DistributedError(
                f"unreadable queue journal {self.path}: {exc}")
        if payload.get("format") != "repro-queue-journal":
            raise DistributedError(
                f"{self.path} is not a repro queue journal")
        return payload

    def remove(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


# -- coordinator --------------------------------------------------------------


class _WorkerConnection(socketserver.StreamRequestHandler):
    """One coordinator-side thread per connected worker."""

    def handle(self):  # noqa: C901 - one dispatch loop, clearer flat
        coord: "Coordinator" = self.server.coordinator
        # A healthy worker is never silent longer than a lease (it
        # heartbeats at lease/3 while running); a socket quiet for two
        # leases is a dead peer and its cells must go back in the queue.
        self.connection.settimeout(max(10.0, 2 * coord.lease_s))
        worker = None
        try:
            hello = _recv_msg(self.rfile)
            if (not hello or hello.get("type") != "hello"
                    or hello.get("protocol") != PROTOCOL):
                _send_msg(self.wfile, {
                    "type": "reject",
                    "reason": "not a repro-sweep worker handshake",
                })
                return
            if hello.get("version") != PROTOCOL_VERSION:
                _send_msg(self.wfile, {
                    "type": "reject",
                    "reason": (
                        f"protocol version {hello.get('version')!r} != "
                        f"coordinator {PROTOCOL_VERSION}; records from "
                        "mismatched conventions must not be pooled — "
                        "upgrade the older side"
                    ),
                })
                return
            worker = str(hello.get("worker")
                         or f"{self.client_address[0]}:{self.client_address[1]}")
            # Status probes (`repro farm status`) are read-only peers:
            # they never lease, so they don't enter the worker registry
            # that drain/status report on.
            registered = hello.get("role") != "status"
            if registered:
                coord.worker_connected(worker)
            _send_msg(self.wfile, {"type": "welcome",
                                   "version": PROTOCOL_VERSION,
                                   "lease_s": coord.lease_s})
            while True:
                msg = _recv_msg(self.rfile)
                if msg is None:
                    return
                kind = msg.get("type")
                if kind == "lease":
                    coord.touch_worker(worker)
                    if coord.draining:
                        # Drain: no new work leaves the coordinator; the
                        # worker is released cleanly mid-sweep.
                        _send_msg(self.wfile, {"type": "shutdown"})
                        return
                    cell = coord.queue.lease(worker)
                    if cell is not None:
                        _send_msg(self.wfile, {"type": "cell",
                                               "cell": cell.to_dict()})
                    elif coord.queue.finished():
                        _send_msg(self.wfile, {"type": "shutdown"})
                        return
                    else:
                        # Everything is leased out; work may still come
                        # back if another worker's lease expires.
                        _send_msg(self.wfile, {
                            "type": "idle",
                            "retry_s": min(1.0, coord.lease_s / 4),
                        })
                elif kind == "heartbeat":
                    coord.touch_worker(worker, heartbeat=True)
                    alive = coord.queue.heartbeat(worker, msg.get("key"))
                    _send_msg(self.wfile,
                              {"type": "ok" if alive else "gone"})
                elif kind == "result":
                    record = msg.get("record")
                    if not isinstance(record, dict) or "key" not in record:
                        raise DistributedError("result without a record")
                    accepted = coord.submit(worker, record)
                    _send_msg(self.wfile, {"type": "ok",
                                           "accepted": accepted})
                elif kind == "status":
                    _send_msg(self.wfile, {"type": "status",
                                           **coord.status_snapshot()})
                else:
                    raise DistributedError(
                        f"unknown message type {kind!r}")
        except (DistributedError, socket.timeout, OSError):
            # Whatever this worker held goes back in the queue; the
            # reaper/finish logic below records anything declared lost.
            pass
        finally:
            if worker is not None:
                coord.release_worker_cells(worker)
                if registered:
                    coord.worker_disconnected(worker)


class _CoordinatorServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class Coordinator:
    """Serve a sweep's cells to remote workers and merge their records.

    The counterpart of :func:`repro.experiments.run_sweep` for
    multi-host execution: the same resume semantics (cells whose key the
    store already holds are never served), the same store (every record
    a worker streams back is appended and flushed immediately), and the
    same failure conventions (a cell no worker could finish is recorded
    with ``status="lost"``, ``valid=False``, excluded from fits and
    retried by the next resume).

    Usage::

        coord = Coordinator(spec, store=store)
        host, port = coord.start()
        ... point `repro worker --connect host:port` at it ...
        fresh = coord.wait()
    """

    def __init__(
        self,
        spec: Optional[SweepSpec] = None,
        store: Optional[ResultStore] = None,
        cells: Optional[Iterable[Cell]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = DEFAULT_LEASE_S,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        progress: Optional[Callable[[dict, int, int], None]] = None,
        journal: Optional[QueueJournal] = None,
        resume_journal: bool = False,
        journal_interval_s: float = DEFAULT_JOURNAL_INTERVAL_S,
    ):
        if cells is None:
            if spec is None:
                raise DistributedError("Coordinator needs a spec or cells")
            cells = spec.cells()
        done = store.completed_keys() if store is not None else set()
        todo = [c for c in cells if c.key() not in done]
        self.total = len(todo)
        self.lease_s = lease_s
        self.queue = WorkQueue(todo, lease_s=lease_s,
                               max_requeues=max_requeues)
        self.fresh: list[dict] = []
        self.duplicates = 0
        self.drained = False
        self._fingerprint = (spec.fingerprint()
                             if spec is not None else None)
        self._journal = journal
        self._journal_interval_s = journal_interval_s
        self._store = store
        self._progress = progress
        self._lock = threading.Lock()
        #: worker_id -> {connections, completed, last_seen,
        #:               last_heartbeat} (monotonic clocks)
        self._workers: dict[str, dict] = {}
        self._started_at = time.monotonic()
        # Serializes "mark done in the queue" with "write the record":
        # check_finished takes it too, so no thread can observe the
        # queue finished while the final record is still unwritten
        # (wait() returning before the last append reaches the store).
        self._submit_lock = threading.Lock()
        self._finished = threading.Event()
        self._draining = threading.Event()
        self._server: Optional[_CoordinatorServer] = None
        self._threads: list[threading.Thread] = []
        self._host, self._port = host, port
        if journal is not None and resume_journal:
            snapshot = journal.load()
            if snapshot is not None:
                self._restore_journal(snapshot)
        self.check_finished()

    def _restore_journal(self, snapshot: dict) -> None:
        theirs = snapshot.get("fingerprint")
        if (theirs is not None and self._fingerprint is not None
                and theirs != self._fingerprint):
            raise DistributedError(
                f"queue journal {self._journal.path} was written for a "
                f"different sweep (fingerprint {theirs} != "
                f"{self._fingerprint}); refusing to replay its requeue "
                "history into this one"
            )
        for cell in self.queue.restore(snapshot):
            self._record_lost(cell)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start serving in background threads; returns (host, port)."""
        self._server = _CoordinatorServer(
            (self._host, self._port), _WorkerConnection
        )
        self._server.coordinator = self
        self.address = self._server.server_address[:2]
        serve = threading.Thread(target=self._server.serve_forever,
                                 kwargs={"poll_interval": 0.1},
                                 daemon=True)
        reap = threading.Thread(target=self._reap_loop, daemon=True)
        serve.start()
        reap.start()
        self._threads = [serve, reap]
        if self._journal is not None:
            journal = threading.Thread(target=self._journal_loop,
                                       daemon=True)
            journal.start()
            self._threads.append(journal)
        return self.address

    def wait(self, timeout: Optional[float] = None,
             linger_s: float = 0.0) -> list[dict]:
        """Block until every cell is recorded (or the coordinator is
        drained); returns the fresh records.

        ``linger_s`` keeps the coordinator up briefly after the last
        record so workers parked in the idle loop can come back for
        their shutdown message instead of finding a dead socket.
        """
        if not self._finished.wait(timeout):
            raise DistributedError(
                f"sweep not finished after {timeout}s "
                f"({self.queue.outstanding()} cells outstanding)"
            )
        if linger_s > 0:
            time.sleep(linger_s)
        self._flush_durable()
        self.stop()
        return self.fresh

    # -- graceful drain ----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, grace_s: float = DEFAULT_DRAIN_GRACE_S) -> None:
        """Stop leasing and wind the coordinator down within ``grace_s``.

        Signal-handler safe (returns immediately; a watcher thread does
        the waiting): lease requests are answered ``shutdown`` from now
        on, in-flight cells get up to ``grace_s`` to land their results,
        then the store and journal are fsync'd and :meth:`wait` returns
        whatever completed.  ``drained`` distinguishes this exit from a
        completed sweep.
        """
        if self._draining.is_set():
            return
        self.drained = True
        self._draining.set()
        watcher = threading.Thread(target=self._drain_watch,
                                   args=(grace_s,), daemon=True)
        watcher.start()
        self._threads.append(watcher)

    def _drain_watch(self, grace_s: float) -> None:
        deadline = time.monotonic() + grace_s
        while (time.monotonic() < deadline
                and not self._finished.is_set()
                and self.queue.has_leases()):
            time.sleep(0.05)
        self._flush_durable()
        self._finished.set()

    def _flush_durable(self) -> None:
        """Push the store to disk and journal the final queue state."""
        if self._store is not None:
            try:
                self._store.sync()
            except (OSError, ValueError):
                pass    # a closed store has nothing left to sync
        self._journal_write()

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- record sinks (called from handler/reaper threads) ----------------

    def submit(self, worker: str, record: dict) -> bool:
        """Merge one worker record; False if dropped as a duplicate."""
        self.touch_worker(worker, completed=True)
        with self._submit_lock:
            ok = record.get("status", "ok") == "ok"
            if not self.queue.complete(worker, record["key"], ok):
                self.duplicates += 1
                accepted = False
            else:
                self._record(record)
                accepted = True
        self.check_finished()
        return accepted

    # -- worker registry (drives `repro farm status`) ----------------------

    def worker_connected(self, worker: str) -> None:
        now = time.monotonic()
        with self._lock:
            entry = self._workers.setdefault(worker, {
                "connections": 0, "completed": 0,
                "last_seen": now, "last_heartbeat": None,
            })
            entry["connections"] += 1
            entry["last_seen"] = now

    def worker_disconnected(self, worker: str) -> None:
        with self._lock:
            entry = self._workers.get(worker)
            if entry is not None:
                entry["connections"] = max(0, entry["connections"] - 1)

    def touch_worker(self, worker: str, heartbeat: bool = False,
                     completed: bool = False) -> None:
        now = time.monotonic()
        with self._lock:
            entry = self._workers.get(worker)
            if entry is None:
                return
            entry["last_seen"] = now
            if heartbeat:
                entry["last_heartbeat"] = now
            if completed:
                entry["completed"] += 1

    def status_snapshot(self) -> dict:
        """The read-only ``status`` verb's payload (JSON-safe).

        Live queue counts, per-worker health (connection state, cells
        completed, heartbeat/last-message ages, held leases), and the
        session throughput — ``cells_per_s`` over this coordinator's
        lifetime and the ETA it implies for the outstanding cells.
        """
        now = time.monotonic()
        counts = self.queue.counts()
        leases = self.queue.leases_by_worker()
        with self._lock:
            workers = {
                wid: {
                    "connected": entry["connections"] > 0,
                    "completed": entry["completed"],
                    "last_seen_age_s": round(now - entry["last_seen"], 3),
                    "last_heartbeat_age_s": (
                        round(now - entry["last_heartbeat"], 3)
                        if entry["last_heartbeat"] is not None else None),
                    "leases": leases.get(wid, []),
                }
                for wid, entry in self._workers.items()
            }
        outstanding = counts["pending"] + counts["leased"]
        elapsed = max(1e-9, now - self._started_at)
        rate = len(self.fresh) / elapsed
        return {
            "total": self.total,
            "pending": counts["pending"],
            "leased": counts["leased"],
            "done": self.total - outstanding,
            "lost": counts["failed"],
            "records": len(self.fresh),
            "duplicates": self.duplicates,
            "active_workers": sum(
                1 for w in workers.values() if w["connected"]),
            "workers": workers,
            "elapsed_s": round(elapsed, 3),
            "cells_per_s": round(rate, 4),
            "eta_s": (round(outstanding / rate, 1) if rate > 0
                      and outstanding else (0.0 if not outstanding
                                            else None)),
            "draining": self.draining,
            "finished": self._finished.is_set(),
        }

    def release_worker_cells(self, worker: str) -> None:
        """Requeue a disconnected worker's leases, recording any that
        exhausted their requeue budget."""
        with self._submit_lock:
            for cell in self.queue.release_worker(worker):
                if cell is not None:
                    self._record_lost(cell)
        self.check_finished()

    def _record_lost(self, cell: Cell) -> None:
        """A cell no worker could hold a lease on long enough."""
        self._record(_failure_record(
            cell, "lost",
            attempts=self.queue.requeues(cell.key()),
            error=("lease expired or worker died "
                   f"{self.queue.requeues(cell.key())} times"),
        ))

    def _record(self, rec: dict) -> None:
        with self._lock:
            self.fresh.append(rec)
            if self._store is not None:
                self._store.append(rec)
            count = len(self.fresh)
        if self._progress is not None:
            self._progress(rec, count, self.total)

    def check_finished(self) -> None:
        with self._submit_lock:
            if self.queue.finished():
                self._finished.set()

    def _reap_loop(self) -> None:
        interval = max(0.05, self.lease_s / 4)
        while not self._finished.wait(interval):
            with self._submit_lock:
                for cell in self.queue.reap():
                    self._record_lost(cell)
            self.check_finished()

    def _journal_loop(self) -> None:
        interval = max(0.05, self._journal_interval_s)
        while not self._finished.wait(interval):
            self._journal_write()

    def _journal_write(self) -> None:
        if self._journal is None:
            return
        try:
            self._journal.write(self.queue.snapshot(),
                                fingerprint=self._fingerprint,
                                drained=self.drained)
        except OSError:
            # A journal that cannot be written degrades restart fidelity,
            # not the live sweep; the store still holds every record.
            pass


def serve_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_s: float = DEFAULT_LEASE_S,
    max_requeues: int = DEFAULT_MAX_REQUEUES,
    progress: Optional[Callable[[dict, int, int], None]] = None,
    on_listen: Optional[Callable[[str, int], None]] = None,
    timeout: Optional[float] = None,
    linger_s: float = 2.0,
    journal_path: Optional[str] = None,
    resume_journal: bool = False,
    journal_interval_s: float = DEFAULT_JOURNAL_INTERVAL_S,
) -> list[dict]:
    """Serve ``spec``'s unfinished cells to workers until all complete.

    The distributed sibling of :func:`repro.experiments.run_sweep`:
    same resumable store, same return value (the newly produced
    records).  ``on_listen`` receives the bound (host, port) — with
    ``port=0`` that is the only way to learn the chosen port.
    ``journal_path`` enables the fsync'd queue journal;
    ``resume_journal`` additionally restores it at startup (see
    :class:`QueueJournal`).
    """
    journal = QueueJournal(journal_path) if journal_path else None
    coord = Coordinator(spec, store=store, host=host, port=port,
                        lease_s=lease_s, max_requeues=max_requeues,
                        progress=progress, journal=journal,
                        resume_journal=resume_journal,
                        journal_interval_s=journal_interval_s)
    bound_host, bound_port = coord.start()
    if on_listen is not None:
        on_listen(bound_host, bound_port)
    try:
        return coord.wait(timeout, linger_s=linger_s)
    finally:
        coord.stop()


def fetch_status(host: str, port: int,
                 timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S) -> dict:
    """One read-only ``status`` round trip against a live coordinator.

    The client behind ``repro farm status``: handshakes with
    ``role="status"`` (so it never appears in the worker registry),
    asks once, returns the snapshot dict.
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout_s)
    except OSError as exc:
        raise DistributedError(
            f"cannot reach coordinator at {host}:{port}: {exc}")
    with sock:
        sock.settimeout(timeout_s)
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        try:
            _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                              "version": PROTOCOL_VERSION,
                              "worker": f"status-{os.getpid()}",
                              "role": "status"})
            welcome = _recv_msg(rfile)
            if welcome is None:
                raise DistributedError(
                    "coordinator closed during handshake")
            if welcome.get("type") == "reject":
                raise ProtocolMismatchError(
                    welcome.get("reason", "handshake rejected"))
            _send_msg(wfile, {"type": "status"})
            reply = _recv_msg(rfile)
        except socket.timeout:
            raise DistributedError("coordinator stopped responding")
        except OSError as exc:
            raise DistributedError(f"status query failed: {exc}")
    if reply is None or reply.get("type") != "status":
        raise DistributedError(
            f"unexpected status reply "
            f"{(reply or {}).get('type')!r} (old coordinator?)")
    return reply


# -- worker -------------------------------------------------------------------


def _run_leased_cell(cell: Cell, heartbeat: Callable[[], bool],
                     interval: float) -> Optional[dict]:
    """Run one cell through the supervised farm, heartbeating meanwhile.

    The farm (one slot) gives the exact local-sweep semantics — the cell
    executes in a child process with its ``timeout_s``/``retries``
    honored and errors captured as records — while this thread stays
    free to service the lease.

    ``heartbeat`` returns False when the coordinator revoked the lease
    (``gone``): the in-flight child process is terminated through the
    farm's cancel seam and ``None`` comes back — the caller must *not*
    submit anything, the cell now belongs to another worker.  A
    heartbeat that *raises* (connection loss) gets the same reaping on
    the way out: the farm child never outlives its lease.
    """
    out: list[dict] = []
    cancel = threading.Event()
    runner = threading.Thread(
        target=_run_cells_with_timeout, args=([cell], 1, out.append),
        kwargs={"cancel": cancel},
        daemon=True,
    )
    runner.start()
    try:
        while runner.is_alive():
            runner.join(interval)
            if runner.is_alive() and not heartbeat():
                cancel.set()
                runner.join()
                return None
    except BaseException:
        cancel.set()
        runner.join()
        raise
    if not out:
        # The farm records every outcome; an empty result means the
        # farm thread itself died, which is a worker bug.
        return _failure_record(cell, "error",
                               error="farm produced no record")
    return out[0]


class _WorkerState:
    """What survives a worker's reconnects: the completion count and a
    record whose submission was cut off mid-send (re-submitted on the
    next connection instead of recomputed)."""

    def __init__(self):
        self.completed = 0
        self.pending_record: Optional[dict] = None
        self.progressed = 0     # successful exchanges; resets backoff


def run_worker(
    host: str,
    port: int,
    worker_id: Optional[str] = None,
    poll_s: float = 1.0,
    progress: Optional[Callable[[dict, int], None]] = None,
    reconnect: int = DEFAULT_RECONNECT_ATTEMPTS,
    backoff_s: float = DEFAULT_BACKOFF_S,
    backoff_max_s: float = DEFAULT_BACKOFF_MAX_S,
    request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
    on_reconnect: Optional[Callable[[int, float, str], None]] = None,
    connect: Optional[Callable[[], socket.socket]] = None,
) -> int:
    """Pull cells from a coordinator until it declares the sweep done.

    Returns the number of cells this worker completed (across every
    connection — the same ``worker_id`` is resumed after a reconnect).
    A lost or refused connection is retried with exponential backoff
    and deterministic jitter, up to ``reconnect`` *consecutive* failed
    attempts (any successful exchange resets the budget); only then
    does :class:`DistributedError` surface.  A version-rejected
    handshake (:class:`ProtocolMismatchError`) is never retried —
    reconnecting cannot fix a protocol skew.

    ``on_reconnect(attempt, delay_s, reason)`` observes each retry
    (the CLI logs it); ``connect`` is a seam returning a connected
    socket, substituted by tests with scripted flaky sockets.
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    if connect is None:
        def connect() -> socket.socket:
            return socket.create_connection((host, port),
                                            timeout=request_timeout_s)
    # Deterministic jitter: seeded per worker id, so a fleet of workers
    # bounced by one coordinator restart de-synchronizes its retries
    # reproducibly rather than stampeding back in lockstep.
    jitter = random.Random(f"{worker_id}/reconnect")
    state = _WorkerState()
    failures = 0
    while True:
        progressed_before = state.progressed
        try:
            sock = connect()
            with sock:
                return _worker_loop(sock, poll_s, worker_id, progress,
                                    state, request_timeout_s)
        except ProtocolMismatchError:
            raise
        except (DistributedError, OSError) as exc:
            if state.progressed > progressed_before:
                failures = 0    # the link worked; this is a new outage
            failures += 1
            if failures > reconnect:
                raise DistributedError(
                    f"connection to coordinator lost and {reconnect} "
                    f"reconnect attempt(s) failed: {exc}")
            delay = min(backoff_max_s, backoff_s * 2 ** (failures - 1))
            delay *= 0.5 + jitter.random()      # [0.5x, 1.5x) jitter
            if on_reconnect is not None:
                on_reconnect(failures, delay, str(exc))
            time.sleep(delay)


def _worker_loop(sock, poll_s: float, worker_id: str, progress,
                 state: _WorkerState,
                 request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S) -> int:
    """The protocol side of :func:`run_worker`, on an open socket."""
    rfile = sock.makefile("rb")
    wfile = sock.makefile("wb")
    # Per-request deadlines, not one blanket timeout: every exchange is
    # an immediate request/response, so each send/recv pair gets its own
    # short deadline — a coordinator that stops answering is detected in
    # seconds regardless of how long the lease (and therefore the old
    # blanket 2x-lease timeout) is.
    sock.settimeout(request_timeout_s)

    def _request(msg: dict) -> dict:
        sock.settimeout(request_timeout_s)
        try:
            _send_msg(wfile, msg)
            reply = _recv_msg(rfile)
        except socket.timeout:
            raise DistributedError("coordinator stopped responding")
        if reply is None:
            raise DistributedError("connection to coordinator lost")
        state.progressed += 1
        return reply

    _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                      "version": PROTOCOL_VERSION,
                      "worker": worker_id})
    try:
        welcome = _recv_msg(rfile)
    except socket.timeout:
        raise DistributedError("coordinator stopped responding")
    if welcome is None:
        raise DistributedError("coordinator closed during handshake")
    if welcome.get("type") == "reject":
        raise ProtocolMismatchError(
            welcome.get("reason", "handshake rejected"))
    if welcome.get("type") != "welcome":
        raise DistributedError(
            f"unexpected handshake reply {welcome.get('type')!r}")
    state.progressed += 1
    lease_s = float(welcome.get("lease_s", DEFAULT_LEASE_S))
    heartbeat_interval = max(0.05, lease_s / 3)

    def _submit(record: dict) -> None:
        # Stash before sending: if the connection dies mid-send the
        # reconnected loop re-submits instead of recomputing (the queue
        # dedups if the coordinator did receive it).
        state.pending_record = record
        _request({"type": "result", "record": record})
        state.pending_record = None
        state.completed += 1
        if progress is not None:
            progress(record, state.completed)

    if state.pending_record is not None:
        _submit(state.pending_record)

    while True:
        reply = _request({"type": "lease"})
        kind = reply.get("type")
        if kind == "shutdown":
            return state.completed
        if kind == "idle":
            time.sleep(float(reply.get("retry_s", poll_s)))
            continue
        if kind != "cell":
            raise DistributedError(
                f"unexpected lease reply {kind!r}")
        cell = Cell.from_dict(reply["cell"])

        def _heartbeat() -> bool:
            reply = _request({"type": "heartbeat", "key": cell.key()})
            return reply.get("type") == "ok"

        record = _run_leased_cell(cell, heartbeat=_heartbeat,
                                  interval=heartbeat_interval)
        if record is None:
            # Lease revoked mid-run: the child was killed, the record
            # dropped; whoever re-leased the cell owns it now.
            continue
        _submit(record)
