#!/usr/bin/env python3
"""Transmission scheduling in a dense wireless mesh via MIS.

Scenario: sensor nodes in a dense mesh must elect a set of simultaneous
transmitters such that no two interfere (an independent set) and every
node either transmits or hears a transmitter (maximality) — a classic
MIS application.  Nodes know their 2-hop neighborhoods from the
association handshake (exactly the KT-2 assumption), and radio time is
precious, so fewer coordination messages means longer battery life.

Compares Algorithm 3 (the paper's KT-2 MIS, Õ(n^1.5) messages in
Õ(sqrt n) rounds) against Luby's classic (Ω(m) messages), across mesh
densities, and shows the remnant-degree collapse (Konrad's lemma) that
makes the two-phase structure work.

Run:  python examples/wireless_mis_scheduling.py
"""

import math

from repro import api
from repro.graphs.generators import connected_gnp_graph


def main() -> None:
    print(f"{'density':>8} {'m':>7} {'alg3 msgs':>10} {'luby msgs':>10} "
          f"{'saving':>7} {'alg3 rounds':>12} {'|MIS|':>6}")
    for p in (0.1, 0.2, 0.4):
        mesh = connected_gnp_graph(450, p, seed=int(100 * p))
        new = api.find_mis(mesh, method="kt2-sampled-greedy", seed=5)
        old = api.find_mis(mesh, method="luby", seed=6)
        assert new.valid and old.valid
        saving = 100 * (1 - new.messages / old.messages)
        print(f"{p:>8} {mesh.m:>7} {new.messages:>10} {old.messages:>10} "
              f"{saving:>6.0f}% {new.report.rounds:>12} {new.size:>6}")

    # Peek inside one run: the sampled-greedy prefix crushes the degree.
    mesh = connected_gnp_graph(450, 0.3, seed=9)
    result = api.find_mis(mesh, method="kt2-sampled-greedy", seed=7)
    detail = result.detail
    print(f"\ninside Algorithm 3 on the p=0.3 mesh "
          f"(n={mesh.n}, Δ={mesh.max_degree()}):")
    print(f"  sampled |S| = {detail.sampled} "
          f"(Θ(sqrt n) = {math.isqrt(mesh.n)})")
    print(f"  greedy joiners: {detail.greedy_joined}, "
          f"remnant size: {detail.remnant_size}, "
          f"remnant max degree: {detail.remnant_max_degree_local} "
          f"(<= Õ(sqrt n))")
    print(f"  Luby finished the remnant with {detail.luby_joined} more "
          f"joiners; stage messages: {detail.stage_messages}")


if __name__ == "__main__":
    main()
