"""Tests for the Section 2.2 lower-bound construction (Figure 2)."""

import pytest

from repro.errors import ReproError
from repro.graphs.analysis import connected_components
from repro.lowerbounds.construction import (
    build_base_graph,
    crossing_instance,
    enumerate_family,
    family_size,
    phi_values,
    sample_family,
    verify_id_properties,
)


def test_base_graph_shape():
    g, parts = build_base_graph(4)
    t = 4
    assert g.n == 6 * t
    assert g.m == 4 * t * t           # 2t^2 per copy
    assert len(connected_components(g)) == 2


def test_base_graph_part_adjacency():
    g, parts = build_base_graph(3)
    for x in parts["X"]:
        for y in parts["Y"]:
            assert g.has_edge(x, y)
        for z in parts["Z"]:
            assert not g.has_edge(x, z)
    # no edges between the two copies
    for v in parts["X"] + parts["Y"] + parts["Z"]:
        for w in parts["X'"] + parts["Y'"] + parts["Z'"]:
            assert not g.has_edge(v, w)


def test_phi_windows():
    t = 5
    vals = phi_values(t)
    assert all(v % 2 == 0 for v in vals)
    assert all(0 <= vals[i] < 2 * t for i in range(t))
    assert all(10 * t <= vals[t + i] < 12 * t for i in range(t))
    assert all(20 * t <= vals[2 * t + i] < 22 * t for i in range(t))


def test_crossing_indices_validated():
    with pytest.raises(ReproError):
        crossing_instance(3, 3, 0, 0)
    with pytest.raises(ReproError):
        crossing_instance(0, 0, 0, 0)


def test_crossed_graph_edge_swap():
    inst = crossing_instance(4, 1, 2, 3)
    base, crossed = inst.base, inst.crossed
    assert base.m == crossed.m
    assert base.has_edge(*inst.e)
    assert base.has_edge(*inst.e_prime)
    assert not crossed.has_edge(*inst.e)
    assert not crossed.has_edge(*inst.e_prime)
    assert crossed.has_edge(inst.y, inst.y_prime)
    assert crossed.has_edge(inst.x_prime, inst.z)


def test_crossed_graph_connected():
    inst = crossing_instance(4, 0, 0, 0)
    assert len(connected_components(inst.crossed)) == 1


def test_distinguished_vertices():
    t = 5
    inst = crossing_instance(t, 2, 3, 4)
    assert inst.y == t + 2
    assert inst.z == 2 * t + 3
    assert inst.x_prime == 3 * t + 4
    assert inst.y_prime == 3 * t + inst.y
    assert inst.copy_map()[inst.y] == inst.y_prime


def test_psi_adjacency_facts():
    """The Lemma 2.5 hinges: psi(x') = phi(y)+1 and psi(y') = phi(z)+1."""
    for (yi, zi, xi) in [(0, 0, 0), (2, 1, 3), (4, 4, 4)]:
        inst = crossing_instance(5, yi, zi, xi)
        props = verify_id_properties(inst)
        assert props["x_prime_adjacent_to_y"]
        assert props["y_prime_adjacent_to_z"]


def test_id_properties_across_family():
    """Observations (i)-(iii) hold for every member (t small: exhaustive)."""
    t = 3
    for inst in enumerate_family(t):
        props = verify_id_properties(inst)
        assert all(props.values()), (inst.y_index, inst.z_index, inst.x_index)


def test_swap_assignments():
    inst = crossing_instance(4, 1, 2, 3)
    # psi_x swaps y and x'
    assert inst.psi_x.value_of(inst.y) == inst.psi.value_of(inst.x_prime)
    assert inst.psi_x.value_of(inst.x_prime) == inst.psi.value_of(inst.y)
    # psi_z swaps z and y'
    assert inst.psi_z.value_of(inst.z) == inst.psi.value_of(inst.y_prime)
    assert inst.psi_z.value_of(inst.y_prime) == inst.psi.value_of(inst.z)


def test_swaps_preserve_global_order():
    """The swapped IDs are order-adjacent, so relative order is unchanged
    for every other pair — the heart of Lemma 2.5."""
    inst = crossing_instance(4, 1, 2, 3)
    for swapped, pair in ((inst.psi_x, {inst.y, inst.x_prime}),
                          (inst.psi_z, {inst.z, inst.y_prime})):
        others = [v for v in range(inst.base.n) if v not in pair]
        for v in others:
            for w in others:
                if v == w:
                    continue
                assert ((inst.psi.value_of(v) < inst.psi.value_of(w))
                        == (swapped.value_of(v) < swapped.value_of(w)))
        # and the swapped pair's order vs everyone else is also unchanged
        for v in pair:
            for w in others:
                assert ((inst.psi.value_of(v) < inst.psi.value_of(w))
                        == (swapped.value_of(v) < swapped.value_of(w)))


def test_family_size_and_sampling():
    assert family_size(5) == 125
    sample = sample_family(5, 10, seed=1)
    assert len(sample) == 10
    assert all(s.t == 5 for s in sample)


def test_id_space_polynomial():
    inst = crossing_instance(6, 0, 0, 0)
    assert inst.psi.space_bound() <= 40 * 6
