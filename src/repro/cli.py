"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
color       run a coloring algorithm on a generated graph
mis         run an MIS algorithm on a generated graph
sweep       run a declarative experiment matrix under a worker pool
            (--serve hosts it for remote workers — the single-tenant
            alias for the farm — --dry-run prints the cell plan)
worker      pull cells (batched) from a coordinator and run them
            (reconnects with backoff when the coordinator bounces)
farm        the persistent multi-tenant experiment service:
            farm serve   host named sweeps with per-sweep stores,
                         priorities, fair-share leasing, journal
            farm submit  register a named sweep on a running farm
            farm attach  follow one sweep until it completes
            farm cancel  drop a sweep's pending cells, revoke leases
            farm status  queue counts, per-worker health, per-sweep
                         progress, throughput/ETA
report      aggregate JSON-lines results (growth exponents); accepts
            multiple stores and globs for per-sweep farm files
lowerbound  run the Section 2 crossing experiment
cycles      run the Theorem 2.17 mute-cycle sweep
serve       host the coloring/MIS query service (deadlines, bounded
            queue with load-shedding, supervised solver children,
            result cache, graceful drain on SIGTERM)
query       send one coloring/MIS query to a 'repro serve' server
serve-status  read-only health probe of a running query server
profile     cProfile a single sweep cell (top cumulative entries)
info        print the model/engine constants for a given n

All graphs are generated from a seed, so every invocation is
reproducible; results print as a small report with message/round
accounting and verification status.  ``sweep`` appends one JSON line
per completed cell and skips cells already present in ``--out``, so an
interrupted sweep resumes where it stopped.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import signal
import sys
import threading
import time

from repro import api
from repro.congest.runtime import LATENCY_MODELS, SCHEDULERS
from repro.errors import ReproError
from repro.graphs.core import Graph
from repro.graphs.generators import family_graph
from repro.graphs.io import load_edge_list

GRAPH_FAMILIES = ("gnp", "regular", "powerlaw", "barbell",
                  "grid", "torus", "hypercube", "expander", "planted")


def _build_graph(args) -> Graph:
    try:
        if getattr(args, "graph_file", None):
            return load_edge_list(
                args.graph_file,
                strict=not getattr(args, "lenient_graph", False))
        return family_graph(args.family, args.n, p=args.p,
                            seed=args.graph_seed)
    except ReproError as exc:
        raise SystemExit(str(exc))


def _graph_label(args, graph: Graph) -> str:
    if getattr(args, "graph_file", None):
        return f"{args.graph_file}(n={graph.n}, m={graph.m})"
    return f"{args.family}(n={graph.n}, m={graph.m})"


def _graph_args(sub) -> None:
    sub.add_argument("--n", type=int, default=300, help="vertex count")
    sub.add_argument("--p", type=float, default=0.2,
                     help="density knob (edge probability for gnp)")
    sub.add_argument("--family", default="gnp", choices=GRAPH_FAMILIES)
    sub.add_argument("--graph-file", default=None, metavar="PATH",
                     help="run on an edge-list file instead of a "
                          "generated graph (overrides --family/--n/--p)")
    sub.add_argument("--lenient-graph", action="store_true",
                     help="with --graph-file: skip self-loops and "
                          "collapse duplicate edges (repository-dump "
                          "convention) instead of rejecting them")
    sub.add_argument("--graph-seed", type=int, default=0)
    sub.add_argument("--seed", type=int, default=0,
                     help="algorithm randomness seed")
    sub.add_argument("--json", action="store_true",
                     help="machine-readable output")


def _emit(args, payload: dict) -> None:
    if args.json:
        print(json.dumps(payload, indent=2))
        return
    for key, value in payload.items():
        print(f"{key:>18}: {value}")


def _async_payload(report) -> dict:
    """The cost-of-asynchrony lines shared by ``color`` and ``mis``."""
    if report.engine != "async":
        return {}
    return {
        "latency model": report.latency,
        "sync messages": report.sync_messages,
        "overhead msgs": report.overhead_messages,
        "wrapped stages": report.synchronized_stages,
    }


def _fault_payload(report) -> dict:
    """The failure-injection lines shared by ``color`` and ``mis``."""
    if report.faults is None:
        return {}
    return {
        "fault model": report.faults,
        "dropped msgs": report.dropped_messages,
        "crashed nodes": report.crashed_nodes,
        "casualties": len(report.casualty_vertices),
        "survivor valid": report.survivor_valid,
    }


def cmd_color(args) -> int:
    graph = _build_graph(args)
    try:
        result = api.color_graph(
            graph, method=args.method, seed=args.seed,
            epsilon=args.epsilon, asynchronous=args.asynchronous,
            latency=args.latency, faults=args.faults,
            scheduler=args.scheduler,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    _emit(args, {
        "graph": _graph_label(args, graph),
        "method": args.method,
        "valid": result.valid,
        "colors used": result.num_colors,
        "palette bound": result.palette_bound,
        "messages": result.messages,
        "messages/edge": round(result.messages_per_edge, 3),
        "rounds": result.report.rounds,
        "utilized edges": result.report.utilized_edges,
        **_async_payload(result.report),
        **_fault_payload(result.report),
    })
    return 0 if result.valid else 1


def cmd_mis(args) -> int:
    graph = _build_graph(args)
    try:
        result = api.find_mis(graph, method=args.method, seed=args.seed,
                              asynchronous=args.asynchronous,
                              latency=args.latency, faults=args.faults,
                              scheduler=args.scheduler)
    except ReproError as exc:
        raise SystemExit(str(exc))
    _emit(args, {
        "graph": _graph_label(args, graph),
        "method": args.method,
        "valid": result.valid,
        "MIS size": result.size,
        "messages": result.messages,
        "messages/edge": round(result.report.messages_per_edge, 3),
        "rounds": result.report.rounds,
        **_async_payload(result.report),
        **_fault_payload(result.report),
    })
    return 0 if result.valid else 1


def _parse_endpoint(value: str, default_host: str, what: str):
    """``PORT`` or ``HOST:PORT`` -> (host, port)."""
    host, sep, port = value.rpartition(":")
    if not sep:
        host, port = default_host, value
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"{what} takes PORT or HOST:PORT, got {value!r}")


def _spec_from_args(args):
    """Build the SweepSpec shared by ``sweep`` and ``farm submit``
    (both parsers add the same axis flags via ``_sweep_axis_args``)."""
    from repro.experiments import SweepSpec

    try:
        return SweepSpec(
            families=tuple(args.families),
            sizes=tuple(args.sizes),
            seeds=tuple(args.seeds),
            methods=tuple(args.methods),
            engines=tuple(args.engines),
            latencies=tuple(args.latencies),
            faults=tuple(args.faults),
            density=args.p,
            epsilon=args.epsilon,
            sample_constant=args.sample_constant,
            collect_utilization=args.full_stats,
            timeout_s=args.timeout,
            retries=args.retries,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))


def cmd_sweep(args) -> int:
    from repro.experiments import ResultStore, run_sweep

    spec = _spec_from_args(args)
    store = ResultStore(args.out)

    if args.dry_run:
        # The plan a run would execute — resume-aware, nothing runs.
        done = store.completed_keys()
        plan = [c.key() for c in spec.cells() if c.key() not in done]
        if args.json:
            print(json.dumps({
                "cells": spec.size,
                "to_run": len(plan),
                "resumed (skipped)": spec.size - len(plan),
                "engines": list(spec.engine_axis),
                "latencies": list(spec.latencies),
                "faults": list(spec.faults),
                "plan": plan,
            }, indent=2))
        else:
            for key in plan:
                print(key)
            print(f"axes: engines={','.join(spec.engine_axis)} "
                  f"latencies={','.join(spec.latencies)} "
                  f"faults={','.join(spec.faults)}")
            print(f"dry-run: {len(plan)} of {spec.size} cells to run "
                  f"({spec.size - len(plan)} already in {args.out})")
        return 0

    def progress(rec, done, total):
        if rec.get("status", "ok") != "ok":
            print(f"[{done}/{total}] {rec['key']}: {rec['status'].upper()} "
                  f"after {rec.get('attempts', 1)} attempt(s)", flush=True)
            return
        note = (f" ({rec['attempts']} attempts)"
                if rec.get("attempts", 1) > 1 else "")
        print(
            f"[{done}/{total}] {rec['key']}: {rec['messages']} msgs, "
            f"{rec['rounds']} rounds, {rec['wall_s']:.2f}s{note}",
            flush=True,
        )

    t0 = time.perf_counter()
    drained = False
    with store:
        if args.serve is not None:
            fresh, drained = _serve_with_signals(args, spec, store,
                                                 progress)
        else:
            fresh = run_sweep(
                spec,
                store=store,
                workers=args.workers,
                progress=None if args.json else progress,
            )
    wall = time.perf_counter() - t0
    failed = [r for r in fresh if r.get("status", "ok") != "ok"]
    payload = {
        "cells": spec.size,
        "ran": len(fresh),
        # both runners execute exactly the cells absent from the store.
        "resumed (skipped)": spec.size - len(fresh),
        "failed (timeout/error)": len(failed),
        "workers": "distributed" if args.serve is not None else args.workers,
        "wall seconds": round(wall, 2),
        "results": args.out,
    }
    if drained:
        payload["drained"] = True
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>18}: {value}")
    if drained:
        # A drain is a *requested* early exit, not a failure: the store
        # and journal are flushed, and re-serving with --resume-journal
        # picks up exactly where this process stopped.
        print("drained: sweep incomplete by request; re-run with "
              "--serve --resume-journal to continue", file=sys.stderr)
        return 0
    # Exit nonzero if ANY of this spec's cells is invalid or failed —
    # including ones resumed from the store, so re-running a failed sweep
    # stays red.  Last-record-wins: a failed line is cleared by a later
    # successful record for the same key (and vice versa — a key whose
    # latest attempt failed is red even if an older line was ok).
    spec_keys = {c.key() for c in spec.cells()}
    bad: dict[str, str] = {}
    for key, rec in store.latest_per_key().items():
        if key not in spec_keys:
            continue
        if rec.get("status", "ok") != "ok":
            bad[key] = rec["status"]
        elif not rec.get("valid", True):
            bad[key] = "invalid"
    if bad:
        sample = [f"{k} ({v})" for k, v in list(bad.items())[:5]]
        print(f"FAILED/INVALID cells ({len(bad)}): {sample}",
              file=sys.stderr)
        return 1
    return 0


def _serve_with_signals(args, spec, store, progress):
    """Host a distributed sweep with drain-on-signal and a journal.

    Returns ``(fresh_records, drained)``.  SIGTERM/SIGINT initiate a
    graceful drain — stop leasing, give in-flight cells ``--drain-grace``
    seconds to land, fsync store + journal, exit 0 — instead of killing
    the coordinator mid-write; the periodic status summary keeps long
    unattended serves from being silent.
    """
    from repro.experiments.distributed import Coordinator, QueueJournal

    host, port = _parse_endpoint(args.serve, "0.0.0.0", "--serve")
    journal_path = args.journal or (args.out + ".journal")
    try:
        coord = Coordinator(
            spec, store=store, host=host, port=port,
            lease_s=args.lease,
            progress=None if args.json else progress,
            journal=QueueJournal(journal_path),
            resume_journal=args.resume_journal,
            journal_interval_s=args.journal_interval,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    bound_host, bound_port = coord.start()
    if not args.json:
        print(f"coordinator listening on {bound_host}:{bound_port}"
              f" — start workers with:\n"
              f"    python -m repro worker "
              f"--connect HOST:{bound_port}", flush=True)

    def _drain_handler(signum, frame):
        name = signal.Signals(signum).name
        print(f"{name}: draining — no new leases, up to "
              f"{args.drain_grace:g}s for in-flight cells "
              f"(journal: {journal_path})", file=sys.stderr, flush=True)
        coord.drain(grace_s=args.drain_grace)

    previous = {sig: signal.signal(sig, _drain_handler)
                for sig in (signal.SIGTERM, signal.SIGINT)}

    if args.status_interval > 0 and not args.json:
        def _summary_loop():
            while True:
                time.sleep(args.status_interval)
                snap = coord.status_snapshot()
                if snap["finished"]:
                    return
                eta = ("?" if snap["eta_s"] is None
                       else f"{snap['eta_s']:.0f}s")
                print(f"[serve] {snap['done']}/{snap['total']} done, "
                      f"{snap['active_workers']} worker(s), "
                      f"{snap['cells_per_s']:.2f} cells/s, eta {eta}",
                      flush=True)
        threading.Thread(target=_summary_loop, daemon=True).start()

    try:
        fresh = coord.wait()
    finally:
        coord.stop()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return fresh, coord.drained


def cmd_farm_status(args) -> int:
    """One read-only status round trip against a live coordinator."""
    from repro.errors import DistributedError
    from repro.experiments.distributed import fetch_status

    host, port = _parse_endpoint(args.connect, "127.0.0.1", "--connect")
    try:
        snap = fetch_status(host, port, timeout_s=args.timeout)
    except DistributedError as exc:
        print(f"farm status: {exc}", file=sys.stderr)
        return 1
    snap.pop("type", None)
    if args.json:
        print(json.dumps(snap, indent=2))
        return 0
    eta = "-" if snap["eta_s"] is None else f"{snap['eta_s']:g}s"
    _emit(args, {
        "coordinator": f"{host}:{port}",
        "cells": (f"{snap['done']}/{snap['total']} done, "
                  f"{snap['leased']} leased, {snap['pending']} pending"),
        "lost": snap["lost"],
        "cells/s": snap["cells_per_s"],
        "eta": eta,
        "elapsed": f"{snap['elapsed_s']:.0f}s",
        "draining": "yes" if snap["draining"] else "no",
        "workers": snap["active_workers"],
    })
    for wid, w in sorted(snap["workers"].items()):
        beat = ("never" if w["last_heartbeat_age_s"] is None
                else f"heartbeat {w['last_heartbeat_age_s']:.1f}s ago")
        state = "up" if w["connected"] else "gone"
        print(f"    {wid}: {state}, {w['completed']} done, "
              f"{len(w['leases'])} lease(s), {beat}")
    for name, s in sorted(snap.get("sweeps", {}).items()):
        eta = "-" if s["eta_s"] is None else f"{s['eta_s']:g}s"
        flag = (" [cancelled]" if s["cancelled"]
                else " [finished]" if s["finished"] else "")
        print(f"    sweep {name}: {s['done']}/{s['total']} done, "
              f"{s['leased']} leased, {s['pending']} pending, "
              f"{s['lost']} lost, {s['cells_per_s']:.2f} cells/s, "
              f"eta {eta}, priority {s['priority']}{flag}")
    return 0


def cmd_farm_serve(args) -> int:
    """Host the persistent multi-tenant farm until SIGTERM drains it."""
    from repro.errors import DistributedError
    from repro.experiments.distributed import Coordinator, QueueJournal

    host, port = _parse_endpoint(args.listen, "0.0.0.0", "PORT")
    os.makedirs(args.store_dir, exist_ok=True)
    journal_path = args.journal or os.path.join(args.store_dir,
                                                "farm.journal")
    try:
        coord = Coordinator(
            persistent=True,
            store_dir=args.store_dir,
            host=host, port=port,
            lease_s=args.lease,
            max_requeues=args.max_requeues,
            journal=QueueJournal(journal_path),
            resume_journal=args.resume_journal,
            journal_interval_s=args.journal_interval,
        )
    except (DistributedError, ReproError) as exc:
        raise SystemExit(str(exc))
    bound_host, bound_port = coord.start()
    resumed = coord.status_snapshot()["sweeps"]
    print(f"farm serving on {bound_host}:{bound_port} "
          f"(stores: {args.store_dir}, journal: {journal_path})\n"
          f"    submit:  python -m repro farm submit "
          f"--connect HOST:{bound_port} --name NAME ...\n"
          f"    workers: python -m repro worker "
          f"--connect HOST:{bound_port}", flush=True)
    if resumed:
        print(f"resumed {len(resumed)} sweep(s) from the journal: "
              f"{', '.join(sorted(resumed))}", flush=True)

    def _drain_handler(signum, frame):
        name = signal.Signals(signum).name
        print(f"{name}: draining farm — no new leases, up to "
              f"{args.drain_grace:g}s for in-flight cells "
              f"(journal: {journal_path})", file=sys.stderr, flush=True)
        coord.drain(grace_s=args.drain_grace)

    previous = {sig: signal.signal(sig, _drain_handler)
                for sig in (signal.SIGTERM, signal.SIGINT)}

    if args.status_interval > 0:
        def _summary_loop():
            while True:
                time.sleep(args.status_interval)
                snap = coord.status_snapshot()
                if snap["finished"]:
                    return
                sweeps = snap["sweeps"]
                live = sum(1 for s in sweeps.values()
                           if not s["finished"] and not s["cancelled"])
                print(f"[farm] {len(sweeps)} sweep(s), {live} live, "
                      f"{snap['done']}/{snap['total']} cells done, "
                      f"{snap['active_workers']} worker(s), "
                      f"{snap['cells_per_s']:.2f} cells/s", flush=True)
        threading.Thread(target=_summary_loop, daemon=True).start()

    try:
        coord.wait(linger_s=2.0)
    finally:
        coord.stop()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("farm drained: stores and journal flushed; restart with "
          "--resume-journal to continue every sweep", file=sys.stderr)
    return 0


def cmd_farm_submit(args) -> int:
    """Register a named sweep on a running farm."""
    from repro.errors import DistributedError
    from repro.experiments.distributed import submit_sweep

    host, port = _parse_endpoint(args.connect, "127.0.0.1", "--connect")
    spec = _spec_from_args(args)
    try:
        ack = submit_sweep(host, port, args.name, spec,
                           priority=args.priority,
                           timeout_s=args.rpc_timeout)
    except DistributedError as exc:
        print(f"farm submit: {exc}", file=sys.stderr)
        return 1
    payload = {
        "coordinator": f"{host}:{port}",
        "sweep": ack.get("sweep"),
        "created": ack.get("created"),
        "cells to run": ack.get("total"),
        "fingerprint": ack.get("fingerprint"),
        "priority": args.priority,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>18}: {value}")
    return 0


def cmd_farm_attach(args) -> int:
    """Follow one sweep's progress until it completes (or once with
    ``--poll 0``)."""
    from repro.errors import DistributedError
    from repro.experiments.distributed import fetch_sweep

    host, port = _parse_endpoint(args.connect, "127.0.0.1", "--connect")
    last_done = None
    while True:
        try:
            snap = fetch_sweep(host, port, args.name,
                               timeout_s=args.timeout)
        except DistributedError as exc:
            print(f"farm attach: {exc}", file=sys.stderr)
            return 1
        snap.pop("type", None)
        if not args.json and snap["done"] != last_done:
            eta = "-" if snap["eta_s"] is None else f"{snap['eta_s']:g}s"
            print(f"[{args.name}] {snap['done']}/{snap['total']} done, "
                  f"{snap['leased']} leased, {snap['pending']} pending, "
                  f"{snap['cells_per_s']:.2f} cells/s, eta {eta}",
                  flush=True)
            last_done = snap["done"]
        if snap.get("cancelled"):
            print(f"farm attach: sweep {args.name!r} was cancelled",
                  file=sys.stderr)
            return 1
        if snap.get("finished") or args.poll <= 0:
            if args.json:
                print(json.dumps(snap, indent=2))
            elif snap.get("finished"):
                print(f"[{args.name}] finished: {snap['done']}/"
                      f"{snap['total']} done, {snap['lost']} lost "
                      f"(store: {snap['store']})")
            return 1 if snap.get("finished") and snap["lost"] else 0
        time.sleep(args.poll)


def cmd_farm_cancel(args) -> int:
    """Cancel a named sweep on a running farm."""
    from repro.errors import DistributedError
    from repro.experiments.distributed import cancel_sweep

    host, port = _parse_endpoint(args.connect, "127.0.0.1", "--connect")
    try:
        ack = cancel_sweep(host, port, args.name, timeout_s=args.timeout)
    except DistributedError as exc:
        print(f"farm cancel: {exc}", file=sys.stderr)
        return 1
    payload = {
        "coordinator": f"{host}:{port}",
        "sweep": ack.get("sweep"),
        "dropped (pending)": ack.get("dropped"),
        "revoked (leases)": ack.get("revoked"),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>18}: {value}")
    return 0


def cmd_worker(args) -> int:
    """Run cells for a ``repro sweep --serve`` coordinator until it
    declares the sweep complete."""
    from repro.errors import DistributedError
    from repro.experiments.distributed import run_worker

    host, port = _parse_endpoint(args.connect, "127.0.0.1", "--connect")

    def progress(rec, count):
        status = rec.get("status", "ok")
        if status != "ok":
            print(f"[{count}] {rec['key']}: {status.upper()}", flush=True)
        else:
            print(f"[{count}] {rec['key']}: {rec['messages']} msgs, "
                  f"{rec['wall_s']:.2f}s", flush=True)

    def on_reconnect(attempt, delay, reason):
        # Always on stderr (even with --json): operators watching a
        # flapping farm need the evidence, and stdout stays parseable.
        print(f"worker: connection problem ({reason}); reconnect "
              f"attempt {attempt}/{args.reconnect} in {delay:.1f}s",
              file=sys.stderr, flush=True)

    try:
        completed = run_worker(
            host, port,
            worker_id=args.id,
            poll_s=args.poll,
            progress=None if args.json else progress,
            reconnect=args.reconnect,
            backoff_s=args.backoff,
            backoff_max_s=args.backoff_max,
            on_reconnect=on_reconnect,
            max_batch=args.max_batch,
            batch_target_s=args.batch_target,
        )
    except DistributedError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 1
    payload = {"coordinator": f"{host}:{port}", "cells run": completed}
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>18}: {value}")
    return 0


def cmd_report(args) -> int:
    from repro.experiments import (
        ResultStore,
        bench_payload,
        render_report,
        summarize,
    )

    # Each argument may be a literal path or a glob (per-sweep farm
    # stores: ``repro report --store 'farm-stores/*.jsonl'``).  A
    # pattern matching nothing falls through as a literal path so the
    # "no records" diagnostic names it.
    paths: list[str] = []
    for pattern in args.results:
        for path in sorted(glob.glob(pattern)) or [pattern]:
            if path not in paths:
                paths.append(path)
    records = []
    for path in paths:
        records.extend(ResultStore(path).load())
    if not records:
        print(f"no records found in {', '.join(paths)}", file=sys.stderr)
        return 1
    summary = summarize(records)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(render_report(summary))
    if args.bench_out:
        with open(args.bench_out, "w", encoding="utf-8") as fh:
            json.dump(bench_payload(records, summary), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        if not args.json:
            print(f"\nwrote {args.bench_out}")
    return 0


def cmd_lowerbound(args) -> int:
    from repro.lowerbounds.algorithms import (
        ProbedCountColoring,
        ProbedExtremaMIS,
    )
    from repro.lowerbounds.crossing_experiment import (
        dichotomy_experiment,
        summarize_records,
    )

    factory_cls = (ProbedCountColoring if args.problem == "coloring"
                   else ProbedExtremaMIS)
    recs = dichotomy_experiment(
        args.t, lambda: factory_cls(args.budget), args.problem,
        sample=args.sample, seed=args.seed,
    )
    s = summarize_records(recs)
    _emit(args, {
        "family": f"F(t={args.t}), n={6 * args.t}, m={4 * args.t ** 2}",
        "problem": args.problem,
        "probe budget": args.budget,
        "trials": s["trials"],
        "correct on base": round(s["base_correct_fraction"], 3),
        "correct on crossed": round(s["crossed_correct_fraction"], 3),
        "pair utilized": round(s["pair_utilized_fraction"], 3),
        "mean messages": round(s["mean_messages"], 1),
        "dichotomy holds": s["dichotomy_holds"],
    })
    return 0


def cmd_cycles(args) -> int:
    from repro.lowerbounds.kt_rho import cycle_tradeoff_sweep

    rows = cycle_tradeoff_sweep(
        args.cycles, args.k,
        fractions=tuple(args.fractions), trials=args.trials,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(f"{'fraction':>9} {'messages':>10} {'success':>8} "
              f"{'failed cycles':>14}")
        for r in rows:
            print(f"{r['fraction']:>9} {r['mean_messages']:>10.0f} "
                  f"{r['success_rate']:>8.2f} "
                  f"{r['mean_failed_cycles']:>14.1f}")
    return 0


def cmd_profile(args) -> int:
    """cProfile one sweep cell and print the top cumulative entries.

    The perf-work entry point: ``repro profile --method luby --n 220``
    shows where the engine spends its time on exactly the workload the
    sweeps run, without leaving the CLI.
    """
    import cProfile
    import pstats

    from repro.experiments import ALL_METHODS, Cell
    from repro.experiments.runner import run_cell

    if args.method not in ALL_METHODS:
        raise SystemExit(
            f"unknown method {args.method!r}; known: {', '.join(ALL_METHODS)}"
        )
    cell = Cell(
        family=args.family,
        n=args.n,
        seed=args.seed,
        method=args.method,
        engine=args.engine,
        latency=args.latency,
        density=args.p,
        epsilon=args.epsilon,
        collect_utilization=args.full_stats,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    record = run_cell(cell)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    stage_wall = record.get("stage_wall") or {}
    if stage_wall:
        print("per-stage wall (engine time inside run_stage):")
        total = sum(stage_wall.values())
        for name, wall in sorted(stage_wall.items(),
                                 key=lambda kv: -kv[1])[:args.top]:
            print(f"  {name:32s} {wall * 1000:9.2f} ms")
        print(f"  {'(stage total)':32s} {total * 1000:9.2f} ms "
              f"of {record['wall_s'] * 1000:.2f} ms cell wall")
    print(f"cell {record['key']}: {record['messages']} msgs, "
          f"{record['rounds']} rounds, {record['wall_s']:.3f}s, "
          f"valid={record['valid']}")
    return 0 if record["valid"] else 1


def cmd_serve(args) -> int:
    """Host the query service until SIGTERM/SIGINT drains it."""
    from repro.experiments.store import write_json_atomic
    from repro.serving import QueryServer

    host, port = _parse_endpoint(args.listen, "0.0.0.0", "PORT")
    try:
        server = QueryServer(
            host=host, port=port,
            solvers=args.solvers,
            max_pending=args.max_pending,
            cache_size=args.cache_size,
            deadline_s=args.deadline,
            grace_s=args.grace,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    bound_host, bound_port = server.start()
    print(f"serving on {bound_host}:{bound_port} — query with:\n"
          f"    python -m repro query --connect HOST:{bound_port} "
          f"--problem coloring --n 100", flush=True)

    def _drain_handler(signum, frame):
        name = signal.Signals(signum).name
        print(f"{name}: draining — answering in-flight queries, "
              "refusing new ones", file=sys.stderr, flush=True)
        server.drain()

    previous = {sig: signal.signal(sig, _drain_handler)
                for sig in (signal.SIGTERM, signal.SIGINT)}

    def _observer_loop():
        while not server.wait(timeout=args.status_interval or 30.0):
            snap = server.status_snapshot()
            if args.stats_out:
                write_json_atomic(args.stats_out, snap)
            if args.status_interval > 0:
                p99 = ("-" if snap["p99_ms"] is None
                       else f"{snap['p99_ms']:.0f}ms")
                print(f"[serve] {snap['queries']} queries "
                      f"({snap['queries_per_s']:.2f}/s), "
                      f"{snap['cache_hits']} cached, "
                      f"{snap['degraded']} degraded, "
                      f"{snap['shed']} shed, "
                      f"{snap['errors']} errors, p99 {p99}",
                      flush=True)

    if args.status_interval > 0 or args.stats_out:
        threading.Thread(target=_observer_loop, daemon=True).start()

    try:
        server.wait()
    finally:
        server.stop()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        if args.stats_out:
            write_json_atomic(args.stats_out, server.status_snapshot())
    print("drained: all in-flight queries answered", file=sys.stderr)
    return 0


def cmd_query(args) -> int:
    """One query round trip against a running ``repro serve``."""
    from repro.serving import build_query, query_once

    host, port = _parse_endpoint(args.connect, "127.0.0.1", "--connect")
    try:
        if args.graph_file and args.send_path:
            # Ship the path; the server (which shares our filesystem)
            # loads the file itself — no megabyte edge lists inline.
            request = build_query(
                args.problem, method=args.method,
                graph_file=args.graph_file, seed=args.seed,
                epsilon=args.epsilon, deadline_s=args.deadline)
        else:
            graph = _build_graph(args)
            request = build_query(
                args.problem, method=args.method,
                edges=graph.edges(), n=graph.n, seed=args.seed,
                epsilon=args.epsilon, deadline_s=args.deadline)
        result = query_once(host, port, request,
                            timeout_s=args.timeout)
    except ReproError as exc:
        print(f"query: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.payload, indent=2, sort_keys=True))
        return 0 if result.ok else 1
    if result.status == "overloaded":
        hint = ("draining" if result.payload.get("draining")
                else f"retry in {result.retry_after_s:g}s")
        print(f"server overloaded ({hint})", file=sys.stderr)
        return 1
    if result.status == "error":
        retriable = ("retriable" if result.payload.get("retriable")
                     else "permanent")
        print(f"query failed ({retriable}): {result.error}",
              file=sys.stderr)
        return 1
    payload = {
        "server": f"{host}:{port}",
        "problem": args.problem,
        "method": result.payload.get("method"),
        "valid": result.valid,
        "degraded": result.degraded,
        "cached": result.cached,
        "messages": result.messages,
        "rounds": result.rounds,
        "elapsed": f"{result.payload.get('elapsed_s', 0):.3f}s",
    }
    if args.problem == "coloring":
        payload["colors used"] = result.num_colors
        payload["palette bound"] = result.palette_bound
    else:
        payload["MIS size"] = result.size
    if result.messages_per_edge is not None:
        payload["messages/edge"] = round(result.messages_per_edge, 3)
    _emit(args, payload)
    return 0 if result.valid else 1


def cmd_serve_status(args) -> int:
    """One read-only status round trip against a live query server."""
    from repro.serving import fetch_serve_status

    host, port = _parse_endpoint(args.connect, "127.0.0.1", "--connect")
    try:
        snap = fetch_serve_status(host, port, timeout_s=args.timeout)
    except ReproError as exc:
        print(f"serve status: {exc}", file=sys.stderr)
        return 1
    snap.pop("type", None)
    if args.json:
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0
    p50 = "-" if snap["p50_ms"] is None else f"{snap['p50_ms']:.1f}ms"
    p99 = "-" if snap["p99_ms"] is None else f"{snap['p99_ms']:.1f}ms"
    _emit(args, {
        "server": f"{host}:{port}",
        "uptime": f"{snap['uptime_s']:.0f}s",
        "queries": (f"{snap['queries']} "
                    f"({snap['queries_per_s']:.2f}/s)"),
        "ok": snap["ok"],
        "cache": (f"{snap['cache_hits']} hits "
                  f"({snap['cache_hit_rate']:.0%}), "
                  f"{snap['cache_entries']}/{snap['cache_size']} "
                  "entries"),
        "degraded": snap["degraded"],
        "shed": snap["shed"],
        "errors": snap["errors"],
        "retries": snap["retries"],
        "in flight": (f"{snap['in_flight']} "
                      f"({snap['running']} running, "
                      f"{snap['solvers']} slots)"),
        "latency": f"p50 {p50}, p99 {p99}",
        "draining": "yes" if snap["draining"] else "no",
    })
    return 0


def cmd_info(args) -> int:
    from repro.congest.network import SyncNetwork

    graph = _build_graph(args)
    net = SyncNetwork(graph, seed=args.seed)
    _emit(args, {
        "graph": _graph_label(args, graph),
        "max degree": graph.max_degree(),
        "ID space": net.assignment.space_bound(),
        "word bits": net.word_bits,
        "words/message": net.words_per_message,
        "n^1.5": int(graph.n ** 1.5),
        "m vs n^1.5": round(graph.m / graph.n ** 1.5, 2),
    })
    return 0


def _sweep_axis_args(p) -> None:
    """Experiment-matrix flags shared by ``sweep`` and ``farm submit``
    (everything :func:`_spec_from_args` reads)."""
    p.add_argument("--families", nargs="+", default=["gnp"],
                   choices=GRAPH_FAMILIES, metavar="FAMILY")
    p.add_argument("--sizes", type=int, nargs="+", default=[100, 160, 240],
                   metavar="N")
    p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                   metavar="SEED")
    p.add_argument("--methods", nargs="+", default=["kt1-delta-plus-one"],
                   metavar="METHOD",
                   help="coloring: kt1-delta-plus-one, kt1-eps-delta, "
                        "baseline-trial, baseline-rank-greedy; "
                        "MIS: kt2-sampled-greedy, luby, rank-greedy")
    p.add_argument("--engines", "--engine", nargs="+", dest="engines",
                   default=["sync"], choices=("sync", "columnar", "async"),
                   metavar="ENGINE",
                   help="engine axis: sync (scalar rounds), columnar "
                        "(numpy whole-round scheduler; counts identical "
                        "to sync, wall clock differs — docs/columnar.md), "
                        "async (event-driven; every method runs async, "
                        "round-cadence ones via the alpha-synchronizer)")
    p.add_argument("--latencies", nargs="+", default=["uniform"],
                   choices=LATENCY_MODELS, metavar="MODEL",
                   help="latency-model axis for async cells "
                        f"({', '.join(LATENCY_MODELS)}); sync cells "
                        "ignore it")
    p.add_argument("--faults", nargs="+", default=["none"], metavar="SPEC",
                   help="fault-model axis: none, drop:P, "
                        "crash:P[:T[:R]], adversary[:B[:W]]; multiplies "
                        "every cell (fault-free keys are unchanged)")
    p.add_argument("--p", type=float, default=0.2,
                   help="density knob (edge probability for gnp)")
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--sample-constant", type=float, default=None,
                   help="Algorithm 3 |S| knob (kt2-sampled-greedy only; "
                        "default: the method's 1.0)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-cell wall-clock budget; a cell past it is "
                        "killed (pool unharmed), retried --retries times, "
                        "then recorded with status=timeout")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts for a timed-out cell")
    p.add_argument("--full-stats", action="store_true",
                   help="full accounting (utilized edges, per-tag) "
                        "instead of the default stats-lite mode")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Can We Break Symmetry with o(m) "
                    "Communication?' (PODC 2021)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    p = subs.add_parser("color", help="run a coloring algorithm")
    _graph_args(p)
    p.add_argument("--method", default="kt1-delta-plus-one",
                   choices=("kt1-delta-plus-one", "kt1-eps-delta",
                            "baseline-trial", "baseline-rank-greedy"))
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--asynchronous", action="store_true")
    p.add_argument("--latency", default="uniform", choices=LATENCY_MODELS,
                   help="async latency model (with --asynchronous)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault model: drop:P, crash:P[:T[:R]], "
                        "adversary[:B[:W]] (default: none)")
    p.add_argument("--scheduler", default=None, choices=SCHEDULERS,
                   help="synchronous delivery engine: rounds (scalar "
                        "per-node loop) or columnar (numpy whole-round "
                        "batches; identical counts, see docs/columnar.md)")
    p.set_defaults(fn=cmd_color)

    p = subs.add_parser("mis", help="run an MIS algorithm")
    _graph_args(p)
    p.add_argument("--method", default="kt2-sampled-greedy",
                   choices=("kt2-sampled-greedy", "luby", "rank-greedy"))
    p.add_argument("--asynchronous", action="store_true")
    p.add_argument("--latency", default="uniform", choices=LATENCY_MODELS,
                   help="async latency model (with --asynchronous)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault model: drop:P, crash:P[:T[:R]], "
                        "adversary[:B[:W]] (default: none)")
    p.add_argument("--scheduler", default=None, choices=SCHEDULERS,
                   help="synchronous delivery engine: rounds (scalar "
                        "per-node loop) or columnar (numpy whole-round "
                        "batches; identical counts, see docs/columnar.md)")
    p.set_defaults(fn=cmd_mis)

    p = subs.add_parser(
        "sweep",
        help="run an experiment matrix (family x n x seed x method) "
             "under a multiprocessing pool; JSON-lines output, resumable",
    )
    _sweep_axis_args(p)
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes (0/1 = serial)")
    p.add_argument("--out", default="results.jsonl",
                   help="JSON-lines result store (appended; completed "
                        "cells are skipped on re-run)")
    p.add_argument("--serve", default=None, metavar="[HOST:]PORT",
                   help="instead of running locally, serve the cells to "
                        "'repro worker' processes over a TCP work queue "
                        "(lease/heartbeat/requeue; records merge into "
                        "--out); HOST defaults to 0.0.0.0")
    p.add_argument("--lease", type=float, default=30.0, metavar="SECONDS",
                   help="with --serve: lease duration per cell; a worker "
                        "silent past it is presumed dead and its cells "
                        "are re-served")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="with --serve: queue-journal file (default: "
                        "<out>.journal) — an fsync'd snapshot of done "
                        "keys, requeue counts, and live leases so a "
                        "bounced coordinator can restart mid-sweep")
    p.add_argument("--resume-journal", action="store_true",
                   help="with --serve: restore the queue journal at "
                        "startup — completed cells are not re-run and "
                        "requeue history (max_requeues) survives the "
                        "coordinator restart")
    p.add_argument("--journal-interval", type=float, default=2.0,
                   metavar="SECONDS",
                   help="with --serve: seconds between journal writes")
    p.add_argument("--drain-grace", type=float, default=5.0,
                   metavar="SECONDS",
                   help="with --serve: on SIGTERM/SIGINT, how long to "
                        "wait for in-flight cells before exiting "
                        "(leasing stops immediately; exit code 0)")
    p.add_argument("--status-interval", type=float, default=30.0,
                   metavar="SECONDS",
                   help="with --serve: print a one-line progress summary "
                        "(done/total, workers, cells/s, eta) this often; "
                        "0 disables")
    p.add_argument("--dry-run", action="store_true",
                   help="print the resume-aware cell plan (one key per "
                        "line) and exit without running anything")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary")
    p.set_defaults(fn=cmd_sweep)

    p = subs.add_parser(
        "worker",
        help="pull sweep cells from a 'repro sweep --serve' coordinator, "
             "run them (timeouts/retries included), stream records back",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the coordinator's address")
    p.add_argument("--id", default=None,
                   help="worker name in coordinator logs/leases "
                        "(default: hostname-pid)")
    p.add_argument("--poll", type=float, default=1.0, metavar="SECONDS",
                   help="idle back-off when every cell is leased out")
    p.add_argument("--reconnect", type=int, default=5, metavar="N",
                   help="consecutive failed (re)connection attempts "
                        "before giving up (exponential backoff with "
                        "jitter between attempts; 0 = fail immediately)")
    p.add_argument("--backoff", type=float, default=0.5, metavar="SECONDS",
                   help="base reconnect backoff (doubles per attempt)")
    p.add_argument("--backoff-max", type=float, default=15.0,
                   metavar="SECONDS", help="reconnect backoff ceiling")
    p.add_argument("--max-batch", type=int, default=16, metavar="K",
                   help="lease up to K cells per round trip (one "
                        "heartbeat covers the batch); auto-tuned down "
                        "from an EWMA of cell wall time so a batch "
                        "targets --batch-target seconds. 1 = classic "
                        "one-cell-per-lease")
    p.add_argument("--batch-target", type=float, default=5.0,
                   metavar="SECONDS",
                   help="wall-clock a leased batch should amount to "
                        "(capped by the coordinator's lease duration)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary")
    p.set_defaults(fn=cmd_worker)

    p = subs.add_parser(
        "farm",
        help="run and drive the persistent multi-tenant experiment farm "
             "(serve/submit/attach/cancel/status)",
    )
    farm_subs = p.add_subparsers(dest="farm_command", required=True)

    ps = farm_subs.add_parser(
        "serve",
        help="host a persistent coordinator: named sweeps are submitted "
             "with 'farm submit', workers pull from every live sweep "
             "(fair-share by priority), results land in per-sweep "
             "stores under --store-dir",
    )
    ps.add_argument("listen", metavar="[HOST:]PORT",
                    help="listen address; HOST defaults to 0.0.0.0")
    ps.add_argument("--store-dir", required=True, metavar="DIR",
                    help="directory for per-sweep result stores "
                         "(<name>.jsonl) and the farm journal")
    ps.add_argument("--journal", default=None, metavar="PATH",
                    help="multi-sweep queue journal (default: "
                         "<store-dir>/farm.journal)")
    ps.add_argument("--resume-journal", action="store_true",
                    help="restore every journalled sweep at startup — "
                         "done cells stay done, requeue history "
                         "survives, cancelled sweeps stay cancelled")
    ps.add_argument("--lease", type=float, default=30.0, metavar="SECONDS",
                    help="lease duration per cell (a batch of K cells "
                         "holds K leases renewed by one heartbeat)")
    ps.add_argument("--max-requeues", type=int, default=3, metavar="N",
                    help="times a cell may be re-served after lease "
                         "expiry before it is recorded as lost")
    ps.add_argument("--journal-interval", type=float, default=2.0,
                    metavar="SECONDS",
                    help="seconds between journal writes")
    ps.add_argument("--drain-grace", type=float, default=5.0,
                    metavar="SECONDS",
                    help="on SIGTERM/SIGINT: stop leasing, wait this "
                         "long for in-flight cells, flush stores and "
                         "journal, exit 0")
    ps.add_argument("--status-interval", type=float, default=30.0,
                    metavar="SECONDS",
                    help="print a one-line farm summary this often; "
                         "0 disables")
    ps.set_defaults(fn=cmd_farm_serve)

    ps = farm_subs.add_parser(
        "submit",
        help="register a named sweep on a running farm (idempotent: "
             "re-submitting the same name+spec attaches to the live "
             "sweep; same name, different spec is refused)",
    )
    ps.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="the farm coordinator's address")
    ps.add_argument("--name", required=True, metavar="NAME",
                    help="sweep name (letters, digits, . _ -); also "
                         "names the store file <name>.jsonl")
    ps.add_argument("--priority", type=int, default=0,
                    help="fair-share priority; higher drains first")
    _sweep_axis_args(ps)
    ps.add_argument("--rpc-timeout", type=float, default=10.0,
                    metavar="SECONDS",
                    help="submit request deadline (--timeout is the "
                         "per-cell wall-clock budget, an axis flag)")
    ps.add_argument("--json", action="store_true",
                    help="machine-readable acknowledgement")
    ps.set_defaults(fn=cmd_farm_submit)

    ps = farm_subs.add_parser(
        "attach",
        help="follow one sweep's progress until it finishes (exit 0 "
             "clean, 1 on lost cells or cancellation)",
    )
    ps.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="the farm coordinator's address")
    ps.add_argument("--name", required=True, metavar="NAME")
    ps.add_argument("--poll", type=float, default=2.0, metavar="SECONDS",
                    help="progress poll interval; 0 = print one "
                         "snapshot and exit")
    ps.add_argument("--timeout", type=float, default=10.0,
                    metavar="SECONDS", help="per-request deadline")
    ps.add_argument("--json", action="store_true",
                    help="machine-readable final snapshot")
    ps.set_defaults(fn=cmd_farm_attach)

    ps = farm_subs.add_parser(
        "cancel",
        help="cancel a named sweep: pending cells are dropped, leased "
             "cells are revoked at the next heartbeat; its store keeps "
             "already-recorded results",
    )
    ps.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="the farm coordinator's address")
    ps.add_argument("--name", required=True, metavar="NAME")
    ps.add_argument("--timeout", type=float, default=10.0,
                    metavar="SECONDS", help="cancel request deadline")
    ps.add_argument("--json", action="store_true",
                    help="machine-readable acknowledgement")
    ps.set_defaults(fn=cmd_farm_cancel)

    ps = farm_subs.add_parser(
        "status",
        help="live queue counts, per-worker heartbeat ages, per-sweep "
             "pending/leased/done, cells/s, eta (read-only; never "
             "leases or disturbs the sweeps)",
    )
    ps.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="the coordinator's address")
    ps.add_argument("--timeout", type=float, default=10.0,
                    metavar="SECONDS", help="status request deadline")
    ps.add_argument("--json", action="store_true",
                    help="machine-readable status")
    ps.set_defaults(fn=cmd_farm_status)

    p = subs.add_parser(
        "report",
        help="aggregate sweep results: mean ± CI per size and fitted "
             "messages-vs-n growth exponents per (family, method)",
    )
    p.add_argument("--results", "--store", dest="results", nargs="+",
                   default=["results.jsonl"], metavar="PATH",
                   help="JSON-lines store(s) written by 'repro sweep' / "
                        "the farm; accepts multiple paths and globs "
                        "(quote them), e.g. --store 'stores/*.jsonl'")
    p.add_argument("--json", action="store_true")
    p.add_argument("--bench-out", default=None, metavar="PATH",
                   help="also write a BENCH_engine.json perf artifact")
    p.set_defaults(fn=cmd_report)

    p = subs.add_parser("lowerbound",
                        help="Section 2 crossing experiment")
    p.add_argument("--t", type=int, default=6)
    p.add_argument("--problem", default="coloring",
                   choices=("coloring", "mis"))
    p.add_argument("--budget", type=int, default=0,
                   help="probe budget per node (0 = silent)")
    p.add_argument("--sample", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_lowerbound)

    p = subs.add_parser("cycles", help="Theorem 2.17 mute-cycle sweep")
    p.add_argument("--cycles", type=int, default=20)
    p.add_argument("--k", type=int, default=12)
    p.add_argument("--fractions", type=float, nargs="+",
                   default=[0.0, 0.5, 0.9, 1.0])
    p.add_argument("--trials", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_cycles)

    p = subs.add_parser(
        "profile",
        help="cProfile one sweep cell (top cumulative entries)",
    )
    _graph_args(p)
    p.add_argument("--method", default="kt1-delta-plus-one",
                   metavar="METHOD",
                   help="any sweep method (coloring or MIS)")
    p.add_argument("--engine", default="sync",
                   choices=("sync", "columnar", "async"))
    p.add_argument("--latency", default="uniform", choices=LATENCY_MODELS)
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--top", type=int, default=20,
                   help="how many profile rows to print")
    p.add_argument("--full-stats", action="store_true",
                   help="profile the full-accounting path instead of "
                        "stats-lite")
    p.set_defaults(fn=cmd_profile)

    p = subs.add_parser(
        "serve",
        help="host the coloring/MIS query service: per-request "
             "deadlines with degraded-mode fallback, bounded queue "
             "with load-shedding, supervised solver subprocesses, "
             "LRU result cache, graceful drain on SIGTERM "
             "(docs/serving.md)",
    )
    p.add_argument("listen", metavar="[HOST:]PORT",
                   help="address to listen on (HOST defaults to "
                        "0.0.0.0; PORT 0 picks a free port)")
    p.add_argument("--solvers", type=int, default=2,
                   help="concurrent solver subprocesses")
    p.add_argument("--max-pending", type=int, default=8,
                   help="queries allowed to wait beyond the solver "
                        "slots; past this, new queries are shed with "
                        "an 'overloaded' response")
    p.add_argument("--cache-size", type=int, default=128,
                   help="LRU result-cache entries (0 disables)")
    p.add_argument("--deadline", type=float, default=30.0,
                   metavar="SECONDS",
                   help="default per-query deadline (queries may set "
                        "their own); past it the solver child is "
                        "killed and a degraded greedy answer returned")
    p.add_argument("--grace", type=float, default=2.0, metavar="SECONDS",
                   help="extra allowance past a deadline for the "
                        "degraded fallback to be computed and sent")
    p.add_argument("--status-interval", type=float, default=30.0,
                   metavar="SECONDS",
                   help="print a one-line health summary this often "
                        "(0 disables)")
    p.add_argument("--stats-out", default=None, metavar="PATH",
                   help="periodically write the status snapshot as "
                        "JSON (atomic rename), for dashboards")
    p.set_defaults(fn=cmd_serve)

    p = subs.add_parser(
        "query",
        help="send one coloring/MIS query to a 'repro serve' server",
    )
    _graph_args(p)
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the query server's address")
    p.add_argument("--problem", default="coloring",
                   choices=("coloring", "mis"))
    p.add_argument("--method", default=None, metavar="METHOD",
                   help="solver method (default: the problem's "
                        "kt-native method)")
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="per-query deadline (default: the server's); "
                        "an over-deadline solve returns degraded=true")
    p.add_argument("--send-path", action="store_true",
                   help="with --graph-file: send the path for the "
                        "server to load, instead of inlining edges")
    p.add_argument("--timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="socket deadline per exchange (on top of the "
                        "query deadline + grace)")
    p.set_defaults(fn=cmd_query)

    p = subs.add_parser(
        "serve-status",
        help="read-only health probe of a running query server "
             "(queries/s, p50/p99, cache hit rate, shed/degraded/"
             "error counts)",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the query server's address")
    p.add_argument("--timeout", type=float, default=10.0,
                   metavar="SECONDS", help="status request deadline")
    p.add_argument("--json", action="store_true",
                   help="machine-readable status")
    p.set_defaults(fn=cmd_serve_status)

    p = subs.add_parser("info", help="model constants for a graph")
    _graph_args(p)
    p.set_defaults(fn=cmd_info)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
