"""KT-rho initial knowledge (paper Section 1.4.1).

In the KT-rho CONGEST model each node v is provided initial knowledge of

  (i) the IDs of all nodes at distance at most rho from v, and
  (ii) the neighborhood of every node at distance at most rho - 1 from v.

So KT-1 gives a node its neighbors' IDs (but nothing about who *their*
neighbors are), and KT-2 additionally gives the full adjacency lists of its
neighbors (hence the IDs at distance two).  Algorithm 3 (the KT-2 MIS)
leans on (ii) to build local 2-hop BFS trees without communication.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.congest.ids import NodeId
from repro.errors import ModelViolationError, ReproError
from repro.graphs.core import Graph


class KTKnowledge:
    """One node's initial knowledge under KT-rho.

    All IDs are exposed as :class:`NodeId` objects (opaque ones for
    comparison-based protocols), never as raw integers.
    """

    __slots__ = ("rho", "n", "my_id", "neighbor_ids", "_ids_by_distance",
                 "_neighborhoods")

    def __init__(
        self,
        rho: int,
        n: int,
        my_id: NodeId,
        neighbor_ids: tuple[NodeId, ...],
        ids_by_distance: tuple[frozenset[NodeId], ...],
        neighborhoods: dict[NodeId, frozenset[NodeId]],
    ):
        self.rho = rho
        self.n = n
        self.my_id = my_id
        self.neighbor_ids = neighbor_ids
        self._ids_by_distance = ids_by_distance
        self._neighborhoods = neighborhoods

    # -- queries -------------------------------------------------------------

    def ids_within(self, distance: int) -> frozenset[NodeId]:
        """All known IDs at distance <= ``distance`` (excluding self)."""
        if distance > self.rho:
            raise ModelViolationError(
                f"KT-{self.rho} knowledge does not extend to distance {distance}"
            )
        combined: set[NodeId] = set()
        for d in range(1, distance + 1):
            combined |= self._ids_by_distance[d]
        return frozenset(combined)

    def ids_at(self, distance: int) -> frozenset[NodeId]:
        """Known IDs at exactly ``distance`` hops."""
        if distance > self.rho:
            raise ModelViolationError(
                f"KT-{self.rho} knowledge does not extend to distance {distance}"
            )
        return self._ids_by_distance[distance]

    def knows_neighborhood_of(self, node_id: NodeId) -> bool:
        return node_id in self._neighborhoods

    def neighborhood_of(self, node_id: NodeId) -> frozenset[NodeId]:
        """The full neighbor-ID set of a node at distance <= rho - 1.

        Under KT-1 this is only available for the node itself; under KT-2
        it is available for every 1-hop neighbor, etc.
        """
        try:
            return self._neighborhoods[node_id]
        except KeyError:
            raise ModelViolationError(
                f"KT-{self.rho} knowledge does not include the neighborhood "
                f"of {node_id!r}"
            ) from None

    @property
    def degree(self) -> int:
        return len(self.neighbor_ids)


def _bfs_within(graph: Graph, source: int, radius: int) -> list[list[int]]:
    """Vertices grouped by exact distance 0..radius from ``source``."""
    layers: list[list[int]] = [[source]]
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        if dist[u] == radius:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                while len(layers) <= dist[v]:
                    layers.append([])
                layers[dist[v]].append(v)
                queue.append(v)
    while len(layers) <= radius:
        layers.append([])
    return layers


def build_knowledge(
    graph: Graph,
    rho: int,
    make_id: Callable[[int], NodeId],
) -> list[KTKnowledge]:
    """Compute every node's KT-rho knowledge for ``graph``.

    ``make_id`` maps a vertex to its (possibly opaque) NodeId object; the
    engine passes a memoized constructor so identical vertices share one
    NodeId instance.
    """
    if rho < 1:
        raise ReproError("this simulator supports KT-rho for rho >= 1")
    n = graph.n
    # Memoize per-vertex artifacts that are identical from every observer's
    # point of view.  Under KT-2 a high-degree vertex u appears in the
    # <= rho-1 ball of every neighbor, so without the cache its neighbor-ID
    # frozenset would be rebuilt deg(u) times.
    id_of = [make_id(v) for v in range(n)]
    nbhd_set: list = [None] * n

    def neighborhood_set(u: int):
        s = nbhd_set[u]
        if s is None:
            s = nbhd_set[u] = frozenset(id_of[w] for w in graph.neighbors(u))
        return s

    # Integer adjacency sets shared across all observers — the rho <= 2
    # fast paths below compose them instead of running one BFS per node
    # (the BFS costs O(m) per node in dict/deque churn; KT-2 knowledge
    # for the whole network is just unions of these shared sets).
    adj: list[set[int]] = [set(graph.neighbors(v)) for v in range(n)]

    knowledge: list[KTKnowledge] = []
    for v in range(n):
        if rho == 1:
            layers = [[v], list(adj[v])]
        elif rho == 2:
            # Distance 2 = union of the neighbors' neighborhoods minus
            # the closed 1-ball; identical contents to the BFS layers
            # (layer order is irrelevant — they become frozensets).
            ball = adj[v] | {v}
            two = set()
            for u in adj[v]:
                two |= adj[u]
            layers = [[v], list(adj[v]), list(two - ball)]
        else:
            layers = _bfs_within(graph, v, rho)
        # Distance-1 is exactly v's neighborhood; share the cached set.
        ids_by_distance = tuple(
            neighborhood_set(v) if d == 1
            else frozenset(id_of[u] for u in layer)
            for d, layer in enumerate(layers)
        )
        neighbor_ids = tuple(
            sorted((id_of[u] for u in graph.neighbors(v)),
                   key=lambda x: x._value)  # noqa: SLF001 - engine-side sort
        )
        neighborhoods: dict[NodeId, frozenset[NodeId]] = {}
        for d in range(0, rho):  # nodes at distance <= rho - 1
            for u in layers[d]:
                neighborhoods[id_of[u]] = neighborhood_set(u)
        knowledge.append(
            KTKnowledge(
                rho=rho,
                n=n,
                my_id=make_id(v),
                neighbor_ids=neighbor_ids,
                ids_by_distance=ids_by_distance,
                neighborhoods=neighborhoods,
            )
        )
    return knowledge
