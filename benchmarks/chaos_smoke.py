#!/usr/bin/env python
"""Chaos smoke: kill real processes mid-flight, prove the system heals.

Three chapters, nothing faked (select with ``--only``):

**farm** — the self-healing sweep farm acceptance scenario:

1. A coordinator subprocess (``repro sweep --serve``) hosts a small
   sweep with the queue journal enabled.
2. Worker ``w0`` starts pulling cells and is **SIGKILL**ed while the
   coordinator's ``status`` verb shows it holding a lease (mid-cell).
3. Worker ``w1`` takes over; once it has made progress *and* is
   mid-cell itself, the coordinator is **bounced**: SIGTERM (graceful
   drain — must exit 0), then restarted on the same port with
   ``--resume-journal``.
4. ``w1`` reconnects through its backoff loop, finishes the sweep, and
   the restarted coordinator exits 0.

Afterwards the merged store must be **bit-identical per key** to a
serial in-process ``run_cell`` pass (modulo the volatile ``wall_s`` /
``attempts`` fields), contain **zero lost records**, and ``w1`` must
have demonstrably reconnected.

**tenants** — the multi-tenant farm (``repro farm serve``) under the
same abuse:

1. A persistent farm subprocess hosts **two named sweeps** (submitted
   via ``repro farm submit``) with per-sweep stores and the multi-sweep
   journal.
2. Batching worker ``w0`` is **SIGKILL**ed while holding a multi-cell
   batch (status shows ≥ 2 leases).
3. With both sweeps still live, the farm is SIGTERM-drained (exit 0)
   and restarted with ``--resume-journal`` — every tenant must come
   back.
4. ``w1`` reconnects and drains both sweeps; each tenant's store must
   be bit-identical per key to a serial pass with **zero lost
   records**.

**serve** — the query service (``repro serve``) robustness spine, per
docs/serving.md's failure matrix:

1. A slow query occupies the single solver slot; its solver child is
   **SIGKILL**ed (twice — the supervisor's one retry included) and the
   client gets a structured retriable ``error`` while the server keeps
   answering other queries.
2. An **unmeetable deadline** returns a verified ``degraded=true``
   answer within deadline + grace.
3. A **flood** past ``--max-pending`` is shed immediately with
   ``overloaded`` responses (bounded queue, no backlog growth).
4. **SIGTERM** mid-query: the in-flight query is answered, new ones
   refused, and the server exits 0.

All queries use fixed seeds, so both chapters are deterministic.  Run
directly (``python benchmarks/chaos_smoke.py``) or via the slow-marked
tests in tests/test_chaos.py / tests/test_serving.py; verify.sh runs
both chapters as the chaos stage.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.errors import DistributedError, ReproError  # noqa: E402
from repro.experiments import ResultStore, SweepSpec, run_cell  # noqa: E402
from repro.experiments.distributed import fetch_status  # noqa: E402
from repro.serving import (  # noqa: E402
    ServeClient,
    build_query,
    fetch_serve_status,
    query_once,
)

# ~0.1-0.4s per cell on a laptop: long enough that a SIGKILL lands
# mid-cell, short enough that the whole scenario stays CI-sized.
SPEC_ARGS = ["--families", "gnp", "--sizes", "90", "120",
             "--seeds", "0", "1", "2", "3", "--methods", "kt1-eps-delta"]
SPEC = SweepSpec(families=("gnp",), sizes=(90, 120), seeds=(0, 1, 2, 3),
                 methods=("kt1-eps-delta",))
#: Record fields that legitimately differ between a farm run and a
#: serial one: how long it took (total and per stage) and how many
#: supervised attempts.
VOLATILE = ("wall_s", "stage_wall", "attempts")

#: The serve chapter's slow query: ~5s of solver work — a wide window
#: to land signals in, still CI-sized.
SLOW_QUERY = dict(family="gnp", n=400, p=0.3, graph_seed=0, seed=1,
                  method="kt1-eps-delta")
FAST_QUERY = dict(family="gnp", n=60, p=0.3, graph_seed=1, seed=2,
                  method="kt1-delta-plus-one")


def _env():
    env = dict(os.environ)
    extra = os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    env["PYTHONPATH"] = SRC + extra
    return env


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(argv, stdout, stderr):
    return subprocess.Popen([sys.executable, "-m", "repro"] + argv,
                            env=_env(), stdout=stdout, stderr=stderr)


def _poll_status(port, predicate, what, deadline_s=60.0):
    """Spin on the read-only status verb until ``predicate(snap)``."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            snap = fetch_status("127.0.0.1", port, timeout_s=2.0)
        except DistributedError:
            time.sleep(0.02)
            continue
        if predicate(snap):
            return snap
        time.sleep(0.02)
    raise SystemExit(f"chaos smoke: timed out waiting for {what}")


def _wait(proc, what, timeout_s=90.0):
    try:
        return proc.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit(f"chaos smoke: {what} did not exit "
                         f"within {timeout_s:.0f}s")


def _holds_lease(snap, worker):
    entry = snap["workers"].get(worker)
    return entry is not None and entry["connected"] and entry["leases"]


def run_farm_scenario(workdir: str) -> None:
    out = os.path.join(workdir, "chaos.jsonl")
    port = _free_port()
    serve_argv = (["sweep", "--serve", f"127.0.0.1:{port}", "--out", out,
                   "--lease", "5", "--journal-interval", "0.2",
                   "--drain-grace", "0.05", "--status-interval", "0"]
                  + SPEC_ARGS)
    # Single-cell leases: this chapter pins down lease/requeue semantics
    # and needs pending work outstanding at the bounce; batched leases
    # get their own chapter (tenants, below).
    worker_argv = ["worker", "--connect", f"127.0.0.1:{port}",
                   "--poll", "0.1", "--reconnect", "25",
                   "--backoff", "0.2", "--backoff-max", "2",
                   "--max-batch", "1", "--json"]
    total = SPEC.size
    procs = []
    logs = {}

    def spawn(name, argv):
        logs[name] = (open(os.path.join(workdir, name + ".out"), "w+"),
                      open(os.path.join(workdir, name + ".err"), "w+"))
        proc = _spawn(argv, *logs[name])
        procs.append(proc)
        return proc

    try:
        coord_a = spawn("coord-a", serve_argv)

        # -- scenario 1: SIGKILL a worker mid-cell ------------------------
        w0 = spawn("w0", worker_argv + ["--id", "w0"])
        _poll_status(port, lambda s: _holds_lease(s, "w0"),
                     "w0 to hold a lease")
        os.kill(w0.pid, signal.SIGKILL)      # no goodbye, no cleanup
        print(f"chaos smoke: SIGKILLed w0 mid-cell (pid {w0.pid})")

        # -- scenario 2: bounce the coordinator mid-sweep ----------------
        w1 = spawn("w1", worker_argv + ["--id", "w1"])
        snap = _poll_status(
            port,
            lambda s: (s["done"] >= 2 and s["pending"] >= 1
                       and _holds_lease(s, "w1")),
            "w1 to be mid-cell with work remaining")
        done_at_bounce = snap["done"]
        coord_a.send_signal(signal.SIGTERM)
        rc = _wait(coord_a, "draining coordinator", timeout_s=30.0)
        if rc != 0:
            raise SystemExit(
                f"chaos smoke: drained coordinator exited {rc}, want 0")
        print(f"chaos smoke: coordinator drained at "
              f"{done_at_bounce}/{total} done (exit 0)")

        coord_b = spawn("coord-b", serve_argv + ["--resume-journal"])
        rc = _wait(coord_b, "restarted coordinator")
        if rc != 0:
            raise SystemExit(
                f"chaos smoke: restarted coordinator exited {rc}, want 0")
        rc = _wait(w1, "surviving worker w1")
        if rc != 0:
            raise SystemExit(f"chaos smoke: w1 exited {rc}, want 0")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    # -- the proof: store vs serial, bit for bit -------------------------
    for fh, _ in logs.values():
        fh.flush()
    latest = ResultStore(out).latest_per_key()
    serial = {c.key(): run_cell(c) for c in SPEC.cells()}
    if set(latest) != set(serial):
        raise SystemExit(
            f"chaos smoke: store keys != spec keys "
            f"(missing {sorted(set(serial) - set(latest))}, "
            f"extra {sorted(set(latest) - set(serial))})")
    lost = [r for r in ResultStore(out).iter_records()
            if r.get("status") == "lost"]
    if lost:
        raise SystemExit(f"chaos smoke: {len(lost)} lost record(s): "
                         f"{[r['key'] for r in lost]}")
    for key, rec in latest.items():
        want = dict(serial[key])
        got = dict(rec)
        for field in VOLATILE:
            want.pop(field, None)
            got.pop(field, None)
        if got != want:
            diff = {k for k in set(want) | set(got)
                    if want.get(k) != got.get(k)}
            raise SystemExit(
                f"chaos smoke: record for {key} differs from serial "
                f"run in field(s) {sorted(diff)}")

    # -- the survivor really reconnected ---------------------------------
    w1_err = open(os.path.join(workdir, "w1.err")).read()
    if "reconnect attempt" not in w1_err:
        raise SystemExit("chaos smoke: w1 never logged a reconnect "
                         "attempt — the bounce was not exercised")
    w1_out = open(os.path.join(workdir, "w1.out")).read()
    w1_count = json.loads(w1_out)["cells run"]
    # Every post-bounce cell was w1's (w0 is dead), and it may have run
    # one more mid-bounce than the last pre-bounce status showed.
    if w1_count < total - done_at_bounce - 1 or w1_count < 1:
        raise SystemExit(
            f"chaos smoke: w1 completed {w1_count} cells, expected at "
            f"least {total - done_at_bounce - 1} (post-bounce work)")

    print(f"chaos smoke: OK — {total} cells bit-identical to serial, "
          f"0 lost, w0 SIGKILLed, coordinator bounced, w1 reconnected "
          f"and completed {w1_count}")


# -- the tenants chapter ------------------------------------------------------

#: Two distinct matrices — different methods so a cross-tenant routing
#: bug would land visibly foreign keys in a store.
TENANT_SPECS = {
    "alpha": (SweepSpec(families=("gnp",), sizes=(90, 120),
                        seeds=(0, 1, 2, 3), methods=("kt1-eps-delta",)),
              ["--families", "gnp", "--sizes", "90", "120",
               "--seeds", "0", "1", "2", "3",
               "--methods", "kt1-eps-delta"]),
    "beta": (SweepSpec(families=("gnp",), sizes=(90, 120), seeds=(0, 1, 2),
                       methods=("luby",)),
             ["--families", "gnp", "--sizes", "90", "120",
              "--seeds", "0", "1", "2", "--methods", "luby"]),
}


def _farm_submit(port, name, spec_args):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "farm", "submit",
         "--connect", f"127.0.0.1:{port}", "--name", name] + spec_args,
        env=_env(), capture_output=True, text=True, timeout=30)
    if proc.returncode != 0:
        raise SystemExit(f"chaos smoke: farm submit {name} failed: "
                         f"{proc.stderr}")


def _sweeps_live(snap):
    sweeps = snap.get("sweeps", {})
    return (len(sweeps) == 2
            and all(s["pending"] + s["leased"] > 0
                    for s in sweeps.values()))


def run_tenants_scenario(workdir: str) -> None:
    store_dir = os.path.join(workdir, "tenant-stores")
    os.makedirs(store_dir, exist_ok=True)
    port = _free_port()
    serve_argv = ["farm", "serve", f"127.0.0.1:{port}",
                  "--store-dir", store_dir, "--lease", "5",
                  "--journal-interval", "0.2", "--drain-grace", "0.05",
                  "--status-interval", "0"]
    worker_argv = ["worker", "--connect", f"127.0.0.1:{port}",
                   "--poll", "0.1", "--reconnect", "25",
                   "--backoff", "0.2", "--backoff-max", "2",
                   "--max-batch", "4", "--json"]
    total = sum(spec.size for spec, _ in TENANT_SPECS.values())
    procs = []
    logs = {}

    def spawn(name, argv):
        logs[name] = (open(os.path.join(workdir, name + ".out"), "w+"),
                      open(os.path.join(workdir, name + ".err"), "w+"))
        proc = _spawn(argv, *logs[name])
        procs.append(proc)
        return proc

    try:
        farm_a = spawn("farm-a", serve_argv)
        _poll_status(port, lambda s: s.get("persistent"),
                     "the farm to come up")
        for name, (_, spec_args) in TENANT_SPECS.items():
            _farm_submit(port, name, spec_args)

        # -- SIGKILL a worker while it holds a multi-cell batch ----------
        fw0 = spawn("farm-w0", worker_argv + ["--id", "w0"])
        _poll_status(
            port,
            lambda s: (s["workers"].get("w0", {}).get("connected")
                       and len(s["workers"]["w0"]["leases"]) >= 2),
            "w0 to hold a multi-cell batch")
        os.kill(fw0.pid, signal.SIGKILL)
        print(f"chaos smoke: SIGKILLed w0 mid-batch (pid {fw0.pid})")

        # -- drain + restart with two live sweeps ------------------------
        fw1 = spawn("farm-w1", worker_argv + ["--id", "w1"])
        snap = _poll_status(
            port,
            lambda s: (s["done"] >= 2 and _sweeps_live(s)
                       and _holds_lease(s, "w1")),
            "both sweeps live with w1 mid-cell")
        done_at_bounce = snap["done"]
        farm_a.send_signal(signal.SIGTERM)
        rc = _wait(farm_a, "draining farm", timeout_s=30.0)
        if rc != 0:
            raise SystemExit(
                f"chaos smoke: drained farm exited {rc}, want 0")
        print(f"chaos smoke: farm drained at {done_at_bounce}/{total} "
              "done with both sweeps live (exit 0)")

        farm_b = spawn("farm-b", serve_argv + ["--resume-journal"])
        snap = _poll_status(
            port, lambda s: len(s.get("sweeps", {})) == 2,
            "the restarted farm to restore both tenants")
        restored = sorted(snap["sweeps"])
        if restored != ["alpha", "beta"]:
            raise SystemExit(
                f"chaos smoke: restored tenants {restored}, want both")
        # The drain either handed w1 a shutdown verb (clean exit 0) or
        # left it mid-cell to reconnect — both are legitimate outcomes,
        # so the restarted farm always gets a fresh worker of its own.
        fw2 = spawn("farm-w2", worker_argv + ["--id", "w2"])
        _poll_status(
            port,
            lambda s: all(v["finished"] for v in s["sweeps"].values()),
            "both sweeps to finish", deadline_s=120.0)
        farm_b.send_signal(signal.SIGTERM)
        rc = _wait(farm_b, "restarted farm", timeout_s=30.0)
        if rc != 0:
            raise SystemExit(
                f"chaos smoke: restarted farm exited {rc}, want 0")
        for label, proc in (("w1", fw1), ("w2", fw2)):
            rc = _wait(proc, f"worker {label}")
            if rc != 0:
                raise SystemExit(
                    f"chaos smoke: {label} exited {rc}, want 0")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    # -- the proof: per-tenant stores vs serial, zero lost ---------------
    for fh, _ in logs.values():
        fh.flush()
    for name, (spec, _) in TENANT_SPECS.items():
        store = ResultStore(os.path.join(store_dir, f"{name}.jsonl"))
        latest = store.latest_per_key()
        serial = {c.key(): run_cell(c) for c in spec.cells()}
        if set(latest) != set(serial):
            raise SystemExit(
                f"chaos smoke: sweep {name} store keys != spec keys "
                f"(missing {sorted(set(serial) - set(latest))}, "
                f"extra {sorted(set(latest) - set(serial))})")
        lost = [r for r in store.iter_records()
                if r.get("status") == "lost"]
        if lost:
            raise SystemExit(
                f"chaos smoke: sweep {name} has {len(lost)} lost "
                f"record(s): {[r['key'] for r in lost]}")
        for key, rec in latest.items():
            want, got = dict(serial[key]), dict(rec)
            for field in VOLATILE:
                want.pop(field, None)
                got.pop(field, None)
            if got != want:
                diff = {k for k in set(want) | set(got)
                        if want.get(k) != got.get(k)}
                raise SystemExit(
                    f"chaos smoke: sweep {name} record for {key} "
                    f"differs from serial in field(s) {sorted(diff)}")

    w1_err = open(os.path.join(workdir, "farm-w1.err")).read()
    w1_mode = ("reconnected across the bounce"
               if "reconnect attempt" in w1_err
               else "drained cleanly at the bounce")
    print(f"chaos smoke: tenants OK — {total} cells across 2 sweeps "
          "bit-identical to serial, 0 lost per tenant, w0 SIGKILLed "
          f"mid-batch, farm bounced with both sweeps live, w1 {w1_mode}")


# -- the serve chapter --------------------------------------------------------


def _poll_serve(port, predicate, what, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            snap = fetch_serve_status("127.0.0.1", port, timeout_s=2.0)
        except ReproError:
            time.sleep(0.02)
            continue
        if predicate(snap):
            return snap
        time.sleep(0.02)
    raise SystemExit(f"chaos smoke: timed out waiting for {what}")


def _query_thread(port, results, **params):
    """Issue one query on its own connection, collecting the answer."""
    deadline_s = params.pop("deadline_s", None)
    request = build_query(params.pop("problem", "coloring"),
                          deadline_s=deadline_s, **params)

    def run():
        results.append(query_once("127.0.0.1", port, request))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def run_serve_scenario(workdir: str) -> None:
    port = _free_port()
    log_out = open(os.path.join(workdir, "serve.out"), "w+")
    log_err = open(os.path.join(workdir, "serve.err"), "w+")
    server = _spawn(["serve", f"127.0.0.1:{port}", "--solvers", "1",
                     "--max-pending", "1", "--deadline", "20",
                     "--grace", "2", "--status-interval", "0"],
                    log_out, log_err)
    try:
        _poll_serve(port, lambda s: True, "the query server to come up")

        # -- scenario 1: SIGKILL the solver child (and its retry) --------
        answers = []
        t = _query_thread(port, answers, deadline_s=60.0, **SLOW_QUERY)
        snap = _poll_serve(port, lambda s: s["solver_pids"],
                           "a solver child to appear")
        first_pid = snap["solver_pids"][0]
        os.kill(first_pid, signal.SIGKILL)
        print(f"chaos smoke: SIGKILLed solver child {first_pid} "
              "mid-request")
        snap = _poll_serve(
            port,
            lambda s: any(p != first_pid for p in s["solver_pids"]),
            "the supervisor's retry child")
        retry_pid = next(p for p in snap["solver_pids"] if p != first_pid)
        os.kill(retry_pid, signal.SIGKILL)
        print(f"chaos smoke: SIGKILLed the retry child {retry_pid} too")
        t.join(60)
        if t.is_alive() or not answers:
            raise SystemExit("chaos smoke: no answer after double kill")
        resp = answers[0]
        if resp.status != "error" or not resp.payload.get("retriable"):
            raise SystemExit(
                f"chaos smoke: double-killed query answered "
                f"{resp.status!r} (want structured retriable error): "
                f"{resp.payload}")
        check = query_once("127.0.0.1", port,
                           build_query("coloring", **FAST_QUERY))
        if not (check.ok and check.valid and not check.degraded):
            raise SystemExit("chaos smoke: server unhealthy after "
                             f"child kills: {check.payload}")
        print("chaos smoke: structured retriable error delivered, "
              "server kept serving")

        # -- scenario 2: unmeetable deadline -> degraded, in time --------
        t0 = time.monotonic()
        resp = query_once("127.0.0.1", port,
                          build_query("coloring", deadline_s=1.0,
                                      **dict(SLOW_QUERY, n=300,
                                             graph_seed=2)))
        elapsed = time.monotonic() - t0
        if not (resp.ok and resp.degraded and resp.valid):
            raise SystemExit(
                f"chaos smoke: unmeetable deadline answered "
                f"{resp.payload} (want degraded=true, valid)")
        # deadline (1.0) + grace (2.0) + graph-build, fallback-compute,
        # and transport slack (generous: CI boxes run loaded)
        if elapsed > 10.0:
            raise SystemExit(
                f"chaos smoke: degraded answer took {elapsed:.1f}s, "
                "deadline+grace contract broken")
        print(f"chaos smoke: degraded-but-valid answer in "
              f"{elapsed:.2f}s (deadline 1s + grace 2s)")

        # -- scenario 3: flood past --max-pending -> immediate shed ------
        background, floods = [], []
        threads = [
            _query_thread(port, background, deadline_s=8.0,
                          **dict(SLOW_QUERY, graph_seed=3 + i))
            for i in range(2)      # solvers=1 + max_pending=1: both admitted
        ]
        _poll_serve(port, lambda s: s["in_flight"] >= 2,
                    "the admission queue to fill")
        t0 = time.monotonic()
        for i in range(3):
            floods.append(query_once(
                "127.0.0.1", port,
                build_query("coloring",
                            **dict(SLOW_QUERY, graph_seed=10 + i))))
        shed_elapsed = time.monotonic() - t0
        bad = [f.payload for f in floods if f.status != "overloaded"]
        if bad:
            raise SystemExit(f"chaos smoke: flood queries not shed: {bad}")
        if any(f.retry_after_s is None or f.retry_after_s <= 0
               for f in floods):
            raise SystemExit("chaos smoke: shed responses carry no "
                             "retry-after hint")
        if shed_elapsed > 2.0:
            raise SystemExit(
                f"chaos smoke: shedding took {shed_elapsed:.1f}s for 3 "
                "queries — load-shedding is not immediate")
        for thread in threads:
            thread.join(60)
        if len(background) != 2 or any(not r.ok for r in background):
            raise SystemExit("chaos smoke: admitted queries lost "
                             "during the flood")
        print(f"chaos smoke: 3 flood queries shed in "
              f"{shed_elapsed:.2f}s with retry-after hints, admitted "
              "queries still answered")

        # -- scenario 4: SIGTERM -> in-flight answered, exit 0 -----------
        final = []
        t = _query_thread(port, final, deadline_s=30.0,
                          **dict(SLOW_QUERY, graph_seed=20))
        _poll_serve(port, lambda s: s["in_flight"] >= 1,
                    "the final query to be in flight")
        server.send_signal(signal.SIGTERM)
        rc = _wait(server, "draining query server", timeout_s=60.0)
        if rc != 0:
            raise SystemExit(
                f"chaos smoke: drained server exited {rc}, want 0")
        t.join(60)
        if not final or not final[0].ok:
            raise SystemExit(
                "chaos smoke: in-flight query lost during drain: "
                f"{final[0].payload if final else 'no answer'}")
        print("chaos smoke: serve OK — solver kills survived, deadline "
              "degraded in time, flood shed, SIGTERM drained with "
              "exit 0")
    finally:
        if server.poll() is None:
            server.kill()
        log_out.close()
        log_err.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tmpdir)")
    parser.add_argument("--only", default="all",
                        choices=("farm", "tenants", "serve", "all"),
                        help="which chaos chapter to run")
    args = parser.parse_args()
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    chapters = []
    if args.only in ("farm", "all"):
        run_farm_scenario(workdir)
        chapters.append("farm")
    if args.only in ("tenants", "all"):
        run_tenants_scenario(workdir)
        chapters.append("tenants")
    if args.only in ("serve", "all"):
        run_serve_scenario(workdir)
        chapters.append("serve")
    print(f"CHAOS OK ({', '.join(chapters)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
