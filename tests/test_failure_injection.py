"""Failure injection and adversarial edge cases across the stack.

Production-quality distributed code is defined by how it fails: these
tests feed the engine and algorithms deliberately broken inputs and
assert loud, early, specific failures (never silent corruption).  Every
network is built through the shared ``net_factory`` fixture — the same
seam the first-class fault models (``repro.congest.runtime.FaultModel``)
plug into — so adversarial setups stay uniform across the suite.
"""

import pytest

from repro.congest.ids import IdAssignment, NodeId
from repro.congest.node import FunctionAlgorithm, NodeAlgorithm
from repro.congest.runtime import MessageDrop, make_fault_model
from repro.coloring.johansson import johansson_color
from repro.errors import (
    ConvergenceError,
    ModelViolationError,
    ProtocolError,
    ReproError,
)
from repro.graphs.core import Graph
from repro.graphs.generators import connected_gnp_graph, disjoint_cycles


def test_unencodable_payload_rejected_at_send(net_factory, path4):
    net = net_factory(path4, seed=1)

    def fn(ctx, inbox):
        if ctx.round == 0 and ctx.neighbor_ids:
            ctx.send(ctx.neighbor_ids[0], "bad", {"dict": 1})
        ctx.done(None)

    with pytest.raises(ModelViolationError):
        net.run(lambda: FunctionAlgorithm(fn))


def test_float_payload_rejected(net_factory, path4):
    net = net_factory(path4, seed=2)

    def fn(ctx, inbox):
        if ctx.round == 0 and ctx.neighbor_ids:
            ctx.send(ctx.neighbor_ids[0], "bad", 3.14)
        ctx.done(None)

    with pytest.raises(ModelViolationError):
        net.run(lambda: FunctionAlgorithm(fn))


def test_danner_on_disconnected_graph_fails_loudly(net_factory):
    from repro.substrates.danner import build_danner

    g = disjoint_cycles(2, 6)
    net = net_factory(g, seed=3)
    with pytest.raises(ConvergenceError):
        build_danner(net, seed=4)


def test_algorithm1_on_disconnected_graph_fails_loudly(net_factory):
    from repro.coloring.algorithm1 import run_algorithm1

    g = disjoint_cycles(3, 5)
    net = net_factory(g, seed=5)
    with pytest.raises((ConvergenceError, ProtocolError)):
        run_algorithm1(net, seed=6)


def test_johansson_with_all_empty_palettes_defers_everywhere(net_factory):
    g = connected_gnp_graph(20, 0.3, seed=7)
    net = net_factory(g, seed=8)
    res = johansson_color(net, [None] * g.n,
                          [frozenset()] * g.n)
    assert all(o and o.get("deferred") for o in res.outputs)


def test_johansson_with_overlapping_singletons_partial_progress(net_factory):
    """Adversarial lists: clique with palette {0,1}: two nodes can color
    (0 and 1), the rest must defer — never a wrong output."""
    from repro.graphs.generators import complete_graph

    g = complete_graph(5)
    net = net_factory(g, seed=9)
    res = johansson_color(net, [None] * 5,
                          [frozenset({0, 1})] * 5)
    colors = [o.get("color") for o in res.outputs if o and "color" in o]
    deferred = sum(1 for o in res.outputs if o and o.get("deferred"))
    assert len(colors) + deferred == 5
    assert len(set(colors)) == len(colors)   # colored ones are distinct
    assert deferred >= 3


def test_assignment_must_match_graph(net_factory):
    g = Graph(3, [(0, 1)])
    with pytest.raises(ReproError):
        net_factory(g, assignment=IdAssignment([1, 2, 3, 4]), seed=10)


def test_node_never_calling_done_times_out(net_factory, path4):
    net = net_factory(path4, seed=11)

    class Forever(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            if ctx.round % 2 == 0 and ctx.neighbor_ids:
                ctx.send(ctx.neighbor_ids[0], "tick")

    with pytest.raises(ConvergenceError):
        net.run(Forever, max_rounds=50)


def test_self_send_impossible(net_factory, path4):
    net = net_factory(path4, seed=12)

    def fn(ctx, inbox):
        if ctx.round == 0:
            ctx.send(ctx.my_id, "self")
        ctx.done(None)

    with pytest.raises(ModelViolationError):
        net.run(lambda: FunctionAlgorithm(fn))


def test_algorithm3_sampling_cap(net_factory):
    """sample_constant large enough to exceed probability 1 must cap."""
    from repro.mis.algorithm3 import run_algorithm3
    from repro.mis.verify import check_mis

    g = connected_gnp_graph(30, 0.3, seed=13)
    net = net_factory(g, rho=2, seed=14)
    r = run_algorithm3(net, seed=15, sample_constant=100.0)
    assert r.sampled == g.n     # everyone sampled
    check_mis(g, r.in_mis)


def test_opaque_ids_cannot_leak_through_outputs(net_factory):
    """Harness-side code reading outputs still cannot read opaque values."""
    from repro.errors import ComparisonDisciplineError

    g = connected_gnp_graph(10, 0.4, seed=16)
    net = net_factory(g, seed=17, comparison_based=True)

    def fn(ctx, inbox):
        ctx.done(ctx.my_id)

    res = net.run(lambda: FunctionAlgorithm(fn))
    with pytest.raises(ComparisonDisciplineError):
        _ = res.outputs[0].value


def test_zero_round_budget(net_factory, path4):
    net = net_factory(path4, seed=18)

    class Chat(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            for u in ctx.neighbor_ids:
                ctx.send(u, "x")

    with pytest.raises(ConvergenceError):
        net.run(Chat, max_rounds=0)


def test_unknown_id_value_lookup(net_factory, path4):
    net = net_factory(path4, seed=19)
    with pytest.raises(KeyError):
        net.vertex_of(NodeId(123456789))


# -- fault-model seam: bad configurations fail loudly -------------------------


def test_malformed_fault_spec_rejected_at_construction(net_factory, path4):
    with pytest.raises(ReproError):
        net_factory(path4, seed=20, faults="drop:lots")


def test_unknown_fault_model_rejected(net_factory, path4):
    with pytest.raises(ReproError):
        net_factory(path4, seed=21, faults="gremlins")


def test_out_of_range_fault_knobs_rejected():
    with pytest.raises(ReproError):
        make_fault_model("drop:1.5")
    with pytest.raises(ReproError):
        make_fault_model("crash:-0.1")
    with pytest.raises(ReproError):
        make_fault_model("adversary:-3")
    with pytest.raises(ReproError):
        make_fault_model("crash:0.1:8:2:9")   # too many params


def test_fault_model_instance_serves_one_network(net_factory, path4,
                                                 triangle):
    model = MessageDrop(p=0.5)
    net_factory(path4, seed=22, faults=model)
    with pytest.raises(ReproError):
        net_factory(triangle, seed=23, faults=model)


def test_every_fault_model_terminates_loud_or_converged(net_factory,
                                                        fault_spec):
    """Under any fault model the engine must terminate with an explicit
    outcome — casualties recorded, never a hang or silent corruption."""
    from repro.mis.luby import run_luby

    g = connected_gnp_graph(30, 0.25, seed=24)
    net = net_factory(g, seed=24, faults=fault_spec)
    run_luby(net)
    # Whatever was undelivered or undecided is recorded, not ignored:
    # every casualty names a vertex and a reason from the fixed vocabulary.
    assert all(r in ("crashed", "dropped", "starved")
               for r in net.casualties.values())
    assert all(0 <= v < g.n for v in net.casualties)
