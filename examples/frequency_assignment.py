#!/usr/bin/env python3
"""Frequency assignment on a dense interference graph.

Scenario: radio cells in a metropolitan deployment interfere with many
near neighbors — an interference graph with m >> n^1.5.  Each cell must
pick a frequency distinct from all interferers ((Δ+1)-coloring), but the
control channel used for coordination is slow and billed per message, so
the operator wants the assignment negotiated with as little chatter as
possible.

We model the deployment as a random geometric-flavored power-law + Gnp
mixture, and compare three distributed protocols end to end:

* Algorithm 1 — Õ(n^1.5) messages, (Δ+1) frequencies;
* Algorithm 2 — Õ(n/ε²) messages if extra spectrum is available
  ((1+ε)Δ frequencies);
* the classical trial-coloring baseline — Ω(m) messages.

Run standalone (in-process solves):

    python examples/frequency_assignment.py [--n 360]

or as a client of the query service (``docs/serving.md``):

    python -m repro serve 7431 &
    python examples/frequency_assignment.py --connect 127.0.0.1:7431
"""

import argparse

from repro.graphs.core import Graph
from repro.graphs.generators import connected_gnp_graph, power_law_graph


def interference_graph(n: int, seed: int) -> Graph:
    """Dense urban core (Gnp) + a power-law backhaul overlay."""
    core = connected_gnp_graph(n, 0.3, seed=seed)
    overlay = power_law_graph(n, attachment=3, seed=seed + 1)
    return Graph(n, list(core.edges()) + list(overlay.edges()))


def solve_locally(graph):
    from repro import api

    return {
        "Algorithm 1  (Δ+1 frequencies)": api.color_graph(
            graph, method="kt1-delta-plus-one", seed=21),
        "Algorithm 2  (1.5Δ frequencies)": api.color_graph(
            graph, method="kt1-eps-delta", epsilon=0.5, seed=22),
        "baseline     (Δ+1, Ω(m) messages)": api.color_graph(
            graph, method="baseline-trial", seed=23),
    }


def solve_via_server(graph, endpoint: str):
    """The same three runs, answered by a ``repro serve`` instance."""
    from repro.serving import ServeClient

    host, _, port = endpoint.rpartition(":")
    with ServeClient(host or "127.0.0.1", int(port)) as client:
        return {
            "Algorithm 1  (Δ+1 frequencies)": client.color(
                graph, method="kt1-delta-plus-one", seed=21),
            "Algorithm 2  (1.5Δ frequencies)": client.color(
                graph, method="kt1-eps-delta", epsilon=0.5, seed=22),
            "baseline     (Δ+1, Ω(m) messages)": client.color(
                graph, method="baseline-trial", seed=23),
        }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=360,
                        help="number of radio cells")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="answer via a running 'repro serve' "
                             "instead of solving in-process")
    args = parser.parse_args(argv)

    graph = interference_graph(args.n, seed=11)
    delta = graph.max_degree()
    mode = f"served by {args.connect}" if args.connect else "in-process"
    print(f"interference graph: n={graph.n}, m={graph.m}, Δ={delta} "
          f"({mode})")

    if args.connect:
        runs = solve_via_server(graph, args.connect)
    else:
        runs = solve_locally(graph)

    print(f"\n{'protocol':38} {'messages':>9} {'msgs/edge':>10} "
          f"{'frequencies':>12} {'spectrum bound':>15}")
    for name, result in runs.items():
        assert result.valid, name
        print(f"{name:38} {result.messages:>9} "
              f"{result.messages_per_edge:>10.2f} "
              f"{result.num_colors:>12} {result.palette_bound:>15}")

    a1 = runs["Algorithm 1  (Δ+1 frequencies)"]
    a2 = runs["Algorithm 2  (1.5Δ frequencies)"]
    base = runs["baseline     (Δ+1, Ω(m) messages)"]
    print(f"\ntakeaway: with no extra spectrum, Algorithm 1 saves "
          f"{100 * (1 - a1.messages / base.messages):.0f}% of control "
          f"traffic;")
    print(f"granting 50% spectrum slack (Algorithm 2, Õ(n/ε²) messages) "
          f"saves {100 * (1 - a2.messages / base.messages):.0f}% — and "
          f"its advantage grows with n, since its cost barely depends "
          f"on m at all.")


if __name__ == "__main__":
    main()
