"""Algorithm 1: (Δ+1)-list-coloring in KT-1 CONGEST with Õ(n^1.5) messages.

Paper Section 3.1 / Theorem 3.3.  Pipeline (each step a protocol stage):

1. Build a danner with δ = 1/2, elect a leader, and have it broadcast a
   shared random string R of Θ(log² n) bits (Corollary 1.2).
2. Every node locally derives the level-0 hash functions (h_L, h, h_c)
   from R.  *The KT-1 trick*: a node evaluates the hashes on its
   neighbors' IDs too, so partition membership of every neighbor — and
   hence which incident edges are active — is known without any of Chang
   et al.'s state-exchange messages.
3. Color every B_i in parallel with Johansson's list coloring, talking
   only over E(G[B_i]) (Property (i): O(n) edges per part).
4. Check |E(G[L])| by upcast over the danner tree; if it is Õ(n), color
   G[L] directly with Johansson; otherwise recurse on L with the same
   parameter n (Lemma 3.2: O(1) levels whp).

Between levels, nodes that just got colored send their final color once
to each neighbor that remains in the remnant (again locally identified by
hashing) — the Õ(q·m) = o(m) list-maintenance term discussed in
DESIGN.md.  A node whose part-list goes empty (a whp-impossible failure
of Lemma 3.1's property (ii)) *defers*: it announces itself and is folded
into the remnant, keeping the algorithm always-correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.congest.node import ColumnarStage, Context, NodeAlgorithm
from repro.coloring import partition as P
from repro.coloring.johansson import JohanssonListColoring
from repro.errors import ProtocolError
from repro.substrates.danner import build_danner, share_random_bits
from repro.substrates.flooding import TreeAggregate


class NotifyStage(ColumnarStage, NodeAlgorithm):
    """Inter-level palette maintenance.

    Nodes colored at the level just finished send their color once to
    every remnant neighbor; nodes that deferred announce themselves to all
    neighbors (a rare event), and colored-this-level nodes answer such
    announcements with their color so no strike is missed.
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        state = ctx.input or {}
        self.role = state.get("role", "idle")
        self.color = state.get("color")
        self.targets = state.get("targets", ())
        self.struck: list[int] = []
        self.extras: list = []

    def _publish(self, ctx: Context) -> None:
        ctx.done({"struck": tuple(self.struck),
                  "extras": tuple(self.extras)})

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0:
            if self.role == "colored":
                for u in self.targets:
                    ctx.send(u, "color", self.color)
            elif self.role == "deferred":
                for u in ctx.neighbor_ids:
                    ctx.send(u, "deferred")
        for msg in inbox:
            if msg.tag == "color":
                (c,) = msg.fields
                self.struck.append(c)
            elif msg.tag == "deferred":
                self.extras.append(msg.sender_id)
                if self.role == "colored":
                    ctx.send(msg.sender_id, "color", self.color)
        self._publish(ctx)

    # -- columnar engine (docs/columnar.md) ----------------------------------

    @classmethod
    def build_columnar_kernel(cls, net, algorithms, contexts):
        from repro.congest.columnar import full_graph, get_numpy

        np_ = get_numpy()
        if np_ is None:
            return None
        n = net._n
        graph = full_graph(np_, net)
        if graph is None:
            return None
        if any(
            a.role == "colored"
            and (type(a.color) is not int or a.color < 0)
            for a in algorithms
        ):
            return None  # replies embed the color; keep exotic payloads scalar
        colored = [
            (v, a) for v, a in enumerate(algorithms)
            if a.role == "colored" and a.targets
        ]
        deferred = [
            v for v, a in enumerate(algorithms) if a.role == "deferred"
        ]

        # Color wave: one envelope per (colored node, target), in the
        # scalar submission order (ascending sender, then target-tuple
        # position).
        counts_c = np_.fromiter(
            (len(a.targets) for _, a in colored),
            dtype=np_.int64, count=len(colored),
        )
        kc = int(counts_c.sum())
        src_c = np_.repeat(
            np_.fromiter((v for v, _ in colored), dtype=np_.int64,
                         count=len(colored)),
            counts_c,
        )
        colors_c = np_.repeat(
            np_.fromiter((a.color for _, a in colored), dtype=np_.int64,
                         count=len(colored)),
            counts_c,
        )
        vertex_by_value = net._vertex_by_value
        dst_c = np_.fromiter(
            (vertex_by_value[u._value] for _, a in colored
             for u in a.targets),
            dtype=np_.int64, count=kc,
        )
        ekeys = graph.esrc * n + graph.edst
        keys_c = src_c * n + dst_c
        eids_c = np_.searchsorted(ekeys, keys_c)
        if kc and bool((ekeys[np_.minimum(eids_c, len(ekeys) - 1)]
                        != keys_c).any()):
            return None  # a non-neighbor target: scalar path raises
        within_c = np_.arange(kc, dtype=np_.int64) - np_.repeat(
            np_.cumsum(counts_c) - counts_c, counts_c
        )

        # Defer wave: every out-edge of each deferred node, in the
        # scalar fan-out order (``neighbor_ids`` ascends by ID value).
        values = np_.fromiter(
            (net.assignment.value_of(v) for v in range(n)),
            dtype=np_.int64, count=n,
        )
        emit_perm = np_.lexsort((values[graph.edst], graph.esrc))
        da = np_.asarray(deferred, dtype=np_.int64)
        from repro.congest.columnar import block_positions

        pos_d, _owners = block_positions(np_, graph.indptr, da)
        eids_d = emit_perm[pos_d]
        kd = len(eids_d)
        counts_d = graph.indptr[da + 1] - graph.indptr[da]
        within_d = np_.arange(kd, dtype=np_.int64) - np_.repeat(
            np_.cumsum(counts_d) - counts_d, counts_d
        )

        # Global submission sequence over both waves: the scalar round-0
        # loop visits senders in ascending vertex order, so the rank of
        # (sender, within-sender position) is the inbox interleave key.
        sub_keys = np_.concatenate(
            (src_c * n + within_c, graph.esrc[eids_d] * n + within_d)
        )
        seq = np_.empty(kc + kd, dtype=np_.int64)
        seq[np_.argsort(sub_keys)] = np_.arange(kc + kd, dtype=np_.int64)
        return _NotifyKernel(
            np_, net, graph, algorithms, contexts, ekeys,
            eids_c, colors_c, seq[:kc], eids_d, seq[kc:],
        )


class _NotifyKernel:
    """Vectorized palette notification, defer wave included.

    Per-receiver strike/extras order must match the scalar inbox order.
    Round-0 emissions go out as two homogeneous batches (colors,
    defer announcements), so each envelope carries its rank in the
    scalar submission order and deliveries re-interleave by that key.
    Receivers of color-only mail take a sliced fast path; the (rare,
    small) defer wave — interleaved appends, plus colored nodes
    answering announcements in touched order — runs a faithful scalar
    loop over just those arrivals.
    """

    def __init__(self, np_, net, graph, algorithms, contexts,
                 ekeys, eids_c, colors_c, seq_c, eids_d, seq_d):
        self.np = np_
        self.net = net
        self.graph = graph
        self.algorithms = algorithms
        self.contexts = contexts
        self.ekeys = ekeys
        self.eids_c = eids_c
        self.colors_c = colors_c
        self.seq_c = seq_c
        self.eids_d = eids_d
        self.seq_d = seq_d
        self.word_bits = net.word_bits
        n = net._n
        #: phase-1 (reply) envelopes order after all round-0 ones.
        self.reply_base = len(seq_c) + len(seq_d)
        self.struck: list = [None] * n
        self.extras: list = [None] * n

    def _publish(self, v):
        struck = self.struck[v]
        extras = self.extras[v]
        self.contexts[v].done({
            "struck": () if struck is None else tuple(struck),
            "extras": () if extras is None else tuple(extras),
        })

    def begin(self):
        from repro.congest.columnar import SendBatch, int_words

        np_ = self.np
        for v in range(self.net._n):
            self._publish(v)
        out = []
        if len(self.eids_c):
            out.append(SendBatch(
                "color", 0, self.eids_c, self.colors_c,
                int_words(np_, self.colors_c, self.word_bits),
            ))
        if len(self.eids_d):
            out.append(SendBatch(
                "deferred", 0, self.eids_d,
                np_.zeros(len(self.eids_d), dtype=np_.int64),
                np_.ones(len(self.eids_d), dtype=np_.int64),
            ))
        return out

    def deliver(self, arrivals):
        from repro.congest.columnar import SendBatch, int_words

        np_ = self.np
        graph = self.graph
        edst = graph.edst
        esrc = graph.esrc
        parts = []
        reply_pos = 0
        for batch, sub in arrivals:
            eids = batch.eids if sub is None else batch.eids[sub]
            k = len(eids)
            if batch.tag == "deferred":
                key = self.seq_d if sub is None else self.seq_d[sub]
                vals = np_.zeros(k, dtype=np_.int64)
                kind = np_.ones(k, dtype=np_.int64)
            else:
                vals = batch.values if sub is None else batch.values[sub]
                if batch.phase == 0:
                    key = self.seq_c if sub is None else self.seq_c[sub]
                else:
                    key = (self.reply_base + reply_pos
                           + np_.arange(k, dtype=np_.int64))
                    reply_pos += k
                kind = np_.zeros(k, dtype=np_.int64)
            parts.append((edst[eids], esrc[eids], vals, key, kind))
        recv = np_.concatenate([p[0] for p in parts])
        send = np_.concatenate([p[1] for p in parts])
        vals = np_.concatenate([p[2] for p in parts])
        key = np_.concatenate([p[3] for p in parts])
        kind = np_.concatenate([p[4] for p in parts])
        order = np_.lexsort((key, recv))
        rs = recv[order]
        k = len(rs)
        starts = np_.flatnonzero(
            np_.concatenate(([True], rs[1:] != rs[:-1]))
        )
        group_recv = rs[starts].tolist()
        bounds = starts.tolist()
        bounds.append(k)
        has_defer = np_.maximum.reduceat(kind[order], starts) > 0
        vals_sorted = vals[order].tolist()
        struck = self.struck
        if not bool(has_defer.any()):
            # Fast path: colors only, already in per-receiver inbox
            # order after the (receiver, sequence) sort.
            for i, v in enumerate(group_recv):
                got = struck[v]
                if got is None:
                    got = struck[v] = []
                got.extend(vals_sorted[bounds[i]:bounds[i + 1]])
                self._publish(v)
            return []
        # Defer wave: replay the scalar loop over the affected arrivals.
        # Touched (activation) order = ascending first-arrival key.
        gmin = np_.minimum.reduceat(key[order], starts)
        send_sorted = send[order].tolist()
        kind_sorted = kind[order].tolist()
        algorithms = self.algorithms
        extras = self.extras
        ids = self.net._ids
        reply_src: list[int] = []
        reply_dst: list[int] = []
        reply_colors: list[int] = []
        for i in np_.argsort(gmin, kind="stable").tolist():
            v = group_recv[i]
            lo, hi = bounds[i], bounds[i + 1]
            if not has_defer[i]:
                got = struck[v]
                if got is None:
                    got = struck[v] = []
                got.extend(vals_sorted[lo:hi])
                self._publish(v)
                continue
            alg = algorithms[v]
            answering = alg.role == "colored"
            for j in range(lo, hi):
                if kind_sorted[j]:
                    got = extras[v]
                    if got is None:
                        got = extras[v] = []
                    got.append(ids[send_sorted[j]])
                    if answering:
                        reply_src.append(v)
                        reply_dst.append(send_sorted[j])
                        reply_colors.append(alg.color)
                else:
                    got = struck[v]
                    if got is None:
                        got = struck[v] = []
                    got.append(vals_sorted[j])
            self._publish(v)
        if not reply_src:
            return []
        sa = np_.asarray(reply_src, dtype=np_.int64)
        da = np_.asarray(reply_dst, dtype=np_.int64)
        colors = np_.asarray(reply_colors, dtype=np_.int64)
        eids = np_.searchsorted(self.ekeys, sa * self.graph.n + da)
        return [SendBatch(
            "color", 1, eids, colors,
            int_words(np_, colors, self.word_bits),
        )]


@dataclass
class LevelReport:
    """Diagnostics for one recursion level."""

    level: int
    remnant_size: int
    remnant_edges: int
    remnant_max_degree: int
    k: int
    q: float
    colored: int
    deferred: int
    base_case: bool


@dataclass
class Algorithm1Result:
    colors: list[Optional[int]]
    levels: list[LevelReport] = field(default_factory=list)
    deferred_total: int = 0
    messages: int = 0
    rounds: int = 0
    danner_edges: int = 0
    random_bits: int = 0

    @property
    def num_levels(self) -> int:
        return len(self.levels)


def _tuple_combine(a, b):
    return (a[0] + b[0], max(a[1], b[1]))


def run_algorithm1(
    net,
    seed=0,
    delta: float = 0.5,
    base_edge_factor: Optional[float] = None,
    small_degree_threshold: Optional[int] = None,
    max_levels: int = 8,
    independence_constant: float = 1.0,
    name_prefix: str = "alg1",
) -> Algorithm1Result:
    """Run Algorithm 1 on a connected KT-1 network (non-comparison-based).

    Produces a proper coloring where vertex v's color lies in
    {0, ..., deg(v)} ⊆ {0, ..., Δ} — i.e. a (Δ+1)-coloring realized as
    (deg+1)-list-coloring, exactly the paper's setting.
    """
    if net.comparison_based:
        raise ProtocolError(
            "Algorithm 1 is non-comparison-based (it hashes IDs); "
            "run it on a network with comparison_based=False"
        )
    n = net.graph.n
    graph = net.graph
    id_space = net.assignment.space_bound()
    msgs_before = net.stats.messages
    rounds_before = net.stats.rounds
    log2n = max(n, 2).bit_length()
    if base_edge_factor is None:
        # Base case at |E(G[L])| = Õ(n) (Step 4 of Algorithm 1).
        base_edge_factor = float(max(2, log2n))
    if small_degree_threshold is None:
        # Partitioning pays off only for Delta = omega(log^2 n) (Lemma 3.1).
        small_degree_threshold = max(8, log2n * log2n)

    # Step 1: danner and leader.  The shared random string is broadcast
    # per recursion level (each level is a fresh invocation of Step 1's
    # broadcast in the paper's recursion), so only O(1) levels' worth of
    # bits ever crosses the wire (Lemma 3.2).
    danner = build_danner(net, delta=delta, seed=seed,
                          name_prefix=f"{name_prefix}-danner")
    bits_one_level = P.bits_per_level(n, id_space, independence_constant)
    total_bits = 0
    tree_inputs = danner.tree_inputs()

    # Per-node local state (driver-held, node-local information only).
    values = [net.assignment.value_of(v) for v in range(n)]
    colors: list[Optional[int]] = [None] * n
    palettes: list[set[int]] = [
        set(range(graph.degree(v) + 1)) for v in range(n)
    ]
    deferred = [False] * n
    extras: list[set] = [set() for _ in range(n)]

    levels_info: list[tuple[P.LevelHashes, float, int]] = []
    reports: list[LevelReport] = []
    deferred_total = 0

    # Hash memo: every node evaluates the same level hashes on the same
    # ~n ID values over and over (once per neighbor per level per use
    # site), and each evaluation is a degree-(c-1) Horner loop.  The
    # hashes are frozen once appended to levels_info, so membership is a
    # pure function of (value, upto) and caching it is count-invariant —
    # it changes no decision, only skips re-deriving one.
    remnant_cache: dict[tuple[int, int], bool] = {}

    def hash_remnant(value: int, upto: int) -> bool:
        """Remnant membership (hash part): L-member at all levels <= upto."""
        if upto < 0:
            return True
        key = (value, upto)
        cached = remnant_cache.get(key)
        if cached is None:
            h, q, _k = levels_info[upto]
            cached = hash_remnant(value, upto - 1) and \
                P.is_l_member(h, value, q)
            remnant_cache[key] = cached
        return cached

    def in_remnant(v: int, upto: int) -> bool:
        if colors[v] is not None:
            return False
        if deferred[v]:
            return True
        return hash_remnant(values[v], upto)

    # Valid within one level iteration: the result depends only on the
    # frozen hashes and extras[v], and extras mutate only at the very end
    # of each iteration (where the cache is cleared).  Each (v, upto)
    # pair is queried by several call sites per level (measure inputs,
    # base-case actives, notify targets).
    rn_cache: dict[tuple[int, int], frozenset] = {}

    def remnant_neighbor_ids(v: int, upto: int) -> frozenset:
        """Neighbors of v that are remnant members (hash + learned extras)."""
        key = (v, upto)
        hit = rn_cache.get(key)
        if hit is None:
            vx = extras[v]
            hit = frozenset(
                u_id for u_id in net.knowledge[v].neighbor_ids
                if u_id in vx or hash_remnant(u_id.value, upto)
            )
            rn_cache[key] = hit
        return hit

    for level in range(max_levels):
        upto_prev = level - 1
        # -- measure the remnant over the danner tree -----------------------
        measure_inputs = []
        for v in range(n):
            if in_remnant(v, upto_prev):
                rd = len(remnant_neighbor_ids(v, upto_prev))
                measure_inputs.append({**tree_inputs[v], "value": (rd, rd)})
            else:
                measure_inputs.append({**tree_inputs[v], "value": (0, 0)})
        measure = net.run(
            lambda: TreeAggregate(combine=_tuple_combine),
            inputs=measure_inputs,
            name=f"{name_prefix}-measure-{level}",
        )
        total_deg, max_deg = measure.outputs[danner.leader_vertex]
        rem_edges = total_deg // 2
        rem_vertices = [v for v in range(n) if in_remnant(v, upto_prev)]

        base_case = (
            rem_edges <= base_edge_factor * n
            or max_deg <= small_degree_threshold
            or level == max_levels - 1
        )
        if not rem_vertices:
            reports.append(LevelReport(level, 0, 0, 0, 0, 0.0, 0, 0, True))
            break

        if base_case:
            active = [
                remnant_neighbor_ids(v, upto_prev) if in_remnant(v, upto_prev)
                else frozenset()
                for v in range(n)
            ]
            stage = net.run(
                lambda: JohanssonListColoring(),
                inputs=[
                    {
                        "active": active[v],
                        "palette": frozenset(palettes[v]),
                        "participate": in_remnant(v, upto_prev),
                    }
                    for v in range(n)
                ],
                name=f"{name_prefix}-base-{level}",
            )
            colored_now = 0
            for v, out in enumerate(stage.outputs):
                if out and out.get("color") is not None:
                    colors[v] = out["color"]
                    colored_now += 1
                elif out and out.get("deferred"):
                    raise ProtocolError(
                        "deferral in the base case: (deg+1)-list invariant "
                        "broken"
                    )
            reports.append(LevelReport(
                level, len(rem_vertices), rem_edges, max_deg, 0, 0.0,
                colored_now, 0, True,
            ))
            break

        # -- partition level -------------------------------------------------
        q = P.level_q(n, max_deg)
        k = P.level_k(max_deg)
        bits = share_random_bits(
            net, danner, bits_one_level, name=f"{name_prefix}-bits-{level}"
        )
        total_bits += bits_one_level
        hashes = P.derive_level_hashes(
            bits, 0, n, id_space, independence_constant
        )
        levels_info.append((hashes, q, k))

        # Same memo argument as remnant_cache: this level's h_l/h_b are
        # fixed, so each ID's part is computed once instead of once per
        # incident edge.
        part_cache: dict[int, int] = {}

        def member_part(value: int) -> int:
            part = part_cache.get(value)
            if part is None:
                part = P.member_part(hashes, value, q, k)
                part_cache[value] = part
            return part

        participates = []
        active_sets = []
        part_palettes = []
        for v in range(n):
            part = (
                member_part(values[v])
                if (in_remnant(v, upto_prev) and not deferred[v])
                else P.L_PART
            )
            if part == P.L_PART:
                participates.append(False)
                active_sets.append(frozenset())
                part_palettes.append(frozenset())
                continue
            same_part = set()
            for u_id in net.knowledge[v].neighbor_ids:
                uval = u_id.value
                if not hash_remnant(uval, upto_prev):
                    continue
                if u_id in extras[v]:
                    continue
                if member_part(uval) == part:
                    same_part.add(u_id)
            participates.append(True)
            active_sets.append(frozenset(same_part))
            part_palettes.append(
                P.palette_in_part(hashes, palettes[v], part, k)
            )
        stage = net.run(
            lambda: JohanssonListColoring(),
            inputs=[
                {
                    "active": active_sets[v],
                    "palette": part_palettes[v],
                    "participate": participates[v],
                }
                for v in range(n)
            ],
            name=f"{name_prefix}-color-{level}",
        )
        colored_now = 0
        deferred_now = 0
        notify_inputs = []
        for v, out in enumerate(stage.outputs):
            role = "idle"
            color = None
            targets: frozenset = frozenset()
            if out and out.get("color") is not None:
                colors[v] = out["color"]
                colored_now += 1
                role = "colored"
                color = colors[v]
                targets = remnant_neighbor_ids(v, level)
            elif out and out.get("deferred"):
                deferred[v] = True
                deferred_now += 1
                deferred_total += 1
                role = "deferred"
            notify_inputs.append(
                {"role": role, "color": color, "targets": tuple(sorted(
                    targets, key=lambda x: x._value))}  # noqa: SLF001
            )
        notify = net.run(
            NotifyStage,
            inputs=notify_inputs,
            name=f"{name_prefix}-notify-{level}",
        )
        for v, out in enumerate(notify.outputs):
            if colors[v] is None:
                for c in out["struck"]:
                    palettes[v].discard(c)
            for u_id in out["extras"]:
                extras[v].add(u_id)
        # extras may have changed: remnant-neighbor sets computed from
        # here on must not see this level's cached values.
        rn_cache.clear()
        reports.append(LevelReport(
            level, len(rem_vertices), rem_edges, max_deg, k, q,
            colored_now, deferred_now, False,
        ))

    return Algorithm1Result(
        colors=colors,
        levels=reports,
        deferred_total=deferred_total,
        messages=net.stats.messages - msgs_before,
        rounds=net.stats.rounds - rounds_before,
        danner_edges=danner.edge_count(net),
        random_bits=total_bits,
    )
