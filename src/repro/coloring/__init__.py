"""Coloring algorithms: the paper's KT-1 upper bounds plus baselines.

* :mod:`repro.coloring.johansson` — Johansson's randomized (deg+1)-list
  coloring [40], run inside arbitrary active subgraphs (Steps 3/5 of
  Algorithm 1).
* :mod:`repro.coloring.partition` — the Chang et al. [7] vertex/palette
  partition driven by O(log n)-wise independent hash functions derived
  from the shared random string (Lemma 3.1).
* :mod:`repro.coloring.algorithm1` — **Algorithm 1**: (Δ+1)-list-coloring
  in KT-1 CONGEST with Õ(n^1.5) messages (Theorem 3.3).
* :mod:`repro.coloring.algorithm2` — **Algorithm 2**: (1+ε)Δ-coloring
  with Õ(n/ε²) messages (Theorem 3.8).
* :mod:`repro.coloring.baselines` — Ω(m)-message baselines: the standard
  full-exchange trial coloring and a comparison-based rank-greedy
  coloring (used by the lower-bound experiments).
* :mod:`repro.coloring.verify` — output verifiers.
"""

from repro.coloring.verify import (
    check_proper_coloring,
    check_color_bound,
    coloring_violations,
    count_colors,
)
from repro.coloring.johansson import JohanssonListColoring, johansson_color
from repro.coloring.partition import (
    PART_RANGE,
    LevelHashes,
    bits_per_level,
    derive_level_hashes,
    level_k,
    level_q,
    is_l_member,
    part_index,
    color_part,
    compute_partition,
    partition_properties,
)
from repro.coloring.algorithm1 import Algorithm1Result, run_algorithm1
from repro.coloring.algorithm2 import Algorithm2Result, run_algorithm2
from repro.coloring.baselines import (
    FullExchangeTrialColoring,
    RankGreedyColoring,
    run_baseline_coloring,
)

__all__ = [
    "check_proper_coloring",
    "check_color_bound",
    "coloring_violations",
    "count_colors",
    "JohanssonListColoring",
    "johansson_color",
    "PART_RANGE",
    "LevelHashes",
    "bits_per_level",
    "derive_level_hashes",
    "level_k",
    "level_q",
    "is_l_member",
    "part_index",
    "color_part",
    "compute_partition",
    "partition_properties",
    "Algorithm1Result",
    "run_algorithm1",
    "Algorithm2Result",
    "run_algorithm2",
    "FullExchangeTrialColoring",
    "RankGreedyColoring",
    "run_baseline_coloring",
]
