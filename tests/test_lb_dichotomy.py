"""The Section 2 lower-bound experiments: similarity and dichotomy.

These tests execute the *proof machinery*: Lemma 2.5 (swap similarity),
Lemma 2.8 (copy similarity), Corollary 2.7 (crossing similarity when the
pair is not utilized), Lemmas 2.9/2.13 (wrong output on the crossed
graph), and the Lemma 2.11-style utilization/correctness trade-off.
"""

import pytest

from repro.congest.network import SyncNetwork
from repro.congest.trace import remap_trace, restrict_trace, traces_similar
from repro.coloring.baselines import RankGreedyColoring
from repro.lowerbounds.algorithms import (
    ProbedCountColoring,
    ProbedExtremaMIS,
    SilentCountColoring,
    SilentExtremaMIS,
)
from repro.lowerbounds.construction import crossing_instance
from repro.lowerbounds.crossing_experiment import (
    dichotomy_experiment,
    run_crossing_trial,
    summarize_records,
)
from repro.mis.baselines import RankGreedyMIS


def run_traced(graph, assignment, factory, seed=0):
    net = SyncNetwork(graph, rho=1, assignment=assignment, seed=seed,
                      comparison_based=True, record_trace=True)
    net.run(factory, name="lb")
    return net


@pytest.mark.parametrize("factory", [
    SilentCountColoring,
    RankGreedyColoring,
    SilentExtremaMIS,
    RankGreedyMIS,
])
def test_lemma_2_5_swap_similarity(factory):
    """EX, EX_{e,e',x} and EX_{e,e',z} are similar: same graph, and the
    swapped IDs are order-adjacent, so any comparison-based algorithm
    behaves identically."""
    inst = crossing_instance(4, 1, 2, 3)
    base = run_traced(inst.base, inst.psi, factory, seed=1)
    swap_x = run_traced(inst.base, inst.psi_x, factory, seed=1)
    swap_z = run_traced(inst.base, inst.psi_z, factory, seed=1)
    assert traces_similar(base.trace, swap_x.trace)
    assert traces_similar(base.trace, swap_z.trace)


@pytest.mark.parametrize("factory", [
    SilentCountColoring,
    RankGreedyColoring,
    SilentExtremaMIS,
])
def test_lemma_2_8_copy_similarity(factory):
    """On the disconnected G ∪ G', the execution restricted to V mirrors
    the execution restricted to V' under v -> v'."""
    inst = crossing_instance(4, 0, 1, 2)
    net = run_traced(inst.base, inst.psi, factory, seed=2)
    side_a = restrict_trace(net.trace, set(range(3 * inst.t)))
    side_b = restrict_trace(net.trace, set(range(3 * inst.t, 6 * inst.t)))
    mapped = remap_trace(side_a, inst.copy_map())
    assert traces_similar(mapped, side_b)


def test_corollary_2_7_silent_coloring():
    """Unutilized pair => similar executions on base and crossed graphs
    => monochromatic {y, y'} (Lemma 2.9)."""
    inst = crossing_instance(5, 2, 1, 3)
    rec = run_crossing_trial(inst, SilentCountColoring, "coloring", seed=3)
    assert not rec.pair_utilized
    assert rec.executions_similar
    assert rec.correct_on_base
    assert not rec.correct_on_crossed
    assert rec.violation_witness == (inst.y, inst.y_prime) or \
        rec.violation_witness == (inst.y_prime, inst.y)


def test_lemma_2_13_mis_witness():
    """The MIS failure is the adjacent pair {x', z} joining together."""
    inst = crossing_instance(5, 0, 4, 2)
    rec = run_crossing_trial(inst, SilentExtremaMIS, "mis", seed=4)
    assert not rec.pair_utilized
    assert rec.executions_similar
    assert rec.correct_on_base and not rec.correct_on_crossed
    kind, u, v = rec.violation_witness
    assert kind == "independence"
    assert {u, v} == {inst.x_prime, inst.z}


def test_correct_baselines_utilize_every_pair():
    """Theorems 2.10/2.14's flip side: the correct comparison-based
    algorithms utilize (e, e') on every sampled crossing."""
    for factory, problem in ((RankGreedyColoring, "coloring"),
                             (RankGreedyMIS, "mis")):
        recs = dichotomy_experiment(4, factory, problem, sample=8, seed=5)
        s = summarize_records(recs)
        assert s["pair_utilized_fraction"] == 1.0
        assert s["crossed_correct_fraction"] == 1.0
        # Omega(n^2)-scale utilization: a constant fraction of all edges.
        assert s["mean_utilized_edges"] >= 0.5 * recs[0].base_messages ** 0


def test_rank_greedy_utilizes_quadratically():
    """Utilized edges = Theta(m) = Theta(n^2) on the family."""
    for t in (3, 5):
        inst = crossing_instance(t, 0, 0, 0)
        net = run_traced(inst.base, inst.psi, RankGreedyColoring, seed=6)
        assert net.stats.utilized_count == inst.base.m  # = 4 t^2


def test_probed_tradeoff_monotone():
    """Lemma 2.11's quantitative shape: correctness on crossed instances
    rises with the probe budget (more utilized edges)."""
    fractions = []
    for k in (0, 2, 6, 12):
        recs = dichotomy_experiment(
            6, lambda k=k: ProbedCountColoring(k), "coloring",
            sample=12, seed=7,
        )
        s = summarize_records(recs)
        assert s["dichotomy_holds"]
        fractions.append(s["crossed_correct_fraction"])
    assert fractions[0] == 0.0
    assert fractions == sorted(fractions)
    assert fractions[-1] >= 0.9


def test_probed_mis_tradeoff():
    fractions = []
    for k in (0, 4, 12):
        recs = dichotomy_experiment(
            6, lambda k=k: ProbedExtremaMIS(k), "mis", sample=12, seed=8,
        )
        s = summarize_records(recs)
        assert s["dichotomy_holds"]
        fractions.append(s["crossed_correct_fraction"])
    assert fractions == sorted(fractions)


def test_silent_algorithms_zero_messages():
    recs = dichotomy_experiment(4, SilentCountColoring, "coloring",
                                sample=4, seed=9)
    assert all(r.base_messages == 0 for r in recs)
    assert all(r.base_utilized_edges == 0 for r in recs)


def test_summary_fields():
    recs = dichotomy_experiment(4, SilentExtremaMIS, "mis", sample=5,
                                seed=10)
    s = summarize_records(recs)
    assert s["trials"] == 5
    assert s["unutilized_trials"] == 5
    assert 0.0 <= s["base_correct_fraction"] <= 1.0
