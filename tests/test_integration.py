"""Cross-module integration tests: the paper's claims, end to end.

Each test is one sentence of the paper turned into an assertion about a
concrete run, using only the public API plus the verifiers.
"""

import math

import pytest

from repro import api
from repro.congest.network import SyncNetwork
from repro.coloring.algorithm1 import run_algorithm1
from repro.graphs.generators import connected_gnp_graph
from repro.lowerbounds import (
    SilentCountColoring,
    dichotomy_experiment,
    summarize_records,
)
from repro.mis.algorithm3 import run_algorithm3


@pytest.fixture(scope="module")
def dense():
    # m >> n^1.5: the regime where o(m) matters
    return connected_gnp_graph(350, 0.4, seed=77)


def test_headline_coloring_beats_baseline_messages(dense):
    new = api.color_graph(dense, method="kt1-delta-plus-one", seed=1)
    old = api.color_graph(dense, method="baseline-trial", seed=2)
    assert new.valid and old.valid
    assert new.messages < old.messages


def test_headline_mis_beats_luby_messages(dense):
    new = api.find_mis(dense, method="kt2-sampled-greedy", seed=3)
    old = api.find_mis(dense, method="luby", seed=4)
    assert new.valid and old.valid
    assert new.messages < old.messages


def test_coloring_messages_sublinear_in_m():
    """Growing m at fixed n should barely move Algorithm 1's cost."""
    msgs = {}
    for p in (0.15, 0.6):
        g = connected_gnp_graph(250, p, seed=5)
        result = api.color_graph(g, seed=6)
        assert result.valid
        msgs[p] = (result.messages, g.m)
    (m1, e1), (m2, e2) = msgs[0.15], msgs[0.6]
    assert e2 > 3 * e1
    # message growth must lag edge growth clearly (sublinear in m); the
    # asymptotic gap widens with n — see benchmarks for the full sweep.
    assert (m2 / m1) < 0.7 * (e2 / e1)


def test_mis_messages_scale_like_n_sqrt_n():
    """Algorithm 3's message exponent sits near 1.5, not 2."""
    points = []
    for n in (150, 600):
        g = connected_gnp_graph(n, min(0.5, 40 / n), seed=7)
        net = SyncNetwork(g, rho=2, seed=8)
        r = run_algorithm3(net, seed=9)
        points.append((n, r.messages))
    (n1, m1), (n2, m2) = points
    exponent = math.log(m2 / m1) / math.log(n2 / n1)
    assert exponent < 2.0


def test_same_network_multiple_protocols():
    """Stats accumulate correctly across stacked protocol runs."""
    g = connected_gnp_graph(100, 0.2, seed=10)
    net = SyncNetwork(g, seed=11)
    r1 = run_algorithm1(net, seed=12, name_prefix="first")
    before = net.stats.messages
    r2 = run_algorithm1(net, seed=13, name_prefix="second")
    assert net.stats.messages == before + r2.messages
    assert r1.colors is not r2.colors


def test_dichotomy_and_upper_bound_consistency():
    """The silent algorithm demonstrates the lower bound on the same
    gadget family the upper bounds color correctly."""
    recs = dichotomy_experiment(4, SilentCountColoring, "coloring",
                                sample=6, seed=14)
    s = summarize_records(recs)
    assert s["dichotomy_holds"]
    # Algorithm 1 colors the crossed graph fine — it communicates.
    from repro.lowerbounds.construction import crossing_instance

    inst = crossing_instance(4, 1, 1, 1)
    result = api.color_graph(inst.crossed, seed=15)
    assert result.valid


def test_utilized_edges_never_exceed_lemma_2_4(dense):
    result = api.color_graph(dense, seed=16)
    # every charged message carries O(1) IDs: utilization is O(messages)
    assert result.report.utilized_edges <= 4 * result.messages


def test_kt2_beats_kt1_round_complexity_shape(dense):
    """Theorem 4.1's Õ(sqrt n) rounds vs Algorithm 1's danner-bound."""
    mis = api.find_mis(dense, seed=17)
    assert mis.report.rounds <= 8 * math.sqrt(dense.n) + 40
