"""The asynchronous KT-rho CONGEST engine (paper Section 3.1.1).

Standard asynchronous model: every message arrives after a finite delay
drawn from a seeded :class:`~repro.congest.runtime.LatencyModel`
(``fixed`` / ``uniform`` / ``exponential`` / ``heavy_tail``); links are
FIFO; *time complexity* of an execution is the total normalized time.
There are no rounds — nodes act only when messages arrive (plus one
initial activation).

Two classes of algorithms run here:

* **Async-native** (``passive_when_idle = True``): every protocol stage
  written in count-based lockstep (progress driven by received-message
  counts, not round numbers) runs unchanged — which is how the
  reproduction of Theorem 3.4 (asynchronous (Δ+1)-coloring with
  Õ(n^1.5) messages in Õ(n) time) works: call ``run_algorithm1`` on an
  AsyncNetwork.

* **Round-cadence** algorithms are *auto-wrapped* in the
  alpha-synchronizer (Theorem A.5, :mod:`repro.congest.synchronizer`)
  at stage-build time, provided the network knows a synchronous round
  budget for the stage: either per-stage ``round_budgets`` (typically
  recorded from a shadow synchronous run of the same seed — what
  :func:`repro.api.color_graph` does) or a blanket
  ``default_round_budget``.  Without any budget the engine still raises
  :class:`~repro.errors.ProtocolError`, because Theorem A.5's simulation
  is defined for algorithms with known round bounds.

Failure injection (``faults=`` — a spec string or
:class:`~repro.congest.runtime.FaultModel`) plugs into the same
delivery path as the latency models: the event scheduler consults it on
every charged envelope and activation, with crash windows read on the
normalized-time clock.  See ``docs/faults.md``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.congest.network import SyncNetwork
from repro.congest.runtime import EventScheduler, LatencyModel, Scheduler
from repro.congest.synchronizer import AlphaSynchronizer
from repro.errors import ProtocolError


class AsyncNetwork(SyncNetwork):
    """Event-driven engine sharing identity/accounting with SyncNetwork.

    ``latency`` picks the delay distribution (a model name or a
    :class:`LatencyModel` instance); ``min_delay`` keeps the historical
    knob: it is the lower bound of the default ``uniform`` model, under
    which each charged packet takes uniform(min_delay, 1.0) time, FIFO
    per link.  ``stats.rounds`` records ceil(total time) per stage, the
    asynchronous time complexity.

    ``round_budgets`` — a sequence of ``(stage_name, sync_rounds)``
    pairs (or a ``{stage_name: sync_rounds}`` dict) giving, per stage,
    the number of rounds the same stage took on the synchronous engine;
    round-cadence stages are then auto-wrapped in an
    :class:`AlphaSynchronizer` with budget ``sync_rounds - 1`` (the
    inner algorithm's last executed round index).  Async-native stages
    ignore their budgets.  ``default_round_budget`` is a blanket inner
    round budget used when no per-stage entry matches.
    """

    def __init__(
        self,
        *args,
        min_delay: float = 0.05,
        latency: Union[str, LatencyModel] = "uniform",
        round_budgets: Optional[Sequence] = None,
        default_round_budget: Optional[int] = None,
        **kwargs,
    ):
        # The scheduler is built inside SyncNetwork.__init__ via
        # _default_scheduler, so the latency knobs must be in place first.
        self.min_delay = min_delay
        self._latency_spec = latency
        super().__init__(*args, **kwargs)
        if round_budgets is None:
            self._budget_entries: list[tuple[str, int]] = []
        elif isinstance(round_budgets, dict):
            self._budget_entries = list(round_budgets.items())
        else:
            self._budget_entries = [(str(k), int(v))
                                    for k, v in round_budgets]
        self._budget_cursor = 0
        self.default_round_budget = default_round_budget
        #: Names of the stages this network auto-wrapped in an
        #: AlphaSynchronizer (the synchronizer-overhead bookkeeping).
        self.synchronized_stages: list[str] = []
        if self.trace is not None:
            raise ProtocolError(
                "execution traces are a synchronous-model notion; "
                "run lower-bound experiments on SyncNetwork"
            )

    def _default_scheduler(self) -> Scheduler:
        return EventScheduler(self._latency_spec, min_delay=self.min_delay)

    @property
    def latency_model(self) -> LatencyModel:
        return self.scheduler.latency

    # -- synchronizer auto-wrap ------------------------------------------------

    def _stage_round_budget(self, stage_name: str) -> Optional[int]:
        """Synchronous round count recorded for this stage, if known.

        The budget list is the shadow run's stage sequence, and this
        network replays the same drivers in the same order — so entries
        are consumed *positionally*, advancing a cursor per stage.  This
        keeps repeated stage names aligned (a driver may legally reuse a
        name across stages of different cadences; matching by name alone
        would hand a later round-cadence stage an earlier namesake's
        budget).  A name mismatch at the cursor falls back to scanning
        forward, so hand-built budget lists that only cover some stages
        still resolve.
        """
        entries = self._budget_entries
        i = self._budget_cursor
        if i < len(entries) and entries[i][0] == stage_name:
            self._budget_cursor = i + 1
            return entries[i][1]
        for j in range(i, len(entries)):
            if entries[j][0] == stage_name:
                self._budget_cursor = j + 1
                return entries[j][1]
        return None

    def _adapt_stage(self, algorithm_factory, inputs, stage_name):
        # Consume this stage's budget entry whether or not it is needed,
        # keeping the cursor aligned with the shadow stage sequence.
        sync_rounds = self._stage_round_budget(stage_name)
        probe = algorithm_factory()
        if probe.passive_when_idle:
            return algorithm_factory, inputs
        if sync_rounds is not None:
            # The sync engine executed inner rounds 0..sync_rounds-1; the
            # synchronizer's budget is the last executed round index.
            total_rounds = max(0, sync_rounds - 1)
        elif self.default_round_budget is not None:
            total_rounds = self.default_round_budget
        else:
            raise ProtocolError(
                f"round-cadence algorithm in stage {stage_name!r} needs an "
                "AlphaSynchronizer round budget to run asynchronously "
                "(Theorem A.5); construct the AsyncNetwork with "
                "round_budgets from a synchronous run of the same seed, "
                "or set default_round_budget"
            )
        self.synchronized_stages.append(stage_name)
        n = self.graph.n
        wrapped_inputs = [
            {"active": None,
             "inner": inputs[v] if inputs is not None else None}
            for v in range(n)
        ]
        return (
            lambda: AlphaSynchronizer(algorithm_factory, total_rounds),
            wrapped_inputs,
        )
