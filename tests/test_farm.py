"""The multi-tenant experiment farm (PR 10).

Covers the farm layers the single-sweep tests don't: per-sweep queues
under one coordinator (fair-share leasing, priorities), the farm verbs
(submit/attach/list/cancel) and their clients, batched leases with one
covering heartbeat, the EWMA batch tuner, the multi-sweep journal
round-trip, the `fetch_status` total deadline, and the farm CLI.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import cli
from repro.errors import DistributedError
from repro.experiments import (
    Cell,
    Coordinator,
    QueueJournal,
    ResultStore,
    SweepSpec,
    WorkQueue,
    run_sweep,
    run_worker,
)
from repro.experiments import distributed
from repro.experiments.distributed import (
    DEFAULT_SWEEP,
    PROTOCOL,
    PROTOCOL_VERSION,
    _batch_size,
    _observe_wall,
    _recv_msg,
    _run_leased_batch,
    _send_msg,
    _WorkerState,
    cancel_sweep,
    fetch_status,
    fetch_sweep,
    list_sweeps,
    submit_sweep,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")


def _worker_env():
    env = dict(os.environ)
    extra = os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    env["PYTHONPATH"] = SRC + extra
    return env


def _spec_a():
    return SweepSpec(families=("gnp",), sizes=(30, 40), seeds=(0,),
                     methods=("luby",))


def _spec_b():
    return SweepSpec(families=("gnp",), sizes=(30,), seeds=(0, 1),
                     methods=("rank-greedy",))


def _ok_record(cell):
    return {"key": cell.key(), "status": "ok", "messages": 1,
            "rounds": 1, "valid": True, "wall_s": 0.0}


def _handshake(host, port, worker="w"):
    sock = socket.create_connection((host, port))
    rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
    _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                      "version": PROTOCOL_VERSION, "worker": worker})
    assert _recv_msg(rfile)["type"] == "welcome"
    return sock, rfile, wfile


# -- per-sweep work queues ----------------------------------------------------


def test_lease_batch_respects_limit_and_pending():
    cells = list(SweepSpec(sizes=(30, 40, 50), seeds=(0,),
                           methods=("luby",)).cells())
    q = WorkQueue(cells, lease_s=60.0, max_requeues=1)
    first = q.lease_batch("w1", 2, now=0.0)
    assert [c.key() for c in first] == [c.key() for c in cells[:2]]
    rest = q.lease_batch("w1", 5, now=0.0)      # only one cell left
    assert [c.key() for c in rest] == [cells[2].key()]
    assert q.lease_batch("w2", 3, now=0.0) == []
    # Each batched cell holds its own lease: completing one does not
    # touch the others.
    assert q.complete("w1", first[0].key(), ok=True)
    assert q.counts() == {"pending": 0, "leased": 2, "done": 1,
                          "failed": 0}


def test_queue_cancel_drops_pending_and_revokes_leases():
    cells = list(SweepSpec(sizes=(30, 40, 50), seeds=(0,),
                           methods=("luby",)).cells())
    q = WorkQueue(cells, lease_s=60.0, max_requeues=1)
    leased = q.lease("w1", now=0.0)
    dropped, revoked = q.cancel()
    assert dropped == 2
    assert revoked == [leased.key()]
    assert q.finished() and q.pending_count() == 0
    # A cancelled queue never leases again, and the revoked holder's
    # heartbeat answers gone.
    assert q.lease("w2", now=0.0) is None
    assert not q.heartbeat("w1", leased.key(), now=0.0)


# -- fair-share leasing across tenants ---------------------------------------


def test_fair_share_alternates_between_equal_priority_sweeps():
    coord = Coordinator(persistent=True)
    coord.add_sweep("alpha", spec=_spec_a())
    coord.add_sweep("beta", spec=_spec_b())
    served = [coord.lease_cells("w", 1)[0] for _ in range(4)]
    assert served == ["alpha", "beta", "alpha", "beta"]
    assert coord.lease_cells("w", 1) == (None, [])


def test_higher_priority_sweep_drains_first():
    coord = Coordinator(persistent=True)
    coord.add_sweep("bulk", spec=_spec_a())            # 2 cells, prio 0
    coord.add_sweep("urgent", spec=_spec_b(), priority=5)
    names = [coord.lease_cells("w", 1)[0] for _ in range(4)]
    assert names == ["urgent", "urgent", "bulk", "bulk"]


def test_batch_comes_from_single_sweep_and_counts_one_turn():
    coord = Coordinator(persistent=True)
    coord.add_sweep("alpha", spec=_spec_a())
    coord.add_sweep("beta", spec=_spec_b())
    name, cells = coord.lease_cells("w", 16)
    assert name == "alpha" and len(cells) == 2
    name2, cells2 = coord.lease_cells("w", 16)
    assert name2 == "beta" and len(cells2) == 2


def test_untagged_result_routes_home_via_lease_route():
    """A legacy worker (no ``sweep`` field on results) still lands its
    record in the right tenant: the coordinator remembers who leased
    what."""
    coord = Coordinator(persistent=True)
    a, _ = coord.add_sweep("alpha", spec=_spec_a())
    b, _ = coord.add_sweep("beta", spec=_spec_b())
    routed = {}
    for _ in range(4):
        name, [cell] = coord.lease_cells("w", 1)
        routed[cell.key()] = name
    for key, name in routed.items():
        cell = Cell("gnp", 30, 0, "luby")       # key is what matters
        rec = {"key": key, "status": "ok", "messages": 1,
               "rounds": 1, "valid": True, "wall_s": 0.0}
        assert coord.submit("w", rec)           # no sweep= tag
    assert len(a.fresh) == a.total and len(b.fresh) == b.total
    assert {r["key"] for r in a.fresh} == {
        k for k, n in routed.items() if n == "alpha"}


# -- tenant registry ----------------------------------------------------------


def test_add_sweep_idempotent_and_fingerprint_guard():
    coord = Coordinator(persistent=True)
    state, created = coord.add_sweep("alpha", spec=_spec_a())
    again, created2 = coord.add_sweep("alpha", spec=_spec_a())
    assert created and not created2 and again is state
    with pytest.raises(DistributedError, match="different spec"):
        coord.add_sweep("alpha", spec=_spec_b())


def test_sweep_name_validation():
    coord = Coordinator(persistent=True)
    for bad in ("", "../evil", "a b", "x" * 65, ".hidden"):
        with pytest.raises(DistributedError, match="invalid sweep name"):
            coord.add_sweep(bad, spec=_spec_a())


def test_cancel_sweep_drops_revokes_and_revives():
    coord = Coordinator(persistent=True)
    coord.add_sweep("alpha", spec=_spec_a())
    name, [cell] = coord.lease_cells("w", 1)
    ack = coord.cancel_sweep("alpha")
    assert ack == {"sweep": "alpha", "dropped": 1, "revoked": 1}
    # The revoked holder learns at its next heartbeat...
    assert coord.heartbeat_keys("w", [cell.key()]) == [cell.key()]
    # ...its late result is refused...
    assert not coord.submit("w", _ok_record(cell), sweep="alpha")
    # ...and resubmitting the name revives the sweep with a fresh queue.
    state, created = coord.add_sweep("alpha", spec=_spec_a())
    assert created and not state.cancelled
    assert coord.lease_cells("w", 1)[0] == "alpha"


# -- batched leases on the wire ----------------------------------------------


def test_wire_batched_lease_and_keys_heartbeat(tmp_path):
    store = ResultStore(str(tmp_path / "a.jsonl"))
    with store:
        coord = Coordinator(_spec_a(), store=store, lease_s=10.0)
        host, port = coord.start()
        try:
            sock, rfile, wfile = _handshake(host, port)
            with sock:
                _send_msg(wfile, {"type": "lease", "max_cells": 8})
                reply = _recv_msg(rfile)
                assert reply["type"] == "cells"
                assert reply["sweep"] == DEFAULT_SWEEP
                cells = [Cell.from_dict(c) for c in reply["cells"]]
                assert len(cells) == 2
                keys = [c.key() for c in cells]
                _send_msg(wfile, {"type": "heartbeat", "keys": keys,
                                  "sweep": reply["sweep"]})
                beat = _recv_msg(rfile)
                assert beat["type"] == "ok" and beat["gone"] == []
                for cell in cells:
                    _send_msg(wfile, {"type": "result",
                                      "record": _ok_record(cell),
                                      "sweep": reply["sweep"]})
                    assert _recv_msg(rfile)["accepted"]
        finally:
            coord.stop()
    assert {r["key"] for r in store.load()} == set(keys)


def test_wire_legacy_lease_still_single_cell():
    """A pre-batching worker (no ``max_cells``) gets the classic
    ``cell`` reply — the farm protocol stays version-compatible."""
    coord = Coordinator(_spec_a(), lease_s=10.0)
    host, port = coord.start()
    try:
        sock, rfile, wfile = _handshake(host, port)
        with sock:
            _send_msg(wfile, {"type": "lease"})
            reply = _recv_msg(rfile)
            assert reply["type"] == "cell"
            key = Cell.from_dict(reply["cell"]).key()
            _send_msg(wfile, {"type": "heartbeat", "key": key})
            assert _recv_msg(rfile)["type"] == "ok"
    finally:
        coord.stop()


# -- farm verbs and their clients ---------------------------------------------


@pytest.fixture
def farm(tmp_path):
    coord = Coordinator(persistent=True, store_dir=str(tmp_path),
                        lease_s=10.0)
    host, port = coord.start()
    yield coord, host, port
    coord.stop()


def test_submit_attach_list_cancel_clients(farm):
    coord, host, port = farm
    ack = submit_sweep(host, port, "alpha", _spec_a())
    assert ack["created"] and ack["total"] == 2
    assert ack["fingerprint"] == _spec_a().fingerprint()
    # Idempotent: same name, same spec attaches to the live sweep.
    again = submit_sweep(host, port, "alpha", _spec_a())
    assert not again["created"]
    # Same name, different spec is refused and the error names why.
    with pytest.raises(DistributedError, match="different spec"):
        submit_sweep(host, port, "alpha", _spec_b())
    submit_sweep(host, port, "beta", _spec_b(), priority=2)
    sweeps = list_sweeps(host, port)
    assert set(sweeps) == {"alpha", "beta"}
    assert sweeps["beta"]["priority"] == 2
    snap = fetch_sweep(host, port, "alpha")
    assert snap["total"] == 2 and snap["pending"] == 2
    assert not snap["finished"] and not snap["cancelled"]
    with pytest.raises(DistributedError, match="no sweep named"):
        fetch_sweep(host, port, "ghost")
    ack = cancel_sweep(host, port, "beta")
    assert ack["dropped"] == 2 and ack["revoked"] == 0
    assert fetch_sweep(host, port, "beta")["cancelled"]
    # A verb error leaves the connection usable: the coordinator is
    # still serving (fresh exchanges keep working).
    assert fetch_status(host, port)["persistent"]


def test_submit_fingerprint_skew_rejected(farm):
    """A client whose fingerprint doesn't match the shipped spec (schema
    skew) must not mint a sweep under a wrong identity."""
    coord, host, port = farm
    spec = _spec_a()
    with pytest.raises(DistributedError, match="fingerprint"):
        distributed._farm_request(host, port, {
            "type": "submit", "name": "skewed", "spec": spec.to_dict(),
            "fingerprint": "0000000000000000", "priority": 0,
        }, "ok", 5.0, "submit")
    assert "skewed" not in list_sweeps(host, port)


def test_farm_worker_runs_both_sweeps_to_store(farm, tmp_path):
    """One in-process worker drains a two-tenant farm; each tenant's
    store holds exactly its own records."""
    coord, host, port = farm
    submit_sweep(host, port, "alpha", _spec_a())
    submit_sweep(host, port, "beta", _spec_b())
    done = threading.Thread(
        target=run_worker, args=(host, port),
        kwargs={"worker_id": "w", "poll_s": 0.05, "max_batch": 4},
        daemon=True)
    done.start()
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        sweeps = coord.sweeps_snapshot()
        if all(s["finished"] for s in sweeps.values()):
            break
        time.sleep(0.1)
    else:
        pytest.fail(f"farm never drained: {coord.sweeps_snapshot()}")
    coord.drain(grace_s=2.0)
    done.join(10)
    assert not done.is_alive()
    for name, spec in (("alpha", _spec_a()), ("beta", _spec_b())):
        recs = ResultStore(str(tmp_path / f"{name}.jsonl")).load()
        assert {r["key"] for r in recs} == {c.key() for c in spec.cells()}
        assert all(r["status"] == "ok" for r in recs)


# -- the EWMA batch tuner -----------------------------------------------------


def test_batch_size_probes_then_fills_target_window():
    # No estimate yet: probe with one cell.
    assert _batch_size(None, 16, 5.0, 30.0) == 1
    # Batching disabled.
    assert _batch_size(0.1, 1, 5.0, 30.0) == 1
    # Sub-second cells fill the window up to max_batch.
    assert _batch_size(0.1, 16, 5.0, 30.0) == 16
    assert _batch_size(1.0, 16, 5.0, 30.0) == 5
    # Cells slower than the window degrade to one-at-a-time.
    assert _batch_size(10.0, 16, 5.0, 30.0) == 1
    # The lease caps the window: never bite off more than a lease
    # of work.
    assert _batch_size(1.0, 16, 5.0, 2.0) == 2


def test_observe_wall_is_an_ewma():
    state = _WorkerState()
    assert state.ewma_wall is None
    _observe_wall(state, 2.0)
    assert state.ewma_wall == 2.0
    _observe_wall(state, 1.0)
    assert state.ewma_wall == pytest.approx(0.3 * 1.0 + 0.7 * 2.0)


# -- running a leased batch ---------------------------------------------------


def _patched_cell_runner(monkeypatch, duration_by_key):
    """Make _run_leased_batch's farm children synthetic: each 'runs' for
    its scripted duration, honours the cancel seam, then emits an ok
    record."""
    def fake(cells, slots, emit, cancel=None):
        [cell] = cells
        end = time.monotonic() + duration_by_key.get(cell.key(), 0.0)
        while time.monotonic() < end:
            if cancel is not None and cancel.is_set():
                return
            time.sleep(0.002)
        emit(_ok_record(cell))
    monkeypatch.setattr(distributed, "_run_cells_with_timeout", fake)


def test_batch_completes_all_and_heartbeat_covers_remainder(monkeypatch):
    cells = list(SweepSpec(sizes=(30, 40, 50), seeds=(0,),
                           methods=("luby",)).cells())
    _patched_cell_runner(monkeypatch,
                         {cells[0].key(): 0.08})
    beats, submitted = [], []

    def heartbeat(keys):
        beats.append(list(keys))
        return set()

    _run_leased_batch(cells, heartbeat=heartbeat, interval=0.02,
                      submit=lambda rec, wall: submitted.append(rec))
    assert [r["key"] for r in submitted] == [c.key() for c in cells]
    # While cell 0 ran, the heartbeat covered it *and* the queued
    # remainder — their leases age while they wait their turn.
    assert any(set(b) == {c.key() for c in cells} for b in beats)


def test_batch_partial_completion_after_queued_revocation(monkeypatch):
    """The coordinator revokes a *queued* batch cell (cancelled sweep,
    lease reaped): it is dropped from the batch, the rest complete."""
    cells = list(SweepSpec(sizes=(30, 40, 50), seeds=(0,),
                           methods=("luby",)).cells())
    doomed = cells[2].key()
    _patched_cell_runner(monkeypatch, {cells[0].key(): 0.08})
    submitted = []

    def heartbeat(keys):
        return {doomed} if doomed in keys else set()

    _run_leased_batch(cells, heartbeat=heartbeat, interval=0.02,
                      submit=lambda rec, wall: submitted.append(rec))
    assert [r["key"] for r in submitted] == [cells[0].key(),
                                             cells[1].key()]


def test_batch_revoked_inflight_cell_killed_not_submitted(monkeypatch):
    """Mid-batch revocation of the *running* cell goes through the
    cancel-Event seam: the child is reaped, nothing is submitted for
    it, and the rest of the batch continues."""
    cells = list(SweepSpec(sizes=(30, 40), seeds=(0,),
                           methods=("luby",)).cells())
    victim = cells[0].key()
    _patched_cell_runner(monkeypatch, {victim: 30.0})
    submitted = []

    def heartbeat(keys):
        return {victim} if victim in keys else set()

    start = time.monotonic()
    _run_leased_batch(cells, heartbeat=heartbeat, interval=0.02,
                      submit=lambda rec, wall: submitted.append(rec))
    assert time.monotonic() - start < 10      # did not sit out the 30s
    assert [r["key"] for r in submitted] == [cells[1].key()]


def test_batch_submit_cut_off_aborts_rest(monkeypatch):
    """A submit that raises (connection cut mid-send) aborts the batch;
    the already-delivered record is not retried here (the worker's
    pending-resubmit queue owns that)."""
    cells = list(SweepSpec(sizes=(30, 40, 50), seeds=(0,),
                           methods=("luby",)).cells())
    _patched_cell_runner(monkeypatch, {})
    attempts = []

    def cut_submit(rec, wall):
        attempts.append(rec["key"])
        raise DistributedError("connection cut mid-send")

    with pytest.raises(DistributedError, match="cut"):
        _run_leased_batch(cells, heartbeat=lambda keys: set(),
                          interval=5.0, submit=cut_submit)
    assert attempts == [cells[0].key()]


def test_batch_resubmission_after_cut_off_send(tmp_path, monkeypatch):
    """End-to-end: a worker whose submission is severed mid-batch
    reconnects and re-submits the cut-off record instead of recomputing
    it — the store ends complete with no duplicates."""
    ran = []

    def fake(cells, slots, emit, cancel=None):
        [cell] = cells
        ran.append(cell.key())
        emit(_ok_record(cell))
    monkeypatch.setattr(distributed, "_run_cells_with_timeout", fake)
    monkeypatch.setattr(time, "sleep", lambda s: None)

    spec = _spec_a()
    store = ResultStore(str(tmp_path / "cut.jsonl"))
    with store:
        coord = Coordinator(spec, store=store, lease_s=10.0)
        host, port = coord.start()
        real_submit = Coordinator.submit
        cut = {"armed": True}

        def sever_first_submit(self, worker, record, sweep=None):
            if cut["armed"]:
                cut["armed"] = False
                raise socket.timeout("severed mid-send")
            return real_submit(self, worker, record, sweep=sweep)
        monkeypatch.setattr(Coordinator, "submit", sever_first_submit)
        completed = run_worker(host, port, worker_id="w", poll_s=0.01,
                               reconnect=3, max_batch=4)
        coord.wait(timeout=30)
        coord.stop()
    assert completed == spec.size
    latest = store.latest_per_key()
    assert set(latest) == {c.key() for c in spec.cells()}
    # The cut-off record was re-sent, not recomputed.
    assert len(ran) == spec.size


# -- multi-sweep journal round-trip -------------------------------------------


def test_farm_journal_multi_tenant_round_trip(tmp_path):
    """Two named sweeps, coordinator drained mid-flight, restarted with
    resume: every tenant comes back (spec, priority, done keys), the
    remainder runs, and both stores end bit-identical per key to serial
    runs of the same specs."""
    spec_a, spec_b = _spec_a(), _spec_b()
    serial = {
        "alpha": {r["key"]: r for r in run_sweep(spec_a, store=None)},
        "beta": {r["key"]: r for r in run_sweep(spec_b, store=None)},
    }
    store_dir = str(tmp_path / "stores")
    os.makedirs(store_dir)
    journal_path = str(tmp_path / "farm.journal")

    coord = Coordinator(persistent=True, store_dir=store_dir,
                        lease_s=10.0, journal=QueueJournal(journal_path),
                        journal_interval_s=0.05)
    host, port = coord.start()
    submit_sweep(host, port, "alpha", spec_a)
    submit_sweep(host, port, "beta", spec_b, priority=3)
    # Run exactly one cell (from beta — higher priority), leave a second
    # one leased, then drain: genuinely mid-flight.
    from repro.experiments import run_cell
    sock, rfile, wfile = _handshake(host, port, "w-before")
    with sock:
        _send_msg(wfile, {"type": "lease", "max_cells": 2})
        reply = _recv_msg(rfile)
        assert reply["sweep"] == "beta" and len(reply["cells"]) == 2
        done_cell = Cell.from_dict(reply["cells"][0])
        _send_msg(wfile, {"type": "result",
                          "record": run_cell(done_cell),
                          "sweep": "beta"})
        assert _recv_msg(rfile)["accepted"]
        coord.drain(grace_s=0.2)
    coord.wait(timeout=10)
    assert coord.drained

    # Restart: --resume-journal semantics rebuild every tenant from the
    # journalled specs — nothing is resubmitted.
    coord2 = Coordinator(persistent=True, store_dir=store_dir,
                         lease_s=10.0,
                         journal=QueueJournal(journal_path),
                         resume_journal=True)
    host, port = coord2.start()
    sweeps = list_sweeps(host, port)
    assert set(sweeps) == {"alpha", "beta"}
    assert sweeps["beta"]["priority"] == 3
    # The completed cell survived the restart: the restored plan (like
    # any store-resumed sweep, counts are per session) excludes it.
    assert sweeps["beta"]["total"] == 1 and sweeps["beta"]["pending"] == 1
    assert sweeps["alpha"]["total"] == 2
    worker = threading.Thread(
        target=run_worker, args=(host, port),
        kwargs={"worker_id": "w-after", "poll_s": 0.05, "max_batch": 4},
        daemon=True)
    worker.start()
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if all(s["finished"]
               for s in coord2.sweeps_snapshot().values()):
            break
        time.sleep(0.1)
    else:
        pytest.fail(f"farm never drained: {coord2.sweeps_snapshot()}")
    coord2.drain(grace_s=2.0)
    worker.join(10)
    coord2.wait(timeout=10)
    coord2.stop()

    volatile = ("wall_s", "stage_wall", "attempts")
    for name, want in serial.items():
        got = ResultStore(
            os.path.join(store_dir, f"{name}.jsonl")).latest_per_key()
        assert set(got) == set(want), name
        for key in want:
            trimmed = {k: v for k, v in got[key].items()
                       if k not in volatile}
            assert trimmed == {k: v for k, v in want[key].items()
                               if k not in volatile}, key


def test_single_sweep_journal_refuses_foreign_farm_journal(tmp_path):
    """`repro sweep --serve --resume-journal` on a journal holding other
    tenants must refuse and point at `repro farm serve`."""
    journal = QueueJournal(str(tmp_path / "farm.journal"))
    coord = Coordinator(persistent=True, journal=journal,
                        journal_interval_s=0.05)
    coord.add_sweep("alpha", spec=_spec_a())
    coord.add_sweep("beta", spec=_spec_b())
    coord.stop()
    with pytest.raises(DistributedError, match="repro farm serve"):
        Coordinator(_spec_a(), journal=journal, resume_journal=True)


# -- fetch_status total deadline ----------------------------------------------


def test_fetch_status_deadline_on_silent_coordinator():
    """A coordinator that accepts but never answers must not stall
    `repro farm status` past its deadline."""
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    host, port = server.getsockname()
    try:
        start = time.monotonic()
        with pytest.raises(DistributedError,
                           match="stopped responding"):
            fetch_status(host, port, timeout_s=0.5)
        assert time.monotonic() - start < 5.0
    finally:
        server.close()


def test_fetch_status_deadline_on_trickling_coordinator():
    """Regression (hangs pre-fix): a wedged coordinator that trickles a
    byte per read used to re-arm a per-read timeout forever.  The total
    monotonic deadline bounds the whole exchange."""
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    host, port = server.getsockname()
    stop = threading.Event()

    def trickle():
        conn, _ = server.accept()
        with conn:
            while not stop.is_set():
                try:
                    conn.sendall(b" ")
                except OSError:
                    return
                time.sleep(0.1)

    feeder = threading.Thread(target=trickle, daemon=True)
    feeder.start()
    try:
        start = time.monotonic()
        with pytest.raises(DistributedError,
                           match="stopped responding"):
            fetch_status(host, port, timeout_s=0.5)
        assert time.monotonic() - start < 5.0
    finally:
        stop.set()
        server.close()
        feeder.join(5)


# -- farm CLI -----------------------------------------------------------------


@pytest.fixture
def live_farm_cli(tmp_path):
    coord = Coordinator(persistent=True, store_dir=str(tmp_path),
                        lease_s=10.0)
    host, port = coord.start()
    yield coord, f"{host}:{port}"
    coord.stop()


def test_cli_farm_submit_and_status(live_farm_cli, capsys):
    coord, endpoint = live_farm_cli
    rc = cli.main(["farm", "submit", "--connect", endpoint,
                   "--name", "alpha", "--sizes", "30", "40",
                   "--seeds", "0", "--methods", "luby", "--json"])
    assert rc == 0
    ack = json.loads(capsys.readouterr().out)
    assert ack["sweep"] == "alpha" and ack["created"]
    assert ack["cells to run"] == 2
    rc = cli.main(["farm", "submit", "--connect", endpoint,
                   "--name", "beta", "--sizes", "30",
                   "--seeds", "0", "1", "--methods", "rank-greedy",
                   "--priority", "2"])
    assert rc == 0
    capsys.readouterr()
    rc = cli.main(["farm", "status", "--connect", endpoint])
    assert rc == 0
    text = capsys.readouterr().out
    assert "sweep alpha: 0/2 done, 0 leased, 2 pending" in text
    assert "sweep beta:" in text and "priority 2" in text
    rc = cli.main(["farm", "status", "--connect", endpoint, "--json"])
    assert rc == 0
    snap = json.loads(capsys.readouterr().out)
    assert set(snap["sweeps"]) == {"alpha", "beta"}
    assert snap["persistent"] is True


def test_cli_farm_submit_conflict_and_attach_cancel(live_farm_cli,
                                                    capsys):
    coord, endpoint = live_farm_cli
    assert cli.main(["farm", "submit", "--connect", endpoint,
                     "--name", "alpha", "--sizes", "30",
                     "--seeds", "0", "--methods", "luby"]) == 0
    capsys.readouterr()
    # Same name, different matrix: refused with a readable error.
    rc = cli.main(["farm", "submit", "--connect", endpoint,
                   "--name", "alpha", "--sizes", "50",
                   "--seeds", "0", "--methods", "luby"])
    assert rc == 1
    assert "different spec" in capsys.readouterr().err
    # One-shot attach prints a snapshot and exits 0 (not finished).
    rc = cli.main(["farm", "attach", "--connect", endpoint,
                   "--name", "alpha", "--poll", "0", "--json"])
    assert rc == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["total"] == 1 and not snap["finished"]
    rc = cli.main(["farm", "cancel", "--connect", endpoint,
                   "--name", "alpha", "--json"])
    assert rc == 0
    ack = json.loads(capsys.readouterr().out)
    assert ack["dropped (pending)"] == 1
    # Attaching to a cancelled sweep reports it and exits 1.
    rc = cli.main(["farm", "attach", "--connect", endpoint,
                   "--name", "alpha", "--poll", "0"])
    assert rc == 1
    assert "cancelled" in capsys.readouterr().err


def test_cli_farm_unreachable(capsys):
    for verb in (["submit", "--name", "x", "--sizes", "30"],
                 ["attach", "--name", "x"],
                 ["cancel", "--name", "x"]):
        rc = cli.main(["farm", verb[0], "--connect", "127.0.0.1:1"]
                      + verb[1:])
        assert rc == 1
        assert f"farm {verb[0]}:" in capsys.readouterr().err


# -- report over per-sweep stores ---------------------------------------------


def test_cli_report_globs_and_merges_multiple_stores(tmp_path, capsys):
    stores = str(tmp_path / "stores")
    os.makedirs(stores)
    for name, spec in (("alpha", _spec_a()), ("beta", _spec_b())):
        with ResultStore(os.path.join(stores, f"{name}.jsonl")) as st:
            run_sweep(spec, store=st)
    rc = cli.main(["report", "--store", os.path.join(stores, "*.jsonl"),
                   "--json"])
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    assert {row["method"] for row in summary} == {"luby", "rank-greedy"}
    # Explicit multiple paths work the same; a miss names the paths.
    rc = cli.main(["report", "--results",
                   os.path.join(stores, "alpha.jsonl"),
                   os.path.join(stores, "beta.jsonl"), "--json"])
    assert rc == 0
    capsys.readouterr()
    rc = cli.main(["report", "--store", str(tmp_path / "nope*.jsonl")])
    assert rc == 1
    assert "no records found" in capsys.readouterr().err


# -- acceptance: two sweeps, two batching worker subprocesses -----------------


def test_two_sweeps_two_workers_batched_matches_serial(tmp_path):
    """Acceptance: a farm serving two named sweeps to two worker
    *subprocesses* with batching enabled produces per-sweep stores
    bit-identical per key to serial run_sweep of each spec."""
    spec_a, spec_b = _spec_a(), _spec_b()
    serial = {
        "alpha": {r["key"]: r for r in run_sweep(spec_a, store=None)},
        "beta": {r["key"]: r for r in run_sweep(spec_b, store=None)},
    }
    store_dir = str(tmp_path / "stores")
    os.makedirs(store_dir)
    coord = Coordinator(persistent=True, store_dir=store_dir,
                        lease_s=15.0)
    host, port = coord.start()
    submit_sweep(host, port, "alpha", spec_a)
    submit_sweep(host, port, "beta", spec_b)
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"{host}:{port}", "--id", f"w{i}",
             "--max-batch", "4", "--poll", "0.1", "--json"],
            env=_worker_env(), cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for i in range(2)
    ]
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if all(s["finished"] for s in coord.sweeps_snapshot().values()):
            break
        time.sleep(0.2)
    else:
        pytest.fail(f"farm never drained: {coord.sweeps_snapshot()}")
    coord.drain(grace_s=5.0)           # workers get shutdown, exit 0
    outs = [p.communicate(timeout=60) for p in procs]
    coord.wait(timeout=10)
    coord.stop()
    assert [p.returncode for p in procs] == [0, 0], outs
    volatile = ("wall_s", "stage_wall", "attempts")
    for name, want in serial.items():
        got = ResultStore(
            os.path.join(store_dir, f"{name}.jsonl")).latest_per_key()
        assert set(got) == set(want), name
        for key in want:
            trimmed = {k: v for k, v in got[key].items()
                       if k not in volatile}
            assert trimmed == {k: v for k, v in want[key].items()
                               if k not in volatile}, key
        assert all(r["status"] == "ok" for r in got.values())
