"""Tests for the Chang et al. partition under limited independence
(Lemma 3.1)."""

import random

import pytest

from repro.coloring import partition as P
from repro.errors import ReproError
from repro.graphs.generators import connected_gnp_graph, random_regular_graph
from repro.util.bitstrings import random_bitstring


def derive(n=400, id_space=None, level=0, seed=1):
    id_space = id_space or n * n
    nbits = P.bits_per_level(n, id_space) * (level + 1)
    bits = random_bitstring(random.Random(seed), nbits)
    return P.derive_level_hashes(bits, level, n, id_space)


def test_bits_per_level_positive():
    assert P.bits_per_level(100, 10_000) > 0


def test_derive_deterministic():
    h1 = derive(seed=2)
    h2 = derive(seed=2)
    assert [h1.h_l(x) for x in range(30)] == [h2.h_l(x) for x in range(30)]


def test_derive_levels_independent():
    n, id_space = 300, 90_000
    nbits = 2 * P.bits_per_level(n, id_space)
    bits = random_bitstring(random.Random(3), nbits)
    h0 = P.derive_level_hashes(bits, 0, n, id_space)
    h1 = P.derive_level_hashes(bits, 1, n, id_space)
    assert any(h0.h_l(x) != h1.h_l(x) for x in range(100))


def test_derive_insufficient_bits():
    bits = random_bitstring(random.Random(4), 10)
    with pytest.raises(ReproError):
        P.derive_level_hashes(bits, 0, 100, 10_000)


def test_level_q_monotone():
    assert P.level_q(1000, 10_000) < P.level_q(1000, 100)
    assert P.level_q(1000, 0) == 0.75


def test_level_k_sqrt():
    assert P.level_k(100) == 10
    assert P.level_k(101) == 11
    assert P.level_k(0) == 1


def test_membership_consistency():
    hashes = derive(seed=5)
    q, k = 0.3, 7
    for x in range(200):
        part = P.member_part(hashes, x, q, k)
        if P.is_l_member(hashes, x, q):
            assert part == P.L_PART
        else:
            assert part == P.part_index(hashes, x, k)
            assert 0 <= part < k


def test_l_fraction_close_to_q():
    hashes = derive(n=2000, id_space=4_000_000, seed=6)
    q = 0.25
    hits = sum(P.is_l_member(hashes, x, q) for x in range(4000))
    assert abs(hits / 4000 - q) < 0.05


def test_parts_roughly_balanced():
    hashes = derive(n=2000, id_space=4_000_000, seed=7)
    k = 8
    counts = [0] * k
    for x in range(4000):
        counts[P.part_index(hashes, x, k)] += 1
    mean = 4000 / k
    assert all(0.6 * mean < c < 1.4 * mean for c in counts)


def test_palette_partition_covers():
    hashes = derive(seed=8)
    k = 5
    palette = frozenset(range(50))
    parts = [P.palette_in_part(hashes, palette, i, k) for i in range(k)]
    # disjoint cover
    union = set()
    for p in parts:
        assert not (union & p)
        union |= p
    assert union == set(palette)


def test_lemma_3_1_properties_on_regular_graph():
    """The four properties on a concrete dense graph (whp event)."""
    g = random_regular_graph(300, 60, seed=9)
    from repro.congest.ids import IdAssignment

    assignment = IdAssignment.random(g.n, seed=10)
    values = list(assignment.values())
    delta = 60
    q = P.level_q(g.n, delta)
    k = P.level_k(delta)
    hashes = derive(n=g.n, id_space=assignment.space_bound(), seed=11)
    props = P.partition_properties(g, values, hashes, q, k, delta + 1)
    # (i) |E(G[B_i])| = O(n): generous constant
    assert all(e <= 4 * g.n for e in props["edges_in_part"])
    # |L| = O(q n)
    assert props["l_size"] <= 2.2 * q * g.n
    # (iv) remaining degrees shrink
    assert all(d <= 6 * (delta ** 0.5) + 8 * (g.n.bit_length())
               for d in props["delta_i"])
    assert props["delta_l"] <= 3 * q * delta + 8 * g.n.bit_length()


def test_property_ii_slack_nonnegative_mostly():
    """Available colors in B_i exceed Delta_i + 1 (property (ii))."""
    g = random_regular_graph(240, 80, seed=12)
    from repro.congest.ids import IdAssignment

    assignment = IdAssignment.random(g.n, seed=13)
    values = list(assignment.values())
    delta = 80
    hashes = derive(n=g.n, id_space=assignment.space_bound(), seed=14)
    props = P.partition_properties(
        g, values, hashes, P.level_q(g.n, delta), P.level_k(delta),
        delta + 1,
    )
    assert props["min_b_slack"] is not None
    assert props["min_b_slack"] >= -4   # small additive slack at this scale


def test_partition_stats_structure(gnp_medium):
    from repro.congest.ids import IdAssignment

    assignment = IdAssignment.random(gnp_medium.n, seed=15)
    values = list(assignment.values())
    delta = gnp_medium.max_degree()
    hashes = derive(n=gnp_medium.n, id_space=assignment.space_bound(),
                    seed=16)
    props = P.partition_properties(
        gnp_medium, values, hashes, 0.3, P.level_k(delta), delta + 1,
    )
    parts = props["parts"]
    assert len(parts) == gnp_medium.n
    total_edges = (sum(props["edges_in_part"]) + props["edges_in_l"])
    assert total_edges <= gnp_medium.m
