"""Shared infrastructure for the columnar round engine.

The columnar engine (:class:`~repro.congest.runtime.ColumnarRoundScheduler`)
executes a whole synchronous round as numpy array operations instead of
one Python frame per node.  This module holds the pieces every columnar
kernel needs:

* :func:`get_numpy` — the lazy, optional numpy import.  numpy is an
  optional dependency: when it is missing the engine falls back to the
  scalar :class:`~repro.congest.runtime.RoundScheduler` with a one-line
  warning (printed once per process).
* :func:`int_words` / :func:`int_words_scalar` — vectorized CONGEST word
  accounting for non-negative ints, exactly matching
  :func:`repro.congest.message._scan_field` (``max(1, ceil(bit_length /
  word_bits))`` with ``bit_length(0) == 0`` charged as one word).
* :class:`SendBatch` — one tag's broadcast fan-out for one phase: flat
  out-edge ids plus per-envelope payload values and word counts.  The
  scheduler charges and link-schedules a batch with a handful of array
  ops; a delivered batch is handed back to the receiving kernel whole.
* :class:`ActiveGraph` — the flat directed-edge table of the *active*
  subgraph a stage runs on: edges sorted by ``(src, dst)``, a CSR
  ``indptr``, and the reverse-edge involution ``erev`` (built by binary
  search; if any directed edge lacks its reverse the active sets are
  asymmetric and the builder refuses, sending the stage to the scalar
  path).  ``erev`` doubles as the delivery scatter: the bank slot of an
  arrival at ``dst`` from ``src`` is ``erev[edge]`` — an out-edge slot of
  ``dst``, so every receiver's bank block is contiguous in ``indptr``.
* :func:`block_positions` — the gather that turns "these nodes" into
  "all their out-edge slots" plus an owner index, without Python loops.

Kernels themselves live next to their algorithms (``mis/luby.py``,
``coloring/johansson.py``); see ``docs/columnar.md`` for the contract.
"""

from __future__ import annotations

import sys
from typing import Optional

_UNSET = object()

#: Lazy numpy state: ``mod`` is unset until first request, then the
#: module or None; ``warned`` gates the one-line fallback warning.
#: Tests monkeypatch this dict to simulate a numpy-free interpreter.
_STATE = {"mod": _UNSET, "warned": False}


def get_numpy(warn: bool = False):
    """Return the numpy module, or None when it is not installed.

    The import is attempted once per process.  With ``warn=True`` the
    first miss prints a single stderr line explaining the scalar
    fallback (the engine stays fully functional without numpy).
    """
    if _STATE["mod"] is _UNSET:
        try:
            import numpy
            _STATE["mod"] = numpy
        except ImportError:
            _STATE["mod"] = None
    if _STATE["mod"] is None and warn and not _STATE["warned"]:
        _STATE["warned"] = True
        print(
            "repro: numpy not available; columnar scheduler falling back "
            "to the scalar RoundScheduler (counts are identical)",
            file=sys.stderr,
        )
    return _STATE["mod"]


def int_words_scalar(value: int, word_bits: int) -> int:
    """Word count of one non-negative int, matching ``_scan_field``."""
    bits = max(1, int(value).bit_length())
    return max(1, -(-bits // word_bits))


def int_words(np_, values, word_bits: int):
    """Vectorized ``_scan_field`` word accounting for non-negative ints.

    ``bit_length(v)`` for ``v >= 1`` equals the number of powers of two
    ``<= v``, found by searchsorted against the 63 representable int64
    powers; zero (bit_length 0) still costs one word via the max.
    """
    powers = np_.left_shift(np_.int64(1), np_.arange(63, dtype=np_.int64))
    bits = np_.searchsorted(powers, values, side="right")
    return (np_.maximum(bits, 1) + word_bits - 1) // word_bits


class SendBatch:
    """One homogeneous broadcast fan-out: a tag, a phase, and parallel
    per-envelope arrays (out-edge ids, payload values, word counts).

    ``eids`` index the stage's :class:`ActiveGraph` edge table (so
    sender/receiver are ``esrc[eids]``/``edst[eids]``); ``values`` carry
    the one payload datum the receiving kernel needs (a priority key, a
    trial color, a boolean vote — int64); ``words`` is the exact CONGEST
    word charge of the full payload tuple per envelope.
    """

    __slots__ = ("tag", "phase", "eids", "values", "words")

    def __init__(self, tag: str, phase: int, eids, values, words):
        self.tag = tag
        self.phase = phase
        self.eids = eids
        self.values = values
        self.words = words

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"SendBatch({self.tag!r}, phase={self.phase}, "
            f"n={len(self.eids)})"
        )


class ActiveGraph:
    """Flat directed-edge table of a stage's active subgraph."""

    __slots__ = ("n", "esrc", "edst", "erev", "indptr", "alive", "needed")

    def __init__(self, n, esrc, edst, erev, indptr, alive, needed):
        self.n = n
        self.esrc = esrc
        self.edst = edst
        #: reverse-edge involution: ``erev[e]`` is the edge dst->src.
        self.erev = erev
        #: CSR offsets: node v's out-edges are ``esrc[indptr[v]:indptr[v+1]]``.
        self.indptr = indptr
        #: per-edge liveness (kernels clear entries as neighbors decide).
        self.alive = alive
        #: live out-degree per node (kept in sync with ``alive``).
        self.needed = needed

    @classmethod
    def build(cls, np_, n: int, adjacency) -> Optional["ActiveGraph"]:
        """Build the edge table from per-vertex sorted neighbor lists.

        Returns None when the active sets are asymmetric (some directed
        edge has no reverse) — the scalar path owns that case, including
        its deadlock diagnostics.
        """
        degrees = np_.fromiter(
            (len(a) for a in adjacency), dtype=np_.int64, count=n
        )
        total = int(degrees.sum())
        esrc = np_.repeat(np_.arange(n, dtype=np_.int64), degrees)
        edst = np_.fromiter(
            (u for a in adjacency for u in a), dtype=np_.int64, count=total
        )
        # adjacency lists are sorted and vertices ascend, so the flat
        # keys src*n + dst arrive pre-sorted: erev is one searchsorted.
        ekeys = esrc * n + edst
        rkeys = edst * n + esrc
        erev = np_.searchsorted(ekeys, rkeys)
        if total:
            clipped = np_.minimum(erev, total - 1)
            if bool(((erev >= total) | (ekeys[clipped] != rkeys)).any()):
                return None
        indptr = np_.zeros(n + 1, dtype=np_.int64)
        np_.cumsum(degrees, out=indptr[1:])
        alive = np_.ones(total, dtype=bool)
        return cls(n, esrc, edst, erev, indptr, alive, degrees.copy())


def full_graph(np_, net):
    """The full-adjacency :class:`ActiveGraph` of ``net``, cached.

    Several kernels (danner sparsification, color notification) run over
    the whole graph; the edge table is identical for every such stage of
    a network's lifetime, so it is built once and memoized on the
    network.  Users of the shared table must treat ``alive``/``needed``
    as read-only — kernels that retire edges (Luby, Johansson) run on
    active *subgraphs* and build their own tables.
    """
    cached = getattr(net, "_columnar_full_graph", None)
    if cached is None:
        # Graph adjacency is stored as sorted tuples — exactly the
        # shape ActiveGraph.build wants, no copying needed.
        cached = ActiveGraph.build(np_, net._n, net.graph._adj)
        net._columnar_full_graph = cached
    return cached


def block_positions(np_, indptr, nodes):
    """All out-edge slots of ``nodes`` plus an owner index per slot.

    Returns ``(pos, owners)``: ``pos`` concatenates the CSR ranges
    ``indptr[v]:indptr[v+1]`` for each v in ``nodes`` (in order), and
    ``owners[i]`` is the index into ``nodes`` owning ``pos[i]``.
    """
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    starts = np_.cumsum(counts) - counts
    pos = (
        np_.arange(total, dtype=np_.int64)
        - np_.repeat(starts, counts)
        + np_.repeat(indptr[nodes], counts)
    )
    owners = np_.repeat(np_.arange(len(nodes), dtype=np_.int64), counts)
    return pos, owners


def masked_block_max(np_, values, pos, owners, alive, num_blocks):
    """Per-owner max of ``values[pos]`` restricted to alive slots.

    Every block must have at least one alive slot (kernels only query
    nodes with live out-degree >= 1); blocks are contiguous because
    ``owners`` ascends.
    """
    mask = alive[pos]
    vals = values[pos[mask]]
    counts = np_.bincount(owners[mask], minlength=num_blocks)
    offsets = np_.cumsum(counts) - counts
    return np_.maximum.reduceat(vals, offsets)


def sender_counts_view(np_, stats):
    """Writable int64 view over ``MessageStats._sender_counts``, or None
    when the flat array is absent or the buffer refuses a writable view
    (callers then fall back to per-element adds)."""
    counts = stats._sender_counts
    if counts is None:
        return None
    view = np_.frombuffer(counts, dtype=np_.int64)
    if not view.flags.writeable:  # pragma: no cover - platform-dependent
        try:
            view = np_.asarray(memoryview(counts), dtype=np_.int64)
        except (TypeError, ValueError):
            return None
        if not view.flags.writeable:
            return None
    return view
