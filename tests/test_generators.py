"""Unit + property tests for the graph generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.graphs.analysis import connected_components, is_connected
from repro.graphs.generators import (
    barbell_graph,
    complete_bipartite,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    disjoint_cycles,
    gnp_random_graph,
    power_law_graph,
    random_regular_graph,
    random_spanning_subgraph,
    relabelled,
    tiered_bipartite,
)


def test_gnp_determinism():
    a = gnp_random_graph(50, 0.2, seed=5)
    b = gnp_random_graph(50, 0.2, seed=5)
    assert a == b


def test_gnp_seed_sensitivity():
    a = gnp_random_graph(50, 0.2, seed=5)
    b = gnp_random_graph(50, 0.2, seed=6)
    assert a != b


def test_gnp_extremes():
    assert gnp_random_graph(20, 0.0, seed=1).m == 0
    assert gnp_random_graph(20, 1.0, seed=1).m == 190


def test_gnp_bad_p():
    with pytest.raises(ReproError):
        gnp_random_graph(10, 1.5)


def test_gnp_density_plausible():
    g = gnp_random_graph(200, 0.1, seed=3)
    expected = 0.1 * 199 * 100
    assert 0.7 * expected < g.m < 1.3 * expected


def test_connected_gnp_is_connected():
    for seed in range(5):
        g = connected_gnp_graph(60, 0.05, seed=seed)
        assert is_connected(g)


def test_regular_graph_degrees():
    g = random_regular_graph(30, 4, seed=2)
    assert all(g.degree(v) == 4 for v in range(30))


def test_regular_graph_parity_rejected():
    with pytest.raises(ReproError):
        random_regular_graph(5, 3)


def test_regular_graph_too_dense_rejected():
    with pytest.raises(ReproError):
        random_regular_graph(4, 4)


def test_power_law_connected_and_skewed():
    g = power_law_graph(150, attachment=2, seed=4)
    assert is_connected(g)
    degrees = sorted((g.degree(v) for v in range(g.n)), reverse=True)
    assert degrees[0] > 3 * degrees[len(degrees) // 2]


def test_complete_graph():
    g = complete_graph(6)
    assert g.m == 15
    assert g.max_degree() == 5


def test_complete_bipartite_structure():
    g = complete_bipartite(3, 4)
    assert g.n == 7
    assert g.m == 12
    for u in range(3):
        for v in range(3):
            if u != v:
                assert not g.has_edge(u, v)


def test_cycle_graph():
    g = cycle_graph(8)
    assert g.m == 8
    assert all(g.degree(v) == 2 for v in range(8))


def test_cycle_too_short():
    with pytest.raises(ReproError):
        cycle_graph(2)


def test_disjoint_cycles_components():
    g = disjoint_cycles(4, 5)
    comps = connected_components(g)
    assert len(comps) == 4
    assert all(len(c) == 5 for c in comps)


def test_barbell_structure():
    g = barbell_graph(5, 3)
    assert g.n == 13
    assert is_connected(g)
    # bridge path endpoints have degree clique-1 + 1
    assert g.degree(4) == 5


def test_tiered_bipartite_matches_paper():
    g, parts = tiered_bipartite(4)
    t = 4
    assert g.n == 3 * t
    assert g.m == 2 * t * t
    for x in parts["X"]:
        for z in parts["Z"]:
            assert not g.has_edge(x, z)
    for y in parts["Y"]:
        assert g.degree(y) == 2 * t


def test_random_spanning_subgraph_keeps_subset():
    g = complete_graph(12)
    h = random_spanning_subgraph(g, 0.5, seed=9)
    assert h.n == g.n
    assert set(h.edges()) <= set(g.edges())


def test_relabelled_preserves_structure():
    g = cycle_graph(6)
    perm = [3, 4, 5, 0, 1, 2]
    h = relabelled(g, perm)
    assert h.m == g.m
    assert all(h.degree(v) == 2 for v in range(6))


def test_relabelled_bad_permutation():
    with pytest.raises(ReproError):
        relabelled(cycle_graph(4), [0, 0, 1, 2])


@given(st.integers(2, 40), st.floats(0.05, 0.9))
@settings(max_examples=25, deadline=None)
def test_gnp_simple_graph_property(n, p):
    g = gnp_random_graph(n, p, seed=11)
    assert all(v not in g.neighbors(v) for v in range(n))
    assert g.m <= n * (n - 1) // 2


@given(st.integers(1, 8), st.integers(3, 10))
@settings(max_examples=20, deadline=None)
def test_disjoint_cycles_edge_count(c, k):
    g = disjoint_cycles(c, k)
    assert g.n == c * k
    assert g.m == c * k


# -- grid / expander / planted partition (sweep families) ---------------------


def test_grid_structure_and_determinism():
    from repro.graphs.generators import grid_graph

    g = grid_graph(30)
    assert g.n == 30
    assert g == grid_graph(30)                    # deterministic
    assert is_connected(g)
    assert all(g.degree(v) <= 4 for v in range(g.n))
    # full 5x6 lattice: m = 5*(6-1) + 6*(5-1) = 49
    assert grid_graph(30).m == 49
    # partial last row stays connected
    assert is_connected(grid_graph(23))
    with pytest.raises(ReproError):
        grid_graph(0)


def test_expander_lift_regular_and_seeded():
    from repro.graphs.generators import random_regular_lift

    a = random_regular_lift(60, 4, seed=9)
    b = random_regular_lift(60, 4, seed=9)
    c = random_regular_lift(60, 4, seed=10)
    assert a == b
    assert a != c                                 # seed-sensitive
    assert is_connected(a)
    # exact d-regularity (up to the rare connectivity patch)
    degs = [a.degree(v) for v in range(a.n)]
    assert max(degs) <= 6 and min(degs) >= 4
    assert sum(1 for d in degs if d == 4) >= a.n - 4
    with pytest.raises(ReproError):
        random_regular_lift(30, 2)


def test_planted_partition_density_contrast():
    from repro.graphs.generators import planted_partition_graph

    a = planted_partition_graph(80, p_in=0.5, p_out=0.02, blocks=4, seed=1)
    assert a == planted_partition_graph(80, p_in=0.5, p_out=0.02,
                                        blocks=4, seed=1)
    assert a != planted_partition_graph(80, p_in=0.5, p_out=0.02,
                                        blocks=4, seed=2)
    assert is_connected(a)
    # the planted structure is visible: within-block edges dominate
    block = lambda v: min(v * 4 // 80, 3)
    within = sum(1 for u, v in a.edges() if block(u) == block(v))
    across = a.m - within
    assert within > 3 * across
    with pytest.raises(ReproError):
        planted_partition_graph(40, p_in=0.1, p_out=0.5)


def test_new_families_via_family_graph():
    from repro.graphs.generators import family_graph

    for family in ("grid", "expander", "planted"):
        g1 = family_graph(family, 48, p=0.25, seed=5)
        g2 = family_graph(family, 48, p=0.25, seed=5)
        assert g1 == g2, family
        assert is_connected(g1), family
        assert abs(g1.n - 48) <= 4, family        # lift rounds to fibers


def test_torus_graph_structure():
    from repro.graphs.generators import family_built_n, torus_graph

    g = torus_graph(49)
    assert g == torus_graph(49)                   # deterministic
    assert is_connected(g)
    assert g.n == family_built_n("torus", 49)
    # exact 4-regularity, no boundary
    assert all(g.degree(v) == 4 for v in range(g.n))
    assert g.m == 2 * g.n
    with pytest.raises(ReproError):
        torus_graph(5)


def test_torus_quantizes_like_family_built_n():
    from repro.graphs.generators import family_built_n, torus_graph

    for n in (9, 20, 49, 100, 137):
        assert torus_graph(n).n == family_built_n("torus", n)


def test_hypercube_graph_structure():
    from repro.graphs.generators import family_built_n, hypercube_graph

    g = hypercube_graph(32)
    assert g == hypercube_graph(32)               # deterministic
    assert is_connected(g)
    assert g.n == 32 == family_built_n("hypercube", 32)
    # d-regular with d = log2 n, diameter d
    assert all(g.degree(v) == 5 for v in range(g.n))
    from repro.graphs.analysis import diameter
    assert diameter(g) == 5
    with pytest.raises(ReproError):
        hypercube_graph(1)


def test_hypercube_rounds_to_power_of_two():
    from repro.graphs.generators import family_built_n, hypercube_graph

    for n, built in ((2, 2), (3, 4), (48, 64), (100, 128)):
        g = hypercube_graph(n)
        assert g.n == built == family_built_n("hypercube", n)


def test_torus_hypercube_via_family_graph():
    from repro.graphs.generators import family_built_n, family_graph

    for family, n in (("torus", 60), ("hypercube", 60)):
        g1 = family_graph(family, n, p=0.25, seed=5)
        g2 = family_graph(family, n, p=0.25, seed=6)
        assert g1 == g2, family                   # seed-independent
        assert is_connected(g1), family
        assert g1.n == family_built_n(family, n), family
