#!/usr/bin/env python3
"""Transmission scheduling in a dense wireless mesh via MIS.

Scenario: sensor nodes in a dense mesh must elect a set of simultaneous
transmitters such that no two interfere (an independent set) and every
node either transmits or hears a transmitter (maximality) — a classic
MIS application.  Nodes know their 2-hop neighborhoods from the
association handshake (exactly the KT-2 assumption), and radio time is
precious, so fewer coordination messages means longer battery life.

Compares Algorithm 3 (the paper's KT-2 MIS, Õ(n^1.5) messages in
Õ(sqrt n) rounds) against Luby's classic (Ω(m) messages), across mesh
densities, and shows the remnant-degree collapse (Konrad's lemma) that
makes the two-phase structure work.

Run standalone (in-process solves):

    python examples/wireless_mis_scheduling.py [--n 450]

or as a client of the query service (``docs/serving.md``):

    python -m repro serve 7431 &
    python examples/wireless_mis_scheduling.py --connect 127.0.0.1:7431

(The remnant-degree dive at the end needs the solver's internal detail
record, which the wire protocol doesn't carry, so it runs standalone
only.)
"""

import argparse
import math

from repro.graphs.generators import connected_gnp_graph


def _density_runs(n: int, client):
    from repro import api

    for p in (0.1, 0.2, 0.4):
        mesh = connected_gnp_graph(n, p, seed=int(100 * p))
        if client is not None:
            new = client.mis(mesh, method="kt2-sampled-greedy", seed=5)
            old = client.mis(mesh, method="luby", seed=6)
            rounds = new.rounds
        else:
            new = api.find_mis(mesh, method="kt2-sampled-greedy", seed=5)
            old = api.find_mis(mesh, method="luby", seed=6)
            rounds = new.report.rounds
        assert new.valid and old.valid
        saving = 100 * (1 - new.messages / old.messages)
        print(f"{p:>8} {mesh.m:>7} {new.messages:>10} {old.messages:>10} "
              f"{saving:>6.0f}% {rounds:>12} {new.size:>6}")


def _remnant_dive(n: int) -> None:
    from repro import api

    mesh = connected_gnp_graph(n, 0.3, seed=9)
    result = api.find_mis(mesh, method="kt2-sampled-greedy", seed=7)
    detail = result.detail
    print(f"\ninside Algorithm 3 on the p=0.3 mesh "
          f"(n={mesh.n}, Δ={mesh.max_degree()}):")
    print(f"  sampled |S| = {detail.sampled} "
          f"(Θ(sqrt n) = {math.isqrt(mesh.n)})")
    print(f"  greedy joiners: {detail.greedy_joined}, "
          f"remnant size: {detail.remnant_size}, "
          f"remnant max degree: {detail.remnant_max_degree_local} "
          f"(<= Õ(sqrt n))")
    print(f"  Luby finished the remnant with {detail.luby_joined} more "
          f"joiners; stage messages: {detail.stage_messages}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=450,
                        help="number of mesh nodes")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="answer via a running 'repro serve' "
                             "instead of solving in-process")
    args = parser.parse_args(argv)

    print(f"{'density':>8} {'m':>7} {'alg3 msgs':>10} {'luby msgs':>10} "
          f"{'saving':>7} {'alg3 rounds':>12} {'|MIS|':>6}")
    if args.connect:
        from repro.serving import ServeClient

        host, _, port = args.connect.rpartition(":")
        with ServeClient(host or "127.0.0.1", int(port)) as client:
            _density_runs(args.n, client)
        print("\n(remnant-degree dive skipped in --connect mode: the "
              "wire protocol carries results, not solver internals)")
    else:
        _density_runs(args.n, None)
        # Peek inside one run: the sampled prefix crushes the degree.
        _remnant_dive(args.n)


if __name__ == "__main__":
    main()
