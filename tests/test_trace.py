"""Tests for execution traces and similarity (Definitions 2.1-2.2)."""

from repro.congest.ids import NodeId
from repro.congest.trace import (
    ExecutionTrace,
    decode_value,
    first_divergence,
    remap_trace,
    restrict_trace,
    traces_similar,
)


def vmap(value):
    # id value 100+v belongs to vertex v
    return value - 100


def make_trace(events, outputs=None):
    t = ExecutionTrace()
    for (r, s, rcv, tag, fields) in events:
        t.record(r, s, rcv, tag, fields, vmap)
    for v, o in (outputs or {}).items():
        t.record_output(v, o, vmap)
    return t


def test_decode_replaces_ids():
    out = decode_value((1, NodeId(103), "x"), vmap)
    assert out == (1, ("vertex", 3), "x")


def test_decode_nested_structures():
    out = decode_value(frozenset({NodeId(101)}), vmap)
    assert out == frozenset({("vertex", 1)})
    out = decode_value([NodeId(102), 7], vmap)
    assert out == (("vertex", 2), 7)


def test_similarity_identical():
    a = make_trace([(0, 0, 1, "t", (5,))], {0: 1})
    b = make_trace([(0, 0, 1, "t", (5,))], {0: 1})
    assert traces_similar(a, b)


def test_similarity_order_insensitive_within_round():
    a = make_trace([(0, 0, 1, "t", (5,)), (0, 2, 1, "t", (6,))])
    b = make_trace([(0, 2, 1, "t", (6,)), (0, 0, 1, "t", (5,))])
    assert traces_similar(a, b)


def test_similarity_round_sensitive():
    a = make_trace([(0, 0, 1, "t", (5,))])
    b = make_trace([(1, 0, 1, "t", (5,))])
    assert not traces_similar(a, b)


def test_similarity_payload_sensitive():
    a = make_trace([(0, 0, 1, "t", (NodeId(102),))])
    b = make_trace([(0, 0, 1, "t", (NodeId(103),))])
    assert not traces_similar(a, b)


def test_similarity_decodes_ids():
    # Same decoded vertex referenced by different ID values in two runs.
    t1 = ExecutionTrace()
    t1.record(0, 0, 1, "t", (NodeId(102),), lambda v: v - 100)
    t2 = ExecutionTrace()
    t2.record(0, 0, 1, "t", (NodeId(202),), lambda v: v - 200)
    assert traces_similar(t1, t2)


def test_similarity_outputs_checked():
    a = make_trace([], {0: 1})
    b = make_trace([], {0: 2})
    assert not traces_similar(a, b)
    assert traces_similar(a, b, compare_outputs=False)


def test_first_divergence():
    a = make_trace([(0, 0, 1, "t", (5,))])
    b = make_trace([(0, 0, 1, "t", (6,))])
    div = first_divergence(a, b)
    assert div is not None
    assert first_divergence(a, a) is None


def test_first_divergence_length_mismatch():
    a = make_trace([(0, 0, 1, "t", (5,)), (1, 0, 1, "t", (5,))])
    b = make_trace([(0, 0, 1, "t", (5,))])
    assert first_divergence(a, b) is not None


def test_restrict_trace():
    a = make_trace(
        [(0, 0, 1, "t", (1,)), (0, 4, 5, "t", (2,))],
        {0: "a", 4: "b"},
    )
    sub = restrict_trace(a, {0, 1})
    assert len(sub.events) == 1
    assert sub.decoded_outputs == {0: "a"}


def test_remap_trace():
    a = make_trace([(0, 0, 1, "t", (NodeId(100),))], {0: ("vertex", 0)})
    b = remap_trace(a, {0: 10, 1: 11})
    assert b.events[0].sender == 10
    assert b.events[0].receiver == 11
    assert b.events[0].decoded_fields == (("vertex", 10),)
    assert b.decoded_outputs == {10: ("vertex", 10)}


def test_events_in_round():
    a = make_trace([(0, 0, 1, "t", ()), (1, 1, 0, "u", ())])
    assert len(a.events_in_round(0)) == 1
    assert a.events_in_round(1)[0].tag == "u"
