"""Tests for sketch-Boruvka spanning trees (the [19]-style substrate)."""

import pytest

from repro.congest.network import SyncNetwork
from repro.errors import ProtocolError
from repro.graphs.core import Graph
from repro.graphs.generators import disjoint_cycles
from repro.substrates.boruvka import ForestState, run_boruvka
from repro.substrates.spanning_tree import build_spanning_tree

from tests.conftest import connected_families


def is_spanning_tree(graph, edges):
    if len(edges) != graph.n - 1:
        return False
    t = Graph(graph.n, edges)
    from repro.graphs.analysis import is_connected

    return is_connected(t) and all(graph.has_edge(u, v) for u, v in edges)


@pytest.mark.parametrize("name,graph", connected_families(seed=100))
def test_spanning_tree_on_family(name, graph):
    net = SyncNetwork(graph, seed=5)
    st = build_spanning_tree(net, seed=6)
    assert is_spanning_tree(graph, st.tree_edges), name
    assert st.parents[st.root] is None


def test_single_vertex():
    net = SyncNetwork(Graph(1, []), seed=1)
    st = build_spanning_tree(net)
    assert st.tree_edges == []
    assert st.root == 0


def test_two_vertices():
    net = SyncNetwork(Graph(2, [(0, 1)]), seed=2)
    st = build_spanning_tree(net)
    assert st.tree_edges == [(0, 1)]


def test_disconnected_detected():
    net = SyncNetwork(disjoint_cycles(2, 5), seed=3)
    with pytest.raises(ProtocolError):
        build_spanning_tree(net)


def test_boruvka_on_disconnected_leaves_roots():
    g = disjoint_cycles(3, 4)
    net = SyncNetwork(g, seed=4)
    result = run_boruvka(net, ForestState.singletons(g.n), seed=5)
    assert len(result.forest.roots()) == 3


def test_children_consistent_with_parents(gnp_small):
    net = SyncNetwork(gnp_small, seed=7)
    st = build_spanning_tree(net)
    for v in range(gnp_small.n):
        p = st.parents[v]
        if p is not None:
            pv = net.vertex_of(p)
            assert net.id_of(v) in st.children[pv]
    # no vertex is its own ancestor
    for v in range(gnp_small.n):
        cur, seen = v, set()
        while st.parents[cur] is not None:
            assert cur not in seen
            seen.add(cur)
            cur = net.vertex_of(st.parents[cur])


def test_message_cost_near_linear():
    """Õ(n): messages grow far slower than m on dense graphs."""
    from repro.graphs.generators import connected_gnp_graph

    small = connected_gnp_graph(60, 0.5, seed=8)
    big = connected_gnp_graph(120, 0.5, seed=9)
    msgs = []
    for g in (small, big):
        net = SyncNetwork(g, seed=10)
        build_spanning_tree(net, seed=11)
        msgs.append(net.stats.messages)
    # m grows 4x; ST messages should grow far less than 3x
    assert msgs[1] < 3.0 * msgs[0]


def test_phase_count_logarithmic(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=12)
    st = build_spanning_tree(net, seed=13)
    assert st.phases <= 8 * max(4, gnp_medium.n.bit_length())


def test_deterministic_given_seed(gnp_small):
    nets = [SyncNetwork(gnp_small, seed=14) for _ in range(2)]
    trees = [build_spanning_tree(n, seed=15).tree_edges for n in nets]
    assert trees[0] == trees[1]


def test_forest_state_tree_edges(gnp_small):
    net = SyncNetwork(gnp_small, seed=16)
    st = build_spanning_tree(net, seed=17)
    forest = ForestState(parents=st.parents, children=st.children)
    assert sorted(forest.tree_edges(net)) == sorted(st.tree_edges)
