"""Edge-list I/O: run the algorithms on real-world graphs.

The format is the lingua franca of graph repositories (SNAP, Network
Repository, KONECT): one edge per line, two whitespace-separated vertex
labels, ``#`` or ``%`` comment lines.  ``load_edge_list`` maps arbitrary
labels to the contiguous ``0..n-1`` vertex ids the simulator uses —
deterministically, so the same file always yields the same
:class:`~repro.graphs.core.Graph` and seeded runs on it reproduce.

Parsing is **strict by default**: self-loops and duplicate edges are
rejected with the exact line numbers involved, because a file a user
hands to ``repro query --graph-file`` (or any CLI verb) that silently
loses edges is a silent change of the experiment.  Repository dumps that
legitimately list both orientations of every edge (SNAP convention) opt
out with ``strict=False``, which restores the historical lenient
behavior (skip self-loops, collapse duplicates).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import ReproError
from repro.graphs.core import Graph


def parse_edge_list(lines: Iterable[str], source: str = "<edge list>",
                    strict: bool = True) -> Graph:
    """Build a graph from edge-list lines.

    * ``#``- or ``%``-prefixed lines and blank lines are skipped.
    * The first two whitespace-separated columns are the endpoints;
      extra columns (weights, timestamps) are ignored.
    * Strict (the default): a self-loop or a duplicate edge (in either
      orientation) raises :class:`~repro.errors.ReproError` naming the
      offending line — and for duplicates, the line the edge first
      appeared on.  With ``strict=False`` self-loops are skipped and
      duplicates collapse (the lenient convention repository dumps
      need).
    * Labels map to contiguous ids deterministically: numerically when
      every label is an integer, lexicographically otherwise — the order
      the file lists edges in never changes the built graph.
    """
    pairs: list[tuple[str, str]] = []
    labels: set[str] = set()
    #: canonical (min, max) label pair -> first line it appeared on
    seen: dict[tuple[str, str], int] = {}
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        cols = line.split()
        if len(cols) < 2:
            raise ReproError(
                f"{source}:{lineno}: expected two vertex labels, "
                f"got {line!r}"
            )
        u, v = cols[0], cols[1]
        if u == v:
            if strict:
                raise ReproError(
                    f"{source}:{lineno}: self-loop {u!r} -- the CONGEST "
                    "model has no self-channels (pass strict=False to "
                    "skip self-loops)"
                )
            continue
        canon = (u, v) if u <= v else (v, u)
        first = seen.get(canon)
        if first is not None:
            if strict:
                raise ReproError(
                    f"{source}:{lineno}: duplicate edge ({u!r}, {v!r}), "
                    f"first seen at line {first} (pass strict=False to "
                    "collapse duplicates)"
                )
            continue
        seen[canon] = lineno
        pairs.append((u, v))
        labels.add(u)
        labels.add(v)
    if not labels:
        raise ReproError(f"{source}: no edges found")
    ordered = _order_labels(labels)
    index = {label: i for i, label in enumerate(ordered)}
    return Graph(len(ordered), [(index[u], index[v]) for u, v in pairs])


def _order_labels(labels: set[str]) -> list[str]:
    """Deterministic label order: numeric when every label parses as an
    integer, lexicographic otherwise.

    The probe is explicit (no bare ``except`` around the sort itself):
    which label breaks numeric ordering is knowable, and a file mixing
    ``7`` with ``alice`` orders lexicographically *by decision*, not by
    whichever label the sort happened to reach first.
    """
    try:
        numeric = {label: int(label) for label in labels}
    except ValueError:
        return sorted(labels)
    return sorted(labels, key=numeric.__getitem__)


def load_edge_list(path: str, strict: bool = True) -> Graph:
    """Read an edge-list file (see :func:`parse_edge_list`)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return parse_edge_list(fh, source=path, strict=strict)
    except OSError as exc:
        raise ReproError(f"cannot read edge list {path}: {exc}")


def save_edge_list(graph: Graph, path: str,
                   header: Optional[str] = None) -> None:
    """Write ``graph`` as an edge list (round-trips through the loader)."""
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for u, v in sorted(graph.edges()):
            fh.write(f"{u} {v}\n")
