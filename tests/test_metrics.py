"""Tests for the accounting layer (MessageStats / StageStats)."""

import pytest

from repro.congest.metrics import MessageStats, StageStats


def test_charges_accumulate():
    stats = MessageStats()
    stats.begin_stage("a")
    stats.charge_send(words=3, charged_messages=2)
    stats.charge_send(words=1, charged_messages=1)
    stats.charge_rounds(5)
    assert stats.sends == 2
    assert stats.messages == 3
    assert stats.words == 4
    assert stats.rounds == 5


def test_stage_isolation():
    stats = MessageStats()
    stats.begin_stage("first")
    stats.charge_send(1, 1)
    stats.begin_stage("second")
    stats.charge_send(2, 1)
    stats.charge_send(2, 1)
    assert stats.stage_named("first").sends == 1
    assert stats.stage_named("second").sends == 2
    assert stats.sends == 3


def test_stage_named_missing():
    stats = MessageStats()
    with pytest.raises(KeyError):
        stats.stage_named("nope")


def test_utilized_canonicalized():
    stats = MessageStats()
    stats.mark_utilized(5, 2)
    stats.mark_utilized(2, 5)
    assert stats.utilized == {(2, 5)}
    assert stats.utilized_count == 1


def test_charge_round_single():
    stats = MessageStats()
    stats.begin_stage("s")
    stats.charge_round()
    assert stats.rounds == 1
    assert stats.stage_named("s").rounds == 1


def test_summary_structure():
    stats = MessageStats()
    stats.begin_stage("x")
    stats.charge_send(2, 1)
    stats.mark_utilized(0, 1)
    summary = stats.summary()
    assert summary["messages"] == 1
    assert summary["utilized_edges"] == 1
    assert summary["stages"][0]["name"] == "x"


def test_stage_stats_as_dict():
    s = StageStats(name="y", sends=1, messages=2, words=3, rounds=4)
    d = s.as_dict()
    assert d == {"name": "y", "sends": 1, "messages": 2, "words": 3,
                 "rounds": 4}


def test_repr_contains_counts():
    stats = MessageStats()
    stats.begin_stage("z")
    stats.charge_send(1, 7)
    assert "7" in repr(stats)


def test_charges_without_stage():
    """Charging before any stage began must not crash (engine setup)."""
    stats = MessageStats()
    stats.charge_send(1, 1)
    stats.charge_rounds(2)
    assert stats.messages == 1
    assert stats.rounds == 2
