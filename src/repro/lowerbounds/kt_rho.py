"""Theorem 2.17: Ω(n) messages in KT-ρ, via disjoint cycles.

The proof considers n/k disjoint k-cycles (k a constant depending on ρ)
and shows any o(n)-message Monte Carlo algorithm leaves some cycle
completely silent ("Mute") with constant probability, where it inherits
the KT-0 hardness of cycle coloring [Naor / Linial]: a mute cycle fails
with probability > 1/2 under a hard ID assignment.

The executable version sweeps the message budget directly: a fraction f
of the cycles runs a correct message-passing 3-coloring (Θ(k) messages
per cycle), the rest stay mute and color by a hash of their ID.  A mute
k-cycle is properly colored only with probability ≈ 3·(2/3)^k → 0, so
overall success requires activating (1 - o(1)) of the cycles — i.e.
Θ(n/k)·Θ(k) = Θ(n) messages.  `cycle_tradeoff_sweep` traces this
success-vs-messages curve; its knee at Θ(n) is the theorem's content.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.congest.ids import IdAssignment
from repro.congest.network import SyncNetwork
from repro.congest.node import Context, NodeAlgorithm
from repro.coloring.verify import coloring_violations
from repro.graphs.generators import disjoint_cycles


class BudgetedCycleColoring(NodeAlgorithm):
    """3-color disjoint cycles under a per-cycle activation flag.

    Input: ``{"active": bool}``.  Active nodes run the message-passing
    greedy: a node whose undecided neighbors all have smaller IDs picks
    the least color unused by its (at most two) neighbors and announces
    it — correct on any cycle, Θ(1) messages per node.  Mute nodes pick
    hash(ID) mod 3 in silence.
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        self.active = bool(ctx.input and ctx.input.get("active"))
        self.taken: set[int] = set()
        self.uncolored_above: set = set()
        self.color = None

    def _silent_color(self, ctx: Context) -> int:
        return zlib.crc32(f"mute:{ctx.my_id.value}".encode()) % 3

    def _try_color(self, ctx: Context) -> None:
        if self.color is not None or self.uncolored_above:
            return
        c = 0
        while c in self.taken:
            c += 1
        self.color = c
        for u in ctx.neighbor_ids:
            ctx.send(u, "colored", c)
        ctx.done({"color": c})

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0:
            if not self.active:
                ctx.done({"color": self._silent_color(ctx)})
                return
            self.uncolored_above = {
                u for u in ctx.neighbor_ids if u > ctx.my_id
            }
            ctx.done(None)
            self._try_color(ctx)
            return
        if not self.active:
            return
        for msg in inbox:
            (c,) = msg.fields
            self.taken.add(c)
            self.uncolored_above.discard(msg.sender_id)
        ctx.done(None if self.color is None else {"color": self.color})
        self._try_color(ctx)


@dataclass
class CycleExperimentResult:
    num_cycles: int
    cycle_length: int
    n: int
    active_cycles: int
    messages: int
    failed_cycles: int
    success: bool


def run_cycle_experiment(
    num_cycles: int,
    cycle_length: int,
    active_fraction: float,
    seed: int = 0,
    rho: int = 1,
) -> CycleExperimentResult:
    """One point of the trade-off curve.

    ``rho`` sets the knowledge radius: Theorem 2.17 holds for every
    constant rho, and indeed extra hops of initial knowledge do not help
    a mute cycle — its output distribution is unchanged (the sweep at
    rho = 2, 3 lands on the same curve).
    """
    rng = random.Random(seed)
    graph = disjoint_cycles(num_cycles, cycle_length)
    n = graph.n
    assignment = IdAssignment.random(n, seed=rng)
    active_count = round(active_fraction * num_cycles)
    active_cycles = set(rng.sample(range(num_cycles), active_count))
    inputs = [
        {"active": (v // cycle_length) in active_cycles}
        for v in range(n)
    ]
    net = SyncNetwork(graph, rho=rho, assignment=assignment, seed=seed)
    stage = net.run(BudgetedCycleColoring, inputs=inputs, name="cycles")
    colors = [out["color"] for out in stage.outputs]
    bad_edges = coloring_violations(graph, colors)
    failed = {u // cycle_length for u, _v in bad_edges}
    return CycleExperimentResult(
        num_cycles=num_cycles,
        cycle_length=cycle_length,
        n=n,
        active_cycles=active_count,
        messages=net.stats.messages,
        failed_cycles=len(failed),
        success=not failed,
    )


def cycle_tradeoff_sweep(
    num_cycles: int,
    cycle_length: int,
    fractions=(0.0, 0.25, 0.5, 0.75, 0.9, 1.0),
    trials: int = 5,
    seed: int = 0,
    rho: int = 1,
) -> list[dict]:
    """Success probability and message cost per activation fraction."""
    rows = []
    for f in fractions:
        results = [
            run_cycle_experiment(num_cycles, cycle_length, f,
                                 seed=seed * 1000 + i * 17 + int(f * 100),
                                 rho=rho)
            for i in range(trials)
        ]
        rows.append({
            "fraction": f,
            "mean_messages": sum(r.messages for r in results) / trials,
            "success_rate": sum(r.success for r in results) / trials,
            "mean_failed_cycles":
                sum(r.failed_cycles for r in results) / trials,
            "n": results[0].n,
        })
    return rows
