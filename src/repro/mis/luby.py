"""Luby's MIS [26] — the Õ(m)-message KT-1 baseline of Figure 1.

Classic phase structure, implemented in the same count-based lockstep
style as the Johansson coloring so it tolerates link congestion and
asynchrony: in every phase each undecided node draws a random priority
and exchanges it with its undecided active neighbors (subphase A); local
maxima join the MIS and everyone reports joined/not (subphase B); nodes
adjacent to a joiner retire and everyone reports retired/alive (subphase
C).  Each phase kills a constant fraction of edges in expectation, so
O(log n) phases suffice whp — message complexity Θ(m log n), the Ω(m)
bound the paper's Algorithm 3 undercuts.

Priorities are random *ordinary* values and IDs are only compared for
tie-breaking, so the algorithm is comparison-based — matching Figure 1's
"(C)" classification of the Õ(m) KT-1 MIS upper bound.  It also serves
as the remnant-graph finisher inside Algorithm 3 (Step 5), where the
``active`` input restricts it to remnant edges.
"""

from __future__ import annotations

from typing import Optional

from repro.congest.node import ColumnarStage, Context, NodeAlgorithm


class LubyMIS(ColumnarStage, NodeAlgorithm):
    """One Luby run inside an (optional) active subgraph.

    Input (or None for whole-graph defaults):
      ``{"active": frozenset of neighbor IDs, "participate": bool}``
    Output: ``{"in_mis": bool}`` (None for bystanders).
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        state = ctx.input or {}
        self.participate = state.get("participate", True)
        active = state.get("active")
        if active is None:
            active = frozenset(ctx.neighbor_ids)
        self.undecided = {u for u in ctx.neighbor_ids if u in active}
        self.phase = 0
        self.priority: Optional[int] = None
        self.state: Optional[str] = None      # None / "joined" / "out"
        self.prios: dict[int, dict] = {}
        self.joins: dict[int, dict] = {}
        self.fates: dict[int, dict] = {}

    def _publish(self, ctx: Context) -> None:
        if not self.participate:
            ctx.done(None)
        else:
            ctx.done({"in_mis": self.state == "joined"})

    # -- phase machinery -----------------------------------------------------

    def _begin_phase(self, ctx: Context) -> None:
        if not self.undecided:
            self.state = "joined"
            self._publish(ctx)
            return
        self.priority = ctx.rng.randrange(max(ctx.n, 2) ** 3)
        ctx.broadcast(self.undecided, "prio", self.phase, self.priority)
        self.sent_join = False
        self.sent_fate = False

    def _try_join(self, ctx: Context) -> bool:
        if self.sent_join:
            return False
        p = self.phase
        prios = self.prios.get(p, {})
        if not all(u in prios for u in self.undecided):
            return False
        me = (self.priority, ctx.my_id)
        wins = all(me > (prios[u], u) for u in self.undecided)
        self.sent_join = True
        self.joined_now = wins
        ctx.broadcast(self.undecided, "join", p, wins)
        return True

    def _try_fate(self, ctx: Context) -> bool:
        if self.sent_fate or not self.sent_join:
            return False
        p = self.phase
        joins = self.joins.get(p, {})
        if not all(u in joins for u in self.undecided):
            return False
        retired = any(joins[u] for u in self.undecided)
        self.sent_fate = True
        if self.joined_now:
            self.state = "joined"
        elif retired:
            self.state = "out"
        ctx.broadcast(self.undecided, "fate", p, self.state is not None)
        if self.state is not None:
            self._publish(ctx)
        return True

    def _try_advance(self, ctx: Context) -> bool:
        if not self.sent_fate or self.state is not None:
            return False
        p = self.phase
        fates = self.fates.get(p, {})
        if not all(u in fates for u in self.undecided):
            return False
        self.undecided = {u for u in self.undecided if not fates[u]}
        for store in (self.prios, self.joins, self.fates):
            store.pop(p, None)
        self.phase = p + 1
        return True

    def _pump(self, ctx: Context) -> None:
        while self.state is None:
            if self._try_join(ctx):
                continue
            if self._try_fate(ctx):
                continue
            if self._try_advance(ctx):
                self._begin_phase(ctx)
                continue
            break

    def on_round(self, ctx: Context, inbox) -> None:
        if not self.participate:
            self._publish(ctx)
            return
        for msg in inbox:
            p = msg.fields[0]
            if msg.tag == "prio":
                self.prios.setdefault(p, {})[msg.sender_id] = msg.fields[1]
            elif msg.tag == "join":
                self.joins.setdefault(p, {})[msg.sender_id] = msg.fields[1]
            elif msg.tag == "fate":
                self.fates.setdefault(p, {})[msg.sender_id] = msg.fields[1]
        if ctx.round == 0:
            # Participants publish only on *decision* (_begin_phase's
            # trivial join, or _try_fate): an undecided node stays
            # engine-unfinished, so a silence cascade under faults shows
            # up as a starved casualty instead of a default output.
            self._begin_phase(ctx)
        if self.state is None:
            self._pump(ctx)

    # -- columnar engine (docs/columnar.md) ----------------------------------

    @classmethod
    def build_columnar_kernel(cls, net, algorithms, contexts):
        from repro.congest.columnar import ActiveGraph, get_numpy

        np_ = get_numpy()
        if np_ is None:
            return None
        n = net._n
        vertex_of = net.vertex_of
        adjacency = []
        for alg in algorithms:
            if not alg.participate:
                # A bystander never speaks; if some participant still
                # lists it as undecided the asymmetry check below sends
                # the stage to the scalar path (which then reproduces
                # the exact deadlock diagnostics).
                adjacency.append(())
            else:
                adjacency.append(
                    sorted(vertex_of(u) for u in alg.undecided)
                )
        graph = ActiveGraph.build(np_, n, adjacency)
        if graph is None:
            return None
        return _LubyKernel(np_, net, graph, algorithms, contexts)


class _LubyBank:
    """Per-phase receive banks, indexed by the receiver's out-edge slot
    (the reverse-edge involution makes each receiver's block contiguous)."""

    __slots__ = ("cnt_prio", "cnt_join", "cnt_fate", "pval", "jval", "kill")

    def __init__(self, np_, n: int, num_edges: int):
        self.cnt_prio = np_.zeros(n, dtype=np_.int64)
        self.cnt_join = np_.zeros(n, dtype=np_.int64)
        self.cnt_fate = np_.zeros(n, dtype=np_.int64)
        self.pval = np_.full(num_edges, -1, dtype=np_.int64)
        self.jval = np_.zeros(num_edges, dtype=np_.int64)
        self.kill = np_.zeros(num_edges, dtype=bool)


class _LubyKernel:
    """Vectorized Luby phases over node-state columns.

    One Python loop per phase boundary (the per-node RNG draws — each
    node's private stream must advance exactly as the scalar code
    advances it); everything else is array operations.  The lexicographic
    winner test ``(priority, my_id) > (priority_u, u)`` collapses to one
    int64 comparison via the combined key ``priority * n + id_rank``
    (ranks are distinct, priorities < max(n,2)^3, so keys fit comfortably
    under the scheduler's n^2 <= 2^21 array gate).
    """

    def __init__(self, np_, net, graph, algorithms, contexts):
        self.np = np_
        self.net = net
        self.graph = graph
        self.algorithms = algorithms
        self.contexts = contexts
        n = self.n = net._n
        self.word_bits = net.word_bits
        self.space = max(contexts[0].n, 2) ** 3 if n else 8
        values = np_.fromiter(
            (net.assignment.value_of(v) for v in range(n)),
            dtype=np_.int64, count=n,
        )
        self.rank = np_.empty(n, dtype=np_.int64)
        self.rank[np_.argsort(values)] = np_.arange(n, dtype=np_.int64)
        self.key = np_.zeros(n, dtype=np_.int64)
        self.priority = np_.zeros(n, dtype=np_.int64)
        self.phase = np_.zeros(n, dtype=np_.int64)
        self.live = np_.zeros(n, dtype=bool)
        self.sent_join = np_.zeros(n, dtype=bool)
        self.sent_fate = np_.zeros(n, dtype=bool)
        self.joined_now = np_.zeros(n, dtype=bool)
        self.banks: dict[int, _LubyBank] = {}

    def _bank(self, p: int) -> _LubyBank:
        bank = self.banks.get(p)
        if bank is None:
            bank = self.banks[p] = _LubyBank(
                self.np, self.n, len(self.graph.esrc)
            )
        return bank

    def _emit(self, tag, p, nodes, values, words):
        """Fan ``values[i]``/``words[i]`` out over node i's live edges."""
        from repro.congest.columnar import SendBatch, block_positions

        np_ = self.np
        pos, owners = block_positions(np_, self.graph.indptr, nodes)
        mask = self.graph.alive[pos]
        own = owners[mask]
        return SendBatch(tag, p, pos[mask], values[own], words[own])

    def _begin(self, p, nodes):
        """Scalar-identical phase entry: trivially-joined nodes decide
        (no draw), the rest draw a priority and broadcast it."""
        from repro.congest.columnar import int_words, int_words_scalar

        np_ = self.np
        needed = self.graph.needed
        contexts = self.contexts
        n = self.n
        starters = []
        for v in nodes:
            if needed[v] == 0:
                contexts[v].done({"in_mis": True})
                self.live[v] = False
            else:
                self.priority[v] = contexts[v].rng.randrange(self.space)
                starters.append(v)
        if not starters:
            return None
        sa = np_.asarray(starters, dtype=np_.int64)
        self.key[sa] = self.priority[sa] * n + self.rank[sa]
        words = (
            int_words_scalar(p, self.word_bits)
            + int_words(np_, self.priority[sa], self.word_bits)
        )
        return self._emit("prio", p, sa, self.key[sa], words)

    def begin(self):
        nodes = []
        for v in range(self.n):
            if self.algorithms[v].participate:
                self.live[v] = True
                nodes.append(v)
            else:
                self.contexts[v].done(None)
        batch = self._begin(0, nodes)
        return [batch] if batch is not None else []

    def deliver(self, arrivals):
        np_ = self.np
        erev = self.graph.erev
        edst = self.graph.edst
        n = self.n
        touched = []
        for batch, subset in arrivals:
            eids = batch.eids if subset is None else batch.eids[subset]
            values = (
                batch.values if subset is None else batch.values[subset]
            )
            bank = self._bank(batch.phase)
            slots = erev[eids]
            receivers = edst[eids]
            counts = np_.bincount(receivers, minlength=n)
            if batch.tag == "prio":
                bank.pval[slots] = values
                bank.cnt_prio += counts
            elif batch.tag == "join":
                bank.jval[slots] = values
                bank.cnt_join += counts
            else:  # fate
                bank.kill[slots] = values.astype(bool)
                bank.cnt_fate += counts
            touched.append(receivers)
        cand = np_.unique(np_.concatenate(touched))
        return self._pump(cand[self.live[cand]])

    def _pump(self, cand):
        """Fixpoint of join -> fate -> advance over the touched nodes —
        the vectorized mirror of the scalar ``_pump`` loop."""
        from repro.congest.columnar import (
            block_positions,
            int_words_scalar,
            masked_block_max,
        )

        np_ = self.np
        graph = self.graph
        needed = graph.needed
        out = []
        while cand.size:
            nxt = []
            for p in np_.unique(self.phase[cand]).tolist():
                bank = self.banks.get(p)
                if bank is None:
                    continue
                nodes = cand[self.phase[cand] == p]
                pw = int_words_scalar(p, self.word_bits)
                # -- join: all priorities of this phase are in ---------
                jn = nodes[
                    ~self.sent_join[nodes]
                    & (bank.cnt_prio[nodes] == needed[nodes])
                ]
                if jn.size:
                    pos, owners = block_positions(np_, graph.indptr, jn)
                    best = masked_block_max(
                        np_, bank.pval, pos, owners, graph.alive, len(jn)
                    )
                    wins = self.key[jn] > best
                    self.joined_now[jn] = wins
                    self.sent_join[jn] = True
                    out.append(self._emit(
                        "join", p, jn,
                        wins.astype(np_.int64),
                        np_.full(len(jn), pw + 1, dtype=np_.int64),
                    ))
                # -- fate: all join votes are in -----------------------
                fn = nodes[
                    self.sent_join[nodes]
                    & ~self.sent_fate[nodes]
                    & (bank.cnt_join[nodes] == needed[nodes])
                ]
                if fn.size:
                    pos, owners = block_positions(np_, graph.indptr, fn)
                    retired = masked_block_max(
                        np_, bank.jval, pos, owners, graph.alive, len(fn)
                    ) > 0
                    joined = self.joined_now[fn]
                    decided = joined | retired
                    self.sent_fate[fn] = True
                    out.append(self._emit(
                        "fate", p, fn,
                        decided.astype(np_.int64),
                        np_.full(len(fn), pw + 1, dtype=np_.int64),
                    ))
                    winners = joined[decided]
                    for i, v in enumerate(fn[decided].tolist()):
                        self.contexts[v].done(
                            {"in_mis": bool(winners[i])}
                        )
                    self.live[fn[decided]] = False
                # -- advance: all fates are in -------------------------
                an = nodes[
                    self.sent_fate[nodes]
                    & self.live[nodes]
                    & (bank.cnt_fate[nodes] == needed[nodes])
                ]
                if an.size:
                    pos, owners = block_positions(np_, graph.indptr, an)
                    mask = graph.alive[pos]
                    mpos = pos[mask]
                    kills = bank.kill[mpos]
                    if kills.any():
                        graph.alive[mpos[kills]] = False
                        needed[an] -= np_.bincount(
                            owners[mask][kills], minlength=len(an)
                        )
                    self.phase[an] = p + 1
                    self.sent_join[an] = False
                    self.sent_fate[an] = False
                    if not bool((self.live & (self.phase <= p)).any()):
                        self.banks.pop(p, None)
                    batch = self._begin(p + 1, an.tolist())
                    if batch is not None:
                        out.append(batch)
                    survivors = an[self.live[an]]
                    if survivors.size:
                        nxt.append(survivors)
            cand = (
                np_.unique(np_.concatenate(nxt))
                if nxt else np_.empty(0, dtype=np_.int64)
            )
        return out


def run_luby(net, active_sets=None, participate=None, name: str = "luby"):
    """Driver: run Luby to completion; returns (in_mis list, StageResult).

    Bystanders (participate=False) yield in_mis=False.
    """
    n = net.graph.n
    if active_sets is None:
        active_sets = [None] * n
    if participate is None:
        participate = [True] * n
    inputs = [
        {"active": active_sets[v], "participate": participate[v]}
        for v in range(n)
    ]
    stage = net.run(LubyMIS, inputs=inputs, name=name)
    in_mis = [
        bool(out and out.get("in_mis")) for out in stage.outputs
    ]
    return in_mis, stage
