"""Node IDs, ID assignments and the comparison-based discipline.

The paper distinguishes (Section 1.4.2):

* *comparison-based* algorithms — IDs live in ID-type variables that may
  only be compared; and
* *non-comparison-based* algorithms — IDs may be hashed, used as array
  indices, etc. (the Cole-Vishkin / King et al. style operations).

We enforce this mechanically: a :class:`NodeId` exposes its integer
``value`` (non-comparison algorithms hash it), while an :class:`OpaqueId`
raises :class:`~repro.errors.ComparisonDisciplineError` on every operation
other than comparison.  The engine hands out OpaqueIds exactly when a
protocol declares itself comparison-based, so "the algorithm is
comparison-based" becomes a property checked at run time rather than by
code review.

OpaqueIds still support ``hash`` so they can key dictionaries — the hash is
salted per network so its numeric value carries no usable order information
(a genuinely comparison-based algorithm could maintain the same dictionaries
with a comparison-based search tree; allowing hashing is a convenience, not
extra power).
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping, Sequence

from repro.errors import ComparisonDisciplineError, ReproError


class NodeId:
    """An ID-type value.  Supports comparison, hashing, and ``.value``."""

    __slots__ = ("_value", "_hash")

    def __init__(self, value: int):
        self._value = int(value)
        # IDs key every knowledge set and routing table in the engine, so
        # the (immutable) hash is computed once instead of per lookup.
        # Derived from the integer value only — never from a string —
        # because str hashes vary with PYTHONHASHSEED, which would make
        # set-of-ID iteration order (and hence the order sends consume
        # the async engine's delay stream) differ between processes.
        self._hash = hash(self._value * 0x9E3779B97F4A7C15 + 1)

    @property
    def value(self) -> int:
        """The raw integer (non-comparison-based access)."""
        return self._value

    # -- comparisons (always allowed) ---------------------------------------

    def _other(self, other) -> int:
        if isinstance(other, NodeId):
            return other._value
        return NotImplemented  # type: ignore[return-value]

    def __eq__(self, other) -> bool:
        if isinstance(other, NodeId):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, NodeId):
            return self._value < other._value
        return NotImplemented

    def __le__(self, other) -> bool:
        if isinstance(other, NodeId):
            return self._value <= other._value
        return NotImplemented

    def __gt__(self, other) -> bool:
        if isinstance(other, NodeId):
            return self._value > other._value
        return NotImplemented

    def __ge__(self, other) -> bool:
        if isinstance(other, NodeId):
            return self._value >= other._value
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Id({self._value})"

    # Explicitly refuse implicit arithmetic so plain NodeIds are not
    # accidentally used as numbers either; use ``.value`` deliberately.
    def __add__(self, other):
        raise TypeError("NodeId does not support arithmetic; use .value")

    __radd__ = __sub__ = __rsub__ = __mul__ = __rmul__ = __add__

    def __int__(self):
        raise TypeError("use .value to read a NodeId deliberately")

    def __index__(self):
        raise TypeError("use .value to read a NodeId deliberately")


class OpaqueId(NodeId):
    """A NodeId whose value can only be compared (Section 1.4.2).

    Every non-comparison operation raises ComparisonDisciplineError.
    """

    __slots__ = ("_salt",)

    def __init__(self, value: int, salt: int = 0):
        super().__init__(value)
        # object.__setattr__ not needed; __slots__ assignment is fine.
        self._salt = salt
        # Int-tuple hash: salt-scrambled (no usable order information)
        # yet stable across processes — see NodeId.__init__ on why no
        # strings may enter engine-path hashes.
        self._hash = hash((salt, 0x27D4EB2F165667C5, self._value))

    @property
    def value(self) -> int:
        raise ComparisonDisciplineError(
            "comparison-based algorithms may only compare IDs "
            "(attempted to read the raw ID value)"
        )

    def __hash__(self) -> int:
        # Salted so the hash cannot be used as a stand-in for the value.
        return self._hash

    def __repr__(self) -> str:
        return f"OpaqueId(#{self._value})"

    def __add__(self, other):
        raise ComparisonDisciplineError("arithmetic on an opaque ID")

    __radd__ = __sub__ = __rsub__ = __mul__ = __rmul__ = __add__

    def __int__(self):
        raise ComparisonDisciplineError("int() on an opaque ID")

    def __index__(self):
        raise ComparisonDisciplineError("indexing with an opaque ID")

    def __format__(self, spec):
        if spec:
            raise ComparisonDisciplineError("formatting an opaque ID")
        return repr(self)


def id_value(node_id: NodeId) -> int:
    """Engine-internal raw value access (bypasses the opaque discipline).

    Only the simulator (for routing, decoding, and accounting) may call
    this; algorithm code must go through ``.value`` so the discipline check
    applies.
    """
    return node_id._value  # noqa: SLF001 - deliberate engine backdoor


class IdAssignment:
    """A bijection between vertices 0..n-1 and distinct ID values.

    The paper's ID spaces are polynomial in n; :meth:`random` draws from
    ``[0, n**3)`` by default.  Lower-bound experiments construct explicit
    assignments (Section 2.2's phi, psi_{e,e'} and the swap variants).
    """

    def __init__(self, values: Sequence[int]):
        values = [int(v) for v in values]
        if len(set(values)) != len(values):
            raise ReproError("ID values must be distinct")
        if any(v < 0 for v in values):
            raise ReproError("ID values must be non-negative")
        self._values: tuple[int, ...] = tuple(values)
        self._vertex_of: dict[int, int] = {v: i for i, v in enumerate(values)}

    @classmethod
    def random(cls, n: int, seed=0, space: int | None = None) -> "IdAssignment":
        rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        if space is None:
            # A polynomial ID space, as the model requires.  n^2 keeps one
            # ID within a 2 log n-bit word and hash fields within numpy's
            # uint64 fast path for every benchmark size.
            space = max(n * n, 64)
        if space < n:
            raise ReproError("ID space smaller than vertex count")
        return cls(rng.sample(range(space), n))

    @classmethod
    def identity(cls, n: int) -> "IdAssignment":
        return cls(list(range(n)))

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, int], n: int) -> "IdAssignment":
        if sorted(mapping.keys()) != list(range(n)):
            raise ReproError("mapping must cover vertices 0..n-1")
        return cls([mapping[v] for v in range(n)])

    def __len__(self) -> int:
        return len(self._values)

    def value_of(self, vertex: int) -> int:
        return self._values[vertex]

    def vertex_of_value(self, value: int) -> int:
        return self._vertex_of[value]

    def values(self) -> tuple[int, ...]:
        return self._values

    def space_bound(self) -> int:
        """An upper bound on the ID space (for sizing hash domains)."""
        return max(self._values) + 1

    def with_swapped(self, a: int, b: int) -> "IdAssignment":
        """A copy with the ID values of vertices ``a`` and ``b`` exchanged.

        Used by the lower-bound machinery for the intermediate assignments
        psi_{e,e',x} and psi_{e,e',z} (Section 2.2).
        """
        values = list(self._values)
        values[a], values[b] = values[b], values[a]
        return IdAssignment(values)

    def order_isomorphic_to(self, other: "IdAssignment",
                            pairs: Iterable[tuple[int, int]]) -> bool:
        """Check order-isomorphism over corresponding vertex pairs.

        ``pairs`` yields (vertex in self, vertex in other); returns True if
        the relative order of IDs agrees on every pair of pairs — property
        (iii) of the shifted assignment in Section 2.2.
        """
        pair_list = list(pairs)
        for i in range(len(pair_list)):
            for j in range(i + 1, len(pair_list)):
                (a1, b1), (a2, b2) = pair_list[i], pair_list[j]
                lhs = self.value_of(a1) < self.value_of(a2)
                rhs = other.value_of(b1) < other.value_of(b2)
                if lhs != rhs:
                    return False
        return True
