"""Tests for KT-rho initial knowledge (paper Section 1.4.1)."""

import pytest

from repro.congest.ids import NodeId
from repro.congest.knowledge import build_knowledge
from repro.errors import ModelViolationError, ReproError
from repro.graphs.core import Graph


def make(graph, rho):
    ids = [NodeId(100 + v) for v in range(graph.n)]
    return build_knowledge(graph, rho, lambda v: ids[v]), ids


def test_kt1_neighbor_ids(path4):
    know, ids = make(path4, 1)
    assert set(know[1].neighbor_ids) == {ids[0], ids[2]}
    assert know[0].degree == 1
    assert know[1].my_id == ids[1]


def test_kt1_no_two_hop(path4):
    know, _ = make(path4, 1)
    with pytest.raises(ModelViolationError):
        know[0].ids_within(2)


def test_kt1_own_neighborhood_known(path4):
    know, ids = make(path4, 1)
    # distance <= rho-1 = 0: only own neighborhood.
    assert know[1].neighborhood_of(ids[1]) == frozenset({ids[0], ids[2]})
    assert not know[1].knows_neighborhood_of(ids[0])
    with pytest.raises(ModelViolationError):
        know[1].neighborhood_of(ids[0])


def test_kt2_neighbor_neighborhoods(path4):
    know, ids = make(path4, 2)
    assert know[0].neighborhood_of(ids[1]) == frozenset({ids[0], ids[2]})
    assert know[0].ids_at(2) == frozenset({ids[2]})
    assert know[0].ids_within(2) == frozenset({ids[1], ids[2]})


def test_kt2_does_not_leak_three_hops(path4):
    know, ids = make(path4, 2)
    # vertex 3 is at distance 3 from vertex 0.
    assert ids[3] not in know[0].ids_within(2)
    with pytest.raises(ModelViolationError):
        know[0].neighborhood_of(ids[2])


def test_kt3_reaches_whole_path(path4):
    know, ids = make(path4, 3)
    assert ids[3] in know[0].ids_within(3)
    assert know[0].knows_neighborhood_of(ids[2])


def test_rho_zero_rejected(path4):
    with pytest.raises(ReproError):
        make(path4, 0)


def test_neighbor_ids_sorted_by_value(star6):
    know, ids = make(star6, 1)
    values = [100 + v for v in range(1, 6)]
    assert [u for u in know[0].neighbor_ids] == [NodeId(v) for v in values]


def test_n_exposed(triangle):
    know, _ = make(triangle, 1)
    assert all(k.n == 3 for k in know)


def test_isolated_vertex():
    g = Graph(3, [(0, 1)])
    know, ids = make(g, 2)
    assert know[2].neighbor_ids == ()
    assert know[2].ids_within(2) == frozenset()


def test_kt2_two_hop_excludes_self_and_neighbors(k5):
    know, ids = make(k5, 2)
    # complete graph: everything is at distance 1.
    assert know[0].ids_at(2) == frozenset()
    assert len(know[0].ids_within(2)) == 4


def test_knowledge_layers_complete_bipartite():
    from repro.graphs.generators import complete_bipartite

    g = complete_bipartite(3, 3)
    know, ids = make(g, 2)
    # 2-hop set of a left vertex = other left vertices.
    assert know[0].ids_at(2) == frozenset({ids[1], ids[2]})
