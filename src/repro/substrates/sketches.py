"""XOR edge-fingerprint sketches (the King-Kutten-Thorup primitive).

The trick that makes o(m)-message spanning structures possible in KT-1
(paper Section 1, [19]): both endpoints of an edge know both endpoint IDs,
so both can evaluate a fixed hash of the *edge name* locally.  If every
node in a tree fragment XORs the fingerprints of all its incident edges
and the fragment convergecasts the XOR, every internal edge contributes
twice and cancels, leaving the XOR of the fingerprints of *outgoing* edges
— computed without sending anything over non-tree edges.

Fingerprints are *tokens* packing ``checksum | min-ID | max-ID`` into one
integer.  Sub-sampling edges at geometric rates ("levels") isolates a
single outgoing edge at some level whp, and the checksum certifies that a
surviving XOR value really is one edge rather than a collision.

Everything here is plain local computation on ID *values* — legitimate for
non-comparison-based algorithms only, which is exactly how the paper
classifies the King et al. technique.
"""

from __future__ import annotations


from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ReproError

_CHECK_BITS = 32
_CHECK_MASK = (1 << _CHECK_BITS) - 1


@dataclass(frozen=True)
class SketchParams:
    """Parameters shared by every node (part of the algorithm's code)."""

    word_bits: int       # bits per ID field; any ID value must fit
    levels: int          # number of geometric sampling levels
    nonce: int           # per-phase salt for checksums and sampling

    @property
    def id_mask(self) -> int:
        return (1 << self.word_bits) - 1

    @property
    def token_bits(self) -> int:
        return 2 * self.word_bits + _CHECK_BITS

    def token_words(self, word_bits: int) -> int:
        return max(1, -(-self.token_bits // word_bits))


_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a *non-linear* 64-bit mixer.

    Non-linearity matters: a GF(2)-linear hash (e.g. CRC32) lets
    structured edge sets cancel — the four cut edges of a complete
    bipartite {a,b}×{x,y} XOR to zero in every linear hash, which would
    forge "no outgoing edge" certificates on dense cuts.  The integer
    multiplications here break that linearity.
    """
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _edge_hash(lo: int, hi: int, nonce: int, salt: int) -> int:
    seed = (lo * 0x9E3779B97F4A7C15 + hi * 0xC2B2AE3D27D4EB4F
            + nonce * 0x165667B19E3779F9 + salt) & _MASK64
    return _mix64(seed)


def edge_checksum(a: int, b: int, nonce: int) -> int:
    """A 32-bit non-linear checksum of the canonical edge name."""
    lo, hi = (a, b) if a < b else (b, a)
    return _edge_hash(lo, hi, nonce, 0xC0FFEE) & _CHECK_MASK


def edge_level(a: int, b: int, nonce: int) -> int:
    """Geometric sampling level: the edge survives level j iff
    ``edge_level(...) >= j``; levels are trailing zeros of a hash, so
    level >= j happens with probability 2^-j."""
    lo, hi = (a, b) if a < b else (b, a)
    h = _edge_hash(lo, hi, nonce, 0x5EED) & 0xFFFFFFFF
    if h == 0:
        return 32
    return (h & -h).bit_length() - 1


def edge_token(a: int, b: int, params: SketchParams) -> int:
    """Pack the canonical edge name plus checksum into one integer."""
    lo, hi = (a, b) if a < b else (b, a)
    if hi > params.id_mask:
        raise ReproError("ID value does not fit in the sketch word size")
    check = edge_checksum(lo, hi, params.nonce)
    return (check << (2 * params.word_bits)) | (lo << params.word_bits) | hi


def decode_token(x: int, level: int, params: SketchParams) -> Optional[tuple[int, int]]:
    """Try to interpret an XOR value as a single edge surviving ``level``.

    Returns the canonical (min, max) ID pair, or None if the checksum or
    sampling-level consistency check fails (i.e. ``x`` is a collision of
    several edges, not a lone fingerprint).
    """
    if x == 0:
        return None
    hi = x & params.id_mask
    lo = (x >> params.word_bits) & params.id_mask
    check = x >> (2 * params.word_bits)
    if lo >= hi:
        return None
    if check != edge_checksum(lo, hi, params.nonce):
        return None
    if edge_level(lo, hi, params.nonce) < level:
        return None
    return (lo, hi)


def local_sketch_vector(my_value: int, neighbor_values: Sequence[int],
                        params: SketchParams) -> list[int]:
    """One node's per-level XOR of its incident edge tokens.

    Level j accumulates every incident edge whose sampling level is >= j;
    level 0 therefore contains *all* incident edges.
    """
    vec = [0] * params.levels
    for b in neighbor_values:
        lvl = edge_level(my_value, b, params.nonce)
        token = edge_token(my_value, b, params)
        top = min(lvl, params.levels - 1)
        for j in range(top + 1):
            vec[j] ^= token
    return vec


def local_sketch_slice(my_value: int, neighbor_values: Sequence[int],
                       params: SketchParams,
                       indices: Sequence[int]) -> list[int]:
    """The sketch vector restricted to the given level indices.

    Convergecasting a small window of levels (plus level 0 for the
    no-outgoing certificate) instead of the full vector is the standard
    constant-factor saving: the root centers the window on the level
    that isolated an edge last phase and widens/limits it on retries.
    """
    vec = [0] * len(indices)
    for b in neighbor_values:
        lvl = edge_level(my_value, b, params.nonce)
        token = edge_token(my_value, b, params)
        for i, j in enumerate(indices):
            if lvl >= j:
                vec[i] ^= token
    return vec


def window_indices(hint: int, width: int, levels: int) -> list[int]:
    """Level 0 plus a ``width``-level window topped at ``hint``."""
    hi = max(1, min(hint, levels - 1))
    lo = max(1, hi - width + 1)
    return [0] + list(range(lo, hi + 1))


def xor_vectors(acc: list[int], other: Sequence[int]) -> list[int]:
    """In-place XOR combine (convergecast step)."""
    for i, v in enumerate(other):
        acc[i] ^= v
    return acc


def find_outgoing(vector: Sequence[int],
                  params: SketchParams) -> Optional[tuple[int, int, int]]:
    """Scan a fragment XOR vector from sparsest level down.

    Returns (min ID value, max ID value, level) for the first level whose
    XOR decodes to a certified single edge, or None.
    """
    for j in range(params.levels - 1, -1, -1):
        edge = decode_token(vector[j], j, params)
        if edge is not None:
            return (edge[0], edge[1], j)
    return None


def vector_indicates_no_outgoing(vector: Sequence[int]) -> bool:
    """Level 0 XORs *all* outgoing edges; a zero there means (whp, by the
    32-bit checksums) the fragment has no outgoing edge at all."""
    return vector[0] == 0


def default_levels(n: int) -> int:
    """Enough levels to isolate one edge among up to n^2 whp."""
    return max(4, 2 * max(n, 2).bit_length() + 4)
