"""Engine-regression gate: diff a fresh sweep against BENCH_engine.json.

The committed ``BENCH_engine.json`` is the repo's perf-and-determinism
reference.  This script re-runs the reference sweep and compares:

* **exact** — ``messages`` and ``rounds`` per cell key must match the
  committed baseline bit-for-bit (any engine change that moves a count
  on a fixed seed is a semantics change, not an optimization);
* **advisory** — per-cell ``wall_s`` is summarized as a speedup ratio
  and printed, never asserted (machines differ).

Run directly:

    PYTHONPATH=src python benchmarks/check_regression.py [--workers 4]

The fast tier runs the same comparison on the n=80 slice via the
``slow``-marked ``tests/test_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.experiments import bench_payload, run_sweep  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_engine.json")


def load_baseline(path: str = BASELINE_PATH) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def fresh_payload(workers: int = 0, sizes=None) -> dict:
    """Re-run the reference sweep (optionally restricted to ``sizes``)."""
    import bench_engine

    t0 = time.perf_counter()
    records: list[dict] = []
    for spec in bench_engine.SPECS:
        if sizes is not None:
            keep = tuple(s for s in spec.sizes if s in sizes)
            if not keep:
                continue
            spec = dataclasses.replace(spec, sizes=keep)
        records += run_sweep(spec, store=None, workers=workers)
    return bench_payload(records, wall_s=time.perf_counter() - t0)


def compare(baseline: dict, fresh: dict) -> dict:
    """Cell-by-cell diff of two bench payloads.

    Returns shared-cell count, exact mismatches on messages/rounds,
    baseline cells absent from the fresh run, and the advisory wall-clock
    ratio over the shared cells.
    """
    base_cells = {c["key"]: c for c in baseline["cells"]}
    fresh_cells = {c["key"]: c for c in fresh["cells"]}
    shared = sorted(set(base_cells) & set(fresh_cells))
    mismatches = []
    for key in shared:
        b, f = base_cells[key], fresh_cells[key]
        for field in ("messages", "rounds"):
            if b[field] != f[field]:
                mismatches.append(
                    f"{key}: {field} {b[field]} -> {f[field]}"
                )
    base_wall = sum(base_cells[k]["wall_s"] for k in shared)
    fresh_wall = sum(fresh_cells[k]["wall_s"] for k in shared)
    return {
        "shared": len(shared),
        "mismatches": mismatches,
        "missing": sorted(set(base_cells) - set(fresh_cells)),
        "wall_baseline_s": round(base_wall, 3),
        "wall_fresh_s": round(fresh_wall, 3),
        "wall_ratio": round(fresh_wall / base_wall, 3) if base_wall else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument(
        "--scheduler", default=None, choices=("rounds", "columnar"),
        help="run the fresh sweep under this synchronous scheduler "
             "(via REPRO_SCHEDULER, inherited by pool workers); counts "
             "must still match the committed baseline bit-for-bit — "
             "that identity is the columnar parity contract",
    )
    args = parser.parse_args(argv)

    if args.scheduler:
        os.environ["REPRO_SCHEDULER"] = args.scheduler
    baseline = load_baseline(args.baseline)
    fresh = fresh_payload(workers=args.workers)
    result = compare(baseline, fresh)

    print(f"shared cells: {result['shared']}")
    print(f"wall (shared): baseline {result['wall_baseline_s']}s -> "
          f"fresh {result['wall_fresh_s']}s "
          f"(x{result['wall_ratio']}, advisory)")
    if result["missing"]:
        print(f"MISSING {len(result['missing'])} baseline cells: "
              f"{result['missing'][:5]}", file=sys.stderr)
    if result["mismatches"]:
        print(f"COUNT MISMATCHES ({len(result['mismatches'])}):",
              file=sys.stderr)
        for line in result["mismatches"][:20]:
            print(f"  {line}", file=sys.stderr)
    if result["missing"] or result["mismatches"]:
        return 1
    print("OK: messages/rounds identical on every shared cell")
    return 0


if __name__ == "__main__":
    sys.exit(main())
