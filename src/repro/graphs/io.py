"""Edge-list I/O: run the algorithms on real-world graphs.

The format is the lingua franca of graph repositories (SNAP, Network
Repository, KONECT): one edge per line, two whitespace-separated vertex
labels, ``#`` or ``%`` comment lines.  ``load_edge_list`` maps arbitrary
labels to the contiguous ``0..n-1`` vertex ids the simulator uses —
deterministically, so the same file always yields the same
:class:`~repro.graphs.core.Graph` and seeded runs on it reproduce.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import ReproError
from repro.graphs.core import Graph


def parse_edge_list(lines: Iterable[str],
                    source: str = "<edge list>") -> Graph:
    """Build a graph from edge-list lines.

    * ``#``- or ``%``-prefixed lines and blank lines are skipped.
    * The first two whitespace-separated columns are the endpoints;
      extra columns (weights, timestamps) are ignored.
    * Self-loops are skipped (the CONGEST model has no self-channels);
      duplicate edges collapse (the Graph is simple).
    * Labels map to contiguous ids deterministically: numerically when
      every label is an integer, lexicographically otherwise — the order
      the file lists edges in never changes the built graph.
    """
    pairs: list[tuple[str, str]] = []
    labels: set[str] = set()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        cols = line.split()
        if len(cols) < 2:
            raise ReproError(
                f"{source}:{lineno}: expected two vertex labels, "
                f"got {line!r}"
            )
        u, v = cols[0], cols[1]
        if u == v:
            continue
        pairs.append((u, v))
        labels.add(u)
        labels.add(v)
    if not labels:
        raise ReproError(f"{source}: no edges found")
    try:
        ordered = sorted(labels, key=int)
    except ValueError:
        ordered = sorted(labels)
    index = {label: i for i, label in enumerate(ordered)}
    return Graph(len(ordered), [(index[u], index[v]) for u, v in pairs])


def load_edge_list(path: str) -> Graph:
    """Read an edge-list file (see :func:`parse_edge_list`)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return parse_edge_list(fh, source=path)
    except OSError as exc:
        raise ReproError(f"cannot read edge list {path}: {exc}")


def save_edge_list(graph: Graph, path: str,
                   header: Optional[str] = None) -> None:
    """Write ``graph`` as an edge list (round-trips through the loader)."""
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for u, v in sorted(graph.edges()):
            fh.write(f"{u} {v}\n")
