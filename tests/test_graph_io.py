"""Edge-list I/O: deterministic label mapping and round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.graphs.generators import connected_gnp_graph
from repro.graphs.io import load_edge_list, parse_edge_list, save_edge_list


def test_parse_skips_comments_blanks_selfloops_and_extras():
    g = parse_edge_list([
        "# SNAP-style comment",
        "% KONECT-style comment",
        "",
        "0 1 7.5 1999",       # extra columns ignored
        "1 2",
        "2 2",                # self-loop skipped
        "2 0",
    ])
    assert g.n == 3
    assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]


def test_duplicate_edges_collapse():
    g = parse_edge_list(["0 1", "1 0", "0 1"])
    assert g.m == 1


def test_integer_labels_sort_numerically():
    """'10' must map above '2' — numeric order, not string order — so
    files listing vertices 0..n-1 keep their natural ids."""
    g = parse_edge_list(["2 10", "0 2"])
    # labels 0, 2, 10 -> ids 0, 1, 2
    assert g.n == 3
    assert sorted(g.edges()) == [(0, 1), (1, 2)]


def test_string_labels_sort_lexicographically():
    g = parse_edge_list(["carol alice", "alice bob"])
    # alice=0, bob=1, carol=2
    assert sorted(g.edges()) == [(0, 1), (0, 2)]


def test_mapping_is_independent_of_line_order():
    a = parse_edge_list(["a b", "b c", "c d"])
    b = parse_edge_list(["c d", "a b", "b c"])
    assert a == b


def test_malformed_and_empty_inputs_fail_loudly():
    with pytest.raises(ReproError):
        parse_edge_list(["0"])
    with pytest.raises(ReproError):
        parse_edge_list(["# nothing but comments"])
    with pytest.raises(ReproError):
        load_edge_list("/nonexistent/edges.txt")


def test_save_load_round_trip(tmp_path):
    g = connected_gnp_graph(30, 0.2, seed=3)
    path = str(tmp_path / "g.txt")
    save_edge_list(g, path, header="gnp n=30 p=0.2 seed=3")
    assert load_edge_list(path) == g
    with open(path, encoding="utf-8") as fh:
        assert fh.readline().startswith("# ")
