"""The KT-rho CONGEST simulator.

The model (paper Section 1.4.1): a synchronous message-passing network on a
graph G = (V, E); nodes carry unique IDs from a poly(n) space; each round a
node may send an O(log n)-bit message to each neighbor.  KT-rho initial
knowledge gives every node the IDs within rho hops and the neighborhoods of
nodes within rho - 1 hops.

This package provides:

* :class:`~repro.congest.network.SyncNetwork` — the synchronous round
  engine with message/round accounting and staged protocol composition;
* :class:`~repro.congest.async_network.AsyncNetwork` — the asynchronous
  event-driven engine (Section 3.1.1), auto-wrapping round-cadence
  algorithms in the alpha-synchronizer (Theorem A.5);
* :mod:`~repro.congest.runtime` — the shared runtime core: pluggable
  delivery :class:`~repro.congest.runtime.Scheduler` implementations
  (synchronous rounds, event-driven) and seeded latency models;
* :class:`~repro.congest.ids.OpaqueId` — a machine-checked version of the
  comparison-based discipline (Section 1.4.2);
* utilized-edge tracking per Definition 2.3 and execution traces with
  decoded representations per Definitions 2.1-2.2.
"""

from repro.congest.ids import NodeId, OpaqueId, IdAssignment, id_value
from repro.congest.message import Envelope, Msg, payload_words
from repro.congest.knowledge import KTKnowledge, build_knowledge
from repro.congest.metrics import MessageStats, StageStats
from repro.congest.node import NodeAlgorithm, Context
from repro.congest.network import SyncNetwork, StageResult
from repro.congest.runtime import (
    LATENCY_MODELS,
    EventScheduler,
    LatencyModel,
    RoundScheduler,
    Scheduler,
    make_latency_model,
)
from repro.congest.trace import ExecutionTrace, TraceEvent, traces_similar
from repro.congest.inspect import NetworkInspector

__all__ = [
    "LATENCY_MODELS",
    "EventScheduler",
    "LatencyModel",
    "RoundScheduler",
    "Scheduler",
    "make_latency_model",
    "NodeId",
    "OpaqueId",
    "IdAssignment",
    "id_value",
    "Envelope",
    "Msg",
    "payload_words",
    "KTKnowledge",
    "build_knowledge",
    "MessageStats",
    "StageStats",
    "NodeAlgorithm",
    "Context",
    "SyncNetwork",
    "StageResult",
    "ExecutionTrace",
    "TraceEvent",
    "traces_similar",
    "NetworkInspector",
]
