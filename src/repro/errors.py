"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelViolationError(ReproError):
    """An algorithm violated a rule of the CONGEST KT-rho model.

    Examples: sending to a node whose ID is not locally known, or sending
    a payload that cannot be encoded in the allowed number of words.
    """


class ComparisonDisciplineError(ModelViolationError):
    """A comparison-based algorithm performed a non-comparison operation
    on an ID-type variable (see Section 1.4.2 of the paper)."""


class UnknownNeighborError(ModelViolationError):
    """A node attempted to address a message to an ID outside its
    initial knowledge plus learned IDs."""


class ProtocolError(ReproError):
    """An algorithm reached an internally inconsistent state (a bug in a
    protocol implementation, not a model violation)."""


class SynchronizerBudgetError(ProtocolError):
    """The alpha-synchronizer's round budget T expired before the inner
    algorithm finished.  Distinct from a generic protocol bug because a
    too-small budget is a *recoverable* condition: the caller can retry
    with a larger T (what the api layer does when an asynchronous
    execution legitimately diverges from the shadow run that recorded
    the budgets — e.g. a different elected broadcast root)."""


class DistributedError(ReproError):
    """A failure in the distributed sweep layer (coordinator/worker
    communication): a lost connection, a malformed protocol message, or
    a sweep that could not be completed by the connected workers."""


class ProtocolMismatchError(DistributedError):
    """Coordinator and worker speak different protocol versions.

    The wire format is versioned precisely so that a newer coordinator
    *rejects* an older worker (and vice versa) instead of silently
    pooling records produced under different conventions."""


class ServingError(ReproError):
    """A failure in the query-serving layer (``repro serve`` /
    ``repro query``): an unreachable or unresponsive server, a broken
    connection mid-query, or an invalid serving configuration."""


class VerificationError(ReproError):
    """A produced output (coloring / MIS / tree) failed verification."""


class ConvergenceError(ReproError):
    """A protocol failed to terminate within its round budget."""
