#!/usr/bin/env python3
"""Frequency assignment on a dense interference graph.

Scenario: radio cells in a metropolitan deployment interfere with many
near neighbors — an interference graph with m >> n^1.5.  Each cell must
pick a frequency distinct from all interferers ((Δ+1)-coloring), but the
control channel used for coordination is slow and billed per message, so
the operator wants the assignment negotiated with as little chatter as
possible.

We model the deployment as a random geometric-flavored power-law + Gnp
mixture, and compare three distributed protocols end to end:

* Algorithm 1 — Õ(n^1.5) messages, (Δ+1) frequencies;
* Algorithm 2 — Õ(n/ε²) messages if 25% extra spectrum is available
  ((1+ε)Δ frequencies with ε = 0.25);
* the classical trial-coloring baseline — Ω(m) messages.

Run:  python examples/frequency_assignment.py
"""

from repro import api
from repro.graphs.core import Graph
from repro.graphs.generators import connected_gnp_graph, power_law_graph


def interference_graph(n: int, seed: int) -> Graph:
    """Dense urban core (Gnp) + a power-law backhaul overlay."""
    core = connected_gnp_graph(n, 0.3, seed=seed)
    overlay = power_law_graph(n, attachment=3, seed=seed + 1)
    return Graph(n, list(core.edges()) + list(overlay.edges()))


def main() -> None:
    graph = interference_graph(360, seed=11)
    delta = graph.max_degree()
    print(f"interference graph: n={graph.n}, m={graph.m}, Δ={delta}")

    runs = {
        "Algorithm 1  (Δ+1 frequencies)": api.color_graph(
            graph, method="kt1-delta-plus-one", seed=21),
        "Algorithm 2  (1.5Δ frequencies)": api.color_graph(
            graph, method="kt1-eps-delta", epsilon=0.5, seed=22),
        "baseline     (Δ+1, Ω(m) messages)": api.color_graph(
            graph, method="baseline-trial", seed=23),
    }

    print(f"\n{'protocol':38} {'messages':>9} {'msgs/edge':>10} "
          f"{'frequencies':>12} {'spectrum bound':>15}")
    for name, result in runs.items():
        assert result.valid, name
        print(f"{name:38} {result.messages:>9} "
              f"{result.messages_per_edge:>10.2f} "
              f"{result.num_colors:>12} {result.palette_bound:>15}")

    a1 = runs["Algorithm 1  (Δ+1 frequencies)"]
    a2 = runs["Algorithm 2  (1.5Δ frequencies)"]
    base = runs["baseline     (Δ+1, Ω(m) messages)"]
    print(f"\ntakeaway: with no extra spectrum, Algorithm 1 saves "
          f"{100 * (1 - a1.messages / base.messages):.0f}% of control "
          f"traffic;")
    print(f"granting 50% spectrum slack (Algorithm 2, Õ(n/ε²) messages) "
          f"saves {100 * (1 - a2.messages / base.messages):.0f}% — and "
          f"its advantage grows with n, since its cost barely depends "
          f"on m at all.")


if __name__ == "__main__":
    main()
