"""T3.8 / L3.5 / L3.7 — Algorithm 2's message scaling in n and epsilon.

Theorem 3.8: (1+eps)Delta coloring with O(n log^3 n / eps^2) messages.
Two sweeps: messages vs n at fixed eps (near-linear growth, insensitive
to m), and messages vs eps at fixed n (growing as eps shrinks).  The
query traffic — the part Lemma 3.7 bounds by O(log^2 n / eps) per node —
is reported separately from the substrate (spanning tree + broadcast).
"""

import pytest

from repro.congest.network import SyncNetwork
from repro.coloring.algorithm2 import run_algorithm2
from repro.coloring.verify import check_color_bound, check_proper_coloring
from repro.graphs.generators import connected_gnp_graph

from _util import fit_exponent, fmt, print_table

SEED = 44


def test_algorithm2_scaling_in_n(benchmark):
    def sweep():
        rows = []
        for n in (120, 200, 340, 520):
            g = connected_gnp_graph(n, 0.3, seed=SEED + n)
            net = SyncNetwork(g, seed=SEED)
            r = run_algorithm2(net, epsilon=0.5, seed=SEED + 1)
            check_proper_coloring(g, r.colors)
            check_color_bound(r.colors, r.palette_size)
            rows.append({
                "n": n, "m": g.m, "msgs": r.messages,
                "queries": r.query_messages, "phases": r.phases,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    msg_exp = fit_exponent([(r["n"], r["msgs"]) for r in rows])
    m_exp = fit_exponent([(r["n"], r["m"]) for r in rows])
    print_table(
        "T3.8: Algorithm 2 messages by n (eps = 0.5)",
        ["n", "m", "messages", "queries", "phases", "msgs/m"],
        [(r["n"], r["m"], r["msgs"], r["queries"], r["phases"],
          fmt(r["msgs"] / r["m"])) for r in rows],
    )
    print(f"fitted exponents: messages ~ n^{msg_exp:.2f}, m ~ n^{m_exp:.2f}")
    benchmark.extra_info["message_exponent"] = msg_exp
    # Õ(n): message exponent well below the edge-count exponent.
    assert msg_exp < m_exp - 0.4
    assert msg_exp < 1.6


def test_algorithm2_scaling_in_epsilon(benchmark):
    """The epsilon ablation, riding ``run_cell`` instead of a hand-rolled
    loop: one Cell per epsilon, with the Lemma 3.7 quantities surfaced as
    method extras (``queries`` / ``phases`` / ``palette``)."""
    from repro.experiments import Cell, run_cell

    n = 260

    def sweep():
        rows = []
        for eps in (1.0, 0.5, 0.25):
            rec = run_cell(Cell("gnp", n, SEED, "kt1-eps-delta",
                                density=0.3, epsilon=eps))
            assert rec["valid"], rec["key"]
            rows.append({
                "eps": eps, "msgs": rec["messages"],
                "queries": rec["queries"],
                "phases": rec["phases"], "palette": rec["palette"],
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"T3.8: Algorithm 2 messages by eps (n = {n})",
        ["eps", "messages", "queries", "phases", "palette"],
        [(r["eps"], r["msgs"], r["queries"], r["phases"], r["palette"])
         for r in rows],
    )
    benchmark.extra_info["rows"] = [
        {k: v for k, v in r.items()} for r in rows
    ]
    # Tighter eps -> more phases, more bits, more messages.
    msgs = [r["msgs"] for r in rows]
    assert msgs == sorted(msgs)
    phases = [r["phases"] for r in rows]
    assert phases == sorted(phases)


def test_algorithm2_per_node_queries_lemma_3_7(benchmark):
    """Per-node query counts stay polylogarithmic (Lemma 3.7)."""
    n = 300

    def run():
        g = connected_gnp_graph(n, 0.4, seed=SEED + 5)
        net = SyncNetwork(g, seed=SEED)
        r = run_algorithm2(net, epsilon=0.5, seed=SEED + 3)
        check_proper_coloring(g, r.colors)
        # recover per-node query counts from the stage outputs
        stage = [s for s in net.stats.stages if s.name.endswith("color")][0]
        return r, stage

    r, stage = benchmark.pedantic(run, rounds=1, iterations=1)
    logn = max(4, n.bit_length())
    bound = 8 * logn * logn / 0.5
    per_node_avg = r.query_messages / n
    print(f"\nL3.7: avg queries+replies per node = {per_node_avg:.2f}, "
          f"whp bound O(log^2 n / eps) ~ {bound:.0f}")
    benchmark.extra_info["avg_queries_per_node"] = per_node_avg
    assert per_node_avg <= bound
