"""Query-service tests: degraded fallbacks, supervised solves (fake
process seam), admission control, the cache, the wire protocol, CLI
verbs, and the examples as clients.

The deterministic races — deadline expiry, child crashes, retry
exhaustion, cancellation — are driven through ``QueryServer``'s
``spawn`` seam with scripted process/pipe fakes (the serving twin of
``test_chaos.py``'s farm fakes); real-subprocess SIGKILL/SIGTERM
scenarios live in ``benchmarks/chaos_smoke.py``, driven end to end by
the slow-marked test at the bottom.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import cli, serving
from repro.coloring.verify import check_proper_coloring
from repro.errors import ProtocolMismatchError, ReproError, ServingError
from repro.experiments.distributed import recv_msg, send_msg
from repro.graphs.core import Graph
from repro.graphs.generators import connected_gnp_graph, family_graph
from repro.mis.verify import check_mis
from repro.serving import (
    PROTOCOL,
    PROTOCOL_VERSION,
    QueryServer,
    ServeClient,
    build_query,
    degraded_answer,
    fetch_serve_status,
    greedy_coloring,
    greedy_mis,
    query_once,
    request_fingerprint,
    supervised_solve,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# -- scripted solver fakes ----------------------------------------------------


class _FakeProc:
    exitcode = 0
    pid = 4242

    def __init__(self, alive=True):
        self.alive = alive
        self.terminated = False

    def is_alive(self):
        return self.alive and not self.terminated

    def terminate(self):
        self.terminated = True

    def join(self, timeout=None):
        pass


class _ScriptedConn:
    """A result pipe that answers ``polls`` times 'not yet' and then
    (optionally) yields ``record``; ``record=None`` models a child that
    died without sending."""

    def __init__(self, polls, record):
        self._polls = polls
        self._record = record

    def poll(self, timeout=0):
        if self._polls > 0:
            self._polls -= 1
            if timeout:
                time.sleep(min(timeout, 0.005))
            return False
        return self._record is not None

    def recv(self):
        return dict(self._record)

    def close(self):
        pass


def _spawn_script(script):
    """A spawn seam fake that pops scripted (proc, conn) pairs."""
    queue = list(script)

    def spawn(problem, method, graph, seed, epsilon):
        return queue.pop(0)

    return spawn


def _ok_record():
    return {"status": "ok", "valid": True, "messages": 10, "rounds": 2,
            "colors": [0, 1], "num_colors": 2, "palette_bound": 2}


def _hung():
    """A healthy child that never finishes (deadline fodder)."""
    return _FakeProc(), _ScriptedConn(10 ** 9, None)


def _dead():
    """A child that dies without ever sending a record."""
    return _FakeProc(alive=False), _ScriptedConn(0, None)


def _finishes(after_polls=0, record=None):
    return (_FakeProc(),
            _ScriptedConn(after_polls, record or _ok_record()))


# -- degraded-mode fallbacks --------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3, 9])
def test_greedy_coloring_is_proper_and_within_palette(seed):
    g = connected_gnp_graph(40, 0.2, seed=seed)
    colors = greedy_coloring(g)
    check_proper_coloring(g, colors)
    assert max(colors) < g.max_degree() + 1


@pytest.mark.parametrize("seed", [0, 3, 9])
def test_greedy_mis_is_maximal_independent(seed):
    g = connected_gnp_graph(40, 0.25, seed=seed)
    check_mis(g, greedy_mis(g))


def test_degraded_answer_shapes():
    g = connected_gnp_graph(25, 0.3, seed=1)
    c = degraded_answer("coloring", g)
    assert c["valid"] and len(c["colors"]) == g.n
    m = degraded_answer("mis", g)
    assert m["valid"] and m["mis_size"] == sum(m["in_mis"])


# -- fingerprints and request building ----------------------------------------


def test_fingerprint_is_spelling_independent():
    """Inline edges and a generated family denoting the same graph hash
    to the same cache key."""
    g = family_graph("gnp", 30, p=0.2, seed=4)
    again = Graph(g.n, list(g.edges()))
    assert (request_fingerprint("coloring", "luby", 0, 0.5, g)
            == request_fingerprint("coloring", "luby", 0, 0.5, again))


def test_fingerprint_separates_parameters():
    g = family_graph("gnp", 30, p=0.2, seed=4)
    base = request_fingerprint("coloring", "kt1-delta-plus-one", 0, 0.5, g)
    assert request_fingerprint("mis", "kt1-delta-plus-one", 0, 0.5, g) != base
    assert request_fingerprint("coloring", "baseline-trial", 0, 0.5, g) != base
    assert request_fingerprint("coloring", "kt1-delta-plus-one", 1, 0.5, g) != base
    assert request_fingerprint("coloring", "kt1-delta-plus-one", 0, 0.25, g) != base


def test_build_query_requires_a_graph_source():
    with pytest.raises(ServingError):
        build_query("coloring")


def test_build_query_defaults_methods_per_problem():
    q = build_query("coloring", edges=[(0, 1)])
    assert q["method"] == "kt1-delta-plus-one"
    q = build_query("mis", edges=[(0, 1)])
    assert q["method"] == "kt2-sampled-greedy"


# -- supervised solves (the spawn seam) ---------------------------------------


def test_supervised_solve_happy_path():
    outcome, record = supervised_solve(
        "coloring", "luby", None, 0, 0.5,
        deadline=time.monotonic() + 5, spawn=_spawn_script([_finishes()]))
    assert outcome == "ok"
    assert record["attempts"] == 1 and record["valid"]


def test_supervised_solve_deadline_kills_child():
    proc, conn = _hung()
    outcome, record = supervised_solve(
        "coloring", "luby", None, 0, 0.5,
        deadline=time.monotonic() + 0.05,
        spawn=_spawn_script([(proc, conn)]))
    assert (outcome, record) == ("deadline", None)
    assert proc.terminated


def test_supervised_solve_cancel_event_kills_child():
    cancel = threading.Event()
    cancel.set()
    proc, conn = _hung()
    outcome, _ = supervised_solve(
        "coloring", "luby", None, 0, 0.5,
        deadline=time.monotonic() + 60, cancel=cancel,
        spawn=_spawn_script([(proc, conn)]))
    assert outcome == "deadline"
    assert proc.terminated


def test_supervised_solve_retries_a_crashed_child_once():
    outcome, record = supervised_solve(
        "coloring", "luby", None, 0, 0.5,
        deadline=time.monotonic() + 5,
        spawn=_spawn_script([_dead(), _finishes()]))
    assert outcome == "ok"
    assert record["attempts"] == 2


def test_supervised_solve_reports_crash_after_retry_exhaustion():
    outcome, record = supervised_solve(
        "coloring", "luby", None, 0, 0.5,
        deadline=time.monotonic() + 5,
        spawn=_spawn_script([_dead(), _dead()]))
    assert (outcome, record) == ("crashed", None)


def test_supervised_solve_passes_child_error_through():
    err = {"status": "error", "error": "ReproError('boom')",
           "retriable": False}
    outcome, record = supervised_solve(
        "coloring", "luby", None, 0, 0.5,
        deadline=time.monotonic() + 5,
        spawn=_spawn_script([_finishes(record=err)]))
    assert outcome == "ok"
    assert record["status"] == "error" and not record["retriable"]


def test_supervised_solve_reports_child_pids():
    seen = []
    supervised_solve(
        "coloring", "luby", None, 0, 0.5,
        deadline=time.monotonic() + 5, on_child=seen.append,
        spawn=_spawn_script([_finishes()]))
    assert seen == [4242, None]


# -- the server's query path (handle_query, no sockets) -----------------------


def _query(n=20, seed=0, problem="coloring", **extra):
    g = connected_gnp_graph(n, 0.3, seed=seed)
    msg = build_query(problem, edges=g.edges(), n=g.n, seed=seed)
    msg.update(extra)
    return msg


def test_deadline_yields_valid_degraded_answer():
    server = QueryServer(spawn=_spawn_script([_hung()]))
    resp = server.handle_query(_query(deadline_s=0.05))
    assert resp["status"] == "ok" and resp["degraded"]
    assert resp["messages"] is None
    g = connected_gnp_graph(20, 0.3, seed=0)
    check_proper_coloring(g, resp["colors"])
    assert server.stats.degraded == 1


def test_degraded_mis_answer_is_verified_too():
    server = QueryServer(spawn=_spawn_script([_hung()]))
    resp = server.handle_query(_query(problem="mis", deadline_s=0.05))
    assert resp["degraded"]
    check_mis(connected_gnp_graph(20, 0.3, seed=0), resp["in_mis"])


def test_crash_yields_structured_error_and_server_survives():
    server = QueryServer(
        spawn=_spawn_script([_dead(), _dead(), _finishes()]))
    resp = server.handle_query(_query())
    assert resp["type"] == "error" and resp["retriable"]
    assert server.stats.errors == 1
    # the next query runs normally — a dead child never kills serving
    resp = server.handle_query(_query(seed=1))
    assert resp["status"] == "ok" and not resp["degraded"]


def test_one_crash_then_success_is_transparent():
    server = QueryServer(spawn=_spawn_script([_dead(), _finishes()]))
    resp = server.handle_query(_query())
    assert resp["status"] == "ok" and resp["attempts"] == 2
    assert server.stats.retries == 1


def test_child_error_record_is_not_retried():
    err = {"status": "error", "error": "ReproError('diverged')",
           "retriable": False}
    server = QueryServer(spawn=_spawn_script([_finishes(record=err)]))
    resp = server.handle_query(_query())
    assert resp["type"] == "error" and not resp["retriable"]
    assert "diverged" in resp["error"]


def test_cache_hit_bypasses_solver():
    server = QueryServer(spawn=_spawn_script([_finishes()]))
    first = server.handle_query(_query())
    assert not first["cached"]
    # no second scripted child exists: a hit must not spawn one
    second = server.handle_query(_query())
    assert second["cached"] and second["num_colors"] == first["num_colors"]
    assert server.stats.cache_hits == 1


def test_cache_is_lru_bounded():
    server = QueryServer(
        cache_size=1,
        spawn=_spawn_script([_finishes(), _finishes(), _finishes()]))
    server.handle_query(_query(seed=0))
    server.handle_query(_query(seed=1))    # evicts seed=0
    assert server.status_snapshot()["cache_entries"] == 1
    resp = server.handle_query(_query(seed=0))   # third scripted child
    assert not resp["cached"]


def test_degraded_answers_are_never_cached():
    server = QueryServer(spawn=_spawn_script([_hung(), _finishes()]))
    first = server.handle_query(_query(deadline_s=0.05))
    assert first["degraded"]
    second = server.handle_query(_query())
    assert not second["cached"] and not second["degraded"]


def test_flood_past_max_pending_sheds():
    server = QueryServer(solvers=1, max_pending=1,
                         spawn=_spawn_script([_hung(), _hung()]))
    results = []
    threads = [
        threading.Thread(
            target=lambda s: results.append(
                server.handle_query(_query(seed=s, deadline_s=0.6))),
            args=(s,))
        for s in (0, 1)
    ]
    for t in threads:
        t.start()
    # wait for both to be admitted (solvers + max_pending = 2)
    for _ in range(200):
        if server.status_snapshot()["in_flight"] == 2:
            break
        time.sleep(0.01)
    shed = server.handle_query(_query(seed=2))
    assert shed["type"] == "overloaded" and not shed["draining"]
    assert shed["retry_after_s"] > 0
    for t in threads:
        t.join(5)
    assert server.stats.shed == 1
    # the two admitted queries still got (degraded) answers
    assert all(r["status"] == "ok" for r in results)


def test_draining_server_refuses_new_queries():
    server = QueryServer(spawn=_spawn_script([]))
    server._draining.set()
    resp = server.handle_query(_query())
    assert resp["type"] == "overloaded" and resp["draining"]


@pytest.mark.parametrize("bad,fragment", [
    ({"problem": "tsp"}, "unknown problem"),
    ({"method": "quantum"}, "unknown coloring method"),
    ({"deadline_s": -1}, "deadline_s"),
])
def test_invalid_queries_get_structured_errors(bad, fragment):
    server = QueryServer(spawn=_spawn_script([]))
    resp = server.handle_query(_query(**bad))
    assert resp["type"] == "error" and not resp["retriable"]
    assert fragment in resp["error"]


def test_disconnected_graph_is_rejected_up_front():
    server = QueryServer(spawn=_spawn_script([]))
    msg = build_query("coloring", edges=[(0, 1), (2, 3)])
    resp = server.handle_query(msg)
    assert resp["type"] == "error" and "not connected" in resp["error"]


def test_server_config_validation():
    with pytest.raises(ServingError):
        QueryServer(solvers=0)
    with pytest.raises(ServingError):
        QueryServer(max_pending=-1)


# -- the wire protocol (real sockets, real solver subprocesses) ---------------


@pytest.fixture()
def live_server():
    server = QueryServer(solvers=2, max_pending=4, deadline_s=20.0)
    host, port = server.start()
    yield host, port, server
    server.stop()


def test_round_trip_color_and_mis_over_sockets(live_server):
    host, port, _ = live_server
    g = connected_gnp_graph(30, 0.25, seed=2)
    with ServeClient(host, port) as client:
        c = client.color(g, seed=3)
        assert c.ok and c.valid and not c.degraded
        assert c.messages > 0 and c.num_colors <= c.palette_bound
        m = client.mis(g, method="luby", seed=3)
        assert m.ok and m.valid and m.size > 0
        # same connection, repeat query: served from cache
        again = client.color(g, seed=3)
        assert again.cached and again.num_colors == c.num_colors


def test_status_verb_reports_counters(live_server):
    host, port, _ = live_server
    g = connected_gnp_graph(25, 0.25, seed=1)
    with ServeClient(host, port) as client:
        client.color(g, seed=0)
        snap = client.status()
    assert snap["queries"] == 1 and snap["ok"] == 1
    assert snap["p50_ms"] is not None
    assert not snap["draining"]
    assert fetch_serve_status(host, port)["queries"] == 1


def test_version_skew_is_rejected(live_server):
    host, port, _ = live_server
    with socket.create_connection((host, port), timeout=5) as sock:
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                         "version": PROTOCOL_VERSION + 1})
        reply = recv_msg(rfile)
    assert reply["type"] == "reject"
    assert str(PROTOCOL_VERSION) in reply["reason"]


def test_client_raises_mismatch_on_reject():
    """A server speaking a newer protocol rejects; the client surfaces
    the dedicated mismatch error, not a generic failure."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def rejecting_server():
        conn, _ = listener.accept()
        rfile, wfile = conn.makefile("rb"), conn.makefile("wb")
        recv_msg(rfile)
        send_msg(wfile, {"type": "reject",
                         "reason": "protocol version skew"})
        conn.close()

    t = threading.Thread(target=rejecting_server, daemon=True)
    t.start()
    try:
        with pytest.raises(ProtocolMismatchError, match="skew"):
            ServeClient("127.0.0.1", port)
    finally:
        t.join(5)
        listener.close()


def test_wrong_protocol_handshake_is_rejected(live_server):
    host, port, _ = live_server
    with socket.create_connection((host, port), timeout=5) as sock:
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        send_msg(wfile, {"type": "hello", "protocol": "repro-sweep",
                         "version": 1})
        assert recv_msg(rfile)["type"] == "reject"


def test_malformed_line_drops_only_that_connection(live_server):
    host, port, _ = live_server
    with socket.create_connection((host, port), timeout=5) as sock:
        sock.sendall(b"this is not json\n")
        sock.settimeout(5)
        # server closes this connection (empty read), nothing more
        assert sock.makefile("rb").readline() == b""
    # ...and keeps serving everyone else
    g = connected_gnp_graph(20, 0.3, seed=0)
    with ServeClient(host, port) as client:
        assert client.color(g, method="baseline-rank-greedy").ok


def test_unknown_message_type_is_answered_not_fatal(live_server):
    host, port, _ = live_server
    with ServeClient(host, port) as client:
        send_msg(client._wfile, {"type": "gossip"})
        reply = recv_msg(client._rfile)
        assert reply["type"] == "error"
        assert "gossip" in reply["error"]
        assert client.status()["queries"] == 0


def test_concurrent_clients_all_get_valid_answers(live_server):
    host, port, _ = live_server
    results = []

    def one(seed):
        g = connected_gnp_graph(24, 0.3, seed=seed)
        with ServeClient(host, port) as client:
            results.append(client.mis(g, method="rank-greedy", seed=seed))

    threads = [threading.Thread(target=one, args=(s,)) for s in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert len(results) == 4 and all(r.valid for r in results)


def test_client_reports_unreachable_server():
    with pytest.raises(ServingError, match="cannot reach"):
        ServeClient("127.0.0.1", 1)     # port 1: nothing listens


def test_drain_answers_inflight_then_refuses(live_server):
    host, port, server = live_server
    g = connected_gnp_graph(40, 0.3, seed=5)
    answers = []

    def slow_one():
        with ServeClient(host, port) as client:
            answers.append(client.query(build_query(
                "coloring", method="kt1-eps-delta", edges=g.edges(),
                n=g.n, seed=1)))

    t = threading.Thread(target=slow_one)
    t.start()
    # wait until the query is actually in flight, then drain
    for _ in range(500):
        if server.status_snapshot()["in_flight"] > 0:
            break
        time.sleep(0.01)
    server.drain()
    with ServeClient(host, port) as client:
        refused = client.query(build_query(
            "coloring", edges=g.edges(), n=g.n, seed=2))
    assert refused.status == "overloaded"
    assert refused.payload["draining"]
    t.join(30)
    assert len(answers) == 1 and answers[0].ok
    assert server.wait(timeout=30)


# -- graph sources over the wire ----------------------------------------------


def test_graph_file_queries(tmp_path, live_server):
    host, port, _ = live_server
    from repro.graphs.io import save_edge_list

    g = connected_gnp_graph(25, 0.3, seed=6)
    path = str(tmp_path / "g.txt")
    save_edge_list(g, path)
    result = query_once(host, port,
                        build_query("mis", method="luby",
                                    graph_file=path, seed=2))
    assert result.ok and result.valid
    missing = query_once(host, port,
                         build_query("coloring",
                                     graph_file=str(tmp_path / "no.txt")))
    assert missing.status == "error"


def test_family_queries(live_server):
    host, port, _ = live_server
    result = query_once(host, port,
                        build_query("coloring", family="gnp", n=25,
                                    p=0.3, graph_seed=3, seed=1,
                                    method="baseline-rank-greedy"))
    assert result.ok and result.valid


# -- CLI verbs ----------------------------------------------------------------


def test_cli_query_and_serve_status(live_server, capsys):
    host, port, _ = live_server
    rc = cli.main(["query", "--connect", f"{host}:{port}",
                   "--problem", "coloring", "--n", "24", "--p", "0.3",
                   "--method", "baseline-rank-greedy", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "ok" and payload["valid"]

    rc = cli.main(["serve-status", "--connect", f"{host}:{port}",
                   "--json"])
    assert rc == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["queries"] == 1 and snap["ok"] == 1


def test_cli_query_rejects_unknown_method(live_server, capsys):
    host, port, _ = live_server
    rc = cli.main(["query", "--connect", f"{host}:{port}",
                   "--problem", "mis", "--method", "quantum",
                   "--n", "20"])
    assert rc == 1
    assert "unknown mis method" in capsys.readouterr().err


def test_cli_query_unreachable_server_fails_cleanly(capsys):
    rc = cli.main(["query", "--connect", "127.0.0.1:1", "--n", "20"])
    assert rc == 1
    assert "cannot reach" in capsys.readouterr().err


# -- the examples as clients --------------------------------------------------


@pytest.mark.parametrize("script,token", [
    ("examples/frequency_assignment.py", "takeaway"),
    ("examples/wireless_mis_scheduling.py", "density"),
])
def test_examples_run_as_serve_clients(script, token, live_server):
    host, port, _ = live_server
    env = dict(os.environ,
               PYTHONPATH=os.path.join(REPO, "src")
               + os.pathsep + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, script), "--n", "60",
         "--connect", f"{host}:{port}"],
        capture_output=True, text=True, timeout=300, env=env)
    assert proc.returncode == 0, proc.stderr
    assert token in proc.stdout


@pytest.mark.parametrize("script", [
    "examples/frequency_assignment.py",
    "examples/wireless_mis_scheduling.py",
])
def test_examples_still_run_standalone(script):
    env = dict(os.environ,
               PYTHONPATH=os.path.join(REPO, "src")
               + os.pathsep + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, script), "--n", "60"],
        capture_output=True, text=True, timeout=300, env=env)
    assert proc.returncode == 0, proc.stderr


# -- the full chaos scenario (real signals, real subprocesses) ----------------


@pytest.mark.slow
def test_chaos_smoke_serve_scenario(tmp_path):
    """Drive the serve chapter of benchmarks/chaos_smoke.py end to end:
    SIGKILL a solver child mid-request, an unmeetable deadline, a flood
    past --max-pending, then SIGTERM."""
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "benchmarks",
                                      "chaos_smoke.py"),
         "--workdir", str(tmp_path), "--only", "serve"],
        capture_output=True, text=True, timeout=600,
        env=dict(os.environ,
                 PYTHONPATH=os.path.join(REPO, "src") + os.pathsep
                 + os.environ.get("PYTHONPATH", "")),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "CHAOS OK" in proc.stdout
