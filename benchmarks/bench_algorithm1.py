"""T3.3 / L3.1 / L3.2 — Algorithm 1's message and round scaling.

Theorem 3.3: Õ(n^1.5) messages and Õ(D + sqrt n) rounds, i.e. o(m) on
dense graphs.  We sweep n at fixed edge density (deg ~ n/4, so
m = Theta(n^2) >> n^1.5), fit the message growth exponent, and compare
with the Ω(m)-message baseline's exponent (~2).  Lemma 3.2's O(1)
recursion depth is recorded per run.
"""

import pytest

from repro.congest.network import SyncNetwork
from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.verify import check_proper_coloring
from repro.experiments import Cell, run_cell
from repro.graphs.generators import connected_gnp_graph

from _util import fit_exponent, fmt, print_table

SIZES = (120, 200, 340, 560)
DENSITY = 0.25
SEED = 33


def _sweep():
    """The scaling sweep, via ``experiments.run_cell``.

    ``run_cell`` verifies outputs and surfaces the paper-specific detail
    columns (Lemma 3.2 recursion ``levels``, ``deferred`` counts) as
    method-specific extras in the record, so this benchmark no longer
    hand-rolls its network construction and bookkeeping.
    """
    rows = []
    for n in SIZES:
        alg1 = run_cell(Cell("gnp", n, SEED, "kt1-delta-plus-one",
                             density=DENSITY))
        base = run_cell(Cell("gnp", n, SEED, "baseline-trial",
                             density=DENSITY))
        assert alg1["valid"] and base["valid"]
        rows.append({
            "n": n,
            "m": alg1["m"],
            "alg1": alg1["messages"],
            "baseline": base["messages"],
            "rounds": alg1["rounds"],
            "levels": alg1["levels"],
            "deferred": alg1["deferred"],
        })
    return rows


def test_algorithm1_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    alg_pts = [(r["n"], r["alg1"]) for r in rows]
    base_pts = [(r["n"], r["baseline"]) for r in rows]
    m_pts = [(r["n"], r["m"]) for r in rows]
    alg_exp = fit_exponent(alg_pts)
    base_exp = fit_exponent(base_pts)
    m_exp = fit_exponent(m_pts)

    print_table(
        "T3.3: Algorithm 1 vs baseline, messages by n (m = Θ(n²))",
        ["n", "m", "alg1 msgs", "baseline msgs", "ratio", "rounds",
         "levels", "deferred"],
        [
            (r["n"], r["m"], r["alg1"], r["baseline"],
             fmt(r["alg1"] / r["baseline"]), r["rounds"], r["levels"],
             r["deferred"])
            for r in rows
        ],
    )
    print(f"fitted exponents: alg1 ~ n^{alg_exp:.2f}, "
          f"baseline ~ n^{base_exp:.2f}, m ~ n^{m_exp:.2f}")
    benchmark.extra_info["alg1_exponent"] = alg_exp
    benchmark.extra_info["baseline_exponent"] = base_exp

    # Shape claims: the baseline tracks m (exponent ~2); Algorithm 1 stays
    # clearly sublinear in m and wins outright at the largest size.
    assert base_exp > 1.7
    assert alg_exp < base_exp - 0.25
    assert rows[-1]["alg1"] < 0.7 * rows[-1]["baseline"]
    # Lemma 3.2: O(1) recursion levels everywhere.
    assert all(r["levels"] <= 5 for r in rows)
    # Deferrals (the property-(ii) safety net) stay a small fraction.
    # Lemma 3.1 assumes Delta = omega(log^2 n); at benchmark scales
    # Delta/log^2 n is barely above 1, so ~5-10% slack violations are the
    # expected price — each is folded into the remnant and colored there,
    # so correctness is untouched (verified above).
    assert all(r["deferred"] <= max(6, 0.12 * r["n"]) for r in rows)


def test_algorithm1_o_of_m_crossover(benchmark):
    """Fixing n and growing m: Algorithm 1's cost must flatten."""
    n = 300

    def sweep_density():
        rows = []
        for p in (0.1, 0.25, 0.5, 0.75):
            g = connected_gnp_graph(n, p, seed=SEED + int(100 * p))
            net = SyncNetwork(g, seed=SEED)
            result = run_algorithm1(net, seed=SEED + 2)
            check_proper_coloring(g, result.colors)
            rows.append({"p": p, "m": g.m, "alg1": result.messages})
        return rows

    rows = benchmark.pedantic(sweep_density, rounds=1, iterations=1)
    print_table(
        "T3.3: Algorithm 1 messages vs m at fixed n=300",
        ["p", "m", "alg1 msgs", "msgs/m"],
        [(r["p"], r["m"], r["alg1"], fmt(r["alg1"] / r["m"])) for r in rows],
    )
    m_growth = rows[-1]["m"] / rows[0]["m"]
    msg_growth = rows[-1]["alg1"] / rows[0]["alg1"]
    print(f"m grew {m_growth:.1f}x, messages grew {msg_growth:.1f}x")
    benchmark.extra_info["m_growth"] = m_growth
    benchmark.extra_info["msg_growth"] = msg_growth
    assert msg_growth < 0.6 * m_growth
    # per-edge message cost strictly falls as the graph densifies
    per_edge = [r["alg1"] / r["m"] for r in rows]
    assert per_edge[-1] < per_edge[0]


def test_algorithm1_round_complexity(benchmark):
    """Õ(D + sqrt n) rounds: round growth far below linear."""

    def sweep_rounds():
        pts = []
        for n in (150, 300, 600):
            g = connected_gnp_graph(n, 0.2, seed=SEED + n)
            net = SyncNetwork(g, seed=SEED)
            result = run_algorithm1(net, seed=SEED + 3)
            pts.append((n, result.rounds))
        return pts

    pts = benchmark.pedantic(sweep_rounds, rounds=1, iterations=1)
    exp = fit_exponent(pts)
    print_table("T3.3: Algorithm 1 rounds by n",
                ["n", "rounds"], pts)
    print(f"fitted round exponent ~ n^{exp:.2f}")
    benchmark.extra_info["round_exponent"] = exp
    assert exp < 1.0
