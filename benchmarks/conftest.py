"""Make benchmarks/ importable as a script directory (for _util)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
