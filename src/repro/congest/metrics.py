"""Message-complexity accounting and utilized-edge tracking.

Message complexity is the quantity the whole paper is about; this module
is the measurement instrument.  It tracks:

* ``sends`` — logical send operations performed by algorithms;
* ``messages`` — charged CONGEST messages (a w-word payload costs
  ceil(w / words_per_message) messages);
* ``words`` — total Theta(log n)-bit words moved;
* ``rounds`` — synchronous rounds elapsed;
* ``utilized`` — the utilized edges of Definition 2.3: an edge {u, v} is
  utilized if (i) a message crosses it, (ii) u sends or receives phi(v), or
  (iii) v sends or receives phi(u).

Lemma 2.4 (utilized edges = O(message complexity)) becomes a checkable
invariant: each charged message contains at most O(1) IDs, so it can
utilize at most a constant number of edges; tests assert
``len(utilized) <= utilization_constant * messages``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageStats:
    """Accounting for a single protocol stage."""

    name: str
    sends: int = 0
    messages: int = 0
    words: int = 0
    rounds: int = 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "sends": self.sends,
            "messages": self.messages,
            "words": self.words,
            "rounds": self.rounds,
        }


class MessageStats:
    """Cumulative statistics for a network (across all stages)."""

    def __init__(self) -> None:
        self.sends = 0
        self.messages = 0
        self.words = 0
        self.rounds = 0
        self.utilized: set[tuple[int, int]] = set()
        self.stages: list[StageStats] = []
        #: charged messages per protocol tag (who is spending the budget)
        self.by_tag: dict[str, int] = {}
        #: charged messages per sender vertex (load distribution)
        self.by_sender: dict[int, int] = {}

    # -- charging ------------------------------------------------------------

    def charge_send(self, words: int, charged_messages: int,
                    tag: str = "", sender: int = -1) -> None:
        self.sends += 1
        self.words += words
        self.messages += charged_messages
        if tag:
            self.by_tag[tag] = self.by_tag.get(tag, 0) + charged_messages
        if sender >= 0:
            self.by_sender[sender] = (
                self.by_sender.get(sender, 0) + charged_messages
            )
        if self.stages:
            stage = self.stages[-1]
            stage.sends += 1
            stage.words += words
            stage.messages += charged_messages

    def charge_round(self) -> None:
        self.charge_rounds(1)

    def charge_rounds(self, count: int) -> None:
        self.rounds += count
        if self.stages:
            self.stages[-1].rounds += count

    def mark_utilized(self, u: int, v: int) -> None:
        self.utilized.add((u, v) if u < v else (v, u))

    # -- stage management ----------------------------------------------------

    def begin_stage(self, name: str) -> StageStats:
        stage = StageStats(name=name)
        self.stages.append(stage)
        return stage

    def stage_named(self, name: str) -> StageStats:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    @property
    def utilized_count(self) -> int:
        return len(self.utilized)

    def summary(self) -> dict:
        return {
            "sends": self.sends,
            "messages": self.messages,
            "words": self.words,
            "rounds": self.rounds,
            "utilized_edges": len(self.utilized),
            "stages": [s.as_dict() for s in self.stages],
        }

    def __repr__(self) -> str:
        return (
            f"MessageStats(messages={self.messages}, rounds={self.rounds}, "
            f"utilized={len(self.utilized)})"
        )
