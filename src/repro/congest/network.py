"""The synchronous KT-rho CONGEST engine.

One :class:`SyncNetwork` owns a graph, an ID assignment, the KT-rho
knowledge of every node, and cumulative :class:`MessageStats`.  Protocols
are executed as *stages* (:meth:`SyncNetwork.run`): each stage runs one
:class:`NodeAlgorithm` on every node until global quiescence (every node
has called ``ctx.done`` and no message is in flight).  Composite protocols
(Algorithm 1's danner -> leader election -> broadcast -> coloring pipeline)
are drivers that run several stages, feeding each node's stage output back
as its next stage input — a per-node handoff that never moves information
between nodes outside the message-passing model.

Accounting: every send is charged words (one word = Theta(log n) bits) and
``ceil(words / words_per_message)`` CONGEST messages; utilized edges follow
Definition 2.3 (see :mod:`repro.congest.metrics`).

Send path (hot): ``ctx.send`` / ``ctx.broadcast`` validate the receiver
and append raw entries to a per-round *outbox*; once per round the engine
flushes the outbox in submission order — analyzing each payload once
(with an LRU memo for small ID-free payloads), handing each envelope to
the network's :class:`~repro.congest.runtime.Scheduler` for delivery,
and accounting the whole round with a single
:meth:`MessageStats.charge_send_batch` call.  ``ctx.broadcast(to_ids,
tag, *fields)`` additionally shares one ``analyze_payload`` result across
the entire fan-out.  All of this is count-identical to the per-send
reference path (``eager_charges=True``): same sends, words, messages,
rounds, and utilized edges on fixed seeds.

Delivery discipline is pluggable (:mod:`repro.congest.runtime`): the
default :class:`~repro.congest.runtime.RoundScheduler` implements
synchronous rounds through a ring-buffer slot scheduler with flat
``sender*n + receiver`` link-occupancy arrays; the asynchronous engine
(:class:`~repro.congest.async_network.AsyncNetwork`) plugs in an
event-driven scheduler with seeded latency models instead.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.congest.ids import IdAssignment, NodeId, OpaqueId, id_value
from repro.congest.knowledge import KTKnowledge, build_knowledge
from repro.congest.message import Envelope, analyze_payload
from repro.congest.metrics import MessageStats, StageStats
from repro.congest.node import Context, NodeAlgorithm
from repro.congest.runtime import (
    FaultModel,
    RoundScheduler,
    Scheduler,
    make_fault_model,
)
from repro.congest.trace import ExecutionTrace
from repro.errors import (
    ModelViolationError,
    ReproError,
    UnknownNeighborError,
)
from repro.graphs.core import Graph


@dataclass
class StageResult:
    """What a single protocol stage produced."""

    name: str
    outputs: list            # outputs[vertex]
    rounds: int
    stats: StageStats
    converged: bool


class SyncNetwork:
    """A synchronous CONGEST network on a fixed graph and ID assignment."""

    def __init__(
        self,
        graph: Graph,
        rho: int = 1,
        assignment: Optional[IdAssignment] = None,
        seed: int = 0,
        comparison_based: bool = False,
        words_per_message: int = 4,
        record_trace: bool = False,
        collect_utilization: bool = True,
        eager_charges: bool = False,
        scheduler: Optional[Scheduler] = None,
        faults: Optional[FaultModel | str] = None,
    ):
        if rho < 1:
            raise ReproError("SyncNetwork supports KT-rho for rho >= 1")
        self.graph = graph
        self.rho = rho
        self.seed = seed
        self.comparison_based = comparison_based
        self.words_per_message = words_per_message
        #: Stats-lite switch for bulk sweeps: when False the engine skips
        #: the Definition 2.3 utilized-edge bookkeeping and the per-tag /
        #: per-sender breakdowns.  Message, word, send, and round counts
        #: are unaffected (they use the identical accounting path).
        self.collect_utilization = collect_utilization
        #: Reference/debug mode: flush the outbox after every single
        #: submit instead of once per round, exercising the per-send
        #: accounting path.  Counts are identical either way (tests
        #: assert it); batched is the default because it is faster.
        self.eager_charges = eager_charges
        self.assignment = assignment or IdAssignment.random(graph.n, seed=seed)
        if len(self.assignment) != graph.n:
            raise ReproError("assignment size does not match graph size")

        # One word is Theta(log n) bits; size it by the ID space so any
        # single ID always fits in one word.
        self.word_bits = max(8, self.assignment.space_bound().bit_length())

        self._salt = random.Random(f"salt-{seed}").getrandbits(32)
        self._ids: list[NodeId] = [
            self._make_id_object(self.assignment.value_of(v))
            for v in range(graph.n)
        ]
        self._vertex_by_value = {
            self.assignment.value_of(v): v for v in range(graph.n)
        }
        self.knowledge: list[KTKnowledge] = build_knowledge(
            graph, rho, lambda v: self._ids[v]
        )
        self.stats = MessageStats(graph.n)
        self.trace: Optional[ExecutionTrace] = (
            ExecutionTrace() if record_trace else None
        )
        self._stage_counter = 0
        self._n = graph.n
        #: Raw sends of the current round, flushed in submission order by
        #: :meth:`_flush_outbox`: (sender, receiver, tag, fields, words,
        #: ids) with words < 0 meaning "payload not yet analyzed".
        self._outbox: list[tuple] = []
        #: LRU-ish memo of analyze_payload results for small ID-free
        #: payloads, keyed by the fields tuple (structural identity).
        self._payload_cache: dict[tuple, tuple[int, tuple]] = {}
        #: Delivery discipline (see :mod:`repro.congest.runtime`).  The
        #: default is the synchronous round scheduler; subclasses and
        #: callers may plug in any bound :class:`Scheduler`.
        self.scheduler: Scheduler = scheduler or self._default_scheduler()
        self.scheduler.bind(self)
        #: Cached bound method — the outbox flush calls it per envelope.
        self._schedule = self.scheduler.schedule
        self._current_round = 0
        #: Failure seam (see :mod:`repro.congest.runtime`): None is the
        #: fault-free reference path — the schedulers and the outbox
        #: flush skip every fault branch, so counts stay bit-identical
        #: to the pre-seam engine.
        self.faults: Optional[FaultModel] = make_fault_model(faults)
        if self.faults is not None:
            self.faults.bind(self)

    def _default_scheduler(self) -> Scheduler:
        return RoundScheduler()

    # -- identity helpers (harness-side; not exposed to algorithms) ----------

    def _make_id_object(self, value: int) -> NodeId:
        if self.comparison_based:
            return OpaqueId(value, salt=self._salt)
        return NodeId(value)

    def id_of(self, vertex: int) -> NodeId:
        return self._ids[vertex]

    def vertex_of(self, node_id: NodeId) -> int:
        return self._vertex_by_value[id_value(node_id)]

    def vertex_of_value(self, value: int) -> int:
        return self._vertex_by_value[value]

    # -- stage execution ------------------------------------------------------

    def run(
        self,
        algorithm_factory: Callable[[], NodeAlgorithm],
        inputs: Optional[Sequence[Any]] = None,
        max_rounds: int = 100_000,
        name: Optional[str] = None,
    ) -> StageResult:
        """Run one protocol stage to global quiescence.

        ``inputs[vertex]`` is handed to node ``vertex`` as ``ctx.input``.
        Raises :class:`ConvergenceError` if the stage does not quiesce
        within the scheduler's ``max_rounds`` budget (synchronous rounds,
        or activations per node on the event-driven scheduler).
        """
        n = self.graph.n
        stage_name = name or f"stage-{self._stage_counter}"
        self._stage_counter += 1
        # Engine-level adaptation point: the asynchronous network wraps
        # round-cadence algorithms in an AlphaSynchronizer here.
        algorithm_factory, inputs = self._adapt_stage(
            algorithm_factory, inputs, stage_name
        )
        stage = self.stats.begin_stage(stage_name)

        algorithms = [algorithm_factory() for _ in range(n)]
        contexts = []
        for v in range(n):
            # Seed string only — Context materializes the Random lazily
            # on first ctx.rng access (same stream either way).
            rng = f"{self.seed}-{stage_name}-node-{v}"
            node_input = inputs[v] if inputs is not None else None
            contexts.append(Context(self, v, self.knowledge[v], rng, node_input))
        self._contexts = contexts

        for v in range(n):
            algorithms[v].setup(contexts[v])

        self._outbox.clear()
        t0 = time.perf_counter()
        rounds, converged = self.scheduler.run_stage(
            stage_name, algorithms, contexts, max_rounds
        )
        stage.wall += time.perf_counter() - t0

        self.stats.charge_rounds(rounds)
        if self.faults is not None:
            self.stats.crashed_nodes = self.faults.crashed_count
        outputs = [contexts[v]._output for v in range(n)]
        if self.trace is not None:
            for v in range(n):
                self.trace.record_output(v, outputs[v], self.vertex_of_value)
        return StageResult(
            name=stage_name,
            outputs=outputs,
            rounds=stage.rounds,
            stats=stage,
            converged=converged,
        )

    def _adapt_stage(self, algorithm_factory, inputs, stage_name):
        """Hook: adjust a stage before it runs (identity by default)."""
        return algorithm_factory, inputs

    # -- engine internals ------------------------------------------------------

    def _submit_send(self, sender: int, to_id: NodeId, tag: str,
                     fields: tuple) -> None:
        value = id_value(to_id)
        receiver = self._vertex_by_value.get(value)
        if receiver is None:
            raise UnknownNeighborError(
                f"no node with ID value {value} exists"
            )
        if not self.graph.has_edge(sender, receiver):
            raise ModelViolationError(
                f"vertex {sender} tried to send to non-neighbor {receiver}; "
                "CONGEST only delivers over edges"
            )
        self._outbox.append((sender, receiver, tag, fields, -1, ()))
        if self.eager_charges:
            self._flush_outbox()

    def _submit_broadcast(self, sender: int, to_ids, tag: str,
                          fields: tuple) -> None:
        """Fan one payload out to several neighbors (``ctx.broadcast``).

        Count-identical to submitting one send per recipient in the same
        order; the payload is analyzed once and the shared (words, ids)
        result rides every outbox entry.
        """
        words, payload_ids = self._analyze(fields)
        vertex_of = self._vertex_by_value
        has_edge = self.graph.has_edge
        outbox = self._outbox
        for to_id in to_ids:
            receiver = vertex_of.get(id_value(to_id))
            if receiver is None:
                raise UnknownNeighborError(
                    f"no node with ID value {id_value(to_id)} exists"
                )
            if not has_edge(sender, receiver):
                raise ModelViolationError(
                    f"vertex {sender} tried to send to non-neighbor "
                    f"{receiver}; CONGEST only delivers over edges"
                )
            outbox.append((sender, receiver, tag, fields, words, payload_ids))
        if self.eager_charges and outbox:
            self._flush_outbox()

    #: Exact field types the payload memo may key on.  Restricting to
    #: these small ID-free scalars keeps the memo sound: tuple equality
    #: must not cross types (1 == 1.0 == Decimal(1), so an equal-but-
    #: unencodable value could otherwise hit a cached entry and bypass
    #: analyze_payload's validation), and NodeId-bearing results must
    #: not outlive comparisons against later ID objects with the same
    #: value.  bool/int crossings (True == 1) are safe: both encode to
    #: the same word count.
    _MEMO_FIELD_TYPES = frozenset((int, bool, str, type(None)))

    def _analyze(self, fields: tuple) -> tuple[int, tuple]:
        """:func:`analyze_payload` behind a small structural-identity memo.

        The memo is wholesale-cleared when full — the hot payloads (empty
        tuples, small control ints) are re-inserted within a round.
        """
        memo_types = self._MEMO_FIELD_TYPES
        for f in fields:
            if type(f) not in memo_types:
                return analyze_payload(fields, self.word_bits)
        cache = self._payload_cache
        hit = cache.get(fields)
        if hit is not None:
            return hit
        result = analyze_payload(fields, self.word_bits)
        if len(cache) >= 1024:
            cache.clear()
        cache[fields] = result
        return result

    def _flush_outbox(self) -> None:
        """Charge, schedule, and (optionally) trace the buffered sends.

        Runs once per round (or per submit under ``eager_charges``);
        entries are processed in submission order, so link occupancy and
        delivery order are identical to the per-send path.
        """
        outbox = self._outbox
        stats = self.stats
        collect = self.collect_utilization
        wpm = self.words_per_message
        n = self._n
        analyze = self._analyze
        trace = self.trace
        schedule = self._schedule
        faults = self.faults
        round_sent = self._current_round
        total_words = 0
        total_msgs = 0
        if collect:
            by_tag = stats.by_tag
            sender_counts = stats._sender_counts
            utilized = stats._utilized
            vertex_of = self._vertex_by_value
            has_edge = self.graph.has_edge
        for sender, receiver, tag, fields, words, payload_ids in outbox:
            if words < 0:
                try:
                    words, payload_ids = analyze(fields)
                except ModelViolationError as exc:
                    # Validation runs at flush, a whole round after the
                    # offending ctx.send — re-raise with the sender/tag
                    # so the protocol bug is attributable.
                    raise ModelViolationError(
                        f"invalid payload sent by vertex {sender} "
                        f"(tag {tag!r}): {exc}"
                    ) from exc
            charged = 1 if words <= wpm else -(-words // wpm)
            total_words += words
            total_msgs += charged
            if collect:
                if tag:
                    by_tag[tag] = by_tag.get(tag, 0) + charged
                sender_counts[sender] += charged
                # Utilization, Definition 2.3: the transport edge ...
                utilized.add(sender * n + receiver if sender < receiver
                             else receiver * n + sender)
                # ... plus every edge {sender, w} for an ID phi(w) shipped.
                for nid in payload_ids:
                    w = vertex_of.get(nid._value)
                    if w is not None and w != sender \
                            and has_edge(sender, w):
                        utilized.add(sender * n + w if sender < w
                                     else w * n + sender)
            env = Envelope(sender, receiver, tag, fields, round_sent,
                           words, payload_ids)
            if faults is not None and faults.drops(env, charged):
                # Charged but undelivered: the sender paid full price,
                # the envelope never reaches the scheduler.
                stats.charge_dropped(charged)
                continue
            schedule(env, charged)
            if trace is not None:
                trace.record(
                    round_sent, sender, receiver, tag, fields,
                    self.vertex_of_value,
                )
        stats.charge_send_batch(len(outbox), total_words, total_msgs)
        outbox.clear()

    def _register_received_ids(self, receiver: int,
                               inbox: list[Envelope]) -> None:
        """Definition 2.3 receive-side utilization.

        Uses the (deduplicated) NodeIds extracted at send time
        (``Envelope.ids``); ID-free payloads cost nothing here.
        """
        n = self._n
        utilized = self.stats._utilized
        vertex_of = self._vertex_by_value
        has_edge = self.graph.has_edge
        for env in inbox:
            for nid in env.ids:
                w = vertex_of.get(nid._value)
                if w is not None and w != receiver \
                        and has_edge(receiver, w):
                    utilized.add(receiver * n + w if receiver < w
                                 else w * n + receiver)

    # -- conveniences -----------------------------------------------------------

    @property
    def casualties(self) -> dict[int, str]:
        """Vertices the fault model damaged, vertex -> first reason
        (``crashed`` / ``dropped`` / ``starved``); empty when fault-free.
        Output verification must skip these (``docs/faults.md``)."""
        if self.faults is None:
            return {}
        return dict(self.faults.casualties)

    def outputs_by_id_value(self, outputs: Sequence[Any]) -> dict[int, Any]:
        return {
            self.assignment.value_of(v): outputs[v]
            for v in range(self.graph.n)
        }

    def __repr__(self) -> str:
        return (
            f"SyncNetwork(n={self.graph.n}, m={self.graph.m}, rho={self.rho}, "
            f"comparison_based={self.comparison_based})"
        )
