"""The asynchronous KT-rho CONGEST engine (paper Section 3.1.1).

Standard asynchronous model: every message arrives after a finite
adversarial delay, normalized so one unit is the maximum delay; *time
complexity* of an execution is the total normalized time.  Links are
FIFO.  There are no rounds — nodes act only when messages arrive (plus
one initial activation), so only ``passive_when_idle`` protocols can run
here; the engine rejects round-cadence algorithms, which is exactly the
class the alpha-synchronizer exists for (Theorem A.5,
:mod:`repro.congest.synchronizer`).

Because every protocol stage in Algorithm 1's pipeline is written in
count-based lockstep (progress is driven by received-message counts, not
by round numbers), the *same* stage classes run unchanged under this
engine — which is how the reproduction of Theorem 3.4 (asynchronous
(Δ+1)-coloring with Õ(n^1.5) messages in Õ(n) time) works: call
``run_algorithm1`` on an AsyncNetwork.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, Callable, Optional, Sequence

from repro.congest.message import Envelope, Msg
from repro.congest.network import StageResult, SyncNetwork
from repro.congest.node import Context, NodeAlgorithm
from repro.errors import ConvergenceError, ProtocolError


class AsyncNetwork(SyncNetwork):
    """Event-driven engine sharing identity/accounting with SyncNetwork.

    ``max_delay_spread`` controls how adversarial the delays are: each
    charged message takes uniform(min_delay, 1.0) time per packet, FIFO
    per link.  ``stats.rounds`` records ceil(total time) per stage, the
    asynchronous time complexity.
    """

    def __init__(self, *args, min_delay: float = 0.05, **kwargs):
        super().__init__(*args, **kwargs)
        self.min_delay = min_delay
        self._delay_rng = random.Random(f"delays-{self.seed}")
        if self.trace is not None:
            raise ProtocolError(
                "execution traces are a synchronous-model notion; "
                "run lower-bound experiments on SyncNetwork"
            )

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, env: Envelope, charged: int) -> None:
        link = (env.sender, env.receiver)
        start = max(self._now, self._link_clock.get(link, 0.0))
        delay = sum(
            self._delay_rng.uniform(self.min_delay, 1.0)
            for _ in range(charged)
        )
        arrival = start + delay
        self._link_clock[link] = arrival
        self._seq += 1
        heapq.heappush(self._queue, (arrival, self._seq, env))

    # -- event loop --------------------------------------------------------------

    def run(
        self,
        algorithm_factory: Callable[[], NodeAlgorithm],
        inputs: Optional[Sequence[Any]] = None,
        max_rounds: int = 100_000,
        name: Optional[str] = None,
    ) -> StageResult:
        """Run one stage to quiescence under adversarial delays.

        ``max_rounds`` bounds the *per-node activation count* (a safety
        valve against livelock, mirroring the synchronous budget).
        """
        n = self.graph.n
        stage_name = name or f"stage-{self._stage_counter}"
        self._stage_counter += 1
        stage = self.stats.begin_stage(stage_name)

        algorithms = [algorithm_factory() for _ in range(n)]
        if any(not a.passive_when_idle for a in algorithms):
            raise ProtocolError(
                "round-cadence algorithms cannot run asynchronously; "
                "wrap them in an AlphaSynchronizer (Theorem A.5)"
            )
        contexts = []
        for v in range(n):
            rng = random.Random(f"{self.seed}-{stage_name}-node-{v}")
            node_input = inputs[v] if inputs is not None else None
            contexts.append(Context(self, v, self.knowledge[v], rng,
                                    node_input))
        self._queue: list = []
        self._seq = 0
        self._link_clock: dict[tuple[int, int], float] = {}
        self._now = 0.0
        self._current_round = 0
        self._outbox.clear()
        activations = [0] * n

        for v in range(n):
            algorithms[v].setup(contexts[v])
        # Initial activation: every node acts once at time zero.  Sends
        # buffer in the shared outbox; one flush (submission order, so
        # identical delay draws) pushes them onto the event heap.
        for v in range(n):
            ctx = contexts[v]
            ctx.round = 0
            ctx._send_allowed = True
            algorithms[v].on_round(ctx, [])
            ctx._send_allowed = False
        self._flush_outbox()

        max_events = max_rounds * max(n, 1)
        events = 0
        while self._queue:
            events += 1
            if events > max_events:
                raise ConvergenceError(
                    f"async stage '{stage_name}' exceeded {max_events} events"
                )
            arrival, _seq, env = heapq.heappop(self._queue)
            self._now = arrival
            v = env.receiver
            activations[v] += 1
            ctx = contexts[v]
            ctx.round = activations[v]
            if self.collect_utilization and env.ids:
                self._register_received_ids(v, (env,))
            ctx._send_allowed = True
            algorithms[v].on_round(
                ctx, [Msg(self._ids[env.sender], env.tag, env.fields)]
            )
            ctx._send_allowed = False
            if self._outbox:
                self._flush_outbox()

        unfinished = [v for v in range(n) if not contexts[v]._finished]
        if unfinished:
            raise ConvergenceError(
                f"async stage '{stage_name}' quiesced with unfinished "
                f"nodes {unfinished[:10]} (total {len(unfinished)})"
            )
        elapsed = max(1, math.ceil(self._now))
        self.stats.charge_rounds(elapsed)
        return StageResult(
            name=stage_name,
            outputs=[contexts[v]._output for v in range(n)],
            rounds=elapsed,
            stats=stage,
            converged=True,
        )
