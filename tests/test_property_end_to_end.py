"""End-to-end property tests: the paper's algorithms on random inputs.

Hypothesis drives graph shape, density and seeds; every run must produce
a verified-correct output.  These are the highest-leverage tests in the
suite: they exercise the full pipelines (danner, broadcast, hashing,
partitioning, coloring / sampling, relaying, pruning, Luby) against
inputs nobody hand-picked.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.congest.async_network import AsyncNetwork
from repro.congest.network import SyncNetwork
from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.algorithm2 import run_algorithm2
from repro.coloring.verify import check_color_bound, check_proper_coloring
from repro.graphs.generators import connected_gnp_graph
from repro.mis.algorithm3 import run_algorithm3
from repro.mis.verify import check_mis

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    n=st.integers(8, 60),
    p=st.floats(0.08, 0.6),
    seed=st.integers(0, 10**6),
)
@settings(**SETTINGS)
def test_algorithm1_always_proper(n, p, seed):
    g = connected_gnp_graph(n, p, seed=seed)
    net = SyncNetwork(g, seed=seed)
    result = run_algorithm1(net, seed=seed + 1)
    check_proper_coloring(g, result.colors)
    check_color_bound(result.colors, g.max_degree() + 1)
    for v in range(g.n):
        assert result.colors[v] <= g.degree(v)


@given(
    n=st.integers(8, 50),
    p=st.floats(0.1, 0.6),
    eps=st.floats(0.2, 1.5),
    seed=st.integers(0, 10**6),
)
@settings(**SETTINGS)
def test_algorithm2_always_proper(n, p, eps, seed):
    g = connected_gnp_graph(n, p, seed=seed)
    net = SyncNetwork(g, seed=seed)
    result = run_algorithm2(net, epsilon=eps, seed=seed + 1)
    check_proper_coloring(g, result.colors)
    check_color_bound(result.colors, result.palette_size)


@given(
    n=st.integers(8, 60),
    p=st.floats(0.08, 0.6),
    c=st.floats(0.0, 4.0),
    seed=st.integers(0, 10**6),
)
@settings(**SETTINGS)
def test_algorithm3_always_valid_mis(n, p, c, seed):
    g = connected_gnp_graph(n, p, seed=seed)
    net = SyncNetwork(g, rho=2, seed=seed, comparison_based=True)
    result = run_algorithm3(net, seed=seed + 1, sample_constant=c)
    check_mis(g, result.in_mis)


@given(
    n=st.integers(8, 40),
    p=st.floats(0.1, 0.5),
    seed=st.integers(0, 10**6),
)
@settings(**SETTINGS)
def test_algorithm1_async_always_proper(n, p, seed):
    g = connected_gnp_graph(n, p, seed=seed)
    anet = AsyncNetwork(g, seed=seed)
    result = run_algorithm1(anet, seed=seed + 1)
    check_proper_coloring(g, result.colors)


@given(
    t=st.integers(2, 7),
    yi=st.integers(0, 6),
    zi=st.integers(0, 6),
    xi=st.integers(0, 6),
)
@settings(max_examples=25, deadline=None)
def test_crossing_construction_properties(t, yi, zi, xi):
    from repro.lowerbounds.construction import (
        crossing_instance,
        verify_id_properties,
    )

    inst = crossing_instance(t, yi % t, zi % t, xi % t)
    props = verify_id_properties(inst)
    assert all(props.values())
    assert inst.base.m == inst.crossed.m == 4 * t * t


@given(
    n=st.integers(6, 50),
    p=st.floats(0.1, 0.6),
    seed=st.integers(0, 10**6),
)
@settings(**SETTINGS)
def test_utilization_invariant_lemma_2_4(n, p, seed):
    """Every run of every protocol keeps utilized = O(messages)."""
    g = connected_gnp_graph(n, p, seed=seed)
    net = SyncNetwork(g, seed=seed)
    run_algorithm1(net, seed=seed + 1)
    assert net.stats.utilized_count <= max(4 * net.stats.messages, 4)
    assert net.stats.utilized_count <= g.m
