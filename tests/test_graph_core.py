"""Unit tests for the Graph substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.graphs.core import Graph


def test_empty_graph():
    g = Graph(0, [])
    assert g.n == 0
    assert g.m == 0
    assert list(g.vertices()) == []


def test_single_vertex():
    g = Graph(1, [])
    assert g.degree(0) == 0
    assert g.neighbors(0) == ()


def test_basic_edges(path4):
    assert path4.m == 3
    assert path4.neighbors(1) == (0, 2)
    assert path4.degree(0) == 1
    assert path4.degree(1) == 2


def test_duplicate_edges_collapse():
    g = Graph(3, [(0, 1), (1, 0), (0, 1)])
    assert g.m == 1


def test_self_loop_rejected():
    with pytest.raises(ReproError):
        Graph(3, [(1, 1)])


def test_out_of_range_rejected():
    with pytest.raises(ReproError):
        Graph(3, [(0, 3)])


def test_negative_n_rejected():
    with pytest.raises(ReproError):
        Graph(-1, [])


def test_has_edge(path4):
    assert path4.has_edge(0, 1)
    assert path4.has_edge(1, 0)
    assert not path4.has_edge(0, 2)
    assert (1, 2) in path4
    assert (0, 3) not in path4


def test_edges_canonical_sorted(triangle):
    assert triangle.edges() == ((0, 1), (0, 2), (1, 2))


def test_max_degree(star6):
    assert star6.max_degree() == 5


def test_equality_and_hash():
    a = Graph(3, [(0, 1), (1, 2)])
    b = Graph(3, [(1, 2), (0, 1)])
    c = Graph(3, [(0, 1)])
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_subgraph_relabels(path4):
    sub = path4.subgraph([1, 2, 3])
    assert sub.n == 3
    assert sub.edges() == ((0, 1), (1, 2))


def test_subgraph_with_mapping(path4):
    sub, mapping = path4.subgraph_with_mapping([0, 2, 3])
    assert mapping == {0: 0, 2: 1, 3: 2}
    assert sub.edges() == ((1, 2),)


def test_induced_edge_count(k5):
    assert k5.induced_edge_count([0, 1, 2]) == 3
    assert k5.induced_edge_count([0]) == 0
    assert k5.induced_edge_count(range(5)) == 10


def test_union_disjoint(triangle, path4):
    u = triangle.union_disjoint(path4)
    assert u.n == 7
    assert u.m == triangle.m + path4.m
    assert u.has_edge(3, 4)
    assert not u.has_edge(2, 3)


def test_with_edges_add_remove(path4):
    g = path4.with_edges(added=[(0, 3)], removed=[(1, 2)])
    assert g.has_edge(0, 3)
    assert not g.has_edge(1, 2)
    assert g.m == 3


def test_with_edges_remove_absent_raises(path4):
    with pytest.raises(ReproError):
        path4.with_edges(removed=[(0, 2)])


def test_to_networkx_roundtrip(gnp_small):
    nxg = gnp_small.to_networkx()
    assert nxg.number_of_nodes() == gnp_small.n
    assert nxg.number_of_edges() == gnp_small.m


@given(st.integers(2, 30), st.data())
@settings(max_examples=40, deadline=None)
def test_degree_sum_equals_twice_edges(n, data):
    pairs = data.draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=3 * n,
    ))
    edges = [(u, v) for u, v in pairs if u != v]
    g = Graph(n, edges)
    assert sum(g.degree(v) for v in range(n)) == 2 * g.m


@given(st.integers(2, 20), st.data())
@settings(max_examples=30, deadline=None)
def test_neighbors_symmetric(n, data):
    pairs = data.draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=2 * n,
    ))
    g = Graph(n, [(u, v) for u, v in pairs if u != v])
    for u in range(n):
        for v in g.neighbors(u):
            assert u in g.neighbors(v)
