"""Baseline coloring algorithms: the Ω(m)-message state of the art.

Two baselines, matching the two roles baselines play in the paper:

* :class:`FullExchangeTrialColoring` — the standard randomized
  (Δ+1)-coloring (Johansson over the whole graph, exchanging trial and
  resolution messages with *every* neighbor): Õ(m) messages.  This is
  the "all known algorithms use Ω(m) messages" row of Figure 1 and the
  comparator for the o(m) claims of Theorems 3.3/3.8.
* :class:`RankGreedyColoring` — a deterministic *comparison-based*
  coloring (IDs only compared): uncolored local ID-maxima pick the
  smallest free color and announce it.  Correct on every graph, utilizes
  every edge — the behavior Theorem 2.10 proves unavoidable for
  comparison-based algorithms.
"""

from __future__ import annotations

from typing import Optional

from repro.congest.node import Context, NodeAlgorithm
from repro.coloring.johansson import JohanssonListColoring


class FullExchangeTrialColoring(JohanssonListColoring):
    """Johansson on the full graph with palette {0..deg(v)}.

    Exactly the classical algorithm: active set = all neighbors, list =
    deg+1 colors; Õ(m) messages, O(log n) phases whp.
    """

    def setup(self, ctx: Context) -> None:
        ctx.input = {
            "active": frozenset(ctx.neighbor_ids),
            "palette": frozenset(range(ctx.degree + 1)),
            "participate": True,
        }
        super().setup(ctx)


class RankGreedyColoring(NodeAlgorithm):
    """Deterministic comparison-based greedy coloring by ID rank.

    Round 0 every node announces itself implicitly; a node colors itself
    once every uncolored neighbor has a smaller ID, choosing the least
    color not announced by any neighbor, then announces the color to all
    neighbors.  Message cost: one announcement per edge direction = 2m,
    plus nothing else — Θ(m), and every edge is utilized.
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        self.uncolored_above = {
            u for u in ctx.neighbor_ids if u > ctx.my_id
        }
        self.taken: set[int] = set()
        self.color: Optional[int] = None

    def _try_color(self, ctx: Context) -> None:
        if self.color is not None or self.uncolored_above:
            return
        c = 0
        while c in self.taken:
            c += 1
        self.color = c
        for u in ctx.neighbor_ids:
            ctx.send(u, "colored", c)
        ctx.done({"color": c})

    def on_round(self, ctx: Context, inbox) -> None:
        for msg in inbox:
            (c,) = msg.fields
            self.taken.add(c)
            self.uncolored_above.discard(msg.sender_id)
        # done() fires only in _try_color (publish on decision): an
        # uncolored node stays engine-unfinished, so losing its wake-up
        # message under faults starves it instead of freezing a None.
        self._try_color(ctx)


def run_baseline_coloring(net, kind: str = "trial", name: str = "baseline"):
    """Driver for the baselines; returns (colors, StageResult)."""
    if kind == "trial":
        stage = net.run(FullExchangeTrialColoring, name=name)
    elif kind == "rank-greedy":
        stage = net.run(RankGreedyColoring, name=name)
    else:
        raise ValueError(f"unknown baseline {kind!r}")
    colors = [
        out["color"] if out else None for out in stage.outputs
    ]
    return colors, stage
