"""Shared fixtures: small reference graphs and networks."""

from __future__ import annotations

import pytest

from repro.congest.network import SyncNetwork
from repro.graphs.core import Graph
from repro.graphs.generators import (
    barbell_graph,
    complete_bipartite,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    disjoint_cycles,
    gnp_random_graph,
    random_regular_graph,
)


@pytest.fixture
def path4() -> Graph:
    return Graph(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def triangle() -> Graph:
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def star6() -> Graph:
    return Graph(6, [(0, i) for i in range(1, 6)])


@pytest.fixture
def k5() -> Graph:
    return complete_graph(5)


@pytest.fixture
def gnp_small() -> Graph:
    return connected_gnp_graph(60, 0.15, seed=7)


@pytest.fixture
def gnp_medium() -> Graph:
    return connected_gnp_graph(150, 0.12, seed=11)


@pytest.fixture
def gnp_dense() -> Graph:
    return connected_gnp_graph(120, 0.4, seed=13)


@pytest.fixture
def barbell() -> Graph:
    return barbell_graph(12, 4)


@pytest.fixture
def regular_graph() -> Graph:
    return random_regular_graph(60, 6, seed=17)


@pytest.fixture
def cycles_graph() -> Graph:
    return disjoint_cycles(6, 9)


@pytest.fixture
def small_net(gnp_small) -> SyncNetwork:
    return SyncNetwork(gnp_small, rho=1, seed=3)


# -- fault-model seam ---------------------------------------------------------
#
# The shared entry points for adversarial tests: build networks (optionally
# faulted) through one factory instead of ad-hoc constructor calls, and
# parametrize over the whole fault-model vocabulary in one place.


@pytest.fixture
def net_factory():
    """Build a :class:`SyncNetwork`, optionally with failure injection.

    ``build(graph, seed=..., faults="drop:0.1"|FaultModel|None, **kw)`` —
    the single place adversarial tests construct networks, so the fault
    seam is exercised (or explicitly bypassed with ``faults=None``) the
    same way everywhere.
    """
    def build(graph, *, seed=0, faults=None, **kwargs):
        return SyncNetwork(graph, seed=seed, faults=faults, **kwargs)
    return build


@pytest.fixture(params=["drop:0.15", "crash:0.2:6", "adversary:24:2"])
def fault_spec(request) -> str:
    """Each of the three fault models, with deliberately harsh knobs."""
    return request.param


def connected_families(seed: int = 0):
    """A spread of connected test graphs (helper, not a fixture)."""
    return [
        ("path", Graph(8, [(i, i + 1) for i in range(7)])),
        ("cycle", cycle_graph(9)),
        ("star", Graph(9, [(0, i) for i in range(1, 9)])),
        ("complete", complete_graph(10)),
        ("bipartite", complete_bipartite(6, 7)),
        ("barbell", barbell_graph(8, 3)),
        ("gnp-sparse", connected_gnp_graph(50, 0.1, seed=seed + 1)),
        ("gnp-dense", connected_gnp_graph(40, 0.45, seed=seed + 2)),
        ("regular", random_regular_graph(40, 4, seed=seed + 3)),
    ]
