"""Tests for Johansson's (deg+1)-list coloring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.congest.network import SyncNetwork
from repro.coloring.johansson import JohanssonListColoring, johansson_color
from repro.coloring.verify import (
    check_list_coloring,
    check_proper_coloring,
)
from repro.graphs.generators import (
    complete_graph,
    connected_gnp_graph,
    gnp_random_graph,
)

from tests.conftest import connected_families


def run_plain(graph, seed=0):
    net = SyncNetwork(graph, seed=seed)
    palettes = [frozenset(range(graph.degree(v) + 1))
                for v in range(graph.n)]
    res = johansson_color(net, [None] * graph.n, palettes)
    colors = [o["color"] if o else None for o in res.outputs]
    return net, colors, palettes


@pytest.mark.parametrize("name,graph", connected_families(seed=300))
def test_proper_on_family(name, graph):
    _net, colors, palettes = run_plain(graph, seed=1)
    check_proper_coloring(graph, colors)
    check_list_coloring(colors, palettes)


def test_colors_within_deg_plus_one(gnp_small):
    _net, colors, _ = run_plain(gnp_small, seed=2)
    for v in range(gnp_small.n):
        assert 0 <= colors[v] <= gnp_small.degree(v)


def test_complete_graph_all_distinct():
    g = complete_graph(12)
    _net, colors, _ = run_plain(g, seed=3)
    assert len(set(colors)) == 12


def test_respects_arbitrary_lists():
    g = complete_graph(6)
    net = SyncNetwork(g, seed=4)
    # disjoint singleton-ish lists still >= deg+1 in size
    palettes = [frozenset(range(10 * v, 10 * v + 6)) for v in range(6)]
    res = johansson_color(net, [None] * 6, palettes)
    colors = [o["color"] for o in res.outputs]
    check_proper_coloring(g, colors)
    check_list_coloring(colors, palettes)


def test_active_subgraph_respected():
    """Only same-part edges exchange messages; cross edges stay silent."""
    g = complete_graph(8)
    net = SyncNetwork(g, seed=5)
    # two parts: vertices 0-3 and 4-7
    def part(v):
        return 0 if v < 4 else 1
    active = []
    for v in range(8):
        ids = frozenset(
            net.id_of(u) for u in g.neighbors(v) if part(u) == part(v)
        )
        active.append(ids)
    palettes = [frozenset(range(0, 4)) if part(v) == 0
                else frozenset(range(4, 8)) for v in range(8)]
    res = johansson_color(net, active, palettes)
    colors = [o["color"] for o in res.outputs]
    check_proper_coloring(g, colors)  # disjoint palettes -> proper overall
    # no message crossed parts
    for (u, v) in net.stats.utilized:
        assert part(u) == part(v)


def test_bystanders_untouched(gnp_small):
    net = SyncNetwork(gnp_small, seed=6)
    n = gnp_small.n
    participate = [v % 2 == 0 for v in range(n)]
    active = []
    for v in range(n):
        ids = frozenset(
            net.id_of(u) for u in gnp_small.neighbors(v)
            if participate[u] and participate[v]
        )
        active.append(ids)
    palettes = [frozenset(range(gnp_small.degree(v) + 1)) for v in range(n)]
    res = johansson_color(net, active, palettes, participate=participate)
    for v in range(n):
        if participate[v]:
            assert res.outputs[v]["color"] is not None
        else:
            assert res.outputs[v] is None


def test_deferral_on_invalid_lists():
    """Deliberately broken lists (violating deg+1) defer, not hang."""
    g = complete_graph(3)
    net = SyncNetwork(g, seed=7)
    palettes = [frozenset({0}), frozenset({0}), frozenset({0})]
    res = johansson_color(net, [None] * 3, palettes)
    deferred = [bool(o and o.get("deferred")) for o in res.outputs]
    colored = [o.get("color") for o in res.outputs if o and "color" in o]
    # at least two of the three must defer; any colored output is 0.
    assert sum(deferred) >= 2
    assert all(c == 0 for c in colored)


def test_no_deferral_on_valid_lists(gnp_medium):
    _net, colors, _ = run_plain(gnp_medium, seed=8)
    assert all(c is not None for c in colors)


def test_message_cost_proportional_to_edges():
    """Õ(active edges): cost per edge is polylog, not n."""
    g1 = connected_gnp_graph(60, 0.2, seed=9)
    g2 = connected_gnp_graph(120, 0.2, seed=10)
    costs = []
    for g in (g1, g2):
        net, _, _ = run_plain(g, seed=11)
        costs.append(net.stats.messages / g.m)
    # per-edge cost roughly constant as the graph grows
    assert costs[1] < 2.5 * costs[0]


def test_deterministic_given_seed(gnp_small):
    a = run_plain(gnp_small, seed=12)[1]
    b = run_plain(gnp_small, seed=12)[1]
    assert a == b


def test_isolated_vertices():
    from repro.graphs.core import Graph

    g = Graph(4, [(0, 1)])
    net = SyncNetwork(g, seed=13)
    palettes = [frozenset(range(g.degree(v) + 1)) for v in range(4)]
    res = johansson_color(net, [None] * 4, palettes)
    colors = [o["color"] for o in res.outputs]
    assert colors[2] == 0 and colors[3] == 0
    assert colors[0] != colors[1]


@given(st.integers(5, 40), st.floats(0.05, 0.5), st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_property_always_proper(n, p, seed):
    g = gnp_random_graph(n, p, seed=seed)
    net = SyncNetwork(g, seed=seed)
    palettes = [frozenset(range(g.degree(v) + 1)) for v in range(n)]
    res = johansson_color(net, [None] * n, palettes)
    colors = [o["color"] if o else None for o in res.outputs]
    check_proper_coloring(g, colors)
    check_list_coloring(colors, palettes)
