"""ENGINE — the experiment-sweep subsystem as a perf benchmark.

Runs a reference multi-family, multi-seed sweep through
:mod:`repro.experiments` (worker pool, stats-lite engine mode) and writes
``BENCH_engine.json`` at the repo root: message counts, fitted growth
exponents, and wall-clock per cell.  Future PRs diff this artifact to see
whether the engine got faster or the algorithms chattier.

Run directly (no pytest needed):

    PYTHONPATH=src python benchmarks/bench_engine.py [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.experiments import (
    SweepSpec,
    bench_payload,
    render_report,
    run_sweep,
    summarize,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

REFERENCE_SPEC = SweepSpec(
    families=("gnp", "regular"),
    sizes=(80, 140, 220),
    seeds=(0, 1, 2),
    methods=("kt1-delta-plus-one", "baseline-trial",
             "kt2-sampled-greedy", "luby"),
    density=0.25,
)


def run(workers: int = 4, out: str | None = None) -> dict:
    t0 = time.perf_counter()
    records = run_sweep(REFERENCE_SPEC, store=None, workers=workers)
    wall = time.perf_counter() - t0
    summary = summarize(records)
    payload = bench_payload(records, summary, wall_s=wall)
    print(render_report(summary))
    print(f"\n{len(records)} cells in {wall:.1f}s "
          f"({workers} workers)")
    path = out or os.path.join(REPO_ROOT, "BENCH_engine.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return payload


def test_engine_sweep_benchmark(benchmark):
    """Pytest-benchmark entry: the sweep, serially, for timing stability."""
    payload = benchmark.pedantic(
        lambda: run(workers=0), rounds=1, iterations=1
    )
    # Every algorithm cell must have produced a verified-valid output.
    assert payload["runs"] == REFERENCE_SPEC.size
    # Alg 1 must beat the Omega(m) baseline's growth on dense families.
    exps = {(e["family"], e["method"]): e["messages_exponent"]
            for e in payload["exponents"]}
    for family in ("gnp", "regular"):
        assert exps[(family, "kt1-delta-plus-one")] < \
            exps[(family, "baseline-trial")]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=None)
    args = parser.parse_args()
    run(workers=args.workers, out=args.out)
