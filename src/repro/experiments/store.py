"""JSON-lines result store with resume.

One line per completed cell, appended and flushed as results arrive, so
an interrupted sweep loses at most the in-flight cells.  Resume is
key-based: :meth:`ResultStore.completed_keys` feeds the runner the set of
cells to skip.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Optional


class ResultStore:
    """Append-only JSON-lines storage for sweep results."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None

    # -- writing -------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Append one result record (a JSON-serializable dict) durably."""
        if self._fh is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------------

    def iter_records(self) -> Iterator[dict]:
        """Yield stored records; tolerates a truncated trailing line
        (the crash the resume machinery exists for)."""
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue

    def load(self) -> list[dict]:
        return list(self.iter_records())

    def completed_keys(self, include_failed: bool = False) -> set[str]:
        """Keys of every cell already stored (the resume set).

        Records with a non-``"ok"`` status (timeouts, worker errors) are
        omitted by default so a resumed sweep attempts those cells again;
        a later successful record for the same key supersedes the failed
        line at aggregation time (non-``ok`` records never enter fits).
        """
        if include_failed:
            return {
                rec["key"] for rec in self.iter_records() if "key" in rec
            }
        return {
            rec["key"] for rec in self.iter_records()
            if "key" in rec and rec.get("status", "ok") == "ok"
        }

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r})"
