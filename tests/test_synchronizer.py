"""Tests for the alpha-synchronizer (Theorem A.5)."""

import pytest

from repro.congest.async_network import AsyncNetwork
from repro.congest.network import SyncNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.synchronizer import AlphaSynchronizer, synchronize
from repro.coloring.johansson import JohanssonListColoring
from repro.coloring.verify import check_proper_coloring
from repro.errors import ModelViolationError, ProtocolError
from repro.congest.synchronizer import SynchronizerBudgetError
from repro.graphs.generators import connected_gnp_graph


class RoundParity(NodeAlgorithm):
    """A deliberately round-*dependent* algorithm: counts rounds in
    which it received nothing — meaningless asynchronously, exact under
    a synchronizer."""

    def setup(self, ctx):
        self.silent_rounds = 0
        self.limit = 5

    def on_round(self, ctx, inbox):
        if not inbox:
            self.silent_rounds += 1
        if ctx.round == 0:
            for u in ctx.neighbor_ids:
                ctx.send(u, "hello")
        if ctx.round >= self.limit:
            ctx.done(self.silent_rounds)


def johansson_inputs(g):
    return [
        {"active": None, "palette": frozenset(range(g.degree(v) + 1)),
         "participate": True}
        for v in range(g.n)
    ]


def test_round_dependent_algorithm_rejected_raw(gnp_small):
    anet = AsyncNetwork(gnp_small, seed=1)
    with pytest.raises(ProtocolError):
        anet.run(RoundParity)


def test_round_dependent_algorithm_correct_under_synchronizer():
    g = connected_gnp_graph(30, 0.2, seed=2)
    anet = AsyncNetwork(g, seed=3)
    res = synchronize(anet, RoundParity, total_rounds=8)
    # every node saw exactly round 1 with the hellos and silence after;
    # rounds 0, 2..8 are silent = 8 silent rounds observed at done time
    # (round 5 triggers done; rounds counted: 0,2,3,4,5 = 5 minus the
    # hello round) — the point is determinism, not the exact value:
    assert len(set(res.outputs)) == 1


def test_johansson_under_synchronizer_async():
    g = connected_gnp_graph(50, 0.15, seed=4)
    anet = AsyncNetwork(g, seed=5)
    T = 10 * max(4, g.n.bit_length())
    res = synchronize(anet, JohanssonListColoring, T,
                      inner_inputs=johansson_inputs(g))
    colors = [o["color"] for o in res.outputs]
    check_proper_coloring(g, colors)


class SilentInner(NodeAlgorithm):
    """Sends nothing; finishes at its round budget."""

    def __init__(self, rounds):
        self.rounds = rounds

    def on_round(self, ctx, inbox):
        if ctx.round >= self.rounds:
            ctx.done("done")


def test_overhead_bound_theorem_a5_exact():
    """With a silent inner algorithm, total traffic = pure synchronizer
    overhead = (T+1) safe messages per edge direction <= 2(T+1) m."""
    g = connected_gnp_graph(40, 0.2, seed=6)
    T = 12
    anet = AsyncNetwork(g, seed=7)
    res = synchronize(anet, lambda: SilentInner(T), T)
    assert all(o == "done" for o in res.outputs)
    total = anet.stats.messages
    assert total <= 2 * (T + 1) * g.m
    assert total >= (T + 1) * 2 * g.m * 0.9   # it really is the safes


def test_overhead_with_real_inner_stays_within_budget():
    """Johansson + synchronizer: total <= inner-ish + 2(T+1) m."""
    g = connected_gnp_graph(40, 0.2, seed=8)
    T = 10 * max(4, g.n.bit_length())
    anet = AsyncNetwork(g, seed=9)
    synchronize(anet, JohanssonListColoring, T,
                inner_inputs=johansson_inputs(g))
    # inner messages are Õ(m); overhead dominates: 2(T+1)m + slack
    assert anet.stats.messages <= 2 * (T + 1) * g.m + 40 * g.m


def test_active_subgraph_respected():
    """Synchronizer overhead only touches declared active edges."""
    g = connected_gnp_graph(30, 0.3, seed=8)
    anet = AsyncNetwork(g, seed=9)
    n = g.n
    # active subgraph: edges between even-even or odd-odd vertices
    def side(v):
        return v % 2
    active = []
    for v in range(n):
        ids = frozenset(
            anet.id_of(u) for u in g.neighbors(v) if side(u) == side(v)
        )
        active.append(ids)
    inner_inputs = []
    for v in range(n):
        same = active[v]
        inner_inputs.append({
            "active": same,
            "palette": frozenset(range(len(same) + 1)),
            "participate": True,
        })
    res = synchronize(anet, JohanssonListColoring, 60,
                      active_sets=active, inner_inputs=inner_inputs)
    for (u, v) in anet.stats.utilized:
        assert side(u) == side(v)
    assert all(o and o.get("color") is not None for o in res.outputs)


def test_inner_send_outside_active_rejected():
    g = connected_gnp_graph(20, 0.4, seed=10)
    anet = AsyncNetwork(g, seed=11)

    class Leaky(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            if ctx.round == 0 and ctx.neighbor_ids:
                ctx.send(ctx.neighbor_ids[0], "leak")
            ctx.done(None)

    empty_active = [frozenset() for _ in range(g.n)]
    with pytest.raises(ModelViolationError):
        synchronize(anet, Leaky, 4, active_sets=empty_active)


def test_budget_too_small_raises_for_undecided_inner():
    """Publish-on-decide: an inner node cut off before deciding is
    engine-unfinished, so exhausting the synchronizer budget fails
    loudly instead of freezing a stale done-with-None output."""
    g = connected_gnp_graph(25, 0.3, seed=12)
    anet = AsyncNetwork(g, seed=13)
    with pytest.raises(SynchronizerBudgetError):
        synchronize(anet, JohanssonListColoring, 1,
                    inner_inputs=johansson_inputs(g))


def test_budget_too_small_raises_for_non_quiescent_inner():
    """An inner algorithm that never calls done trips the budget check."""
    g = connected_gnp_graph(20, 0.3, seed=14)
    anet = AsyncNetwork(g, seed=15)

    class NeverDone(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            pass

    with pytest.raises(ProtocolError):
        synchronize(anet, NeverDone, 3)


def test_synchronizer_on_sync_engine_too():
    """The wrapper also runs on the synchronous engine (used to measure
    its overhead in isolation)."""
    g = connected_gnp_graph(30, 0.2, seed=14)
    net = SyncNetwork(g, seed=15)
    res = synchronize(net, JohanssonListColoring, 60,
                      inner_inputs=johansson_inputs(g))
    colors = [o["color"] for o in res.outputs]
    check_proper_coloring(g, colors)
