"""MIS verifiers and remnant-degree measurements.

`remnant_max_degree` measures the quantity behind Konrad's Lemma 1 [21]
(cited in the proof of Theorem 4.1): after the sampled prefix of the
randomized greedy order is processed, undominated vertices have
Õ(n / |S|) undominated neighbors — with |S| = Θ(sqrt n) that is Õ(sqrt n),
which is what makes running Luby on the remnant cheap.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import VerificationError
from repro.graphs.core import Graph


def mis_violations(graph: Graph, in_mis: Sequence[bool]) -> dict:
    """Independence and maximality violations, as witness lists."""
    independence = [
        (u, v) for u, v in graph.edges() if in_mis[u] and in_mis[v]
    ]
    maximality = [
        v for v in range(graph.n)
        if not in_mis[v] and not any(in_mis[u] for u in graph.neighbors(v))
    ]
    return {"independence": independence, "maximality": maximality}


def survivor_mis_violations(graph: Graph, in_mis: Sequence[bool],
                            casualties) -> dict:
    """MIS violations restricted to *survivors* (``docs/faults.md``).

    Independence stays strict among survivors: two adjacent survivors
    both claiming membership is always wrong.  Maximality at a survivor
    ``v`` is only owed when v's entire closed neighborhood survived — a
    damaged neighbor might have joined the MIS in the execution v
    observed before the fault hit, so v's abstention is excused.
    """
    damaged = set(casualties)
    independence = [
        (u, v) for u, v in graph.edges()
        if in_mis[u] and in_mis[v]
        and u not in damaged and v not in damaged
    ]
    maximality = [
        v for v in range(graph.n)
        if v not in damaged and not in_mis[v]
        and all(u not in damaged for u in graph.neighbors(v))
        and not any(in_mis[u] for u in graph.neighbors(v))
    ]
    return {"independence": independence, "maximality": maximality}


def check_mis(graph: Graph, in_mis: Sequence[bool]) -> None:
    """Raise unless ``in_mis`` marks a maximal independent set."""
    bad = mis_violations(graph, in_mis)
    if bad["independence"]:
        u, v = bad["independence"][0]
        raise VerificationError(
            f"{len(bad['independence'])} adjacent MIS pairs, e.g. ({u}, {v})"
        )
    if bad["maximality"]:
        v = bad["maximality"][0]
        raise VerificationError(
            f"{len(bad['maximality'])} undominated vertices, e.g. {v}"
        )


def remnant_vertices(graph: Graph, mis_members: Iterable[int]) -> set[int]:
    """Vertices neither in the partial MIS nor adjacent to it."""
    members = set(mis_members)
    dominated = set(members)
    for u in members:
        dominated.update(graph.neighbors(u))
    return {v for v in range(graph.n) if v not in dominated}


def remnant_max_degree(graph: Graph, mis_members: Iterable[int]) -> int:
    """Max degree of the remnant-induced subgraph (Konrad Lemma 1)."""
    remnant = remnant_vertices(graph, mis_members)
    best = 0
    for v in remnant:
        deg = sum(1 for u in graph.neighbors(v) if u in remnant)
        best = max(best, deg)
    return best
