"""Johansson's randomized (deg+1)-list coloring [40].

The workhorse of Algorithm 1 (Steps 3 and 5): every still-uncolored node
repeatedly trials a uniform color from its current list; a trial sticks
iff no *undecided active neighbor* trialed the same color in the same
phase; decided colors are struck from neighboring lists.  With lists of
size >= (active degree + 1) a constant fraction of nodes succeeds per
phase, so O(log n) phases suffice whp.

The implementation runs in *lockstep by counting*, not by round parity:
each phase has a trial subphase and a resolve subphase, and a node enters
the next phase only after hearing a resolve from every neighbor it still
considers undecided.  Neighbors therefore never drift more than one phase
apart, and the protocol is insensitive to message delays — the same class
runs unchanged under link congestion and under the asynchronous engine /
alpha-synchronizer (Theorem 3.4).

Inputs per node (all locally derivable in Algorithm 1 from KT-1 plus the
shared random string):

* ``active``  — frozenset of neighbor IDs in this node's active subgraph
  (e.g. the same-B_i neighbors);
* ``palette`` — the node's current color list;
* ``participate`` — False for bystanders (they output None immediately).

Output: ``{"color": int}`` or ``{"deferred": True}`` — deferral happens
only if a node's list runs empty while neighbors are undecided, which the
partition properties rule out whp (tests assert it never fires on valid
inputs; Algorithm 1 folds any deferred node into the next-level remnant).
"""

from __future__ import annotations

from typing import Optional

from repro.congest.node import ColumnarStage, Context, NodeAlgorithm
from repro.errors import ProtocolError

#: Palette entries the columnar kernel accepts: plain non-negative ints
#: comfortably inside int64 columns.  Anything else (huge ints, bools
#: masquerading as colors, exotic numerics) declines to the scalar path.
_MAX_KERNEL_COLOR = 1 << 40


class JohanssonListColoring(ColumnarStage, NodeAlgorithm):
    """One run of list coloring inside an active subgraph."""

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        state = ctx.input or {}
        self.participate = state.get("participate", True)
        self.palette: set[int] = set(state.get("palette", ()))
        active = state.get("active")
        if active is None:
            active = frozenset(ctx.neighbor_ids)
        self.undecided = {u for u in ctx.neighbor_ids if u in active}
        self.phase = 0
        self.trial: Optional[int] = None
        self.resolved = True        # no resolve owed for a not-yet-begun phase
        self.color: Optional[int] = None
        self.deferred = False
        self.trials_seen: dict[int, dict] = {}
        self.resolves_seen: dict[int, dict] = {}

    # -- local decisions ---------------------------------------------------

    def _publish(self, ctx: Context) -> None:
        if not self.participate:
            ctx.done(None)
        elif self.deferred:
            ctx.done({"deferred": True})
        elif self.color is not None:
            ctx.done({"color": self.color})
        else:
            ctx.done(None)

    def _decided(self) -> bool:
        return self.color is not None or self.deferred

    def _begin_phase(self, ctx: Context) -> None:
        """Enter the current phase: trial, decide locally, or defer."""
        if len(self.palette) <= len(self.undecided):
            # The (deg+1)-list invariant |list| >= undecided + 1 has been
            # violated upstream (a whp-impossible failure of Lemma 3.1's
            # property (ii)).  Without it, progress is no longer
            # guaranteed — e.g. two neighbors sharing one singleton list
            # would conflict forever — so defer to the caller's remnant.
            self.deferred = True
            ctx.broadcast(self.undecided, "rd", self.phase)
            self._publish(ctx)
            return
        if not self.undecided:
            self.color = min(self.palette)
            self._publish(ctx)
            return
        choices = sorted(self.palette)
        self.trial = choices[ctx.rng.randrange(len(choices))]
        self.resolved = False
        ctx.broadcast(self.undecided, "trial", self.phase, self.trial)

    def _try_resolve(self, ctx: Context) -> bool:
        """Send this phase's resolve once every expected trial arrived.

        A deferring neighbor sends a resolve instead of a trial; either
        counts toward completeness.
        """
        if self.resolved or self.trial is None:
            return False
        p = self.phase
        trials = self.trials_seen.get(p, {})
        resolves = self.resolves_seen.get(p, {})
        if not all(u in trials or u in resolves for u in self.undecided):
            return False
        conflict = any(
            trials.get(u) == self.trial for u in self.undecided
        )
        self.resolved = True
        if conflict:
            ctx.broadcast(self.undecided, "rf", p)
        else:
            self.color = self.trial
            ctx.broadcast(self.undecided, "rc", p, self.trial)
            self._publish(ctx)
        return True

    def _try_advance(self, ctx: Context) -> bool:
        """Move to the next phase once every neighbor's resolve arrived."""
        if not self.resolved or self._decided():
            return False
        p = self.phase
        resolves = self.resolves_seen.get(p, {})
        if not all(u in resolves for u in self.undecided):
            return False
        for u in list(self.undecided):
            kind, value = resolves[u]
            if kind == "colored":
                self.palette.discard(value)
                self.undecided.discard(u)
            elif kind == "deferred":
                self.undecided.discard(u)
        self.trials_seen.pop(p, None)
        self.resolves_seen.pop(p, None)
        self.phase = p + 1
        self.trial = None
        return True

    def _pump(self, ctx: Context) -> None:
        """Run the state machine to a fixed point on buffered messages."""
        while not self._decided():
            if self._try_resolve(ctx):
                continue
            if self._try_advance(ctx):
                self._begin_phase(ctx)
                continue
            break

    # -- protocol ------------------------------------------------------------

    def on_round(self, ctx: Context, inbox) -> None:
        if not self.participate:
            if inbox:
                raise ProtocolError("bystander received a coloring message")
            self._publish(ctx)
            return
        for msg in inbox:
            if msg.tag == "trial":
                p, c = msg.fields
                self.trials_seen.setdefault(p, {})[msg.sender_id] = c
            elif msg.tag == "rf":
                (p,) = msg.fields
                self.resolves_seen.setdefault(p, {})[msg.sender_id] = (
                    "failed", None,
                )
            elif msg.tag == "rc":
                p, c = msg.fields
                self.resolves_seen.setdefault(p, {})[msg.sender_id] = (
                    "colored", c,
                )
            elif msg.tag == "rd":
                (p,) = msg.fields
                self.resolves_seen.setdefault(p, {})[msg.sender_id] = (
                    "deferred", None,
                )
        if ctx.round == 0:
            # Participants publish only on *decision* (color or defer):
            # an undecided node stays engine-unfinished, so a silence
            # cascade under faults is a starved casualty, never a stale
            # default output.
            self._begin_phase(ctx)
        if not self._decided():
            self._pump(ctx)

    # -- columnar engine (docs/columnar.md) ----------------------------------

    @classmethod
    def build_columnar_kernel(cls, net, algorithms, contexts):
        from repro.congest.columnar import ActiveGraph, get_numpy

        np_ = get_numpy()
        if np_ is None:
            return None
        n = net._n
        vertex_of = net.vertex_of
        adjacency = []
        for alg in algorithms:
            if not alg.participate:
                # Bystanders never speak; a participant still pointing
                # at one is an asymmetry the build below rejects (the
                # scalar path then raises its ProtocolError exactly).
                adjacency.append(())
                continue
            if any(
                type(c) is not int or c < 0 or c >= _MAX_KERNEL_COLOR
                for c in alg.palette
            ):
                return None
            adjacency.append(sorted(vertex_of(u) for u in alg.undecided))
        graph = ActiveGraph.build(np_, n, adjacency)
        if graph is None:
            return None
        return _JohanssonKernel(np_, net, graph, algorithms, contexts)


class _JohanssonBank:
    """Per-phase receive banks, slot-indexed like the Luby banks.

    ``cnt_any`` counts trial-or-defer arrivals (each undecided neighbor
    sends exactly one of the two per phase — the completeness test of
    ``_try_resolve``); ``cnt_res`` counts resolves (rf/rc/rd)."""

    __slots__ = ("cnt_any", "cnt_res", "got", "tval", "kind", "rval")

    def __init__(self, np_, n: int, num_edges: int):
        self.cnt_any = np_.zeros(n, dtype=np_.int64)
        self.cnt_res = np_.zeros(n, dtype=np_.int64)
        self.got = np_.zeros(num_edges, dtype=bool)
        self.tval = np_.zeros(num_edges, dtype=np_.int64)
        #: 0 = nothing, 1 = rf (failed), 2 = rc (colored), 3 = rd
        #: (deferred) — rc/rd remove the neighbor at advance, rf keeps it.
        self.kind = np_.zeros(num_edges, dtype=np_.int8)
        self.rval = np_.zeros(num_edges, dtype=np_.int64)


class _JohanssonKernel:
    """Vectorized Johansson phases over node-state columns.

    Palettes stay the algorithms' own Python sets (sorted-and-drawn in a
    per-node loop at phase boundaries, mirroring the scalar RNG use
    exactly); the per-round message grind — conflict detection and
    resolve bookkeeping over every active edge — runs as array ops.
    """

    def __init__(self, np_, net, graph, algorithms, contexts):
        self.np = np_
        self.net = net
        self.graph = graph
        self.algorithms = algorithms
        self.contexts = contexts
        n = self.n = net._n
        self.word_bits = net.word_bits
        self.phase = np_.zeros(n, dtype=np_.int64)
        self.trial = np_.full(n, -1, dtype=np_.int64)
        self.resolved = np_.ones(n, dtype=bool)
        self.live = np_.zeros(n, dtype=bool)
        self.banks: dict[int, _JohanssonBank] = {}

    def _bank(self, p: int) -> _JohanssonBank:
        bank = self.banks.get(p)
        if bank is None:
            bank = self.banks[p] = _JohanssonBank(
                self.np, self.n, len(self.graph.esrc)
            )
        return bank

    def _emit(self, tag, p, nodes, values, words):
        from repro.congest.columnar import SendBatch, block_positions

        np_ = self.np
        pos, owners = block_positions(np_, self.graph.indptr, nodes)
        mask = self.graph.alive[pos]
        own = owners[mask]
        return SendBatch(tag, p, pos[mask], values[own], words[own])

    def _begin(self, p, nodes):
        """Scalar-identical phase entry, in the scalar's branch order:
        defer first (palette invariant broken), trivial color second
        (no undecided neighbors), otherwise draw and broadcast a trial."""
        from repro.congest.columnar import int_words, int_words_scalar

        np_ = self.np
        needed = self.graph.needed
        contexts = self.contexts
        deferred = []
        starters = []
        for v in nodes:
            palette = self.algorithms[v].palette
            if len(palette) <= needed[v]:
                deferred.append(v)
                contexts[v].done({"deferred": True})
                self.live[v] = False
            elif needed[v] == 0:
                contexts[v].done({"color": min(palette)})
                self.live[v] = False
            else:
                choices = sorted(palette)
                self.trial[v] = choices[
                    contexts[v].rng.randrange(len(choices))
                ]
                self.resolved[v] = False
                starters.append(v)
        batches = []
        pw = int_words_scalar(p, self.word_bits)
        if deferred:
            da = np_.asarray(deferred, dtype=np_.int64)
            batch = self._emit(
                "rd", p, da,
                np_.zeros(len(da), dtype=np_.int64),
                np_.full(len(da), pw, dtype=np_.int64),
            )
            if len(batch.eids):
                batches.append(batch)
        if starters:
            sa = np_.asarray(starters, dtype=np_.int64)
            words = pw + int_words(np_, self.trial[sa], self.word_bits)
            batches.append(self._emit("trial", p, sa, self.trial[sa], words))
        return batches

    def begin(self):
        nodes = []
        for v in range(self.n):
            if self.algorithms[v].participate:
                self.live[v] = True
                nodes.append(v)
            else:
                self.contexts[v].done(None)
        return self._begin(0, nodes)

    def deliver(self, arrivals):
        np_ = self.np
        erev = self.graph.erev
        edst = self.graph.edst
        n = self.n
        touched = []
        for batch, subset in arrivals:
            eids = batch.eids if subset is None else batch.eids[subset]
            values = (
                batch.values if subset is None else batch.values[subset]
            )
            bank = self._bank(batch.phase)
            slots = erev[eids]
            receivers = edst[eids]
            counts = np_.bincount(receivers, minlength=n)
            tag = batch.tag
            if tag == "trial":
                bank.got[slots] = True
                bank.tval[slots] = values
                bank.cnt_any += counts
            elif tag == "rf":
                bank.kind[slots] = 1
                bank.cnt_res += counts
            elif tag == "rc":
                bank.kind[slots] = 2
                bank.rval[slots] = values
                bank.cnt_res += counts
            else:  # rd — a deferral counts as trial AND resolve
                bank.kind[slots] = 3
                bank.cnt_any += counts
                bank.cnt_res += counts
            touched.append(receivers)
        cand = np_.unique(np_.concatenate(touched))
        return self._pump(cand[self.live[cand]])

    def _pump(self, cand):
        """Fixpoint of resolve -> advance over the touched nodes."""
        from repro.congest.columnar import (
            block_positions,
            int_words,
            int_words_scalar,
        )

        np_ = self.np
        graph = self.graph
        needed = graph.needed
        algorithms = self.algorithms
        out = []
        while cand.size:
            nxt = []
            for p in np_.unique(self.phase[cand]).tolist():
                bank = self.banks.get(p)
                if bank is None:
                    continue
                nodes = cand[self.phase[cand] == p]
                pw = int_words_scalar(p, self.word_bits)
                # -- resolve: every neighbor trialed or deferred -------
                rn = nodes[
                    ~self.resolved[nodes]
                    & (bank.cnt_any[nodes] == needed[nodes])
                ]
                if rn.size:
                    pos, owners = block_positions(np_, graph.indptr, rn)
                    mask = graph.alive[pos]
                    mpos = pos[mask]
                    mown = owners[mask]
                    hits = bank.got[mpos] & (
                        bank.tval[mpos] == self.trial[rn][mown]
                    )
                    conflicted = (
                        np_.bincount(mown[hits], minlength=len(rn)) > 0
                    )
                    self.resolved[rn] = True
                    fails = rn[conflicted]
                    colors = rn[~conflicted]
                    if fails.size:
                        out.append(self._emit(
                            "rf", p, fails,
                            np_.zeros(len(fails), dtype=np_.int64),
                            np_.full(len(fails), pw, dtype=np_.int64),
                        ))
                    if colors.size:
                        cvals = self.trial[colors]
                        out.append(self._emit(
                            "rc", p, colors, cvals,
                            pw + int_words(np_, cvals, self.word_bits),
                        ))
                        for v, c in zip(colors.tolist(), cvals.tolist()):
                            self.contexts[v].done({"color": int(c)})
                        self.live[colors] = False
                # -- advance: every neighbor's resolve arrived ---------
                an = nodes[
                    self.resolved[nodes]
                    & self.live[nodes]
                    & (bank.cnt_res[nodes] == needed[nodes])
                ]
                if an.size:
                    pos, owners = block_positions(np_, graph.indptr, an)
                    mask = graph.alive[pos]
                    mpos = pos[mask]
                    mown = owners[mask]
                    kinds = bank.kind[mpos]
                    struck = kinds == 2
                    if struck.any():
                        for v, c in zip(
                            an[mown[struck]].tolist(),
                            bank.rval[mpos[struck]].tolist(),
                        ):
                            algorithms[v].palette.discard(c)
                    gone = kinds >= 2
                    if gone.any():
                        graph.alive[mpos[gone]] = False
                        needed[an] -= np_.bincount(
                            mown[gone], minlength=len(an)
                        )
                    self.phase[an] = p + 1
                    self.trial[an] = -1
                    if not bool((self.live & (self.phase <= p)).any()):
                        self.banks.pop(p, None)
                    out.extend(self._begin(p + 1, an.tolist()))
                    survivors = an[self.live[an]]
                    if survivors.size:
                        nxt.append(survivors)
            cand = (
                np_.unique(np_.concatenate(nxt))
                if nxt else np_.empty(0, dtype=np_.int64)
            )
        return out


def johansson_color(net, active_sets, palettes, participate=None,
                    name: str = "johansson"):
    """Driver: run one list-coloring stage.

    ``active_sets[v]`` / ``palettes[v]`` follow the class docstring;
    ``participate`` defaults to all-True.  Returns the StageResult.
    """
    n = net.graph.n
    if participate is None:
        participate = [True] * n
    inputs = [
        {
            "active": active_sets[v],
            "palette": frozenset(palettes[v]),
            "participate": participate[v],
        }
        for v in range(n)
    ]
    return net.run(JohanssonListColoring, inputs=inputs, name=name)
