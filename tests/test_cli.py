"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_color_default(capsys):
    code, out = run(capsys, "color", "--n", "80", "--p", "0.2",
                    "--seed", "1")
    assert code == 0
    assert "valid" in out and "True" in out
    assert "messages" in out


def test_color_json(capsys):
    code, out = run(capsys, "color", "--n", "60", "--p", "0.2",
                    "--json", "--seed", "2")
    assert code == 0
    payload = json.loads(out)
    assert payload["valid"] is True
    assert payload["messages"] > 0


def test_color_methods(capsys):
    for method in ("baseline-trial", "baseline-rank-greedy"):
        code, out = run(capsys, "color", "--n", "50", "--p", "0.25",
                        "--method", method, "--seed", "3")
        assert code == 0, method


def test_color_eps_delta(capsys):
    code, out = run(capsys, "color", "--n", "60", "--p", "0.3",
                    "--method", "kt1-eps-delta", "--epsilon", "0.8",
                    "--seed", "4")
    assert code == 0


def test_color_async(capsys):
    code, out = run(capsys, "color", "--n", "60", "--p", "0.25",
                    "--asynchronous", "--seed", "5")
    assert code == 0


def test_mis_default(capsys):
    code, out = run(capsys, "mis", "--n", "80", "--p", "0.2", "--seed", "6")
    assert code == 0
    assert "MIS size" in out


def test_mis_methods(capsys):
    for method in ("luby", "rank-greedy"):
        code, out = run(capsys, "mis", "--n", "50", "--p", "0.25",
                        "--method", method, "--seed", "7")
        assert code == 0, method


def test_lowerbound_silent(capsys):
    code, out = run(capsys, "lowerbound", "--t", "4", "--budget", "0",
                    "--sample", "5", "--seed", "8")
    assert code == 0
    assert "dichotomy holds: True" in out
    assert "correct on crossed: 0.0" in out


def test_lowerbound_mis_json(capsys):
    code, out = run(capsys, "lowerbound", "--t", "4", "--problem", "mis",
                    "--budget", "20", "--sample", "5", "--json",
                    "--seed", "9")
    assert code == 0
    payload = json.loads(out)
    assert payload["dichotomy holds"] is True


def test_cycles(capsys):
    code, out = run(capsys, "cycles", "--cycles", "6", "--k", "9",
                    "--fractions", "0.0", "1.0", "--trials", "2",
                    "--seed", "10")
    assert code == 0
    assert "success" in out


def test_info(capsys):
    code, out = run(capsys, "info", "--n", "100", "--p", "0.3")
    assert code == 0
    assert "word bits" in out


def test_graph_families(capsys):
    for family in ("gnp", "regular", "powerlaw", "barbell"):
        code, out = run(capsys, "info", "--n", "60", "--p", "0.2",
                        "--family", family)
        assert code == 0, family


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "info", "--n", "40"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "word bits" in proc.stdout


def test_profile_subcommand(capsys):
    rc = main(["profile", "--method", "luby", "--n", "40", "--p", "0.3",
               "--top", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "cumulative" in out         # pstats table rendered
    assert "msgs" in out and "valid=True" in out


def test_profile_unknown_method():
    with pytest.raises(SystemExit):
        main(["profile", "--method", "nope", "--n", "30"])


def test_sweep_timeout_flag(tmp_path, capsys):
    out = tmp_path / "t.jsonl"
    rc = main(["sweep", "--families", "gnp", "--sizes", "400", "--seeds",
               "0", "--methods", "kt1-delta-plus-one", "--p", "0.3",
               "--timeout", "0.4", "--out", str(out), "--json"])
    err = capsys.readouterr().err
    assert rc == 1                      # timed-out cell makes the sweep red
    assert "timeout" in err
    lines = [json.loads(l) for l in out.read_text().splitlines()]
    assert lines and lines[-1]["status"] == "timeout"
