"""Tests for the XOR edge-fingerprint sketches (FindAny primitive)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.substrates.sketches import (
    SketchParams,
    decode_token,
    default_levels,
    edge_level,
    edge_token,
    find_outgoing,
    local_sketch_vector,
    vector_indicates_no_outgoing,
    xor_vectors,
)

PARAMS = SketchParams(word_bits=20, levels=16, nonce=12345)


def test_token_roundtrip():
    token = edge_token(17, 99, PARAMS)
    assert decode_token(token, 0, PARAMS) == (17, 99)


def test_token_symmetric():
    assert edge_token(5, 9, PARAMS) == edge_token(9, 5, PARAMS)


def test_token_overflow_rejected():
    with pytest.raises(ReproError):
        edge_token(1, 2**25, PARAMS)


def test_decode_rejects_zero():
    assert decode_token(0, 0, PARAMS) is None


def test_decode_rejects_corrupt_checksum():
    token = edge_token(17, 99, PARAMS)
    assert decode_token(token ^ (1 << 50), 0, PARAMS) is None


def test_decode_rejects_wrong_level():
    token = edge_token(3, 4, PARAMS)
    lvl = edge_level(3, 4, PARAMS.nonce)
    assert decode_token(token, lvl + 1, PARAMS) is None


def test_decode_rejects_collision_of_two():
    a = edge_token(1, 2, PARAMS)
    b = edge_token(3, 4, PARAMS)
    # XOR of two tokens should fail the checksum whp.
    assert decode_token(a ^ b, 0, PARAMS) is None


def test_level_distribution_geometric():
    nonce = 7
    counts = [0] * 8
    for a in range(400):
        lvl = min(edge_level(a, a + 1000, nonce), 7)
        counts[lvl] += 1
    # level 0 (exactly 0 trailing zeros) should hold about half.
    assert 120 < counts[0] < 280


def test_internal_edges_cancel():
    """The KKT identity: XOR over all incident vectors of a vertex set
    leaves exactly the outgoing edges."""
    # Triangle {0,1,2} plus an outgoing edge (2, 5).
    values = {0: 10, 1: 11, 2: 12, 5: 15}
    adj = {0: [1, 2], 1: [0, 2], 2: [0, 1, 5], 5: [2]}
    acc = [0] * PARAMS.levels
    for v in (0, 1, 2):  # the fragment
        vec = local_sketch_vector(
            values[v], [values[u] for u in adj[v]], PARAMS
        )
        xor_vectors(acc, vec)
    assert decode_token(acc[0], 0, PARAMS) == (12, 15)


def test_no_outgoing_vector_zero():
    values = {0: 10, 1: 11, 2: 12}
    adj = {0: [1, 2], 1: [0, 2], 2: [0, 1]}
    acc = [0] * PARAMS.levels
    for v in (0, 1, 2):
        vec = local_sketch_vector(
            values[v], [values[u] for u in adj[v]], PARAMS
        )
        xor_vectors(acc, vec)
    assert vector_indicates_no_outgoing(acc)
    assert find_outgoing(acc, PARAMS) is None


def test_find_outgoing_single_edge():
    vec = [0] * PARAMS.levels
    token = edge_token(100, 200, PARAMS)
    top = min(edge_level(100, 200, PARAMS.nonce), PARAMS.levels - 1)
    for j in range(top + 1):
        vec[j] ^= token
    found = find_outgoing(vec, PARAMS)
    assert found is not None
    assert (found[0], found[1]) == (100, 200)


def test_find_outgoing_among_many():
    """Across fresh nonces, some level isolates one edge quickly.

    A single nonce can fail (that is why Boruvka retries per phase); the
    protocol-level guarantee is success within a few retries.
    """
    edges = [(i, 500 + i) for i in range(60)]
    successes = 0
    for nonce in range(6):
        params = SketchParams(word_bits=20, levels=16, nonce=nonce)
        vec = [0] * params.levels
        for a, b in edges:
            token = edge_token(a, b, params)
            top = min(edge_level(a, b, params.nonce), params.levels - 1)
            for j in range(top + 1):
                vec[j] ^= token
        found = find_outgoing(vec, params)
        if found is not None:
            assert (found[0], found[1]) in edges
            successes += 1
    assert successes >= 3


def test_default_levels_scale():
    assert default_levels(10) < default_levels(10_000)
    assert default_levels(2) >= 4


def test_token_words():
    p = SketchParams(word_bits=20, levels=8, nonce=1)
    assert p.token_bits == 72
    assert p.token_words(20) == 4


@given(st.integers(0, 2**19), st.integers(0, 2**19), st.integers(0, 2**30))
@settings(max_examples=60, deadline=None)
def test_token_roundtrip_property(a, b, nonce):
    if a == b:
        return
    params = SketchParams(word_bits=20, levels=8, nonce=nonce)
    token = edge_token(a, b, params)
    lo, hi = min(a, b), max(a, b)
    assert decode_token(token, 0, params) == (lo, hi)
