"""Tests for the danner substitute (Theorem 1.1 interface)."""

import math

import pytest

from repro.congest.network import SyncNetwork
from repro.graphs.analysis import diameter, is_connected
from repro.graphs.core import Graph
from repro.graphs.generators import barbell_graph, connected_gnp_graph
from repro.substrates.danner import build_danner, is_landmark, share_random_bits

from tests.conftest import connected_families


@pytest.mark.parametrize("name,graph", connected_families(seed=200))
def test_danner_spanning_connected(name, graph):
    net = SyncNetwork(graph, seed=1)
    d = build_danner(net, delta=0.5, seed=2)
    h = Graph(graph.n, d.edge_list(net))
    assert is_connected(h), name
    assert h.n == graph.n


def test_danner_is_subgraph(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=3)
    d = build_danner(net, delta=0.5, seed=4)
    for u, v in d.edge_list(net):
        assert gnp_medium.has_edge(u, v)


def test_danner_active_sets_symmetric(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=5)
    d = build_danner(net, delta=0.5, seed=6)
    for v in range(gnp_medium.n):
        for u_id in d.active[v]:
            u = net.vertex_of(u_id)
            assert net.id_of(v) in d.active[u]


def test_danner_sparsifies_dense_graphs():
    g = connected_gnp_graph(400, 0.5, seed=7)   # m ~ 40k
    net = SyncNetwork(g, seed=8)
    d = build_danner(net, delta=0.5, seed=9)
    assert d.edge_count(net) < 0.55 * g.m


def test_danner_delta_edge_bound():
    """The substitute's documented bound: Õ(n^{1+δ} + m·log n / n^δ + n)."""
    g = connected_gnp_graph(300, 0.3, seed=10)
    n, m = g.n, g.m
    for delta in (0.25, 0.5, 0.75):
        net = SyncNetwork(g, seed=11)
        d = build_danner(net, delta=delta, seed=12)
        bound = 3.0 * (
            n ** (1 + delta)
            + m * math.log(n) / (n ** delta)
            + n
        )
        assert d.edge_count(net) <= bound, delta


def test_danner_diameter_reasonable():
    g = connected_gnp_graph(300, 0.2, seed=13)
    net = SyncNetwork(g, seed=14)
    d = build_danner(net, delta=0.5, seed=15)
    h = Graph(g.n, d.edge_list(net))
    bound = diameter(g) + math.ceil(math.sqrt(g.n)) * 4 + 8
    assert diameter(h) <= bound


def test_danner_repairs_bridges():
    """A barbell's bridge must survive sparsification (repair path)."""
    g = barbell_graph(40, 1)
    net = SyncNetwork(g, seed=16)
    d = build_danner(net, delta=0.25, seed=17, landmark_constant=0.4)
    h = Graph(g.n, d.edge_list(net))
    assert is_connected(h)


def test_danner_leader_and_tree(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=18)
    d = build_danner(net, delta=0.5, seed=19)
    assert d.parents[d.leader_vertex] is None
    reached = 0
    for v in range(gnp_medium.n):
        cur = v
        while d.parents[cur] is not None:
            cur = net.vertex_of(d.parents[cur])
        if cur == d.leader_vertex:
            reached += 1
    assert reached == gnp_medium.n


def test_is_landmark_deterministic():
    assert is_landmark(12345, "s", 0.5) == is_landmark(12345, "s", 0.5)
    # monotone in probability
    hits_lo = sum(is_landmark(x, "s", 0.1) for x in range(2000))
    hits_hi = sum(is_landmark(x, "s", 0.6) for x in range(2000))
    assert hits_lo < hits_hi
    assert abs(hits_lo - 200) < 120
    assert not is_landmark(7, "s", 0.0)


def test_share_random_bits(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=20)
    d = build_danner(net, delta=0.5, seed=21)
    bits = share_random_bits(net, d, 512)
    assert len(bits) == 512


def test_share_random_bits_all_agree(gnp_small):
    net = SyncNetwork(gnp_small, seed=22)
    d = build_danner(net, delta=0.5, seed=23)
    stage_before = len(net.stats.stages)
    stage = net.run  # noqa: F841 - documented path below
    from repro.substrates.flooding import ShareRandomBits

    res = net.run(lambda: ShareRandomBits(128), inputs=d.tree_inputs(),
                  name="bits")
    assert all(o == res.outputs[0] for o in res.outputs)
    assert len(net.stats.stages) == stage_before + 1


def test_danner_message_budget_scales_sublinearly_in_m():
    """Danner cost tracks |H|, not m, on dense graphs."""
    sparse = connected_gnp_graph(250, 0.08, seed=24)
    dense = connected_gnp_graph(250, 0.5, seed=25)
    costs = {}
    for tag, g in (("sparse", sparse), ("dense", dense)):
        net = SyncNetwork(g, seed=26)
        build_danner(net, delta=0.5, seed=27)
        costs[tag] = net.stats.messages / g.m
    # per-edge cost should drop sharply when the graph densifies
    assert costs["dense"] < 0.7 * costs["sparse"]
