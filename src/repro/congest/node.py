"""The per-node programming model.

A protocol is a subclass of :class:`NodeAlgorithm`; every node runs its own
instance.  The node's window on the world is its :class:`Context`:

* ``ctx.my_id`` / ``ctx.neighbor_ids`` / ``ctx.knowledge`` — KT-rho
  initial knowledge (IDs only, never vertex indices);
* ``ctx.n`` — the network size (the paper's bounds allow known n);
* ``ctx.input`` — this node's input for the current stage (handed over
  from the previous stage's output by the protocol driver);
* ``ctx.rng`` — private randomness;
* ``ctx.send(to_id, tag, *fields)`` — send over the edge to a neighbor;
* ``ctx.broadcast(to_ids, tag, *fields)`` — send the same payload to
  several neighbors; count-identical to a ``ctx.send`` loop, but the
  engine analyzes the payload once for the whole fan-out;
* ``ctx.done(output)`` — mark this node finished with a final output
  (the node keeps receiving and may keep answering messages; the stage
  ends at global quiescence: all nodes done and no messages in flight).

Setting the class attribute ``passive_when_idle = True`` tells the engine
the algorithm acts only on arriving messages after round 0; the engine then
skips idle nodes, which keeps long-round protocols affordable without
changing semantics (such protocols never act on silence).
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.congest.ids import NodeId
from repro.congest.knowledge import KTKnowledge
from repro.congest.message import Msg
from repro.errors import ModelViolationError


class Context:
    """A node's interface to the network (created by the engine)."""

    __slots__ = (
        "knowledge", "n", "input", "_rng", "round",
        "_network", "_vertex", "_finished", "_output", "_send_allowed",
    )

    def __init__(self, network, vertex: int, knowledge: KTKnowledge,
                 rng, node_input: Any):
        self.knowledge = knowledge
        self.n = knowledge.n
        self.input = node_input
        # ``rng`` may be a ready random.Random or a seed string; a string
        # is materialized lazily on first ``ctx.rng`` access.  Seeding a
        # Random hashes the seed string (SHA-512), and most stages never
        # draw randomness — per stage x per node that cost is measurable.
        self._rng = rng
        self.round = 0
        self._network = network
        self._vertex = vertex
        self._finished = False
        self._output: Any = None
        self._send_allowed = False

    # -- identity ------------------------------------------------------------

    @property
    def rng(self):
        """Private per-node randomness (materialized on first use)."""
        r = self._rng
        if type(r) is str:
            r = self._rng = random.Random(r)
        return r

    @property
    def my_id(self) -> NodeId:
        return self.knowledge.my_id

    @property
    def neighbor_ids(self) -> tuple[NodeId, ...]:
        return self.knowledge.neighbor_ids

    @property
    def degree(self) -> int:
        return len(self.knowledge.neighbor_ids)

    @property
    def word_bits(self) -> int:
        """Bits per CONGEST word (a protocol constant, Theta(log n))."""
        return self._network.word_bits

    @property
    def words_per_message(self) -> int:
        """Words per CONGEST message (a protocol constant)."""
        return self._network.words_per_message

    # -- actions -------------------------------------------------------------

    def send(self, to_id: NodeId, tag: str, *fields) -> None:
        """Send a message over the edge to the neighbor with ID ``to_id``."""
        if not self._send_allowed:
            raise ModelViolationError(
                "send() is only allowed inside on_round(), not setup()"
            )
        self._network._submit_send(self._vertex, to_id, tag, tuple(fields))

    def broadcast(self, to_ids, tag: str, *fields) -> None:
        """Send one payload to every neighbor in ``to_ids`` (fan-out).

        Semantically identical to ``for u in to_ids: ctx.send(u, tag,
        *fields)`` — same sends, charges, per-link scheduling, and
        utilized edges, in the same order — but the engine analyzes the
        payload once and shares the (word count, embedded IDs) result
        across the whole fan-out.  The idiomatic path for the
        neighbor-broadcast rounds that dominate symmetry-breaking
        protocols.
        """
        if not self._send_allowed:
            raise ModelViolationError(
                "broadcast() is only allowed inside on_round(), not setup()"
            )
        self._network._submit_broadcast(
            self._vertex, to_ids, tag, tuple(fields)
        )

    def done(self, output: Any = None) -> None:
        """Declare this node finished with the given stage output."""
        self._finished = True
        self._output = output

    def set_output(self, output: Any) -> None:
        """Update the output without toggling the finished flag."""
        self._output = output

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def output(self) -> Any:
        return self._output


class NodeAlgorithm:
    """Base class for per-node protocol logic.

    Subclasses override :meth:`setup` (local initialization, no sends) and
    :meth:`on_round` (called every round with the messages delivered this
    round).  Round 0 delivers an empty inbox.
    """

    #: If True, the engine skips calling on_round for nodes with an empty
    #: inbox after round 0 (pure message-driven protocols).
    passive_when_idle = False

    def setup(self, ctx: Context) -> None:
        """Local initialization before round 0.  Sends are forbidden."""

    def on_round(self, ctx: Context, inbox: list[Msg]) -> None:
        """Handle one synchronous round.  Override in subclasses."""
        raise NotImplementedError


class ColumnarStage:
    """Opt-in marker: this algorithm can run under the columnar engine.

    A stage class that mixes in ColumnarStage promises a
    :meth:`build_columnar_kernel` classmethod that inspects the
    *post-setup* per-node instances and either returns a kernel driving
    the whole stage as array operations, or None when this particular
    instance of the stage is irregular (asymmetric active sets,
    unsupported payload values, ...), in which case the scheduler runs
    the ordinary node-by-node path.  The kernel contract — ``begin()`` /
    ``deliver(arrivals)`` returning
    :class:`~repro.congest.columnar.SendBatch` lists, outputs published
    through the regular ``ctx.done`` — is specified in
    ``docs/columnar.md``; counts must be bit-identical to the scalar
    execution (gated by the parity suite and check_regression.py).
    """

    @classmethod
    def build_columnar_kernel(cls, net, algorithms, contexts):
        """Return a columnar kernel for this stage, or None to decline."""
        return None


class FunctionAlgorithm(NodeAlgorithm):
    """Wrap a plain function ``fn(ctx, inbox)`` as a NodeAlgorithm.

    Convenient for tests and tiny single-purpose stages.
    """

    def __init__(self, fn, passive: bool = False):
        self._fn = fn
        self.passive_when_idle = passive

    def on_round(self, ctx: Context, inbox: list[Msg]) -> None:
        self._fn(ctx, inbox)


class SilentAlgorithm(NodeAlgorithm):
    """A node that computes its output locally and never communicates.

    The lower-bound experiments use silent (and near-silent) algorithms to
    exhibit the indistinguishability dichotomy of Section 2.
    """

    def __init__(self, compute):
        self._compute = compute

    def on_round(self, ctx: Context, inbox: list[Msg]) -> None:
        ctx.done(self._compute(ctx))
