"""FIG2 / T2.10–T2.16 / T2.17 — the lower-bound experiments.

* The crossing dichotomy (Sections 2.3-2.4): correct comparison-based
  algorithms utilize Θ(n²) edges on the family F; message-starved ones
  fail on crossed graphs exactly as Lemmas 2.9/2.13 predict, and the
  probe-budget sweep traces the Lemma 2.11 correctness/messages curve.
* The mute-cycle trade-off (Theorem 2.17): success on n/k disjoint
  k-cycles requires Θ(n) messages.
"""

import pytest

from repro.coloring.baselines import RankGreedyColoring
from repro.lowerbounds.algorithms import (
    ProbedCountColoring,
    ProbedExtremaMIS,
    SilentCountColoring,
    SilentExtremaMIS,
)
from repro.lowerbounds.construction import crossing_instance
from repro.lowerbounds.crossing_experiment import (
    dichotomy_experiment,
    summarize_records,
)
from repro.lowerbounds.kt_rho import cycle_tradeoff_sweep
from repro.mis.baselines import RankGreedyMIS

from _util import fit_exponent, fmt, print_table

SEED = 66


def test_utilization_scales_quadratically(benchmark):
    """T2.10/T2.14: correct comparison-based algorithms utilize Θ(n²)
    edges on the family (n = 6t, m = 4t²)."""

    def sweep():
        rows = []
        for t in (4, 6, 9, 13):
            inst = crossing_instance(t, 0, 0, 0)
            from repro.congest.network import SyncNetwork

            pts = {}
            for name, factory in (("coloring", RankGreedyColoring),
                                  ("mis", RankGreedyMIS)):
                net = SyncNetwork(inst.base, assignment=inst.psi,
                                  comparison_based=True, seed=SEED)
                net.run(factory, name=name)
                pts[name] = net.stats.utilized_count
            rows.append({"t": t, "n": 6 * t, "m": inst.base.m, **pts})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "T2.10/T2.14: utilized edges of correct comparison-based algorithms",
        ["t", "n", "m", "coloring", "mis"],
        [(r["t"], r["n"], r["m"], r["coloring"], r["mis"]) for r in rows],
    )
    col_exp = fit_exponent([(r["n"], r["coloring"]) for r in rows])
    mis_exp = fit_exponent([(r["n"], r["mis"]) for r in rows])
    print(f"fitted exponents: coloring ~ n^{col_exp:.2f}, "
          f"mis ~ n^{mis_exp:.2f} (theory: 2)")
    benchmark.extra_info["coloring_exponent"] = col_exp
    benchmark.extra_info["mis_exponent"] = mis_exp
    assert col_exp > 1.8
    assert mis_exp > 1.8


def test_dichotomy_probe_sweep(benchmark):
    """Lemma 2.11 / Theorems 2.12, 2.16: correctness fraction on the
    family vs message budget."""

    def sweep():
        table = []
        for problem, factory in (
            ("coloring", ProbedCountColoring),
            ("mis", ProbedExtremaMIS),
        ):
            for k in (0, 1, 3, 6, 12, 24):
                recs = dichotomy_experiment(
                    8, lambda k=k: factory(k), problem,
                    sample=16, seed=SEED,
                )
                s = summarize_records(recs)
                table.append({
                    "problem": problem, "budget": k,
                    "messages": s["mean_messages"],
                    "utilized": s["mean_utilized_edges"],
                    "correct": s["crossed_correct_fraction"],
                    "dichotomy": s["dichotomy_holds"],
                })
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "L2.11: correctness on crossed graphs vs probe budget (t=8)",
        ["problem", "budget k", "mean msgs", "mean utilized", "correct",
         "dichotomy"],
        [(r["problem"], r["budget"], fmt(r["messages"], 0),
          fmt(r["utilized"], 0), fmt(r["correct"]), r["dichotomy"])
         for r in table],
    )
    benchmark.extra_info["rows"] = table
    assert all(r["dichotomy"] for r in table)
    for problem in ("coloring", "mis"):
        rows = [r for r in table if r["problem"] == problem]
        assert rows[0]["correct"] == 0.0
        assert rows[-1]["correct"] >= 0.9
        corr = [r["correct"] for r in rows]
        assert corr == sorted(corr)


def test_silent_failures_match_lemmas(benchmark):
    """Lemmas 2.9/2.13 exactly: zero-message algorithms are correct on
    every base graph and wrong on every crossed graph."""

    def run():
        out = {}
        for problem, factory in (("coloring", SilentCountColoring),
                                 ("mis", SilentExtremaMIS)):
            recs = dichotomy_experiment(7, factory, problem,
                                        sample=20, seed=SEED + 1)
            out[problem] = summarize_records(recs)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Lemmas 2.9/2.13: silent algorithms on the family F (t=7)",
        ["problem", "base correct", "crossed correct", "similar+wrong"],
        [(p, fmt(s["base_correct_fraction"]),
          fmt(s["crossed_correct_fraction"]), s["dichotomy_holds"])
         for p, s in out.items()],
    )
    for s in out.values():
        assert s["base_correct_fraction"] == 1.0
        assert s["crossed_correct_fraction"] == 0.0
        assert s["dichotomy_holds"]


def test_mute_cycle_tradeoff(benchmark):
    """T2.17: success probability vs message budget on disjoint cycles."""

    def sweep():
        return cycle_tradeoff_sweep(
            30, 12, fractions=(0.0, 0.5, 0.8, 0.95, 1.0), trials=6,
            seed=SEED,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "T2.17: mute-cycle experiment (30 cycles of length 12, n=360)",
        ["active fraction", "mean msgs", "success rate", "mean failed"],
        [(r["fraction"], fmt(r["mean_messages"], 0),
          fmt(r["success_rate"]), fmt(r["mean_failed_cycles"], 1))
         for r in rows],
    )
    benchmark.extra_info["rows"] = rows
    assert rows[0]["success_rate"] == 0.0
    assert rows[-1]["success_rate"] == 1.0
    # success needs nearly all cycles active: Θ(n) messages
    partial = [r for r in rows if 0 < r["fraction"] < 1]
    assert all(r["success_rate"] < 1.0 for r in partial)


def test_mute_cycles_insensitive_to_rho(benchmark):
    """T2.17 holds for every constant rho: the curve does not move when
    nodes get KT-2 or KT-3 knowledge."""

    def sweep():
        out = {}
        for rho in (1, 2, 3):
            out[rho] = cycle_tradeoff_sweep(
                20, 12, fractions=(0.5, 1.0), trials=4,
                seed=SEED + 2, rho=rho,
            )
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "T2.17: knowledge radius does not rescue mute cycles",
        ["rho", "f=0.5 success", "f=1.0 success", "f=1.0 msgs"],
        [(rho, fmt(rows[0]["success_rate"]), fmt(rows[1]["success_rate"]),
          fmt(rows[1]["mean_messages"], 0))
         for rho, rows in out.items()],
    )
    reference = out[1]
    for rho in (2, 3):
        for i, row in enumerate(out[rho]):
            assert row["success_rate"] == reference[i]["success_rate"]
            assert row["mean_messages"] == reference[i]["mean_messages"]
