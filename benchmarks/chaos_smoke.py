#!/usr/bin/env python
"""Chaos smoke: kill real processes mid-sweep, prove the store heals.

The acceptance scenario for the self-healing farm, with nothing faked:

1. A coordinator subprocess (``repro sweep --serve``) hosts a small
   sweep with the queue journal enabled.
2. Worker ``w0`` starts pulling cells and is **SIGKILL**ed while the
   coordinator's ``status`` verb shows it holding a lease (mid-cell).
3. Worker ``w1`` takes over; once it has made progress *and* is
   mid-cell itself, the coordinator is **bounced**: SIGTERM (graceful
   drain — must exit 0), then restarted on the same port with
   ``--resume-journal``.
4. ``w1`` reconnects through its backoff loop, finishes the sweep, and
   the restarted coordinator exits 0.

Afterwards the merged store must be **bit-identical per key** to a
serial in-process ``run_cell`` pass (modulo the volatile ``wall_s`` /
``attempts`` fields), contain **zero lost records**, and ``w1`` must
have demonstrably reconnected (its stderr logs the attempts; its
completion count covers every post-bounce cell).

Run directly (``python benchmarks/chaos_smoke.py``) or via the
slow-marked test in tests/test_chaos.py; verify.sh runs it as the
chaos stage.  Wall clock is a few seconds — the sweep is 8 cells of
~0.1-0.4s each, big enough to kill things mid-flight, small enough
for CI.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.errors import DistributedError  # noqa: E402
from repro.experiments import ResultStore, SweepSpec, run_cell  # noqa: E402
from repro.experiments.distributed import fetch_status  # noqa: E402

# ~0.1-0.4s per cell on a laptop: long enough that a SIGKILL lands
# mid-cell, short enough that the whole scenario stays CI-sized.
SPEC_ARGS = ["--families", "gnp", "--sizes", "90", "120",
             "--seeds", "0", "1", "2", "3", "--methods", "kt1-eps-delta"]
SPEC = SweepSpec(families=("gnp",), sizes=(90, 120), seeds=(0, 1, 2, 3),
                 methods=("kt1-eps-delta",))
#: Record fields that legitimately differ between a farm run and a
#: serial one: how long it took (total and per stage) and how many
#: supervised attempts.
VOLATILE = ("wall_s", "stage_wall", "attempts")


def _env():
    env = dict(os.environ)
    extra = os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    env["PYTHONPATH"] = SRC + extra
    return env


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(argv, stdout, stderr):
    return subprocess.Popen([sys.executable, "-m", "repro"] + argv,
                            env=_env(), stdout=stdout, stderr=stderr)


def _poll_status(port, predicate, what, deadline_s=60.0):
    """Spin on the read-only status verb until ``predicate(snap)``."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            snap = fetch_status("127.0.0.1", port, timeout_s=2.0)
        except DistributedError:
            time.sleep(0.02)
            continue
        if predicate(snap):
            return snap
        time.sleep(0.02)
    raise SystemExit(f"chaos smoke: timed out waiting for {what}")


def _wait(proc, what, timeout_s=90.0):
    try:
        return proc.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit(f"chaos smoke: {what} did not exit "
                         f"within {timeout_s:.0f}s")


def _holds_lease(snap, worker):
    entry = snap["workers"].get(worker)
    return entry is not None and entry["connected"] and entry["leases"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tmpdir)")
    args = parser.parse_args()
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    out = os.path.join(workdir, "chaos.jsonl")
    port = _free_port()
    serve_argv = (["sweep", "--serve", f"127.0.0.1:{port}", "--out", out,
                   "--lease", "5", "--journal-interval", "0.2",
                   "--drain-grace", "0.05", "--status-interval", "0"]
                  + SPEC_ARGS)
    worker_argv = ["worker", "--connect", f"127.0.0.1:{port}",
                   "--poll", "0.1", "--reconnect", "25",
                   "--backoff", "0.2", "--backoff-max", "2", "--json"]
    total = SPEC.size
    procs = []
    logs = {}

    def spawn(name, argv):
        logs[name] = (open(os.path.join(workdir, name + ".out"), "w+"),
                      open(os.path.join(workdir, name + ".err"), "w+"))
        proc = _spawn(argv, *logs[name])
        procs.append(proc)
        return proc

    try:
        coord_a = spawn("coord-a", serve_argv)

        # -- scenario 1: SIGKILL a worker mid-cell ------------------------
        w0 = spawn("w0", worker_argv + ["--id", "w0"])
        _poll_status(port, lambda s: _holds_lease(s, "w0"),
                     "w0 to hold a lease")
        os.kill(w0.pid, signal.SIGKILL)      # no goodbye, no cleanup
        print(f"chaos smoke: SIGKILLed w0 mid-cell (pid {w0.pid})")

        # -- scenario 2: bounce the coordinator mid-sweep ----------------
        w1 = spawn("w1", worker_argv + ["--id", "w1"])
        snap = _poll_status(
            port,
            lambda s: (s["done"] >= 2 and s["pending"] >= 1
                       and _holds_lease(s, "w1")),
            "w1 to be mid-cell with work remaining")
        done_at_bounce = snap["done"]
        coord_a.send_signal(signal.SIGTERM)
        rc = _wait(coord_a, "draining coordinator", timeout_s=30.0)
        if rc != 0:
            raise SystemExit(
                f"chaos smoke: drained coordinator exited {rc}, want 0")
        print(f"chaos smoke: coordinator drained at "
              f"{done_at_bounce}/{total} done (exit 0)")

        coord_b = spawn("coord-b", serve_argv + ["--resume-journal"])
        rc = _wait(coord_b, "restarted coordinator")
        if rc != 0:
            raise SystemExit(
                f"chaos smoke: restarted coordinator exited {rc}, want 0")
        rc = _wait(w1, "surviving worker w1")
        if rc != 0:
            raise SystemExit(f"chaos smoke: w1 exited {rc}, want 0")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    # -- the proof: store vs serial, bit for bit -------------------------
    for fh, _ in logs.values():
        fh.flush()
    latest = ResultStore(out).latest_per_key()
    serial = {c.key(): run_cell(c) for c in SPEC.cells()}
    if set(latest) != set(serial):
        raise SystemExit(
            f"chaos smoke: store keys != spec keys "
            f"(missing {sorted(set(serial) - set(latest))}, "
            f"extra {sorted(set(latest) - set(serial))})")
    lost = [r for r in ResultStore(out).iter_records()
            if r.get("status") == "lost"]
    if lost:
        raise SystemExit(f"chaos smoke: {len(lost)} lost record(s): "
                         f"{[r['key'] for r in lost]}")
    for key, rec in latest.items():
        want = dict(serial[key])
        got = dict(rec)
        for field in VOLATILE:
            want.pop(field, None)
            got.pop(field, None)
        if got != want:
            diff = {k for k in set(want) | set(got)
                    if want.get(k) != got.get(k)}
            raise SystemExit(
                f"chaos smoke: record for {key} differs from serial "
                f"run in field(s) {sorted(diff)}")

    # -- the survivor really reconnected ---------------------------------
    w1_err = open(os.path.join(workdir, "w1.err")).read()
    if "reconnect attempt" not in w1_err:
        raise SystemExit("chaos smoke: w1 never logged a reconnect "
                         "attempt — the bounce was not exercised")
    w1_out = open(os.path.join(workdir, "w1.out")).read()
    w1_count = json.loads(w1_out)["cells run"]
    # Every post-bounce cell was w1's (w0 is dead), and it may have run
    # one more mid-bounce than the last pre-bounce status showed.
    if w1_count < total - done_at_bounce - 1 or w1_count < 1:
        raise SystemExit(
            f"chaos smoke: w1 completed {w1_count} cells, expected at "
            f"least {total - done_at_bounce - 1} (post-bounce work)")

    print(f"chaos smoke: OK — {total} cells bit-identical to serial, "
          f"0 lost, w0 SIGKILLed, coordinator bounced, w1 reconnected "
          f"and completed {w1_count}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
