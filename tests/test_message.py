"""Tests for payload word accounting and ID scanning."""

import pytest

from repro.congest.ids import NodeId, OpaqueId
from repro.congest.message import Msg, iter_node_ids, payload_words
from repro.errors import ModelViolationError
from repro.util.bitstrings import BitString


def test_empty_payload_one_word():
    assert payload_words((), 16) == 1


def test_small_int_one_word():
    assert payload_words((5,), 16) == 1
    assert payload_words((0,), 16) == 1


def test_large_int_multiple_words():
    assert payload_words((1 << 40,), 16) == 3


def test_negative_int():
    assert payload_words((-3,), 16) == 1


def test_bool_and_none_one_word():
    assert payload_words((True, None), 16) == 2


def test_node_id_one_word():
    assert payload_words((NodeId(10**9),), 16) == 1
    assert payload_words((OpaqueId(10**9),), 16) == 1


def test_string_tagging():
    assert payload_words(("ok",), 16) == 1
    with pytest.raises(ModelViolationError):
        payload_words(("x" * 100,), 16)


def test_bitstring_words():
    b = BitString(tuple([1] * 40))
    assert payload_words((b,), 16) == 3


def test_tuple_recursion():
    assert payload_words(((1, 2, 3),), 16) == 3
    assert payload_words((frozenset({1, 2}),), 16) == 2


def test_unencodable_rejected():
    with pytest.raises(ModelViolationError):
        payload_words(({"a": 1},), 16)
    with pytest.raises(ModelViolationError):
        payload_words((3.14,), 16)


def test_iter_node_ids_nested():
    a, b = NodeId(1), NodeId(2)
    fields = (5, (a, ("x", b)), frozenset({a}))
    found = list(iter_node_ids(fields))
    assert found.count(a) == 2
    assert found.count(b) == 1


def test_iter_node_ids_none():
    assert list(iter_node_ids((1, "x", None))) == []


def test_msg_repr():
    m = Msg(NodeId(3), "hello", (1,))
    assert "hello" in repr(m)


def test_encodable_set_consistent_both_directions():
    """The word-accounting scan and the Definition 2.3 ID scan must agree
    on the payload type system: every container payload_words accepts is
    traversed by iter_node_ids, and everything payload_words rejects is
    ignored (never traversed) by iter_node_ids.  Regression: lists were
    rejected as unencodable yet iter_node_ids recursed into them."""
    from repro.congest.message import ENCODABLE_CONTAINERS, analyze_payload

    nid = NodeId(7)
    for container in ENCODABLE_CONTAINERS:
        fields = (container((nid,)),)
        assert payload_words(fields, 16) == 1
        assert list(iter_node_ids(fields)) == [nid]
        words, ids = analyze_payload(fields, 16)
        assert (words, ids) == (1, (nid,))
    for bad in ([nid], {nid}, {"k": nid}, 3.14):
        with pytest.raises(ModelViolationError):
            payload_words((bad,), 16)
        # The ID scan does not recurse into unencodable containers.
        assert list(iter_node_ids((bad,))) == []


def test_analyze_payload_matches_separate_scans():
    from repro.congest.message import analyze_payload

    nid_a, nid_b = NodeId(3), NodeId(9)
    cases = [
        (),
        (1, True, None),
        (nid_a,),
        ((nid_a, (nid_b, 5)), frozenset({2})),
        (1 << 40, "tag"),
        (BitString(tuple([1] * 40)),),
    ]
    for fields in cases:
        words, ids = analyze_payload(fields, 16)
        assert words == payload_words(fields, 16)
        assert list(ids) == list(iter_node_ids(fields))
