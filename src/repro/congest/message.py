"""CONGEST messages and O(log n)-bit word accounting.

A CONGEST message carries O(log n) bits.  We express payload size in
*words*, where one word is Theta(log n) bits: a node ID is one word, a
small integer (< ID space) is one word, and longer payloads are charged
ceil(bits / word) words.  A single send of w words is charged
``ceil(w / words_per_message)`` CONGEST messages, so protocols are free to
hand the engine a logically-atomic payload and still pay the honest
message price (this mirrors the standard "split into O(log n)-bit pieces"
convention).

Payload fields may contain: ``int``, ``bool``, ``None``, short ``str``
tags, :class:`~repro.congest.ids.NodeId`,
:class:`~repro.util.bitstrings.BitString`, and tuples/frozensets of these.
The engine scans payloads for NodeIds to maintain Definition 2.3's
utilized-edge accounting.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.congest.ids import NodeId
from repro.errors import ModelViolationError
from repro.util.bitstrings import BitString


class Msg:
    """What a node actually receives: the sender's *ID* plus the payload.

    Engine-internal vertex indices never reach algorithm code; in KT-1 and
    above the port-to-neighbor-ID mapping is initial knowledge, so exposing
    the sender ID is model-faithful.  A ``__slots__`` class: the engine
    builds one per delivered envelope, and frozen-dataclass construction
    costs an ``object.__setattr__`` per field.
    """

    __slots__ = ("sender_id", "tag", "fields")

    def __init__(self, sender_id: NodeId, tag: str, fields: tuple):
        self.sender_id = sender_id
        self.tag = tag
        self.fields = fields

    def __repr__(self) -> str:
        return f"Msg(from {self.sender_id!r} '{self.tag}' {self.fields!r})"


class Envelope:
    """A message in flight: engine-level routing plus the user payload.

    A plain ``__slots__`` class rather than a (frozen) dataclass: the
    engine builds one per send on its hottest path, and frozen-dataclass
    construction pays an ``object.__setattr__`` per field.
    """

    __slots__ = ("sender", "receiver", "tag", "fields", "round_sent",
                 "words", "ids")

    def __init__(self, sender: int, receiver: int, tag: str, fields: tuple,
                 round_sent: int, words: int, ids: tuple = ()):
        self.sender = sender          # vertex index (engine-internal)
        self.receiver = receiver      # vertex index (engine-internal)
        self.tag = tag
        self.fields = fields
        self.round_sent = round_sent
        self.words = words
        #: Distinct NodeIds embedded in ``fields``, extracted once at send
        #: time so the receive side never rescans the payload
        #: (Definition 2.3 accounting).
        self.ids = ids

    def __repr__(self) -> str:
        return (
            f"Envelope({self.sender}->{self.receiver} '{self.tag}' "
            f"{self.fields!r} @r{self.round_sent})"
        )


#: The container types a payload may nest.  Both the word-accounting scan
#: and the Definition 2.3 ID scan recurse into exactly this set, so a
#: field is either encodable AND scanned for IDs, or rejected outright —
#: there is no type (``list`` was one) that one scan honors and the other
#: rejects.
ENCODABLE_CONTAINERS = (tuple, frozenset)


def _scan_field(field: Any, word_bits: int, ids: list) -> int:
    """One-pass field scan: returns the word count and appends every
    :class:`NodeId` encountered to ``ids`` (Definition 2.3 accounting)."""
    if field is None or isinstance(field, bool):
        return 1
    if isinstance(field, NodeId):
        ids.append(field)
        return 1
    if isinstance(field, int):
        bits = max(1, field.bit_length() + (1 if field < 0 else 0))
        return max(1, -(-bits // word_bits))
    if isinstance(field, str):
        if len(field) > 64:
            raise ModelViolationError("string payloads are for short tags only")
        return max(1, -(-(8 * len(field)) // word_bits))
    if isinstance(field, BitString):
        return field.words(word_bits)
    if isinstance(field, ENCODABLE_CONTAINERS):
        return sum(_scan_field(f, word_bits, ids) for f in field)
    raise ModelViolationError(
        f"payload field of type {type(field).__name__} is not encodable; "
        "allowed: int, bool, None, str, NodeId, BitString, tuple, frozenset"
    )


def analyze_payload(fields: tuple, word_bits: int) -> tuple[int, tuple]:
    """Word count plus every embedded NodeId, in a single recursive pass.

    The engine calls this once per send (or once per *broadcast*, via
    ``ctx.broadcast``) and carries the extracted IDs on the
    :class:`Envelope`, so neither the word accounting nor the
    utilized-edge bookkeeping (send- or receive-side) ever rescans the
    payload.  The returned ID tuple is deduplicated (first occurrence
    order): a payload repeating phi(w) k times utilizes the same edge
    {sender, w} once, so the duplicates would only trigger redundant
    ``mark_utilized`` lookups on both the send and receive side.
    """
    if not fields:
        return 1, ()
    ids: list = []
    words = 0
    for f in fields:
        words += _scan_field(f, word_bits, ids)
    if len(ids) > 1:
        return words, tuple(dict.fromkeys(ids))
    return words, tuple(ids)


def payload_words(fields: tuple, word_bits: int) -> int:
    """Number of Theta(log n)-bit words the payload occupies (tag is free:
    a tag is O(1) protocol-constant bits, absorbed in the word slack).

    Delegates to :func:`analyze_payload` — there is exactly one payload
    scan in the codebase, so word accounting cannot drift from the
    Definition 2.3 ID extraction.
    """
    return analyze_payload(fields, word_bits)[0]


def iter_node_ids(fields: Any) -> Iterator[NodeId]:
    """Yield every NodeId appearing (recursively) in a payload.

    Recurses into exactly :data:`ENCODABLE_CONTAINERS` — the same set the
    word accounting accepts — so the two scans agree on what a payload is.
    """
    if isinstance(fields, NodeId):
        yield fields
    elif isinstance(fields, ENCODABLE_CONTAINERS):
        for f in fields:
            yield from iter_node_ids(f)
