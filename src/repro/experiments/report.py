"""Turning stored sweep records into human- and machine-readable reports.

``summarize`` computes, per (family, method), the mean message count at
each size with a 95% CI across seeds and the fitted messages-vs-n and
rounds-vs-n growth exponents — the quantities the paper's claims are
stated in (Theorem 3.3: messages ~ n^1.5; the Omega(m) baselines: ~ m).
``render_report`` prints that as an aligned table; ``bench_payload``
shapes it for the ``BENCH_engine.json`` perf-trajectory artifact.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.stats import (
    WORKLOAD_KEYS,
    fit_exponent,
    group_records,
    growth_exponents,
    latest_per_key,
    ok_records,
)


def _workload_key(row: dict) -> tuple:
    return tuple(row.get(k) for k in WORKLOAD_KEYS)


def summarize(records: Sequence[dict]) -> list[dict]:
    """Per-workload scaling summary over a sweep's records.

    One row per (family, method, engine, density, epsilon) population —
    records from sweeps with different knobs appended to the same store
    are reported separately, never pooled into one fit.  Timed-out /
    errored / lost cells still carry no counts and stay out of every fit
    and mean, but they are *surfaced*, not silently excluded: each row
    reports its workload's non-ok cells (``failed_runs``,
    ``failed_statuses``, ``failed_cells``), and a workload whose every
    cell failed gets a row with empty ``points`` rather than vanishing.
    """
    latest = latest_per_key(records)
    records = ok_records(latest)
    bad = [r for r in latest if r.get("status", "ok") != "ok"]
    message_rows = growth_exponents(records, y_field="messages")
    round_rows = {
        _workload_key(r): r["exponent"]
        for r in growth_exponents(records, y_field="rounds")
    }
    by_workload = group_records(records, WORKLOAD_KEYS)
    bad_by_workload = group_records(bad, WORKLOAD_KEYS)
    for row in message_rows:
        key = _workload_key(row)
        row["rounds_exponent"] = round_rows.get(key, 0.0)
        # Farm provenance: how many of this workload's surviving records
        # needed more than one attempt (timeout kills + retries).  A
        # first-try success and a retry-3 success measure the same
        # counts, but a workload that only ever succeeds on retries is a
        # budget problem worth seeing in the report.
        row["retried_runs"] = sum(
            1 for r in by_workload.get(key, ())
            if r.get("attempts", 1) > 1
        )
        # m grows on the same sizes: the reference slope o(m) is beaten by.
        m_points = sorted(
            {(rec["n"], rec["m"]) for rec in records
             if tuple(rec.get(k) for k in WORKLOAD_KEYS) == key}
        )
        row["m_exponent"] = fit_exponent([(n, m) for n, m in m_points])
        _attach_failures(row, bad_by_workload.get(key, []))
    # Workloads with zero ok records would otherwise disappear from the
    # report entirely — exactly the cells most in need of attention.
    seen = {_workload_key(row) for row in message_rows}
    for key in sorted(
        (k for k in bad_by_workload if k not in seen),
        key=lambda k: tuple(repr(f) for f in k),
    ):
        row = dict(zip(WORKLOAD_KEYS, key))
        row.update({
            "y_field": "messages",
            "points": {},
            "exponent": 0.0,
            "rounds_exponent": 0.0,
            "m_exponent": 0.0,
            "retried_runs": 0,
        })
        _attach_failures(row, bad_by_workload[key])
        message_rows.append(row)
    return message_rows


def _attach_failures(row: dict, failures: list[dict]) -> None:
    """Per-cell failure columns for one workload row."""
    statuses: dict[str, int] = {}
    for rec in failures:
        status = rec.get("status", "error")
        statuses[status] = statuses.get(status, 0) + 1
    row["failed_runs"] = len(failures)
    row["failed_statuses"] = statuses
    row["failed_cells"] = [
        {"key": rec.get("key", "?"), "status": rec.get("status", "error"),
         "attempts": rec.get("attempts", 1)}
        for rec in sorted(failures, key=lambda r: r.get("key") or "")
    ]


def render_report(summary: Sequence[dict]) -> str:
    """An aligned text table of the per-workload summaries.

    Non-ok cells appear twice: the ``bad`` column counts them per
    workload row (a row can be all-bad: its measurement columns render
    as ``-``), and a trailing listing names every failed cell with its
    status — nothing disappears from the report silently.
    """
    lines = []
    header = (
        f"{'family':>9}  {'method':>22}  {'eng':>5}  {'latency':>10}  "
        f"{'faults':>12}  "
        f"{'p':>5}  {'n-range':>11}  {'runs':>4}  {'retr':>4}  {'bad':>4}  "
        f"{'mean msgs (max n)':>18}  {'msg exp':>7}  {'m exp':>6}  "
        f"{'rnd exp':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    failed_cells: list[dict] = []
    for row in summary:
        sizes = sorted(row["points"])
        runs = sum(p["runs"] for p in row["points"].values())
        if sizes:
            top = row["points"][sizes[-1]]
            span = (f"{sizes[0]}-{sizes[-1]}" if len(sizes) > 1
                    else f"{sizes[0]}")
            mean_str = f"{top['mean']:.0f} ±{top['ci95']:.0f}"
            exp_str = f"{row['exponent']:>7.2f}  " \
                      f"{row['m_exponent']:>6.2f}  " \
                      f"{row['rounds_exponent']:>7.2f}"
        else:
            span, mean_str = "-", "-"
            exp_str = f"{'-':>7}  {'-':>6}  {'-':>7}"
        density = row.get("density")
        lines.append(
            f"{row['family']:>9}  {row['method']:>22}  "
            f"{row.get('engine') or '?':>5}  "
            f"{row.get('latency') or '-':>10}  "
            f"{row.get('faults') or '-':>12}  "
            f"{('%g' % density) if density is not None else '?':>5}  "
            f"{span:>11}  "
            f"{runs:>4}  {row.get('retried_runs', 0):>4}  "
            f"{row.get('failed_runs', 0):>4}  "
            f"{mean_str:>18}  {exp_str}"
        )
        failed_cells.extend(row.get("failed_cells", ()))
    if failed_cells:
        lines.append("")
        lines.append(f"non-ok cells ({len(failed_cells)}, excluded from "
                     "fits and means):")
        for cell in failed_cells:
            attempts = cell.get("attempts", 1)
            suffix = f" ({attempts} attempts)" if attempts > 1 else ""
            lines.append(f"  {cell['status']:>8}  {cell['key']}{suffix}")
    return "\n".join(lines)


def bench_payload(records: Sequence[dict],
                  summary: Optional[Sequence[dict]] = None,
                  wall_s: Optional[float] = None) -> dict:
    """The ``BENCH_engine.json`` artifact: a perf trajectory data point.

    Future PRs diff this against their own sweep to see whether the
    engine got faster or the algorithms chattier.
    """
    records = ok_records(records)
    if summary is None:
        summary = summarize(records)
    return {
        "schema": "repro-bench-engine/1",
        "runs": len(records),
        "total_messages": sum(r["messages"] for r in records),
        "total_wall_s": round(
            wall_s if wall_s is not None
            else sum(r.get("wall_s", 0.0) for r in records), 3),
        "exponents": [
            {
                "family": row["family"],
                "method": row["method"],
                "engine": row.get("engine"),
                "latency": row.get("latency"),
                "density": row.get("density"),
                "messages_exponent": round(row["exponent"], 4),
                "m_exponent": round(row["m_exponent"], 4),
                "rounds_exponent": round(row["rounds_exponent"], 4),
            }
            for row in summary
        ],
        "cells": [
            {k: rec[k] for k in
             ("key", "messages", "rounds", "wall_s",
              "sync_messages", "overhead_messages",
              "synchronized_stages") if k in rec}
            for rec in sorted(records, key=lambda r: r.get("key", ""))
        ],
    }
