"""Tests for payload word accounting and ID scanning."""

import pytest

from repro.congest.ids import NodeId, OpaqueId
from repro.congest.message import Msg, iter_node_ids, payload_words
from repro.errors import ModelViolationError
from repro.util.bitstrings import BitString


def test_empty_payload_one_word():
    assert payload_words((), 16) == 1


def test_small_int_one_word():
    assert payload_words((5,), 16) == 1
    assert payload_words((0,), 16) == 1


def test_large_int_multiple_words():
    assert payload_words((1 << 40,), 16) == 3


def test_negative_int():
    assert payload_words((-3,), 16) == 1


def test_bool_and_none_one_word():
    assert payload_words((True, None), 16) == 2


def test_node_id_one_word():
    assert payload_words((NodeId(10**9),), 16) == 1
    assert payload_words((OpaqueId(10**9),), 16) == 1


def test_string_tagging():
    assert payload_words(("ok",), 16) == 1
    with pytest.raises(ModelViolationError):
        payload_words(("x" * 100,), 16)


def test_bitstring_words():
    b = BitString(tuple([1] * 40))
    assert payload_words((b,), 16) == 3


def test_tuple_recursion():
    assert payload_words(((1, 2, 3),), 16) == 3
    assert payload_words((frozenset({1, 2}),), 16) == 2


def test_unencodable_rejected():
    with pytest.raises(ModelViolationError):
        payload_words(({"a": 1},), 16)
    with pytest.raises(ModelViolationError):
        payload_words((3.14,), 16)


def test_iter_node_ids_nested():
    a, b = NodeId(1), NodeId(2)
    fields = (5, (a, ("x", b)), frozenset({a}))
    found = list(iter_node_ids(fields))
    assert found.count(a) == 2
    assert found.count(b) == 1


def test_iter_node_ids_none():
    assert list(iter_node_ids((1, "x", None))) == []


def test_msg_repr():
    m = Msg(NodeId(3), "hello", (1,))
    assert "hello" in repr(m)
