#!/usr/bin/env python3
"""Asynchronous (Δ+1)-coloring: Theorem 3.4, live.

The paper's Algorithm 1 has an asynchronous counterpart with the same
Õ(n^1.5) message bound.  Our implementation makes this concrete in a
strong way: every protocol stage is written in count-based lockstep
(progress is driven by received-message counts, never by round numbers),
so the *identical* code runs under the event-driven engine with
adversarial per-message delays — no algorithmic changes, no synchronizer
for the pipeline itself.

The script colors the same network under the synchronous engine and
under three different adversarial delay schedules, verifies every
output, and compares the bills.  It finishes with an alpha-synchronizer
demo (Theorem A.5): a deliberately round-dependent algorithm, correctly
simulated on the asynchronous engine at the documented 2(T+1)m overhead.

Run:  python examples/async_coloring.py
"""

from repro.congest.async_network import AsyncNetwork
from repro.congest.network import SyncNetwork
from repro.congest.synchronizer import synchronize
from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.johansson import JohanssonListColoring
from repro.coloring.verify import check_proper_coloring
from repro.graphs.generators import connected_gnp_graph


def main() -> None:
    g = connected_gnp_graph(250, 0.25, seed=31)
    print(f"network: n={g.n}, m={g.m}, Δ={g.max_degree()}")

    snet = SyncNetwork(g, seed=1)
    sync_result = run_algorithm1(snet, seed=2)
    check_proper_coloring(g, sync_result.colors)
    print(f"\nsynchronous   : {sync_result.messages:>7} messages, "
          f"{sync_result.rounds:>6} rounds")

    for delay_seed in (3, 4, 5):
        anet = AsyncNetwork(g, seed=delay_seed)
        result = run_algorithm1(anet, seed=2)
        check_proper_coloring(g, result.colors)
        print(f"async seed={delay_seed}  : {result.messages:>7} messages, "
              f"{result.rounds:>6} time units (Theorem 3.4)")

    # -- alpha-synchronizer demo (Theorem A.5) ------------------------------
    small = connected_gnp_graph(60, 0.15, seed=41)
    T = 10 * max(4, small.n.bit_length())
    anet = AsyncNetwork(small, seed=6)
    inner_inputs = [
        {"active": None,
         "palette": frozenset(range(small.degree(v) + 1)),
         "participate": True}
        for v in range(small.n)
    ]
    res = synchronize(anet, JohanssonListColoring, T,
                      inner_inputs=inner_inputs)
    colors = [o["color"] for o in res.outputs]
    check_proper_coloring(small, colors)
    bound = 2 * (T + 1) * small.m
    print(f"\nalpha-synchronizer on n={small.n}, m={small.m}: "
          f"{anet.stats.messages} messages total")
    print(f"  (Theorem A.5: the *additional* messages — acks + safety "
          f"notifications —\n   are bounded by 2(T+1)m = {bound}; the "
          f"rest is the simulated algorithm itself)")
    print("all colorings verified proper.")


if __name__ == "__main__":
    main()
