"""Self-healing farm tests: lease-revocation cancellation, the farm's
cancel seam, worker reconnect with backoff (scripted flaky sockets),
the queue journal, coordinator drain, and `repro farm status`.

The full chaos scenario — SIGKILL a worker mid-cell, bounce the
coordinator, assert the merged store is bit-identical to a serial
sweep — lives in ``benchmarks/chaos_smoke.py`` (run by verify.sh); the
slow-marked test here drives that script end to end.
"""

from __future__ import annotations

import json
import os
import random
import socket
import subprocess
import sys
import threading
import time
from collections import deque

import pytest

from repro import cli
from repro.errors import DistributedError
from repro.experiments import (
    Cell,
    Coordinator,
    QueueJournal,
    ResultStore,
    SweepSpec,
    WorkQueue,
)
from repro.experiments import distributed, runner
from repro.experiments.distributed import (
    PROTOCOL,
    PROTOCOL_VERSION,
    _recv_msg,
    _run_leased_cell,
    _send_msg,
    run_worker,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# -- scripted farm fakes ------------------------------------------------------


class _FakeProc:
    """Stand-in for a single-cell farm child process."""

    exitcode = 0

    def __init__(self):
        self.terminated = False

    def is_alive(self):
        return not self.terminated

    def terminate(self):
        self.terminated = True

    def join(self, timeout=None):
        pass


class _SlowConn:
    """A result pipe for a cell that 'finishes' only after ``polls``
    negative answers (the last entry of the script repeats forever)."""

    def __init__(self, polls, record):
        self._polls = polls
        self._record = record

    def poll(self, timeout=0):
        if self._polls > 0:
            self._polls -= 1
            return False
        return True

    def recv(self):
        return dict(self._record)

    def close(self):
        pass


def _ok_record(cell):
    return {"key": cell.key(), "status": "ok", "messages": 1,
            "rounds": 1, "valid": True, "wall_s": 0.0}


# -- lease-revocation cancellation (the kill seam) ----------------------------


def test_farm_cancel_event_terminates_inflight(monkeypatch):
    """Setting the cancel event kills every running child and records
    nothing for it — the seam revocation/reconnect paths stand on."""
    cell = Cell("gnp", 30, 0, "luby")
    proc = _FakeProc()
    monkeypatch.setattr(runner, "_spawn_cell_process",
                        lambda c: (proc, _SlowConn(10 ** 9, None)))
    cancel = threading.Event()
    out = []
    farm = threading.Thread(
        target=runner._run_cells_with_timeout,
        args=([cell], 1, out.append), kwargs={"cancel": cancel},
        daemon=True)
    farm.start()
    time.sleep(0.05)
    assert farm.is_alive() and not proc.terminated
    cancel.set()
    farm.join(5)
    assert not farm.is_alive()
    assert proc.terminated
    assert out == []


def test_heartbeat_gone_kills_child_and_drops_record(monkeypatch):
    """Regression (fails pre-fix): a heartbeat answered ``gone`` used to
    be ignored — the cell ran to completion and the worker submitted a
    duplicate record the coordinator had to dedup.  Now the in-flight
    child is terminated and the stale record dropped (None)."""
    cell = Cell("gnp", 30, 0, "luby")
    proc = _FakeProc()
    # Finishes after ~40 farm polls (~0.8s) if nobody cancels it: slow
    # enough for a heartbeat to fire first, fast enough that the pre-fix
    # behavior (run to completion, return the record) fails the assert
    # instead of hanging the test.
    monkeypatch.setattr(runner, "_spawn_cell_process",
                        lambda c: (proc, _SlowConn(40, _ok_record(cell))))
    beats = []

    def gone_heartbeat():
        beats.append(time.monotonic())
        return False

    record = _run_leased_cell(cell, heartbeat=gone_heartbeat,
                              interval=0.01)
    assert record is None
    assert proc.terminated
    assert len(beats) == 1      # killed on the first gone, not later


def test_heartbeat_exception_reaps_farm_child(monkeypatch):
    """Regression (fails pre-fix): a DistributedError raised from the
    heartbeat (connection loss mid-cell) used to leak the still-running
    farm child; every exit path must reap it."""
    cell = Cell("gnp", 30, 0, "luby")
    proc = _FakeProc()
    monkeypatch.setattr(runner, "_spawn_cell_process",
                        lambda c: (proc, _SlowConn(10 ** 9, None)))

    def dead_heartbeat():
        raise DistributedError("connection to coordinator lost")

    with pytest.raises(DistributedError):
        _run_leased_cell(cell, heartbeat=dead_heartbeat, interval=0.01)
    assert proc.terminated


def test_revoked_lease_single_submission_e2e(tmp_path):
    """Protocol-level revocation: worker A leases a cell, its lease
    expires and is re-served to worker B; A's next heartbeat answers
    ``gone``.  A must not submit; B's record is the only one."""
    spec = SweepSpec(families=("gnp",), sizes=(30,), seeds=(0,),
                     methods=("luby",))
    [cell] = list(spec.cells())
    store = ResultStore(str(tmp_path / "revoked.jsonl"))
    with store:
        coord = Coordinator(spec, store=store, lease_s=0.2)
        host, port = coord.start()
        with socket.create_connection((host, port)) as sock:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                              "version": PROTOCOL_VERSION, "worker": "A"})
            assert _recv_msg(rfile)["type"] == "welcome"
            _send_msg(wfile, {"type": "lease"})
            assert _recv_msg(rfile)["type"] == "cell"
            # A stops heartbeating; the reaper requeues the cell.
            deadline = time.monotonic() + 10
            while (coord.queue.requeues(cell.key()) == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert coord.queue.requeues(cell.key()) == 1
            _send_msg(wfile, {"type": "heartbeat", "key": cell.key()})
            assert _recv_msg(rfile)["type"] == "gone"
            # A obeys the revocation: no result submission, just exits.
        completed = run_worker(host, port, worker_id="B", poll_s=0.05)
        fresh = coord.wait(timeout=30)
    assert completed == 1 and len(fresh) == 1
    assert fresh[0]["status"] == "ok"
    assert coord.duplicates == 0


# -- worker reconnect with backoff (scripted flaky sockets) -------------------


class _ScriptedSock:
    """An in-memory 'socket' whose coordinator side is a handler
    function: each request message gets handler(msg) back — a reply
    dict, ``None`` to sever the stream (EOF mid-exchange), or an
    exception instance to raise from the read."""

    def __init__(self, handler):
        self._handler = handler
        self._replies = deque()
        self.closed = False

    # socket surface run_worker/_worker_loop touches
    def makefile(self, mode):
        return self

    def settimeout(self, value):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def close(self):
        self.closed = True

    # wfile surface
    def write(self, data):
        for line in data.decode("utf-8").splitlines():
            self._replies.append(self._handler(json.loads(line)))

    def flush(self):
        pass

    # rfile surface
    def readline(self):
        if not self._replies:
            return b""
        reply = self._replies.popleft()
        if reply is None:
            return b""
        if isinstance(reply, Exception):
            raise reply
        return (json.dumps(reply) + "\n").encode("utf-8")


def _welcome():
    return {"type": "welcome", "version": PROTOCOL_VERSION,
            "lease_s": 30.0}


def test_worker_reconnects_after_severed_socket(monkeypatch):
    """Connection 1 is severed mid-protocol; the worker backs off,
    reconnects as the same id, and finishes on connection 2."""
    delays = []
    monkeypatch.setattr(time, "sleep", delays.append)

    def conn1(msg):
        if msg["type"] == "hello":
            return _welcome()
        return None                             # severed on first lease

    def conn2(msg):
        if msg["type"] == "hello":
            assert msg["worker"] == "w"         # same id resumed
            return _welcome()
        return {"type": "shutdown"}

    socks = deque([_ScriptedSock(conn1), _ScriptedSock(conn2)])
    completed = run_worker(
        "h", 1, worker_id="w", reconnect=3, backoff_s=0.5,
        connect=lambda: socks.popleft())
    assert completed == 0 and not socks
    # Exactly one backoff sleep, jittered deterministically from the
    # worker id: base * 2^0 * (0.5 + rng()).
    rng = random.Random("w/reconnect")
    assert delays == [0.5 * (0.5 + rng.random())]


def test_worker_reconnect_backoff_is_exponential_and_bounded(monkeypatch):
    """Refused connections back off exponentially (with deterministic
    jitter) and give up after ``reconnect`` consecutive failures."""
    delays = []
    monkeypatch.setattr(time, "sleep", delays.append)
    attempts = []

    def refuse():
        attempts.append(1)
        raise ConnectionRefusedError("refused")

    with pytest.raises(DistributedError) as err:
        run_worker("h", 1, worker_id="w", reconnect=3, backoff_s=0.5,
                   backoff_max_s=15.0, connect=refuse)
    assert "3 reconnect attempt(s) failed" in str(err.value)
    assert len(attempts) == 4                   # initial + 3 retries
    rng = random.Random("w/reconnect")
    expected = [0.5 * 2 ** i * (0.5 + rng.random()) for i in range(3)]
    assert delays == expected
    assert all(d <= 15.0 * 1.5 for d in delays)


def test_worker_resubmits_pending_record_after_reconnect(monkeypatch):
    """A result whose submission was cut off mid-send is re-submitted on
    the next connection instead of being recomputed or dropped."""
    monkeypatch.setattr(time, "sleep", lambda s: None)
    cell = Cell("gnp", 30, 0, "luby")
    record = _ok_record(cell)
    monkeypatch.setattr(distributed, "_run_leased_cell",
                        lambda c, heartbeat, interval: dict(record))
    resubmitted = []

    def conn1(msg):
        if msg["type"] == "hello":
            return _welcome()
        if msg["type"] == "lease":
            return {"type": "cell", "cell": cell.to_dict()}
        if msg["type"] == "result":
            return None                         # dies mid-submission
        raise AssertionError(msg)

    def conn2(msg):
        if msg["type"] == "hello":
            return _welcome()
        if msg["type"] == "result":
            resubmitted.append(msg["record"])
            return {"type": "ok", "accepted": True}
        return {"type": "shutdown"}

    socks = deque([_ScriptedSock(conn1), _ScriptedSock(conn2)])
    completed = run_worker("h", 1, worker_id="w", reconnect=2,
                           connect=lambda: socks.popleft())
    assert completed == 1
    assert resubmitted == [record]


def test_worker_progress_resets_backoff_budget(monkeypatch):
    """The reconnect budget bounds *consecutive* failures: a connection
    that makes progress resets it, so a long sweep with occasional blips
    never exhausts the budget cumulatively."""
    monkeypatch.setattr(time, "sleep", lambda s: None)

    def flaky(msg, sever_on):
        if msg["type"] == "hello":
            return _welcome()
        if msg["type"] == "lease":
            return None if sever_on.pop(0) else {"type": "shutdown"}
        raise AssertionError(msg)

    # 3 severed connections with a successful handshake each time, with
    # a reconnect budget of 2: allowed only because each connection's
    # handshake progress resets the consecutive-failure count.
    scripts = [[True], [True], [True], [False]]
    socks = deque(
        _ScriptedSock(lambda m, s=list(s): flaky(m, s)) for s in scripts)
    completed = run_worker("h", 1, worker_id="w", reconnect=2,
                           connect=lambda: socks.popleft())
    assert completed == 0 and not socks


# -- queue journal ------------------------------------------------------------


def _spec():
    return SweepSpec(families=("gnp",), sizes=(30, 40), seeds=(0, 1),
                     methods=("luby",))


def test_work_queue_journal_round_trip(tmp_path):
    """write -> crash -> reload preserves done keys, requeue counts, and
    charges the crashed coordinator's live leases one requeue."""
    cells = list(_spec().cells())
    keys = [c.key() for c in cells]
    q = WorkQueue(cells, lease_s=60.0, max_requeues=5)
    done = q.lease("w1", now=0.0)
    assert q.complete("w1", done.key(), ok=True)
    requeued = q.lease("w1", now=0.0)
    q.release_worker("w1")                      # requeue count 1, no lease
    leased = q.lease("w2", now=0.0)             # live lease at crash time

    journal = QueueJournal(str(tmp_path / "q.journal"))
    journal.write(q.snapshot(), fingerprint="abc123")
    payload = journal.load()
    assert payload["fingerprint"] == "abc123"
    assert payload["done"] == [done.key()]
    assert payload["requeues"] == {requeued.key(): 1}
    assert payload["leased"] == [leased.key()]

    # The restarted coordinator re-expands every cell, then restores.
    q2 = WorkQueue(list(_spec().cells()), lease_s=60.0, max_requeues=5)
    assert q2.restore(payload) == []
    assert q2.counts() == {"pending": 3, "leased": 0, "done": 1,
                           "failed": 0}
    assert q2.requeues(requeued.key()) == 1     # history survives
    assert q2.requeues(leased.key()) == 1       # dead lease charged
    served = {q2.lease("w", now=0.0).key() for _ in range(3)}
    assert served == set(keys) - {done.key()}   # done is never re-run


def test_journal_restore_declares_exhausted_cells_lost(tmp_path):
    """A cell whose requeue history already exhausted max_requeues comes
    back from restore as lost instead of looping across restarts."""
    cells = list(_spec().cells())
    doomed = cells[0].key()
    q = WorkQueue(list(cells), lease_s=60.0, max_requeues=2)
    lost = q.restore({"done": [], "failed": [], "leased": [],
                      "requeues": {doomed: 3}})
    assert [c.key() for c in lost] == [doomed]
    assert q.counts()["failed"] == 1
    assert not any(q.lease("w", now=0.0).key() == doomed
                   for _ in range(len(cells) - 1))


def test_journal_fingerprint_mismatch_rejected(tmp_path):
    """A journal written for a different sweep must not replay its
    requeue history into this one."""
    journal = QueueJournal(str(tmp_path / "q.journal"))
    journal.write({"done": [], "failed": [], "requeues": {},
                   "leased": []}, fingerprint="not-this-sweep")
    with pytest.raises(DistributedError, match="different sweep"):
        Coordinator(_spec(), journal=journal, resume_journal=True)


def test_journal_load_rejects_garbage(tmp_path):
    path = tmp_path / "q.journal"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(DistributedError, match="unreadable"):
        QueueJournal(str(path)).load()
    path.write_text('{"format": "something-else"}', encoding="utf-8")
    with pytest.raises(DistributedError, match="not a repro"):
        QueueJournal(str(path)).load()
    assert QueueJournal(str(tmp_path / "missing")).load() is None


def test_coordinator_resume_journal_end_to_end(tmp_path):
    """Coordinator 1 records one cell and is stopped mid-sweep; a second
    coordinator with --resume-journal semantics serves exactly the rest
    and the merged store matches the full spec."""
    spec = _spec()
    store = ResultStore(str(tmp_path / "out.jsonl"))
    journal = QueueJournal(str(tmp_path / "out.jsonl.journal"))
    with store:
        coord = Coordinator(spec, store=store, lease_s=5.0,
                            journal=journal, journal_interval_s=0.05)
        host, port = coord.start()
        with socket.create_connection((host, port)) as sock:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                              "version": PROTOCOL_VERSION, "worker": "w"})
            assert _recv_msg(rfile)["type"] == "welcome"
            _send_msg(wfile, {"type": "lease"})
            cell = Cell.from_dict(_recv_msg(rfile)["cell"])
            from repro.experiments import run_cell
            _send_msg(wfile, {"type": "result",
                              "record": run_cell(cell)})
            assert _recv_msg(rfile)["accepted"]
        coord.drain(grace_s=0.2)
        fresh = coord.wait(timeout=10)
        assert len(fresh) == 1 and coord.drained
        # The drain flushed a journal; a bounced coordinator resumes.
        coord2 = Coordinator(spec, store=store, lease_s=5.0,
                             journal=journal, resume_journal=True)
        host, port = coord2.start()
        completed = run_worker(host, port, worker_id="w2", poll_s=0.05)
        coord2.wait(timeout=30)
    assert completed == spec.size - 1
    latest = store.latest_per_key()
    assert set(latest) == {c.key() for c in spec.cells()}
    assert all(r["status"] == "ok" for r in latest.values())


# -- coordinator drain --------------------------------------------------------


def test_drain_stops_leasing_and_releases_workers(tmp_path):
    """After drain(): lease requests are answered shutdown, in-flight
    results within the grace window still land, wait() returns with
    drained=True, and the store is intact."""
    spec = _spec()
    store = ResultStore(str(tmp_path / "drain.jsonl"))
    with store:
        coord = Coordinator(spec, store=store, lease_s=5.0)
        host, port = coord.start()
        with socket.create_connection((host, port)) as sock:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                              "version": PROTOCOL_VERSION, "worker": "w"})
            assert _recv_msg(rfile)["type"] == "welcome"
            _send_msg(wfile, {"type": "lease"})
            cell = Cell.from_dict(_recv_msg(rfile)["cell"])
            coord.drain(grace_s=5.0)
            # The in-flight cell still lands inside the grace window...
            _send_msg(wfile, {"type": "heartbeat", "key": cell.key()})
            assert _recv_msg(rfile)["type"] == "ok"
            from repro.experiments import run_cell
            _send_msg(wfile, {"type": "result", "record": run_cell(cell)})
            assert _recv_msg(rfile)["accepted"]
            # ...but no new work leaves the coordinator.
            _send_msg(wfile, {"type": "lease"})
            assert _recv_msg(rfile)["type"] == "shutdown"
        fresh = coord.wait(timeout=10)
    assert coord.drained and len(fresh) == 1
    assert len(store.load()) == 1


# -- farm status --------------------------------------------------------------


@pytest.fixture
def busy_coordinator():
    """A live coordinator with worker 'w1' holding a lease and having
    heartbeated once."""
    coord = Coordinator(_spec(), lease_s=30.0)
    host, port = coord.start()
    sock = socket.create_connection((host, port))
    rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
    _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                      "version": PROTOCOL_VERSION, "worker": "w1"})
    assert _recv_msg(rfile)["type"] == "welcome"
    _send_msg(wfile, {"type": "lease"})
    key = Cell.from_dict(_recv_msg(rfile)["cell"]).key()
    _send_msg(wfile, {"type": "heartbeat", "key": key})
    assert _recv_msg(rfile)["type"] == "ok"
    yield coord, host, port, key
    sock.close()
    coord.stop()


def test_farm_status_live_counts_and_heartbeat_ages(busy_coordinator,
                                                    capsys):
    coord, host, port, key = busy_coordinator
    rc = cli.main(["farm", "status", "--connect", f"{host}:{port}",
                   "--json"])
    assert rc == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["total"] == 4
    assert snap["pending"] == 3 and snap["leased"] == 1
    assert snap["done"] == 0 and snap["lost"] == 0
    assert snap["active_workers"] == 1
    w1 = snap["workers"]["w1"]
    assert w1["connected"] and w1["leases"] == [key]
    assert 0 <= w1["last_heartbeat_age_s"] < 30
    assert snap["draining"] is False
    # The status probe itself never registers as a worker.
    assert set(snap["workers"]) == {"w1"}


def test_farm_status_text_output(busy_coordinator, capsys):
    coord, host, port, key = busy_coordinator
    rc = cli.main(["farm", "status", "--connect", f"{host}:{port}"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "0/4 done, 1 leased, 3 pending" in text
    assert "w1: up, 0 done, 1 lease(s), heartbeat" in text


def test_farm_status_unreachable_coordinator(capsys):
    rc = cli.main(["farm", "status", "--connect", "127.0.0.1:1"])
    assert rc == 1
    assert "farm status:" in capsys.readouterr().err


# -- the full chaos scenario --------------------------------------------------


@pytest.mark.slow
def test_chaos_smoke_sigkill_worker_and_bounce_coordinator(tmp_path):
    """Acceptance: 2 workers, SIGKILL one mid-cell, bounce the
    coordinator once; the merged store must be bit-identical per key to
    a serial run_sweep, with zero lost records and the surviving worker
    reconnecting.  Drives benchmarks/chaos_smoke.py — the same script
    verify.sh runs."""
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    extra = os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    env["PYTHONPATH"] = src + extra
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "benchmarks",
                                      "chaos_smoke.py"),
         "--workdir", str(tmp_path)],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, (proc.stdout, proc.stderr)
    assert "chaos smoke: OK" in proc.stdout
