"""Shared helpers for the benchmark harness."""

from __future__ import annotations

import math
from typing import Sequence


def fit_exponent(points: Sequence[tuple[float, float]]) -> float:
    """Least-squares slope of log(y) against log(x).

    For message counts y measured at sizes x, this is the empirical
    growth exponent ("messages ~ x^alpha").
    """
    xs = [math.log(x) for x, _ in points]
    ys = [math.log(max(y, 1e-9)) for _, y in points]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else 0.0


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence]) -> None:
    """Render an aligned table to stdout (visible with pytest -s)."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(r, widths)))


def fmt(x, digits: int = 2) -> str:
    if isinstance(x, float):
        return f"{x:.{digits}f}"
    return str(x)
