"""Tests for the synchronous engine: delivery, congestion, accounting.

Includes the machine-checked model rules: Definition 2.3 utilization,
Lemma 2.4's utilized-edges = O(messages) invariant, the one-message-per-
link-per-round discipline, and the comparison-based enforcement.
"""

import pytest

from repro.congest.ids import IdAssignment, NodeId, OpaqueId
from repro.congest.network import SyncNetwork
from repro.congest.node import Context, FunctionAlgorithm, NodeAlgorithm
from repro.errors import (
    ComparisonDisciplineError,
    ConvergenceError,
    ModelViolationError,
    ReproError,
    UnknownNeighborError,
)
from repro.graphs.core import Graph


class PingOnce(NodeAlgorithm):
    """Everyone sends one ping to every neighbor, then counts receipts."""

    def setup(self, ctx):
        self.got = 0

    def on_round(self, ctx, inbox):
        self.got += len(inbox)
        if ctx.round == 0:
            for u in ctx.neighbor_ids:
                ctx.send(u, "ping")
        ctx.done(self.got)


class Burst(NodeAlgorithm):
    """Node 'source' sends k messages to one neighbor in round 0."""

    def __init__(self, k):
        self.k = k

    def setup(self, ctx):
        self.arrival_rounds = []

    def on_round(self, ctx, inbox):
        for _ in inbox:
            self.arrival_rounds.append(ctx.round)
        if ctx.round == 0 and ctx.my_id == min(
                (ctx.my_id,) + ctx.neighbor_ids):
            target = ctx.neighbor_ids[0]
            for _ in range(self.k):
                ctx.send(target, "burst", 1)
        ctx.done(tuple(self.arrival_rounds))


def test_ping_delivery(path4):
    net = SyncNetwork(path4, seed=1)
    res = net.run(PingOnce, name="ping")
    # each node receives deg messages
    assert res.outputs == [1, 2, 2, 1]
    assert net.stats.sends == 6
    assert net.stats.messages == 6


def test_rounds_counted(path4):
    net = SyncNetwork(path4, seed=1)
    res = net.run(PingOnce)
    assert res.rounds >= 2
    assert net.stats.rounds == res.rounds


def test_link_congestion_serializes():
    g = Graph(2, [(0, 1)])
    net = SyncNetwork(g, seed=2)
    res = net.run(lambda: Burst(4), name="burst")
    receiver = 0 if net.id_of(0) > net.id_of(1) else 1
    arrivals = res.outputs[receiver]
    assert len(arrivals) == 4
    # one message per round on the link
    assert sorted(arrivals) == list(range(arrivals[0], arrivals[0] + 4))


def test_multiword_payload_charged():
    g = Graph(2, [(0, 1)])
    net = SyncNetwork(g, seed=3, words_per_message=2)

    def fn(ctx, inbox):
        if ctx.round == 0 and ctx.neighbor_ids:
            ctx.send(ctx.neighbor_ids[0], "big", (1, 2, 3, 4, 5, 6))
        ctx.done(None)

    net.run(lambda: FunctionAlgorithm(fn))
    assert net.stats.sends == 2
    assert net.stats.messages == 2 * 3  # 6 words -> 3 charged each


def test_send_to_non_neighbor_rejected(path4):
    net = SyncNetwork(path4, seed=4)

    def fn(ctx, inbox):
        if ctx.round == 0:
            far = net.id_of(3) if ctx.my_id == net.id_of(0) else None
            if far is not None:
                ctx.send(far, "x")
        ctx.done(None)

    with pytest.raises(ModelViolationError):
        net.run(lambda: FunctionAlgorithm(fn))


def test_send_to_unknown_id_rejected(path4):
    net = SyncNetwork(path4, seed=5)

    def fn(ctx, inbox):
        if ctx.round == 0:
            ctx.send(NodeId(99_999_999), "x")
        ctx.done(None)

    with pytest.raises(UnknownNeighborError):
        net.run(lambda: FunctionAlgorithm(fn))


def test_send_in_setup_rejected(path4):
    net = SyncNetwork(path4, seed=6)

    class Bad(NodeAlgorithm):
        def setup(self, ctx):
            if ctx.neighbor_ids:
                ctx.send(ctx.neighbor_ids[0], "early")

        def on_round(self, ctx, inbox):
            ctx.done(None)

    with pytest.raises(ModelViolationError):
        net.run(Bad)


def test_round_budget_enforced(path4):
    net = SyncNetwork(path4, seed=7)

    class Chatter(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            for u in ctx.neighbor_ids:
                ctx.send(u, "again")

    with pytest.raises(ConvergenceError):
        net.run(Chatter, max_rounds=25)


def test_passive_deadlock_detected(path4):
    net = SyncNetwork(path4, seed=8)

    class Stuck(NodeAlgorithm):
        passive_when_idle = True

        def on_round(self, ctx, inbox):
            pass  # never done, never sends

    with pytest.raises(ConvergenceError):
        net.run(Stuck)


def test_utilization_transport_edges(path4):
    net = SyncNetwork(path4, seed=9)
    net.run(PingOnce)
    assert net.stats.utilized == {(0, 1), (1, 2), (2, 3)}


def test_utilization_id_in_payload():
    """Definition 2.3(ii): u sends phi(v) over some edge -> {u, v} utilized."""
    g = Graph(3, [(0, 1), (0, 2)])  # star at 0
    net = SyncNetwork(g, seed=10)

    def fn(ctx, inbox):
        # vertex 0 ships its *other* neighbor's ID to each neighbor.
        if ctx.round == 0 and ctx.degree == 2:
            a, b = ctx.neighbor_ids
            ctx.send(a, "ref", b)
        ctx.done(None)

    net.run(lambda: FunctionAlgorithm(fn))
    # transport edge (0, a) plus rule-(ii) edge (0, b): both utilized;
    # edge set of the star is fully utilized with a single message.
    assert net.stats.utilized == {(0, 1), (0, 2)}
    assert net.stats.messages == 1


def test_utilization_receive_side():
    """Definition 2.3: the receiver holding edge {recv, w} utilizes it."""
    g = Graph(3, [(0, 1), (1, 2)])  # path; 1 in the middle
    net = SyncNetwork(g, seed=11)

    def fn(ctx, inbox):
        # endpoint with the middle as single neighbor ships the middle's
        # OWN id back (no new info, but exercises the scan): middle
        # receives phi(middle)... instead ship an id of the *other* end.
        ctx.done(None)

    # Construct directly: 0 sends id(2)?? 0 doesn't know it in KT-1 —
    # engine doesn't police payload provenance (that is the algorithm
    # author's obligation); we use it here to test the accounting rule.
    def fn2(ctx, inbox):
        if ctx.round == 0 and ctx.my_id == net.id_of(0):
            ctx.send(net.id_of(1), "ref", net.id_of(2))
        ctx.done(None)

    net.run(lambda: FunctionAlgorithm(fn2))
    # transport (0,1); receiver 1 receives phi(2) and {1,2} is an edge.
    assert net.stats.utilized == {(0, 1), (1, 2)}


def test_lemma_2_4_invariant(gnp_small):
    """Utilized edges <= constant * charged messages (Lemma 2.4)."""
    net = SyncNetwork(gnp_small, seed=12)
    net.run(PingOnce)
    assert net.stats.utilized_count <= 4 * net.stats.messages


def test_comparison_network_hands_out_opaque_ids(path4):
    net = SyncNetwork(path4, seed=13, comparison_based=True)

    seen = []

    def fn(ctx, inbox):
        seen.append(ctx.my_id)
        ctx.done(None)

    net.run(lambda: FunctionAlgorithm(fn))
    assert all(isinstance(x, OpaqueId) for x in seen)


def test_comparison_discipline_enforced_at_runtime(path4):
    net = SyncNetwork(path4, seed=14, comparison_based=True)

    def fn(ctx, inbox):
        _ = ctx.my_id.value  # forbidden
        ctx.done(None)

    with pytest.raises(ComparisonDisciplineError):
        net.run(lambda: FunctionAlgorithm(fn))


def test_explicit_assignment_used(path4):
    assignment = IdAssignment([40, 30, 20, 10])
    net = SyncNetwork(path4, assignment=assignment, seed=15)
    assert net.id_of(0) == NodeId(40)
    assert net.vertex_of(NodeId(10)) == 3


def test_assignment_size_mismatch(path4):
    with pytest.raises(ReproError):
        SyncNetwork(path4, assignment=IdAssignment([1, 2]), seed=0)


def test_stage_inputs_delivered(path4):
    net = SyncNetwork(path4, seed=16)

    def fn(ctx, inbox):
        ctx.done(ctx.input * 2)

    res = net.run(lambda: FunctionAlgorithm(fn), inputs=[1, 2, 3, 4])
    assert res.outputs == [2, 4, 6, 8]


def test_stage_stats_isolated(path4):
    net = SyncNetwork(path4, seed=17)
    net.run(PingOnce, name="first")
    first_msgs = net.stats.stage_named("first").messages
    net.run(PingOnce, name="second")
    assert net.stats.stage_named("second").messages == first_msgs
    assert net.stats.messages == 2 * first_msgs


def test_trace_recording(path4):
    net = SyncNetwork(path4, seed=18, record_trace=True)
    net.run(PingOnce)
    assert len(net.trace.events) == 6
    ev = net.trace.events[0]
    assert ev.tag == "ping"


def test_private_randomness_deterministic(path4):
    def fn(ctx, inbox):
        ctx.done(ctx.rng.randrange(10**9))

    a = SyncNetwork(path4, seed=19).run(lambda: FunctionAlgorithm(fn))
    b = SyncNetwork(path4, seed=19).run(lambda: FunctionAlgorithm(fn))
    c = SyncNetwork(path4, seed=20).run(lambda: FunctionAlgorithm(fn))
    assert a.outputs == b.outputs
    assert a.outputs != c.outputs


def test_outputs_by_id_value(path4):
    net = SyncNetwork(path4, seed=21)
    res = net.run(lambda: FunctionAlgorithm(lambda c, i: c.done("v")))
    by_id = net.outputs_by_id_value(res.outputs)
    assert set(by_id.values()) == {"v"}
    assert len(by_id) == 4


def test_passive_fast_forward_past_budget_delivers(path4):
    """A multi-word payload legally scheduled past max_rounds must still
    be delivered when the stage is about to quiesce (regression: the
    passive fast-forward jumped round_index past the budget and raised
    ConvergenceError while a delivery was imminent)."""
    net = SyncNetwork(path4, seed=21, words_per_message=1)

    class BigPayload(NodeAlgorithm):
        passive_when_idle = True

        def on_round(self, ctx, inbox):
            if ctx.round == 0:
                if ctx.my_id == net.id_of(0):
                    # ~80 words at 1 word/message: the link holds this
                    # payload for ~80 rounds, far past max_rounds=5.
                    ctx.send(net.id_of(1), "blob", 1 << 650)
                    ctx.done("sent")
                elif ctx.my_id == net.id_of(1):
                    pass  # wait for the blob
                else:
                    ctx.done("idle")
            elif inbox:
                ctx.done("got")

    res = net.run(BigPayload, max_rounds=5)
    assert res.converged
    assert res.outputs[1] == "got"
    # The engine still did only O(1) work rounds.
    assert net.stats.messages >= 40


def test_passive_budget_still_bounds_work(path4):
    """The relaxed budget counts work rounds, so a passive livelock is
    still caught."""
    net = SyncNetwork(path4, seed=22)

    class PingPong(NodeAlgorithm):
        passive_when_idle = True

        def on_round(self, ctx, inbox):
            if ctx.round == 0 and ctx.degree == 1:
                ctx.send(ctx.neighbor_ids[0], "ball")
            for msg in inbox:
                ctx.send(msg.sender_id, "ball")

    with pytest.raises(ConvergenceError):
        net.run(PingPong, max_rounds=30)


def test_inbox_isolated_between_rounds(path4):
    """Reused inbox buffers must not leak envelopes across rounds."""
    seen: dict[int, list] = {}

    class TwoPings(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            seen.setdefault(ctx.round, []).append(len(inbox))
            if ctx.round < 2:
                for u in ctx.neighbor_ids:
                    ctx.send(u, "ping")
            if ctx.round >= 3:
                ctx.done(None)

    net = SyncNetwork(path4, seed=23)
    net.run(TwoPings)
    # Round 1 and 2 deliver one ping per neighbor; round 3 none.
    assert all(c == 0 for c in seen[0])
    assert sum(seen[1]) == 6 and sum(seen[2]) == 6
    assert all(c == 0 for c in seen[3])
