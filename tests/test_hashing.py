"""Tests for the c-wise independent hash families (Lemma A.4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.util.hashing import (
    KWiseHash,
    KWiseHashFamily,
    hash_family_from_bits,
)


def test_family_rejects_bad_params():
    with pytest.raises(ReproError):
        KWiseHashFamily(0, 10, 4)
    with pytest.raises(ReproError):
        KWiseHashFamily(10, 0, 4)
    with pytest.raises(ReproError):
        KWiseHashFamily(10, 10, 0)


def test_bits_needed_formula():
    fam = KWiseHashFamily(1000, 16, 5)
    assert fam.bits_needed == 5 * fam.prime.bit_length()


def test_sample_from_bits_deterministic():
    fam = KWiseHashFamily(10_000, 64, 4)
    rng = random.Random(1)
    bits = [rng.getrandbits(1) for _ in range(fam.bits_needed)]
    h1 = fam.sample_from_bits(bits)
    h2 = fam.sample_from_bits(bits)
    assert [h1(x) for x in range(50)] == [h2(x) for x in range(50)]


def test_sample_from_bits_insufficient():
    fam = KWiseHashFamily(100, 10, 4)
    with pytest.raises(ReproError):
        fam.sample_from_bits([0, 1, 0])


def test_different_bits_different_function():
    fam = KWiseHashFamily(10_000, 1024, 4)
    rng = random.Random(2)
    h1 = fam.sample(rng)
    h2 = fam.sample(rng)
    assert any(h1(x) != h2(x) for x in range(100))


def test_range_respected():
    fam = KWiseHashFamily(100_000, 7, 6)
    h = fam.sample(random.Random(3))
    assert all(0 <= h(x) < 7 for x in range(1000))


def test_with_range():
    fam = KWiseHashFamily(1000, 100, 4)
    h = fam.sample(random.Random(4))
    h2 = h.with_range(5)
    assert all(0 <= h2(x) < 5 for x in range(200))
    # Same polynomial underneath.
    assert h2.coefficients == h.coefficients


def test_eval_many_matches_scalar():
    fam = KWiseHashFamily(50_000, 97, 8)
    h = fam.sample(random.Random(5))
    xs = list(range(0, 5000, 7))
    assert h.eval_many(xs) == [h(x) for x in xs]


def test_eval_many_large_prime_fallback():
    # Force a domain that needs a > 32-bit prime.
    fam = KWiseHashFamily(2**40, 100, 4)
    assert fam.prime >= 2**40
    h = fam.sample(random.Random(6))
    xs = [2**39 + i for i in range(20)]
    assert h.eval_many(xs) == [h(x) for x in xs]


def test_uniformity_chi_squared_ish():
    """Empirical uniformity: bucket counts within 5 sigma."""
    fam = KWiseHashFamily(1_000_000, 16, 8)
    h = fam.sample(random.Random(7))
    counts = [0] * 16
    trials = 16_000
    for x in range(trials):
        counts[h(x)] += 1
    mean = trials / 16
    sigma = (mean * (1 - 1 / 16)) ** 0.5
    assert all(abs(c - mean) < 5 * sigma for c in counts)


def test_pairwise_independence_statistics():
    """Pr[h(a)=i and h(b)=j] ~ 1/L^2 over random functions."""
    fam = KWiseHashFamily(10_000, 4, 4)
    rng = random.Random(8)
    hits = 0
    trials = 4000
    for _ in range(trials):
        h = fam.sample(rng)
        if h(123) == 1 and h(456) == 2:
            hits += 1
    expected = trials / 16
    assert abs(hits - expected) < 6 * (expected ** 0.5) + 8


def test_hash_of_distinct_keys_decorrelated():
    """Sampling the family, h(x) should not determine h(y)."""
    fam = KWiseHashFamily(10_000, 256, 4)
    rng = random.Random(9)
    agreement = 0
    trials = 2000
    for _ in range(trials):
        h = fam.sample(rng)
        if h(1) == h(2):
            agreement += 1
    # ~ trials/256 expected.
    assert agreement < trials / 256 * 4 + 10


def test_hash_family_from_bits_offsets():
    rng = random.Random(10)
    bits = [rng.getrandbits(1) for _ in range(20_000)]
    h1, off1 = hash_family_from_bits(bits, 0, 1000, 16, 4)
    h2, off2 = hash_family_from_bits(bits, off1, 1000, 16, 4)
    assert off2 == 2 * off1
    assert isinstance(h1, KWiseHash) and isinstance(h2, KWiseHash)
    assert any(h1(x) != h2(x) for x in range(64))


def test_mod_bias_small():
    """The mod-L bias is bounded by L/p (we require p >= 1024 L)."""
    fam = KWiseHashFamily(1000, 100, 4)
    assert fam.prime >= 1024 * 100


@given(st.integers(2, 2**20), st.integers(2, 512), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_family_always_in_range(domain, range_size, c):
    fam = KWiseHashFamily(domain, range_size, c)
    h = fam.sample(random.Random(0))
    for x in (0, 1, domain - 1, domain // 2):
        assert 0 <= h(x) < range_size
