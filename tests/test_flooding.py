"""Tests for flooding/tree stages (the Corollary 1.2 toolkit)."""

import pytest

from repro.congest.network import SyncNetwork
from repro.errors import ProtocolError
from repro.substrates.flooding import (
    AdoptParents,
    ChunkedTreeBroadcast,
    FloodLeaderElect,
    FloodPayload,
    ShareRandomBits,
    TreeAggregate,
    TreeBroadcast,
    elect_leader_and_tree,
)
from repro.util.bitstrings import BitString


def elect(net):
    n = net.graph.n
    return elect_leader_and_tree(net, [None] * n)


def test_leader_is_global_max(gnp_small):
    net = SyncNetwork(gnp_small, seed=1)
    leader, parents, children = elect(net)
    max_id = max(net.id_of(v) for v in range(gnp_small.n))
    assert leader == max_id


def test_parents_form_tree_toward_leader(gnp_small):
    net = SyncNetwork(gnp_small, seed=2)
    leader, parents, children = elect(net)
    root = net.vertex_of(leader)
    assert parents[root] is None
    # every other vertex reaches the root via parents, acyclically
    for v in range(gnp_small.n):
        seen = set()
        cur = v
        while parents[cur] is not None:
            assert cur not in seen
            seen.add(cur)
            cur = net.vertex_of(parents[cur])
        assert cur == root


def test_children_match_parents(gnp_small):
    net = SyncNetwork(gnp_small, seed=3)
    leader, parents, children = elect(net)
    for v in range(gnp_small.n):
        p = parents[v]
        if p is not None:
            assert net.id_of(v) in children[net.vertex_of(p)]
    total_children = sum(len(c) for c in children)
    assert total_children == gnp_small.n - 1


def test_flood_respects_active_subgraph(barbell):
    """Election restricted to one clique never crosses the bridge."""
    net = SyncNetwork(barbell, seed=4)
    n = barbell.n
    left = set(range(12))
    active = []
    for v in range(n):
        if v in left:
            ids = frozenset(
                net.id_of(u) for u in barbell.neighbors(v) if u in left
            )
        else:
            ids = frozenset()
        active.append(ids)
    stage = net.run(FloodLeaderElect, inputs=active, name="left-only")
    leaders = {out["leader"] for v, out in enumerate(stage.outputs)
               if v in left}
    assert leaders == {max(net.id_of(v) for v in left)}


def test_tree_broadcast(gnp_small):
    net = SyncNetwork(gnp_small, seed=5)
    leader, parents, children = elect(net)
    root = net.vertex_of(leader)
    inputs = [
        {"parent": parents[v], "children": children[v],
         "payload": 42 if v == root else None}
        for v in range(gnp_small.n)
    ]
    res = net.run(TreeBroadcast, inputs=inputs)
    assert all(o == 42 for o in res.outputs)


def test_tree_broadcast_no_payload_raises(path4):
    net = SyncNetwork(path4, seed=6)
    leader, parents, children = elect(net)
    inputs = [
        {"parent": parents[v], "children": children[v], "payload": None}
        for v in range(4)
    ]
    with pytest.raises(ProtocolError):
        net.run(TreeBroadcast, inputs=inputs)


def test_tree_aggregate_sum(gnp_small):
    net = SyncNetwork(gnp_small, seed=7)
    leader, parents, children = elect(net)
    inputs = [
        {"parent": parents[v], "children": children[v], "value": v}
        for v in range(gnp_small.n)
    ]
    res = net.run(lambda: TreeAggregate(), inputs=inputs)
    expected = sum(range(gnp_small.n))
    assert all(o == expected for o in res.outputs)


def test_tree_aggregate_max(gnp_small):
    net = SyncNetwork(gnp_small, seed=8)
    leader, parents, children = elect(net)
    inputs = [
        {"parent": parents[v], "children": children[v],
         "value": gnp_small.degree(v)}
        for v in range(gnp_small.n)
    ]
    res = net.run(lambda: TreeAggregate(combine=max), inputs=inputs)
    assert all(o == gnp_small.max_degree() for o in res.outputs)


def test_tree_aggregate_message_cost_linear(gnp_small):
    net = SyncNetwork(gnp_small, seed=9)
    leader, parents, children = elect(net)
    before = net.stats.messages
    inputs = [
        {"parent": parents[v], "children": children[v], "value": 1}
        for v in range(gnp_small.n)
    ]
    net.run(lambda: TreeAggregate(), inputs=inputs, name="count")
    cost = net.stats.messages - before
    # one agg + one echo per tree edge
    assert cost == 2 * (gnp_small.n - 1)


def test_flood_payload(gnp_small):
    net = SyncNetwork(gnp_small, seed=10)
    inputs = [{"active": None, "payload": "hi" if v == 0 else None}
              for v in range(gnp_small.n)]
    res = net.run(FloodPayload, inputs=inputs)
    assert all(o == "hi" for o in res.outputs)
    # one payload per active edge direction
    assert net.stats.sends == 2 * gnp_small.m


def test_chunked_broadcast_reassembles(gnp_small):
    net = SyncNetwork(gnp_small, seed=11)
    leader, parents, children = elect(net)
    root = net.vertex_of(leader)
    payload = BitString(tuple((i * 7 + 3) % 2 for i in range(500)))
    inputs = [
        {"parent": parents[v], "children": children[v],
         "payload": payload if v == root else None}
        for v in range(gnp_small.n)
    ]
    res = net.run(lambda: ChunkedTreeBroadcast(chunk_bits=48), inputs=inputs)
    assert all(o == payload for o in res.outputs)


def test_chunked_broadcast_pipelines_rounds(barbell):
    """Pipelined rounds ~ depth + chunks, far below depth * chunks."""
    net = SyncNetwork(barbell, seed=12)
    leader, parents, children = elect(net)
    root = net.vertex_of(leader)
    nbits = 2000
    payload = BitString(tuple(i % 2 for i in range(nbits)))
    inputs = [
        {"parent": parents[v], "children": children[v],
         "payload": payload if v == root else None}
        for v in range(barbell.n)
    ]
    before = net.stats.rounds
    res = net.run(lambda: ChunkedTreeBroadcast(chunk_bits=48), inputs=inputs)
    rounds = net.stats.rounds - before
    chunks = -(-nbits // 48)
    depth = barbell.n  # generous
    assert rounds < 4 * chunks + depth


def test_share_random_bits_agreement(gnp_small):
    net = SyncNetwork(gnp_small, seed=13)
    leader, parents, children = elect(net)
    inputs = [{"parent": parents[v], "children": children[v]}
              for v in range(gnp_small.n)]
    res = net.run(lambda: ShareRandomBits(256), inputs=inputs)
    assert all(o == res.outputs[0] for o in res.outputs)
    assert len(res.outputs[0]) == 256
