"""c-wise independent hash families over prime fields (paper Lemma A.4).

The paper's algorithms derandomize their probabilistic steps down to a
shared random string of Theta(log^2 n) bits by drawing hash functions from
c-wise independent families (Definition A.3).  The standard construction is
a degree-(c-1) polynomial over a prime field:

    h(x) = (a_{c-1} x^{c-1} + ... + a_1 x + a_0  mod p)  mod L

For distinct x_1..x_c the values h(x_1)..h(x_c) are independent and
uniform over [p]; taking the result mod L introduces a bias of at most
L/p, which is negligible for p >> L (we pick p > max(N, L)^2 by default).

Choosing a random function from the family takes c * ceil(log2 p) random
bits (Lemma A.4: c * max(a, b) bits); this file provides exactly that
interface so that network protocols can derive hash functions from a
broadcast bit string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError

# A few large Mersenne primes used as field moduli, indexed by bit size.
# 2^31 - 1 is preferred whenever it fits: products stay below 2^62, which
# keeps Horner evaluation inside numpy's uint64 fast path.
_PRIMES = [
    (2**13 - 1),
    (2**17 - 1),
    (2**19 - 1),
    (2**31 - 1),
    (2**61 - 1),
    (2**89 - 1),
]


def _choose_prime(minimum: int) -> int:
    """Return the smallest builtin prime strictly greater than ``minimum``."""
    for p in _PRIMES:
        if p > minimum:
            return p
    raise ReproError(f"no builtin prime exceeds {minimum}")


@dataclass(frozen=True)
class KWiseHash:
    """A single hash function drawn from a c-wise independent family.

    Evaluates ``h(x) = poly(x) mod p mod range_size``.  The coefficient
    vector has length ``c`` (degree c-1 polynomial), which yields c-wise
    independence (Definition A.3 of the paper).
    """

    coefficients: tuple[int, ...]
    prime: int
    range_size: int

    def __call__(self, x: int) -> int:
        if self.range_size <= 0:
            raise ReproError("hash range must be positive")
        # Horner evaluation of the polynomial modulo the prime.
        acc = 0
        for coeff in reversed(self.coefficients):
            acc = (acc * x + coeff) % self.prime
        return acc % self.range_size

    def eval_many(self, values):
        """Vectorized evaluation over a sequence of keys.

        Uses numpy's uint64 fast path when the field fits in 31 bits
        (products stay below 2^62); falls back to the scalar loop
        otherwise.  Returns a list of ints.
        """
        if self.prime < (1 << 32):
            import numpy as np

            xs = np.asarray(list(values), dtype=np.uint64)
            acc = np.zeros_like(xs)
            p = np.uint64(self.prime)
            for coeff in reversed(self.coefficients):
                acc = (acc * xs + np.uint64(coeff)) % p
            return [int(v) % self.range_size for v in acc]
        return [self(x) for x in values]

    @property
    def independence(self) -> int:
        """The independence parameter c of the family this was drawn from."""
        return len(self.coefficients)

    def with_range(self, range_size: int) -> "KWiseHash":
        """The same polynomial reduced into a different output range."""
        return KWiseHash(self.coefficients, self.prime, range_size)


class KWiseHashFamily:
    """A c-wise independent family H = {h : [N] -> [L]} (Definition A.3).

    Parameters
    ----------
    domain_size:
        Upper bound N on hashed keys (IDs are drawn from a poly(n) space).
    range_size:
        Output range L.
    independence:
        The parameter c; any c distinct keys hash independently/uniformly.
    """

    def __init__(self, domain_size: int, range_size: int, independence: int):
        if domain_size <= 0 or range_size <= 0:
            raise ReproError("domain and range must be positive")
        if independence < 1:
            raise ReproError("independence must be >= 1")
        self.domain_size = domain_size
        self.range_size = range_size
        self.independence = independence
        # The polynomial construction needs p >= N for exact c-wise
        # independence over [p]; reducing mod L then carries a bias of at
        # most L/p, so we also require p >= 1024 * L to keep that bias
        # below 0.1%.  (Tests quantify the bias directly.)
        self.prime = _choose_prime(max(domain_size, 1024 * range_size))

    @property
    def bits_needed(self) -> int:
        """Random bits required to draw one function (Lemma A.4)."""
        return self.independence * self.prime.bit_length()

    def sample_from_bits(self, bits: Sequence[int]) -> KWiseHash:
        """Draw a hash function deterministically from a bit sequence.

        This is the interface network protocols use: a leader broadcasts a
        random bit string and every node derives the *same* hash function
        locally (Section 3.1, Step 2 of the paper).
        """
        needed = self.bits_needed
        if len(bits) < needed:
            raise ReproError(
                f"need {needed} bits to sample from this family, got {len(bits)}"
            )
        word = self.prime.bit_length()
        coefficients = []
        for i in range(self.independence):
            chunk = bits[i * word : (i + 1) * word]
            value = 0
            for b in chunk:
                value = (value << 1) | (b & 1)
            coefficients.append(value % self.prime)
        return KWiseHash(tuple(coefficients), self.prime, self.range_size)

    def sample(self, rng) -> KWiseHash:
        """Draw a hash function from a ``random.Random``-like source."""
        bits = [rng.getrandbits(1) for _ in range(self.bits_needed)]
        return self.sample_from_bits(bits)


def hash_family_from_bits(
    bits: Sequence[int],
    offset: int,
    domain_size: int,
    range_size: int,
    independence: int,
) -> tuple[KWiseHash, int]:
    """Derive one hash function from ``bits[offset:]``.

    Returns the function together with the new offset, so several hash
    functions (h_L, h, h_c, ... in Algorithm 1) can be peeled off a single
    broadcast string.
    """
    family = KWiseHashFamily(domain_size, range_size, independence)
    end = offset + family.bits_needed
    return family.sample_from_bits(bits[offset:end]), end
