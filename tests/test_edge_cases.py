"""Assorted edge cases across modules (small graphs, degenerate inputs)."""

import pytest

from repro.congest.network import SyncNetwork
from repro.graphs.analysis import subgraph_diameter
from repro.graphs.core import Graph
from repro.graphs.generators import complete_graph, cycle_graph
from repro.substrates.flooding import (
    ChunkedTreeBroadcast,
    FloodPayload,
    elect_leader_and_tree,
)
from repro.util.bitstrings import BitString


def test_subgraph_diameter():
    g = cycle_graph(10)
    assert subgraph_diameter(g, range(10)) == 5
    # a path segment of the cycle
    assert subgraph_diameter(g, [0, 1, 2, 3]) == 3


def test_flood_payload_multiple_initiators():
    """Concurrent initiators with the same payload: everyone converges."""
    g = complete_graph(8)
    net = SyncNetwork(g, seed=1)
    inputs = [
        {"active": None, "payload": "go" if v in (0, 5) else None}
        for v in range(8)
    ]
    res = net.run(FloodPayload, inputs=inputs)
    assert all(o == "go" for o in res.outputs)


def test_chunked_broadcast_single_node():
    g = Graph(1, [])
    net = SyncNetwork(g, seed=2)
    payload = BitString((1, 0, 1))
    res = net.run(
        lambda: ChunkedTreeBroadcast(chunk_bits=2),
        inputs=[{"parent": None, "children": frozenset(),
                 "payload": payload}],
    )
    assert res.outputs[0] == payload


def test_chunked_broadcast_empty_tolerated():
    """A zero-length payload still terminates (single empty chunk)."""
    g = Graph(2, [(0, 1)])
    net = SyncNetwork(g, seed=3)
    leader, parents, children = elect_leader_and_tree(net, None)
    root = net.vertex_of(leader)
    payload = BitString((1,))
    inputs = [
        {"parent": parents[v], "children": children[v],
         "payload": payload if v == root else None}
        for v in range(2)
    ]
    res = net.run(lambda: ChunkedTreeBroadcast(chunk_bits=8), inputs=inputs)
    assert all(o == payload for o in res.outputs)


def test_two_node_algorithms():
    """Every headline algorithm on the smallest nontrivial graph."""
    from repro.coloring.algorithm1 import run_algorithm1
    from repro.coloring.algorithm2 import run_algorithm2
    from repro.mis.algorithm3 import run_algorithm3
    from repro.mis.verify import check_mis

    g = Graph(2, [(0, 1)])
    r1 = run_algorithm1(SyncNetwork(g, seed=4), seed=5)
    assert sorted(r1.colors) == [0, 1]

    r2 = run_algorithm2(SyncNetwork(g, seed=6), epsilon=0.5, seed=7)
    assert r2.colors[0] != r2.colors[1]

    r3 = run_algorithm3(SyncNetwork(g, rho=2, seed=8), seed=9)
    check_mis(g, r3.in_mis)


def test_star_graph_algorithms():
    """High-degree hub + leaves: a danner worst case for light/heavy."""
    from repro.coloring.algorithm1 import run_algorithm1
    from repro.coloring.verify import check_proper_coloring

    g = Graph(30, [(0, i) for i in range(1, 30)])
    net = SyncNetwork(g, seed=10)
    r = run_algorithm1(net, seed=11)
    check_proper_coloring(g, r.colors)
    # leaves all get a color != hub's; only 2 colors necessary
    assert len(set(r.colors)) <= 3


def test_triangle_mis_unique_winner():
    from repro.mis.algorithm3 import run_algorithm3
    from repro.mis.verify import check_mis

    g = complete_graph(3)
    r = run_algorithm3(SyncNetwork(g, rho=2, seed=12), seed=13)
    check_mis(g, r.in_mis)
    assert sum(r.in_mis) == 1


def test_engine_rejects_rho_zero():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        SyncNetwork(Graph(2, [(0, 1)]), rho=0)


def test_word_bits_scale_with_id_space():
    small = SyncNetwork(Graph(4, [(0, 1)]), seed=14)
    big_assignment_net = SyncNetwork(
        Graph(4, [(0, 1)]),
        assignment=__import__("repro.congest.ids",
                              fromlist=["IdAssignment"]).IdAssignment(
            [1, 2, 3, 10**9]),
        seed=15,
    )
    assert big_assignment_net.word_bits > small.word_bits
