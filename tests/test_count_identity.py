"""Count-identity guarantees of the batched send path.

The engine's accounting modes are different *speeds*, never different
*measurements*:

* stats-lite (``collect_utilization=False``) vs full accounting must
  agree on sends / messages / words / rounds;
* batched per-round charging (the default) vs the per-send reference
  path (``eager_charges=True``) must agree on everything, including the
  per-stage breakdown, utilized edges, and the per-tag / per-sender
  loads.

Parametrized across graph families, methods (coloring and MIS, broadcast
fan-out and unicast-heavy), and seeds.
"""

from __future__ import annotations

import pytest

from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.baselines import run_baseline_coloring
from repro.congest.async_network import AsyncNetwork
from repro.congest.network import SyncNetwork
from repro.graphs.generators import family_graph
from repro.mis.algorithm3 import run_algorithm3
from repro.mis.luby import run_luby

RUNNERS = {
    "kt1-delta-plus-one": (1, lambda net, seed: run_algorithm1(net, seed=seed)),
    "baseline-trial": (1, lambda net, seed: run_baseline_coloring(net, "trial")),
    "kt2-sampled-greedy": (2, lambda net, seed: run_algorithm3(net, seed=seed)),
    "luby": (1, lambda net, seed: run_luby(net)),
}

CORE_COUNTS = ("sends", "messages", "words", "rounds")


def _run_counts(graph, method: str, seed: int, **net_kwargs) -> dict:
    rho, runner = RUNNERS[method]
    net = SyncNetwork(graph, rho=rho, seed=seed, **net_kwargs)
    runner(net, seed)
    stats = net.stats
    return {
        "sends": stats.sends,
        "messages": stats.messages,
        "words": stats.words,
        "rounds": stats.rounds,
        "stages": [s.as_dict() for s in stats.stages],
        "utilized": stats.utilized,
        "by_tag": dict(stats.by_tag),
        "by_sender": stats.by_sender,
    }


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("method", sorted(RUNNERS))
@pytest.mark.parametrize("family,n", [("gnp", 40), ("regular", 36),
                                      ("powerlaw", 44)])
def test_batched_vs_eager_vs_lite(family, n, method, seed):
    graph = family_graph(family, n, p=0.3, seed=seed)
    batched = _run_counts(graph, method, seed)
    eager = _run_counts(graph, method, seed, eager_charges=True)
    assert batched == eager

    lite = _run_counts(graph, method, seed, collect_utilization=False)
    for field in CORE_COUNTS:
        assert lite[field] == batched[field]
    assert lite["stages"] == batched["stages"]
    # Lite mode skips the breakdowns entirely.
    assert lite["utilized"] == set()
    assert lite["by_tag"] == {}
    assert lite["by_sender"] == {}
    # Full mode's breakdowns are internally consistent with the totals.
    assert sum(batched["by_tag"].values()) == batched["messages"]
    assert sum(batched["by_sender"].values()) == batched["messages"]


# -- async engine -------------------------------------------------------------
#
# The event-driven engine flushes the shared outbox once per activation
# instead of once per round; its accounting modes must agree with each
# other exactly like the synchronous engine's do.


def _async_counts(graph, seed: int, **net_kwargs) -> dict:
    net = AsyncNetwork(graph, seed=seed, **net_kwargs)
    run_algorithm1(net, seed=seed)
    stats = net.stats
    return {
        "sends": stats.sends,
        "messages": stats.messages,
        "words": stats.words,
        "rounds": stats.rounds,
        "stages": [s.as_dict() for s in stats.stages],
        "utilized": stats.utilized,
        "by_tag": dict(stats.by_tag),
        "by_sender": stats.by_sender,
    }


@pytest.mark.parametrize("seed", [0, 1])
def test_async_batched_vs_eager_vs_lite_algorithm1(seed):
    """Satellite audit of the async/batched-outbox interaction: the
    per-activation outbox flush, the per-send eager path, and stats-lite
    must account Algorithm 1 identically on the event-driven engine."""
    graph = family_graph("gnp", 40, p=0.3, seed=seed)
    batched = _async_counts(graph, seed)
    eager = _async_counts(graph, seed, eager_charges=True)
    assert batched == eager

    lite = _async_counts(graph, seed, collect_utilization=False)
    for field in CORE_COUNTS:
        assert lite[field] == batched[field]
    assert lite["stages"] == batched["stages"]
    assert lite["utilized"] == set()


# -- fault seam ---------------------------------------------------------------


@pytest.mark.parametrize("method", sorted(RUNNERS))
def test_faults_none_is_count_identical(method):
    """``faults="none"`` must be literally the fault-free engine path:
    every count the engine produces, down to the per-stage breakdown and
    per-sender loads, is bit-identical with and without the spec.  The
    guarantee the 156-cell regression gate rests on, in-process."""
    graph = family_graph("gnp", 40, p=0.3, seed=5)
    plain = _run_counts(graph, method, 5)
    named = _run_counts(graph, method, 5, faults="none")
    assert named == plain


def test_algorithm1_sync_vs_async_stage_identity():
    """Sync-vs-async accounting for Algorithm 1: every stage except the
    danner's leader-election flood is count-based lockstep, so its
    sends/messages/words are identical on both engines.  The flood is
    legitimately delay-adaptive (nodes forward the best leader seen so
    far, and reordering changes how many improvements each node relays),
    so it is compared with >=: asynchrony never makes it cheaper than
    the synchronous schedule's."""
    graph = family_graph("gnp", 44, p=0.3, seed=3)
    snet = SyncNetwork(graph, seed=3)
    run_algorithm1(snet, seed=3)
    anet = AsyncNetwork(graph, seed=3)
    run_algorithm1(anet, seed=3)
    sync_stages = {s.name: (s.sends, s.messages, s.words)
                   for s in snet.stats.stages}
    async_stages = {s.name: (s.sends, s.messages, s.words)
                    for s in anet.stats.stages}
    assert set(sync_stages) == set(async_stages)
    adaptive = {name for name in sync_stages if "-flood" in name}
    assert adaptive, "expected a leader-election flood stage"
    for name, counts in async_stages.items():
        if name in adaptive:
            assert all(a >= s for a, s in zip(counts, sync_stages[name])), \
                name
        else:
            assert counts == sync_stages[name], name
