"""Cell execution and the multiprocessing worker pool.

``run_cell`` is the unit of work: build the cell's graph, run its method
under the requested engine, and return a flat JSON-serializable record.
``run_sweep`` drives a whole :class:`~repro.experiments.spec.SweepSpec`
through a ``multiprocessing`` pool (or serially for ``workers <= 1``),
appending each record to a :class:`~repro.experiments.store.ResultStore`
as it completes and skipping cells the store already holds.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Optional

from repro import api
from repro.errors import ReproError
from repro.experiments.spec import ASYNC_METHODS, Cell, SweepSpec
from repro.experiments.store import ResultStore
from repro.graphs.generators import family_graph


def run_cell(cell: Cell) -> dict:
    """Execute one sweep cell and return its result record.

    The record is flat and JSON-serializable: identity fields (key,
    family, n, seed, method, engine), the graph's m, the accounting
    (messages, words, rounds, utilized — ``None`` in stats-lite mode),
    validity, and wall-clock seconds.
    """
    if cell.engine == "async" and cell.method not in ASYNC_METHODS:
        # SweepSpec rejects these at construction; a hand-built Cell gets
        # the same answer instead of a silently-synchronous "async" record.
        raise ReproError(
            f"method {cell.method!r} cannot run on the async engine"
        )
    t0 = time.perf_counter()
    graph = family_graph(cell.family, cell.n, p=cell.density,
                         seed=cell.seed)
    if cell.problem == "coloring":
        result = api.color_graph(
            graph,
            method=cell.method,
            seed=cell.seed,
            epsilon=cell.epsilon,
            asynchronous=(cell.engine == "async"),
            collect_utilization=cell.collect_utilization,
        )
        extra = {"colors": result.num_colors,
                 "palette_bound": result.palette_bound}
    else:
        result = api.find_mis(
            graph,
            method=cell.method,
            seed=cell.seed,
            collect_utilization=cell.collect_utilization,
        )
        extra = {"mis_size": result.size}
    report = result.report
    record = {
        "key": cell.key(),
        "family": cell.family,
        "n": cell.n,
        "m": graph.m,
        "seed": cell.seed,
        "method": cell.method,
        "engine": cell.engine,
        "density": cell.density,
        "epsilon": cell.epsilon,
        "messages": report.messages,
        "rounds": report.rounds,
        "utilized": (report.utilized_edges
                     if cell.collect_utilization else None),
        "valid": result.valid,
        "wall_s": round(time.perf_counter() - t0, 6),
    }
    record.update(extra)
    return record


def run_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    workers: int = 0,
    progress: Optional[Callable[[dict, int, int], None]] = None,
) -> list[dict]:
    """Run every cell of ``spec`` not already present in ``store``.

    ``workers <= 1`` runs serially in-process; otherwise a
    ``multiprocessing.Pool`` of that many workers executes cells
    concurrently (cells are independent fixed-seed runs, so completion
    order does not affect the stored results beyond line order).
    Returns the newly produced records; previously stored cells are
    skipped, which is what makes an interrupted sweep resumable.
    """
    done = store.completed_keys() if store is not None else set()
    cells = [c for c in spec.cells() if c.key() not in done]
    total = len(cells)
    fresh: list[dict] = []

    def _record(rec: dict) -> None:
        fresh.append(rec)
        if store is not None:
            store.append(rec)
        if progress is not None:
            progress(rec, len(fresh), total)

    if workers <= 1 or total <= 1:
        for cell in cells:
            _record(run_cell(cell))
        return fresh

    with multiprocessing.Pool(processes=min(workers, total)) as pool:
        for rec in pool.imap_unordered(run_cell, cells):
            _record(rec)
    return fresh
