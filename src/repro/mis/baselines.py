"""Comparison-based MIS baseline: deterministic greedy by ID rank.

A correct, deterministic, comparison-based MIS: undecided local ID-maxima
join; neighbors retire.  Message cost Θ(m) (every node announces its fate
over every incident edge) and every edge is utilized — the behavior
Theorems 2.14/2.16 prove unavoidable for comparison-based algorithms.
Used as the "correct" arm of the crossing dichotomy experiment.
"""

from __future__ import annotations

from repro.congest.node import Context, NodeAlgorithm


class RankGreedyMIS(NodeAlgorithm):
    """Deterministic comparison-based MIS by ID order."""

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        self.undecided_above = {u for u in ctx.neighbor_ids if u > ctx.my_id}
        self.state = None       # None / "joined" / "out"

    def _try_decide(self, ctx: Context) -> None:
        if self.state is None and not self.undecided_above:
            self.state = "joined"
            for u in ctx.neighbor_ids:
                ctx.send(u, "joined")
            ctx.done({"in_mis": True})

    def on_round(self, ctx: Context, inbox) -> None:
        for msg in inbox:
            if msg.tag == "joined" and self.state is None:
                self.state = "out"
                for u in ctx.neighbor_ids:
                    ctx.send(u, "out")
            self.undecided_above.discard(msg.sender_id)
        ctx.done({"in_mis": self.state == "joined"})
        self._try_decide(ctx)


def run_rank_greedy_mis(net, name: str = "rank-mis"):
    stage = net.run(RankGreedyMIS, name=name)
    in_mis = [bool(out and out["in_mis"]) for out in stage.outputs]
    return in_mis, stage
