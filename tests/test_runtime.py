"""Tests for the runtime core: schedulers and latency models."""

import random

import pytest

from repro.congest.async_network import AsyncNetwork
from repro.congest.network import SyncNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.runtime import (
    LATENCY_MODELS,
    AdversaryLatency,
    EventScheduler,
    FixedLatency,
    HeavyTailLatency,
    LatencyModel,
    RoundScheduler,
    UniformLatency,
    make_latency_model,
)
from repro.errors import ReproError
from repro.mis.luby import run_luby
from repro.mis.verify import check_mis


class EchoOnce(NodeAlgorithm):
    passive_when_idle = True

    def setup(self, ctx):
        self.heard = 0

    def on_round(self, ctx, inbox):
        self.heard += len(inbox)
        if ctx.round == 0:
            for u in ctx.neighbor_ids:
                ctx.send(u, "hi")
        ctx.done(self.heard)


# -- latency models -----------------------------------------------------------


def test_registry_names_and_instances():
    for name in LATENCY_MODELS:
        model = make_latency_model(name)
        assert isinstance(model, LatencyModel)
        assert model.name == name
    custom = FixedLatency(0.25)
    assert make_latency_model(custom) is custom
    with pytest.raises(ReproError):
        make_latency_model("tachyon")


def test_min_delay_feeds_uniform_default():
    model = make_latency_model("uniform", min_delay=0.4)
    assert isinstance(model, UniformLatency) and model.low == 0.4
    rng = random.Random(0)
    assert all(0.4 <= model.packet_delay(rng) <= 1.0 for _ in range(200))


def test_model_parameter_validation():
    with pytest.raises(ReproError):
        FixedLatency(0.0)
    with pytest.raises(ReproError):
        UniformLatency(low=0.5, high=0.2)
    with pytest.raises(ReproError):
        HeavyTailLatency(alpha=0.0)


def test_draws_are_seed_deterministic():
    for name in LATENCY_MODELS:
        model = make_latency_model(name)
        a = [model.packet_delay(random.Random(7)) for _ in range(1)]
        b = [model.packet_delay(random.Random(7)) for _ in range(1)]
        assert a == b
        assert all(d > 0 for d in a)


# -- scheduler pluggability ---------------------------------------------------


def test_explicit_round_scheduler_matches_default(gnp_small):
    default = SyncNetwork(gnp_small, seed=3)
    default.run(EchoOnce)
    explicit = SyncNetwork(gnp_small, seed=3, scheduler=RoundScheduler())
    explicit.run(EchoOnce)
    assert default.stats.summary() == explicit.stats.summary()


def test_event_scheduler_on_plain_network(gnp_small):
    """The scheduler seam is the whole async engine: a SyncNetwork with
    an EventScheduler delivers like an AsyncNetwork."""
    net = SyncNetwork(gnp_small, seed=3, scheduler=EventScheduler())
    res = net.run(EchoOnce)
    assert res.outputs == [gnp_small.degree(v)
                           for v in range(gnp_small.n)]
    anet = AsyncNetwork(gnp_small, seed=3)
    anet.run(EchoOnce)
    assert net.stats.messages == anet.stats.messages
    assert net.stats.rounds == anet.stats.rounds


def test_scheduler_serves_single_network(gnp_small):
    sched = RoundScheduler()
    SyncNetwork(gnp_small, seed=1, scheduler=sched)
    with pytest.raises(ReproError):
        SyncNetwork(gnp_small, seed=2, scheduler=sched)


# -- latency models through the engine ----------------------------------------


@pytest.mark.parametrize("latency", LATENCY_MODELS)
def test_luby_valid_and_count_stable_under_every_model(gnp_small, latency):
    """Count-based lockstep: the MIS stays valid under every delay
    distribution, and the message count matches the synchronous run."""
    anet = AsyncNetwork(gnp_small, seed=11, latency=latency)
    in_mis, _ = run_luby(anet)
    check_mis(gnp_small, in_mis)
    snet = SyncNetwork(gnp_small, seed=11)
    sync_mis, _ = run_luby(snet)
    assert in_mis == sync_mis
    assert anet.stats.messages == snet.stats.messages


def test_fixed_latency_time_is_deterministic(gnp_small):
    times = []
    for _ in range(2):
        anet = AsyncNetwork(gnp_small, seed=5, latency=FixedLatency(0.5))
        anet.run(EchoOnce)
        times.append(anet.stats.rounds)
    assert times[0] == times[1]


def test_latency_seed_determinism(gnp_small):
    """Same seed => identical schedule; different seed => (almost
    surely) different normalized time."""
    def time_of(seed):
        anet = AsyncNetwork(gnp_small, seed=seed, latency="heavy_tail")
        anet.run(EchoOnce)
        return anet.stats.rounds

    assert time_of(5) == time_of(5)


def test_async_network_exposes_latency_model(gnp_small):
    anet = AsyncNetwork(gnp_small, seed=1, latency="exponential")
    assert anet.latency_model.name == "exponential"
    assert isinstance(anet.scheduler, EventScheduler)


# -- the latency adversary ----------------------------------------------------


def test_adversary_latency_parameter_validation():
    with pytest.raises(ReproError):
        AdversaryLatency(slowdown=0.5)
    with pytest.raises(ReproError):
        AdversaryLatency(budget=-1)
    with pytest.raises(ReproError):
        AdversaryLatency(warmup=-1)


def test_adversary_latency_is_seed_deterministic(gnp_small):
    """Targeting consumes no randomness: a fixed seed reproduces the
    exact normalized-time schedule, run after run."""
    def run(seed):
        anet = AsyncNetwork(gnp_small, seed=seed,
                            latency="adversary_latency")
        anet.run(EchoOnce)
        return anet.stats.rounds, anet.stats.messages

    assert run(5) == run(5)
    assert run(9) == run(9)


def test_adversary_latency_stretches_time_not_counts(gnp_small):
    """Against `uniform` (the identical base draws), the adversary can
    only reorder and delay: message counts stay put, normalized time
    does not shrink."""
    adv = AsyncNetwork(gnp_small, seed=11, latency="adversary_latency")
    adv.run(EchoOnce)
    base = AsyncNetwork(gnp_small, seed=11, latency="uniform")
    base.run(EchoOnce)
    assert adv.stats.messages == base.stats.messages
    assert adv.stats.rounds >= base.stats.rounds
    assert adv.latency_model.slowed > 0


def test_adversary_latency_respects_budget(gnp_small):
    model = AdversaryLatency(budget=3, warmup=0)
    anet = AsyncNetwork(gnp_small, seed=4, latency=model)
    anet.run(EchoOnce)
    assert model.slowed == 3
    assert model.remaining == 0


def test_adversary_latency_zero_budget_matches_uniform(gnp_small):
    """budget=0 disarms the adversary entirely: same draws, same
    schedule, bit-identical normalized time."""
    model = AdversaryLatency(budget=0)
    adv = AsyncNetwork(gnp_small, seed=8, latency=model)
    adv.run(EchoOnce)
    base = AsyncNetwork(gnp_small, seed=8, latency="uniform")
    base.run(EchoOnce)
    assert adv.stats.rounds == base.stats.rounds
    assert adv.stats.messages == base.stats.messages


def test_adversary_latency_instance_resets_between_networks(gnp_small):
    """`begin` re-arms a reused instance: the second network sees the
    full budget again, not the first run's leftovers."""
    model = AdversaryLatency(budget=5, warmup=0)
    a = AsyncNetwork(gnp_small, seed=2, latency=model)
    a.run(EchoOnce)
    first = model.slowed
    assert first == 5
    b = AsyncNetwork(gnp_small, seed=2, latency=model)
    b.run(EchoOnce)
    assert model.slowed == first
    assert a.stats.rounds == b.stats.rounds
