"""Section 2.2: the lower-bound graph family and its ID assignments.

The base graph is G ∪ G′ where G(X, Y, Z, E) has |X| = |Y| = |Z| = t and
G[X ∪ Y] ≅ G[Y ∪ Z] ≅ K_{t,t} (so |E| = 2t², n = 6t, m = 4t²), and G′ is
a disjoint copy.  A *crossed graph* G_{e,e′} swaps the edge e = {y, z}
of G with e′ = {x′, y′} of G′, producing the new edges {y, y′} and
{x′, z} (Figure 2).

The ID assignment φ places X on even values in [0, 2t), Y in [10t, 12t),
Z in [20t, 22t); the copy's assignment φ′_{e,e′} shifts each part so that
the ID of x′ lands right next to φ(y) and the ID of y′ right next to
φ(z) — equation (1) of the paper — which is what hides the crossing from
any comparison-based algorithm that does not utilize e or e′.

`verify_id_properties` checks the paper's observations (i)-(iii) about
φ′_{e,e′} on any instance; tests run it across the family.

Vertex numbering: X = 0..t-1, Y = t..2t-1, Z = 2t..3t-1, and primed
copies shifted by 3t (so v′ = v + 3t).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.congest.ids import IdAssignment
from repro.errors import ReproError
from repro.graphs.core import Graph


def build_base_graph(t: int) -> tuple[Graph, dict[str, list[int]]]:
    """G ∪ G′ plus the six parts."""
    if t < 1:
        raise ReproError("t must be >= 1")
    xs = list(range(t))
    ys = list(range(t, 2 * t))
    zs = list(range(2 * t, 3 * t))
    edges = [(x, y) for x in xs for y in ys]
    edges += [(y, z) for y in ys for z in zs]
    # The primed copy, shifted by 3t.
    edges += [(u + 3 * t, v + 3 * t) for u, v in list(edges)]
    parts = {
        "X": xs, "Y": ys, "Z": zs,
        "X'": [v + 3 * t for v in xs],
        "Y'": [v + 3 * t for v in ys],
        "Z'": [v + 3 * t for v in zs],
    }
    return Graph(6 * t, edges), parts


def phi_values(t: int) -> list[int]:
    """φ for the unprimed side: X, Y, Z on even values in their windows."""
    values = [0] * (3 * t)
    for i in range(t):
        values[i] = 2 * i                     # X in [0, 2t)
        values[t + i] = 10 * t + 2 * i        # Y in [10t, 12t)
        values[2 * t + i] = 20 * t + 2 * i    # Z in [20t, 22t)
    return values


@dataclass(frozen=True)
class CrossingInstance:
    """One member of the family F: indices, graphs, and assignments."""

    t: int
    y_index: int      # which y in Y
    z_index: int      # which z in Z (edge e = {y, z})
    x_index: int      # which x' in X' (edge e' = {x', y'})
    base: Graph
    crossed: Graph
    parts: dict
    psi: IdAssignment        # psi_{e,e'}
    psi_x: IdAssignment      # psi_{e,e',x}: swap values of y and x'
    psi_z: IdAssignment      # psi_{e,e',z}: swap values of z and y'

    # -- distinguished vertices ------------------------------------------------

    @property
    def y(self) -> int:
        return self.t + self.y_index

    @property
    def z(self) -> int:
        return 2 * self.t + self.z_index

    @property
    def x(self) -> int:
        return self.x_index

    @property
    def x_prime(self) -> int:
        return 3 * self.t + self.x_index

    @property
    def y_prime(self) -> int:
        return 3 * self.t + self.y

    @property
    def z_prime(self) -> int:
        return 3 * self.t + self.z

    @property
    def e(self) -> tuple[int, int]:
        return (min(self.y, self.z), max(self.y, self.z))

    @property
    def e_prime(self) -> tuple[int, int]:
        a, b = self.x_prime, self.y_prime
        return (min(a, b), max(a, b))

    @property
    def new_edges(self) -> list[tuple[int, int]]:
        return [
            (min(self.y, self.y_prime), max(self.y, self.y_prime)),
            (min(self.x_prime, self.z), max(self.x_prime, self.z)),
        ]

    def copy_map(self) -> dict[int, int]:
        """v -> v' for the Lemma 2.8 isomorphism."""
        return {v: v + 3 * self.t for v in range(3 * self.t)}


def crossing_instance(t: int, y_index: int, z_index: int,
                      x_index: int) -> CrossingInstance:
    """Build G ∪ G′, G_{e,e′} and ψ_{e,e′} for the chosen crossing."""
    for idx in (y_index, z_index, x_index):
        if not 0 <= idx < t:
            raise ReproError("crossing indices must lie in [0, t)")
    base, parts = build_base_graph(t)
    phi = phi_values(t)

    y_val = phi[t + y_index]       # phi(y)
    z_val = phi[2 * t + z_index]   # phi(z)
    x_val = phi[x_index]           # phi(x)

    shift_x = (y_val - x_val) + 1
    shift_y = (z_val - y_val) + 1
    shift_z = 10 * t + 1

    values = list(phi) + [0] * (3 * t)
    for i in range(t):
        values[3 * t + i] = phi[i] + shift_x                    # X'
        values[4 * t + i] = phi[t + i] + shift_y                # Y'
        values[5 * t + i] = phi[2 * t + i] + shift_z            # Z'
    psi = IdAssignment(values)

    y_vertex = t + y_index
    z_vertex = 2 * t + z_index
    x_prime_vertex = 3 * t + x_index
    y_prime_vertex = 3 * t + y_vertex
    psi_x = psi.with_swapped(y_vertex, x_prime_vertex)
    psi_z = psi.with_swapped(z_vertex, y_prime_vertex)

    e = (min(y_vertex, z_vertex), max(y_vertex, z_vertex))
    e_p = (min(x_prime_vertex, y_prime_vertex),
           max(x_prime_vertex, y_prime_vertex))
    crossed = base.with_edges(
        removed=[e, e_p],
        added=[(y_vertex, y_prime_vertex), (x_prime_vertex, z_vertex)],
    )
    return CrossingInstance(
        t=t, y_index=y_index, z_index=z_index, x_index=x_index,
        base=base, crossed=crossed, parts=parts,
        psi=psi, psi_x=psi_x, psi_z=psi_z,
    )


def family_size(t: int) -> int:
    """|F| = t^3 (t choices each for y, z, x')."""
    return t ** 3


def enumerate_family(t: int) -> Iterator[CrossingInstance]:
    for y_index in range(t):
        for z_index in range(t):
            for x_index in range(t):
                yield crossing_instance(t, y_index, z_index, x_index)


def sample_family(t: int, count: int, seed=0) -> list[CrossingInstance]:
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    out = []
    for _ in range(count):
        out.append(crossing_instance(
            t, rng.randrange(t), rng.randrange(t), rng.randrange(t)
        ))
    return out


def verify_id_properties(inst: CrossingInstance) -> dict:
    """The paper's observations (i)-(iii) about φ′_{e,e′}.

    (i) the ranges of φ and φ′ are disjoint; (ii) φ′ lands inside the
    stated windows per part; (iii) φ′ induces the same ID order on V′ as
    φ does on V.  Also checks the two 'adjacency' facts Lemma 2.5 uses:
    ψ(x′) = φ(y) + 1 and ψ(y′) = φ(z) + 1.
    """
    t = inst.t
    psi = inst.psi
    side_a = set(range(3 * t))
    side_b = set(range(3 * t, 6 * t))
    vals_a = {psi.value_of(v) for v in side_a}
    vals_b = {psi.value_of(v) for v in side_b}

    windows_ok = True
    for i in range(t):
        if not (8 * t + 1 <= psi.value_of(3 * t + i) <= 14 * t + 1):
            windows_ok = False
        if not (18 * t + 1 <= psi.value_of(4 * t + i) <= 24 * t + 1):
            windows_ok = False
        if not (30 * t + 1 <= psi.value_of(5 * t + i) <= 32 * t + 1):
            windows_ok = False

    order_ok = True
    pairs = [(v, v + 3 * t) for v in range(3 * t)]
    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            a1, b1 = pairs[i]
            a2, b2 = pairs[j]
            if ((psi.value_of(a1) < psi.value_of(a2))
                    != (psi.value_of(b1) < psi.value_of(b2))):
                order_ok = False
                break
        if not order_ok:
            break

    return {
        "ranges_disjoint": not (vals_a & vals_b),
        "windows": windows_ok,
        "order_isomorphic": order_ok,
        "x_prime_adjacent_to_y":
            psi.value_of(inst.x_prime) == psi.value_of(inst.y) + 1,
        "y_prime_adjacent_to_z":
            psi.value_of(inst.y_prime) == psi.value_of(inst.z) + 1,
    }
