"""Tests for the Theorem 2.17 cycle experiments."""

from repro.lowerbounds.kt_rho import (
    cycle_tradeoff_sweep,
    run_cycle_experiment,
)


def test_fully_active_succeeds():
    res = run_cycle_experiment(10, 9, active_fraction=1.0, seed=1)
    assert res.success
    assert res.failed_cycles == 0
    assert res.messages > 0


def test_fully_mute_fails():
    res = run_cycle_experiment(12, 12, active_fraction=0.0, seed=2)
    assert res.messages == 0
    assert not res.success
    assert res.failed_cycles >= 8   # (2/3)^12 survival is negligible


def test_partial_activation_partial_failure():
    res = run_cycle_experiment(20, 12, active_fraction=0.5, seed=3)
    assert 4 <= res.failed_cycles <= 16


def test_messages_linear_in_active_nodes():
    r_half = run_cycle_experiment(20, 10, 0.5, seed=4)
    r_full = run_cycle_experiment(20, 10, 1.0, seed=4)
    assert r_full.messages >= 1.8 * r_half.messages
    # 3-coloring a cycle costs Theta(1) messages per node
    assert r_full.messages <= 6 * r_full.n


def test_sweep_shape():
    """The Theorem 2.17 curve: success requires Theta(n) messages."""
    rows = cycle_tradeoff_sweep(15, 10, fractions=(0.0, 0.5, 1.0),
                                trials=3, seed=5)
    assert rows[0]["success_rate"] == 0.0
    assert rows[-1]["success_rate"] == 1.0
    assert rows[0]["mean_messages"] == 0.0
    assert rows[-1]["mean_messages"] > rows[1]["mean_messages"]


def test_active_coloring_always_proper_on_active_cycles():
    res = run_cycle_experiment(8, 15, 1.0, seed=6)
    assert res.failed_cycles == 0


def test_result_metadata():
    res = run_cycle_experiment(7, 9, 0.3, seed=7)
    assert res.n == 63
    assert res.num_cycles == 7
    assert res.cycle_length == 9
    assert res.active_cycles == round(0.3 * 7)


def test_rho_does_not_rescue_mute_cycles():
    """Theorem 2.17 holds for every constant rho: mute cycles fail the
    same way under KT-2 and KT-3 knowledge (the silent rule only sees
    its own ID; extra hops of knowledge change nothing for it, and the
    message cost of the active protocol is unchanged)."""
    baseline = run_cycle_experiment(12, 12, 0.5, seed=9, rho=1)
    for rho in (2, 3):
        res = run_cycle_experiment(12, 12, 0.5, seed=9, rho=rho)
        assert res.failed_cycles == baseline.failed_cycles
        assert res.messages == baseline.messages
        assert not res.success
