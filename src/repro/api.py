"""One-call entry points for the library.

These wrap the full pipelines (network construction, algorithm, output
verification, accounting) behind the API a downstream user wants:

>>> from repro import api
>>> from repro.graphs import gnp_random_graph
>>> g = gnp_random_graph(400, 0.1, seed=1)
>>> result = api.color_graph(g, method="kt1-delta-plus-one", seed=2)
>>> result.valid, result.messages_per_edge < 10
(True, True)

Methods:

* coloring — ``kt1-delta-plus-one`` (Algorithm 1, Thm. 3.3),
  ``kt1-eps-delta`` (Algorithm 2, Thm. 3.8), ``baseline-trial`` /
  ``baseline-rank-greedy`` (the Ω(m) classics).
* MIS — ``kt2-sampled-greedy`` (Algorithm 3, Thm. 4.1), ``luby``
  (the Õ(m) baseline), ``rank-greedy`` (comparison-based classic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.congest.async_network import AsyncNetwork
from repro.congest.network import SyncNetwork
from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.algorithm2 import run_algorithm2
from repro.coloring.baselines import run_baseline_coloring
from repro.coloring.verify import coloring_violations
from repro.errors import ReproError
from repro.graphs.core import Graph
from repro.mis.algorithm3 import run_algorithm3
from repro.mis.baselines import run_rank_greedy_mis
from repro.mis.luby import run_luby
from repro.mis.verify import mis_violations


@dataclass
class RunReport:
    """Common accounting attached to every API result."""

    method: str
    n: int
    m: int
    messages: int
    rounds: int
    utilized_edges: int
    stage_messages: dict = field(default_factory=dict)

    @property
    def messages_per_edge(self) -> float:
        return self.messages / max(self.m, 1)


@dataclass
class ColoringResult:
    colors: list[Optional[int]]
    num_colors: int
    palette_bound: int
    valid: bool
    report: RunReport
    detail: object = None

    @property
    def messages(self) -> int:
        return self.report.messages

    @property
    def messages_per_edge(self) -> float:
        return self.report.messages_per_edge


@dataclass
class MISResult:
    in_mis: list[bool]
    size: int
    valid: bool
    report: RunReport
    detail: object = None

    @property
    def messages(self) -> int:
        return self.report.messages


def _report(method: str, net) -> RunReport:
    # Aggregate with += : a driver may legally reuse a stage name (e.g. a
    # retry loop), and assignment would silently drop the earlier stages
    # from the breakdown, breaking sum(stage_messages) == messages.
    per_stage: dict = {}
    for s in net.stats.stages:
        per_stage[s.name] = per_stage.get(s.name, 0) + s.messages
    return RunReport(
        method=method,
        n=net.graph.n,
        m=net.graph.m,
        messages=net.stats.messages,
        rounds=net.stats.rounds,
        utilized_edges=net.stats.utilized_count,
        stage_messages=per_stage,
    )


def color_graph(
    graph: Graph,
    method: str = "kt1-delta-plus-one",
    seed: int = 0,
    epsilon: float = 0.5,
    asynchronous: bool = False,
    collect_utilization: bool = True,
    **kwargs,
) -> ColoringResult:
    """Color a connected graph with one of the paper's algorithms.

    ``asynchronous=True`` reruns Algorithm 1 under the event-driven
    engine (Theorem 3.4); other methods are synchronous.

    ``collect_utilization=False`` runs the engine in stats-lite mode
    (identical message/word/round counts, no utilized-edge or per-tag
    breakdowns) — the mode bulk experiment sweeps use.
    """
    engine = AsyncNetwork if asynchronous else SyncNetwork
    if method == "kt1-delta-plus-one":
        net = engine(graph, rho=1, seed=seed,
                     collect_utilization=collect_utilization)
        detail = run_algorithm1(net, seed=seed, **kwargs)
        colors = detail.colors
        bound = graph.max_degree() + 1
    elif method == "kt1-eps-delta":
        if asynchronous:
            raise ReproError("Algorithm 2 is synchronous in the paper")
        net = engine(graph, rho=1, seed=seed,
                     collect_utilization=collect_utilization)
        detail = run_algorithm2(net, epsilon=epsilon, seed=seed, **kwargs)
        colors = detail.colors
        bound = detail.palette_size
    elif method in ("baseline-trial", "baseline-rank-greedy"):
        kind = method.removeprefix("baseline-")
        net = engine(
            graph, rho=1, seed=seed,
            comparison_based=(kind == "rank-greedy"),
            collect_utilization=collect_utilization,
        )
        colors, detail = run_baseline_coloring(net, kind)
        bound = graph.max_degree() + 1
    else:
        raise ReproError(f"unknown coloring method {method!r}")
    valid = (
        not coloring_violations(graph, colors)
        and all(c is not None for c in colors)
    )
    return ColoringResult(
        colors=colors,
        num_colors=len({c for c in colors if c is not None}),
        palette_bound=bound,
        valid=valid,
        report=_report(method, net),
        detail=detail,
    )


def find_mis(
    graph: Graph,
    method: str = "kt2-sampled-greedy",
    seed: int = 0,
    comparison_based: bool = True,
    collect_utilization: bool = True,
    **kwargs,
) -> MISResult:
    """Compute an MIS of a connected graph.

    ``collect_utilization=False`` selects the engine's stats-lite mode
    (see :func:`color_graph`).
    """
    if method == "kt2-sampled-greedy":
        net = SyncNetwork(graph, rho=2, seed=seed,
                          comparison_based=comparison_based,
                          collect_utilization=collect_utilization)
        detail = run_algorithm3(net, seed=seed, **kwargs)
        in_mis = detail.in_mis
    elif method == "luby":
        net = SyncNetwork(graph, rho=1, seed=seed,
                          comparison_based=comparison_based,
                          collect_utilization=collect_utilization)
        in_mis, detail = run_luby(net)
    elif method == "rank-greedy":
        net = SyncNetwork(graph, rho=1, seed=seed,
                          comparison_based=comparison_based,
                          collect_utilization=collect_utilization)
        in_mis, detail = run_rank_greedy_mis(net)
    else:
        raise ReproError(f"unknown MIS method {method!r}")
    bad = mis_violations(graph, in_mis)
    valid = not bad["independence"] and not bad["maximality"]
    return MISResult(
        in_mis=in_mis,
        size=sum(in_mis),
        valid=valid,
        report=_report(method, net),
        detail=detail,
    )
