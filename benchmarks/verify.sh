#!/bin/sh
# Fast verification gate: the tier-1 test suite minus the slow-marked
# scaling sweeps, then the exact fixed-seed count-regression check
# against the committed BENCH_engine.json.
#
#   benchmarks/verify.sh            # default: 4 regression workers
#   WORKERS=8 benchmarks/verify.sh
#
# Exits nonzero on the first failure.  This is the gate every engine
# change must pass before regenerating BENCH_engine.json.
set -e

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 (fast slice: -m 'not slow') =="
python -m pytest -x -q -m "not slow"

echo "== distributed sweep smoke (plan + two-worker end-to-end) =="
SMOKE_OUT="$(mktemp -u "${TMPDIR:-/tmp}/repro-smoke-XXXXXX.jsonl")"
python -m repro sweep --families gnp --sizes 30 --seeds 0 1 \
    --methods luby --out "$SMOKE_OUT" --dry-run
rm -f "$SMOKE_OUT"
python -m pytest -x -q \
    tests/test_distributed.py::test_two_worker_distributed_sweep_matches_serial

echo "== fault-sweep smoke (seeded drops, survivor-valid records) =="
FAULT_OUT="$(mktemp -u "${TMPDIR:-/tmp}/repro-faults-XXXXXX.jsonl")"
python -m repro sweep --families gnp --sizes 40 --seeds 0 1 \
    --methods luby baseline-trial --faults drop:0.05 \
    --out "$FAULT_OUT"
python - "$FAULT_OUT" << 'EOF'
import json, sys

records = [json.loads(line) for line in open(sys.argv[1])]
assert records, "fault smoke produced no records"
assert all(r["status"] == "ok" for r in records), records
assert all(r["faults"] == "drop:0.05" for r in records), records
assert all(r["survivor_valid"] for r in records), records
dropped = sum(r["dropped_messages"] for r in records)
assert dropped > 0, "drop:0.05 sweep dropped nothing"
print(f"fault smoke: {len(records)} cells ok, {dropped} messages dropped")
EOF
rm -f "$FAULT_OUT"

echo "== chaos smoke (SIGKILL a worker, bounce the coordinator) =="
# Real subprocesses, real signals: one worker SIGKILLed mid-cell, the
# coordinator SIGTERM-drained (must exit 0) and restarted with
# --resume-journal; the merged store must be bit-identical per key to a
# serial run, with zero lost records and the surviving worker
# reconnecting through its backoff loop.  Heavier scenarios live behind
# the slow marker in tests/test_chaos.py.
CHAOS_DIR="$(mktemp -d "${TMPDIR:-/tmp}/repro-chaos-XXXXXX")"
python benchmarks/chaos_smoke.py --workdir "$CHAOS_DIR"
rm -rf "$CHAOS_DIR"

echo "== fixed-seed count regression vs BENCH_engine.json =="
python benchmarks/check_regression.py --workers "${WORKERS:-4}"

echo "== columnar engine: same counts, numpy scheduler =="
# The whole reference matrix again under the columnar scheduler: every
# cell's messages/rounds must still match the committed baseline
# bit-for-bit (the columnar parity contract, docs/columnar.md).
python benchmarks/check_regression.py --workers "${WORKERS:-4}" \
    --scheduler columnar

echo "== columnar engine: numpy-free fallback smoke =="
# A shadow 'numpy' that refuses to import: the columnar scheduler must
# warn once, fall back to the scalar path, and finish with a valid run.
NONUMPY_DIR="$(mktemp -d "${TMPDIR:-/tmp}/repro-nonumpy-XXXXXX")"
cat > "$NONUMPY_DIR/numpy.py" << 'EOF'
raise ImportError("numpy disabled for the columnar fallback smoke")
EOF
PYTHONPATH="$NONUMPY_DIR:$PYTHONPATH" python - << 'EOF'
import sys
from repro import api
from repro.graphs.generators import family_graph

res = api.find_mis(family_graph("gnp", 40, p=0.3, seed=0),
                   method="luby", seed=0, scheduler="columnar")
assert res.valid, "numpy-free columnar run produced an invalid MIS"
import repro.congest.columnar as columnar
assert columnar.get_numpy() is None, "shadow numpy was importable"
print(f"no-numpy smoke: valid MIS of {res.size}, "
      f"{res.report.messages} msgs via scalar fallback")
EOF
rm -rf "$NONUMPY_DIR"

echo "verify.sh: OK"
