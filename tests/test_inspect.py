"""Tests for the observability layer (per-tag accounting + inspector)."""

from repro.congest.inspect import NetworkInspector
from repro.congest.network import SyncNetwork
from repro.coloring.algorithm1 import run_algorithm1
from repro.graphs.generators import connected_gnp_graph
from repro.mis.luby import run_luby


def run_pipeline(n=80, seed=5):
    g = connected_gnp_graph(n, 0.2, seed=seed)
    net = SyncNetwork(g, seed=seed)
    run_algorithm1(net, seed=seed + 1)
    return net


def test_by_tag_accounting_totals():
    net = run_pipeline()
    assert sum(net.stats.by_tag.values()) == net.stats.messages
    assert all(v > 0 for v in net.stats.by_tag.values())


def test_by_sender_accounting_totals():
    net = run_pipeline()
    assert sum(net.stats.by_sender.values()) == net.stats.messages
    assert all(0 <= s < net.graph.n for s in net.stats.by_sender)


def test_luby_tags_expected():
    g = connected_gnp_graph(60, 0.2, seed=6)
    net = SyncNetwork(g, seed=7)
    run_luby(net)
    assert set(net.stats.by_tag) == {"prio", "join", "fate"}
    # one of each per active edge direction per phase
    assert net.stats.by_tag["join"] == net.stats.by_tag["fate"]


def test_stage_groups_cover_everything():
    net = run_pipeline()
    inspector = NetworkInspector(net)
    groups = inspector.stage_groups()
    assert sum(g["messages"] for g in groups.values()) == net.stats.messages
    assert any(k.startswith("alg1") for k in groups)


def test_top_tags_sorted():
    net = run_pipeline()
    top = NetworkInspector(net).top_tags(limit=5)
    counts = [c for _t, c in top]
    assert counts == sorted(counts, reverse=True)
    assert len(top) <= 5


def test_load_profile_sane():
    net = run_pipeline()
    profile = NetworkInspector(net).load_profile()
    assert profile["total"] == net.stats.messages
    assert profile["max"] >= profile["median"]
    assert 0.0 <= profile["gini"] <= 1.0


def test_load_profile_empty_network():
    from repro.graphs.core import Graph

    net = SyncNetwork(Graph(3, [(0, 1), (1, 2)]), seed=8)
    profile = NetworkInspector(net).load_profile()
    assert profile == {"total": 0, "max": 0, "median": 0, "gini": 0.0}


def test_report_renders():
    net = run_pipeline()
    text = NetworkInspector(net).report(title="pipeline")
    assert "== pipeline ==" in text
    assert "by pipeline phase:" in text
    assert "by message tag:" in text
    assert str(net.stats.messages) in text
