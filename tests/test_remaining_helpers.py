"""Coverage for remaining helpers: conversions, result objects, exports."""

import networkx as nx

from repro.congest.network import SyncNetwork
from repro.graphs.generators import graph_from_networkx
from repro.substrates.boruvka import ForestState, run_boruvka
from repro.substrates.spanning_tree import build_spanning_tree


def test_graph_from_networkx_roundtrip():
    nxg = nx.path_graph(6)
    g = graph_from_networkx(nxg)
    assert g.n == 6
    assert g.m == 5
    assert g.has_edge(0, 1)


def test_graph_from_networkx_relabels():
    nxg = nx.Graph()
    nxg.add_edge(10, 20)
    nxg.add_edge(20, 30)
    g = graph_from_networkx(nxg)
    assert g.n == 3 and g.m == 2


def test_forest_state_from_tree(gnp_small):
    net = SyncNetwork(gnp_small, seed=1)
    st = build_spanning_tree(net, seed=2)
    forest = ForestState.from_tree(st.parents, st.children)
    assert forest.roots() == [st.root]
    assert len(forest.tree_edges(net)) == gnp_small.n - 1


def test_boruvka_result_leader_vertices(gnp_small):
    net = SyncNetwork(gnp_small, seed=3)
    result = run_boruvka(net, ForestState.singletons(gnp_small.n), seed=4)
    assert result.leader_vertices == result.forest.roots()
    assert len(result.leader_vertices) == 1
    assert len(result.new_edges) == gnp_small.n - 1


def test_api_detail_objects(gnp_small):
    from repro import api

    coloring = api.color_graph(gnp_small, seed=5)
    assert coloring.detail is not None
    assert coloring.detail.num_levels >= 1

    mis = api.find_mis(gnp_small, seed=6)
    assert mis.detail is not None
    assert mis.detail.sampled >= 0


def test_spanning_tree_result_tree_inputs(gnp_small):
    net = SyncNetwork(gnp_small, seed=7)
    st = build_spanning_tree(net, seed=8)
    inputs = st.tree_inputs()
    assert len(inputs) == gnp_small.n
    assert inputs[st.root]["parent"] is None


def test_congest_package_exports():
    import repro.congest as c

    for name in c.__all__:
        assert hasattr(c, name), name


def test_all_packages_importable():
    import importlib

    for mod in (
        "repro", "repro.api", "repro.cli", "repro.errors",
        "repro.util", "repro.graphs", "repro.congest",
        "repro.congest.inspect", "repro.congest.synchronizer",
        "repro.congest.async_network",
        "repro.substrates", "repro.coloring", "repro.mis",
        "repro.lowerbounds",
    ):
        importlib.import_module(mod)


def test_version_string():
    import repro

    assert repro.__version__ == "1.0.0"
