"""Shared helpers for the benchmark harness.

``fit_exponent`` lives in the library now
(:mod:`repro.experiments.stats`, with guards against degenerate inputs);
benchmarks import it from here for convenience.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.stats import fit_exponent  # noqa: F401 - re-export


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence]) -> None:
    """Render an aligned table to stdout (visible with pytest -s)."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(r, widths)))


def fmt(x, digits: int = 2) -> str:
    if isinstance(x, float):
        return f"{x:.{digits}f}"
    return str(x)
