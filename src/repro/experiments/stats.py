"""Aggregation helpers: growth exponents and confidence intervals.

The paper's headline claims are empirical scaling statements ("messages
~ n^1.5, not m"), so the primitive everything reduces to is: fit the
slope of log(y) against log(x) over a multi-seed sweep and report it with
a dispersion estimate.
"""

from __future__ import annotations

import math
from typing import Sequence


def fit_exponent(points: Sequence[tuple[float, float]]) -> float:
    """Least-squares slope of log(y) against log(x).

    For message counts y measured at sizes x, this is the empirical
    growth exponent ("messages ~ x^alpha").

    Degenerate inputs are answered with 0.0 rather than an exception:
    points with a non-positive coordinate carry no log-scale information
    and are dropped — symmetrically in x and y, because clamping a zero
    y to some tiny epsilon would inject an enormous negative log (a
    single zero-message cell could swing a fitted exponent by whole
    units); fewer than two surviving points (or a single distinct x)
    leave the slope undetermined.
    """
    clean = [(x, y) for x, y in points if x > 0 and y > 0]
    if len(clean) < 2:
        return 0.0
    xs = [math.log(x) for x, _ in clean]
    ys = [math.log(y) for _, y in clean]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else 0.0


def mean_ci(values: Sequence[float],
            z: float = 1.96) -> tuple[float, float]:
    """Sample mean and normal-approximation half-width (95% by default).

    Returns ``(mean, half_width)``; a single observation has zero width.
    """
    k = len(values)
    if k == 0:
        return 0.0, 0.0
    mean = sum(values) / k
    if k == 1:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (k - 1)
    return mean, z * math.sqrt(var / k)


#: The record fields that define one scaling population: pooling across
#: any of these (different densities, engines, latency models, epsilons,
#: or sample constants appended to the same store) would fit one
#: meaningless exponent over two different workloads, so aggregation
#: always separates them.  Sync records store ``latency`` as None (no
#: delivery model) and fault-free records store ``faults`` as None —
#: both match records from older schemas that lack the field.
WORKLOAD_KEYS = ("family", "method", "engine", "latency", "density",
                 "epsilon", "sample_constant", "faults")


def latest_per_key(records: Sequence[dict]) -> list[dict]:
    """Last-record-wins dedup by cell ``key``, preserving input order.

    A JSON-lines store legitimately holds several lines for one key: a
    failed attempt superseded by a later success (the documented resume
    path), or duplicate ok lines from a supervisor/worker race.  Pooling
    them all would inflate per-size run counts and skew every mean, so
    aggregation keeps only the last line per key.  Keyless records
    (hand-built aggregation inputs) pass through untouched.
    """
    out: list[dict] = []
    slot: dict[str, int] = {}
    for rec in records:
        key = rec.get("key")
        if key is None:
            out.append(rec)
        elif key in slot:
            out[slot[key]] = rec
        else:
            slot[key] = len(out)
            out.append(rec)
    return out


def ok_records(records: Sequence[dict]) -> list[dict]:
    """The measurable subset of a record set.

    Records are first deduplicated per key (:func:`latest_per_key` —
    last record wins), then timed-out / errored cells
    (``status != "ok"``) are dropped: they carry no counts and must not
    poison an exponent fit or a mean.  Records from older stores without
    a status field are treated as ok.
    """
    return [r for r in latest_per_key(records)
            if r.get("status", "ok") == "ok"]


def group_records(records: Sequence[dict],
                  keys: tuple[str, ...]) -> dict[tuple, list[dict]]:
    """Group result records by a tuple of record fields (missing fields
    group under ``None``, so stores written by older schemas still
    aggregate)."""
    groups: dict[tuple, list[dict]] = {}
    for rec in records:
        groups.setdefault(tuple(rec.get(k) for k in keys), []).append(rec)
    return groups


def growth_exponents(records: Sequence[dict],
                     y_field: str = "messages") -> list[dict]:
    """Per workload (family, method, engine, density, epsilon): mean y at
    each n, plus the fitted exponent.

    Records are the dicts produced by :func:`repro.experiments.run_cell`
    (or loaded back from a :class:`~repro.experiments.store.ResultStore`).
    Returns one row per workload with ``points`` (n -> mean, ci) and
    ``exponent`` (slope of log mean-y vs log n).
    """
    rows = []
    for group_key, recs in sorted(
        group_records(ok_records(records), WORKLOAD_KEYS).items(),
        key=lambda kv: tuple(repr(k) for k in kv[0]),
    ):
        by_n = group_records(recs, ("n",))
        points = {}
        for (n,), cell_recs in sorted(by_n.items()):
            mean, ci = mean_ci([r[y_field] for r in cell_recs])
            points[n] = {"mean": mean, "ci95": ci,
                         "runs": len(cell_recs)}
        exponent = fit_exponent(
            [(n, p["mean"]) for n, p in points.items()]
        )
        row = dict(zip(WORKLOAD_KEYS, group_key))
        row.update({
            "y_field": y_field,
            "points": points,
            "exponent": exponent,
        })
        rows.append(row)
    return rows
