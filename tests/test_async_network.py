"""Tests for the asynchronous engine (Section 3.1.1)."""

import pytest

from repro.congest.async_network import AsyncNetwork
from repro.congest.node import NodeAlgorithm
from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.johansson import johansson_color
from repro.coloring.verify import check_proper_coloring
from repro.errors import ConvergenceError, ProtocolError
from repro.graphs.generators import connected_gnp_graph
from repro.mis.luby import run_luby
from repro.mis.verify import check_mis
from repro.substrates.spanning_tree import build_spanning_tree


class EchoOnce(NodeAlgorithm):
    passive_when_idle = True

    def setup(self, ctx):
        self.heard = 0

    def on_round(self, ctx, inbox):
        self.heard += len(inbox)
        if ctx.round == 0:
            for u in ctx.neighbor_ids:
                ctx.send(u, "hi")
        ctx.done(self.heard)


def test_all_messages_delivered(gnp_small):
    anet = AsyncNetwork(gnp_small, seed=1)
    res = anet.run(EchoOnce)
    assert res.outputs == [gnp_small.degree(v) for v in range(gnp_small.n)]


def test_time_metric_positive(gnp_small):
    anet = AsyncNetwork(gnp_small, seed=2)
    res = anet.run(EchoOnce)
    assert res.rounds >= 1
    assert anet.stats.rounds == res.rounds


def test_message_accounting_matches_sync(gnp_small):
    from repro.congest.network import SyncNetwork

    anet = AsyncNetwork(gnp_small, seed=3)
    anet.run(EchoOnce)
    snet = SyncNetwork(gnp_small, seed=3)
    snet.run(EchoOnce)
    assert anet.stats.messages == snet.stats.messages


class Cadence(NodeAlgorithm):
    """Minimal round-cadence algorithm: finishes at a fixed round."""

    passive_when_idle = False

    def on_round(self, ctx, inbox):
        if ctx.round == 0:
            for u in ctx.neighbor_ids:
                ctx.send(u, "tick")
        if ctx.round == 2:
            ctx.done(("finished-at", ctx.round))


def test_round_cadence_needs_budget(gnp_small):
    """Without any synchronizer round budget the engine still refuses
    round-cadence algorithms (Theorem A.5 needs a known bound)."""
    anet = AsyncNetwork(gnp_small, seed=4)
    with pytest.raises(ProtocolError):
        anet.run(Cadence)


def test_round_cadence_auto_wrapped_with_budget(gnp_small):
    """With a budget the engine wraps the stage in an AlphaSynchronizer
    instead of raising, and the outputs match the synchronous run."""
    anet = AsyncNetwork(gnp_small, seed=4, default_round_budget=4)
    res = anet.run(Cadence, name="cadence")
    assert anet.synchronized_stages == ["cadence"]
    from repro.congest.network import SyncNetwork

    snet = SyncNetwork(gnp_small, seed=4)
    sres = snet.run(Cadence, name="cadence")
    assert res.outputs == sres.outputs


def test_round_cadence_per_stage_budgets(gnp_small):
    """round_budgets entries carry the *synchronous* stage round counts
    (the shadow-run recording the api layer produces)."""
    from repro.congest.network import SyncNetwork

    snet = SyncNetwork(gnp_small, seed=4)
    sres = snet.run(Cadence, name="cadence")
    anet = AsyncNetwork(gnp_small, seed=4,
                        round_budgets=[("cadence", sres.rounds)])
    res = anet.run(Cadence, name="cadence")
    assert res.outputs == sres.outputs


def test_unfinished_quiescence_is_error(gnp_small):
    anet = AsyncNetwork(gnp_small, seed=5)

    class Mute(NodeAlgorithm):
        passive_when_idle = True

        def on_round(self, ctx, inbox):
            pass

    with pytest.raises(ConvergenceError):
        anet.run(Mute)


def test_trace_recording_rejected(gnp_small):
    with pytest.raises(ProtocolError):
        AsyncNetwork(gnp_small, seed=6, record_trace=True)


def test_johansson_is_delay_insensitive():
    """The count-based lockstep survives adversarial delays."""
    g = connected_gnp_graph(60, 0.15, seed=7)
    for seed in (8, 9, 10):
        anet = AsyncNetwork(g, seed=seed)
        palettes = [frozenset(range(g.degree(v) + 1)) for v in range(g.n)]
        res = johansson_color(anet, [None] * g.n, palettes)
        colors = [o["color"] for o in res.outputs]
        check_proper_coloring(g, colors)


def test_luby_async():
    g = connected_gnp_graph(60, 0.15, seed=11)
    anet = AsyncNetwork(g, seed=12)
    in_mis, _ = run_luby(anet)
    check_mis(g, in_mis)


def test_spanning_tree_async():
    g = connected_gnp_graph(50, 0.2, seed=13)
    anet = AsyncNetwork(g, seed=14)
    st = build_spanning_tree(anet, seed=15)
    from repro.graphs.analysis import is_connected
    from repro.graphs.core import Graph

    assert is_connected(Graph(g.n, st.tree_edges))
    assert len(st.tree_edges) == g.n - 1


def test_algorithm1_async_theorem_3_4():
    """Theorem 3.4: the full pipeline under the async engine."""
    g = connected_gnp_graph(120, 0.25, seed=16)
    anet = AsyncNetwork(g, seed=17)
    result = run_algorithm1(anet, seed=18)
    check_proper_coloring(g, result.colors)
    # async time is Õ(n)-ish, certainly far below message count
    assert result.rounds < result.messages


def test_delay_seed_changes_schedule_not_correctness():
    g = connected_gnp_graph(40, 0.2, seed=19)
    outs = []
    for seed in (20, 21):
        anet = AsyncNetwork(g, seed=seed)
        in_mis, _ = run_luby(anet)
        check_mis(g, in_mis)
        outs.append(in_mis)
    # different delays may change the MIS; both must be valid (checked)
    assert len(outs) == 2
