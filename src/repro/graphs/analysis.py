"""Graph analysis helpers (components, diameter, degrees).

Pure-Python BFS implementations: fast enough for the benchmark sizes and
free of networkx on the simulator's dependency path.  networkx remains
available through :meth:`repro.graphs.Graph.to_networkx` for anything more
exotic in notebooks.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.graphs.core import Graph


def bfs_distances(g: Graph, source: int) -> list[int]:
    """Distances from ``source``; unreachable vertices get -1."""
    dist = [-1] * g.n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in g.neighbors(u):
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def connected_components(g: Graph) -> list[set[int]]:
    """Connected components as vertex sets, in order of smallest member."""
    seen = [False] * g.n
    components: list[set[int]] = []
    for s in range(g.n):
        if seen[s]:
            continue
        comp = {s}
        seen[s] = True
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v in g.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.add(v)
                    queue.append(v)
        components.append(comp)
    return components


def is_connected(g: Graph) -> bool:
    if g.n == 0:
        return True
    return all(d >= 0 for d in bfs_distances(g, 0))


def eccentricity(g: Graph, v: int) -> int:
    dist = bfs_distances(g, v)
    finite = [d for d in dist if d >= 0]
    return max(finite)


def diameter(g: Graph, exact_threshold: int = 600, seed: int = 0) -> int:
    """Diameter of a connected graph.

    Exact (all-pairs BFS) below ``exact_threshold`` vertices; otherwise a
    standard double-sweep lower bound refined from a handful of extra BFS
    sweeps, which is exact on the benchmark families in practice.
    """
    if g.n == 0:
        return 0
    if not is_connected(g):
        raise ValueError("diameter undefined for disconnected graphs")
    if g.n <= exact_threshold:
        return max(eccentricity(g, v) for v in range(g.n))
    import random

    rng = random.Random(seed)
    best = 0
    start = 0
    for _ in range(6):
        dist = bfs_distances(g, start)
        far = max(range(g.n), key=lambda v: dist[v])
        best = max(best, dist[far])
        start = far if dist[far] > 0 else rng.randrange(g.n)
    return best


def subgraph_diameter(g: Graph, vertices: Iterable[int]) -> int:
    """Diameter of an induced subgraph (must be connected)."""
    return diameter(g.subgraph(vertices))


def max_degree(g: Graph) -> int:
    return g.max_degree()


def degree_histogram(g: Graph) -> dict[int, int]:
    hist: dict[int, int] = {}
    for v in range(g.n):
        d = g.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def degeneracy(g: Graph) -> int:
    """Graph degeneracy via the standard bucket peeling algorithm."""
    if g.n == 0:
        return 0
    degree = [g.degree(v) for v in range(g.n)]
    max_deg = max(degree, default=0)
    buckets: list[set[int]] = [set() for _ in range(max_deg + 1)]
    for v in range(g.n):
        buckets[degree[v]].add(v)
    removed = [False] * g.n
    degen = 0
    for _ in range(g.n):
        d = next(i for i, b in enumerate(buckets) if b)
        degen = max(degen, d)
        v = buckets[d].pop()
        removed[v] = True
        for u in g.neighbors(v):
            if not removed[u]:
                buckets[degree[u]].discard(u)
                degree[u] -= 1
                buckets[degree[u]].add(u)
    return degen
